// cholesky_anynodes: the symmetric-case workflow for an arbitrary node
// count.
//
//   ./cholesky_anynodes --nodes 31 --size 200000
//
// Runs the GCR&M search for P (any value), compares its pattern against the
// best SBC that fits within P nodes, and simulates the Cholesky
// factorization under both — the Fig. 11/12 experiment as a tool.
#include <cstdio>

#include "core/cost.hpp"
#include "core/pattern_search.hpp"
#include "core/sbc.hpp"
#include "sim/engine.hpp"
#include "util/args.hpp"
#include "util/stopwatch.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("cholesky_anynodes",
                   "GCR&M vs the SBC fallback for any node count");
  parser.add("nodes", "31", "number of nodes P");
  parser.add("size", "200000", "matrix size N");
  parser.add("tile", "1000", "tile size");
  parser.add("workers", "34", "compute workers per node");
  parser.add("gflops", "55", "per-core GFlop/s");
  parser.add("bandwidth", "12.5", "NIC bandwidth GB/s");
  parser.add("seeds", "100", "GCR&M random restarts per pattern size");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  const std::int64_t n = parser.get_int("size");
  const std::int64_t t = n / parser.get_int("tile");

  // Offline pattern search (runs once per P; results could live in a
  // PatternDatabase).
  core::GcrmSearchOptions options;
  options.seeds = parser.get_int("seeds");
  Stopwatch search_time;
  const core::GcrmSearchResult search = core::gcrm_search(P, options);
  if (!search.found) {
    std::fprintf(stderr, "no GCR&M pattern found for P=%lld\n",
                 static_cast<long long>(P));
    return 1;
  }
  std::printf("GCR&M search for P=%lld: %.2fs, best pattern %lldx%lld with "
              "T = %.3f\n",
              static_cast<long long>(P), search_time.seconds(),
              static_cast<long long>(search.best.rows()),
              static_cast<long long>(search.best.cols()), search.best_cost);
  const core::SbcParams sbc = core::best_sbc_at_most(P);
  std::printf("SBC fallback: %lld nodes, %lldx%lld, T = %.0f\n\n",
              static_cast<long long>(sbc.P), static_cast<long long>(sbc.a),
              static_cast<long long>(sbc.a), sbc.cost());

  const auto simulate = [&](const core::Pattern& pattern, const char* label) {
    sim::MachineConfig machine;
    machine.nodes = pattern.num_nodes();
    machine.workers_per_node = static_cast<int>(parser.get_int("workers"));
    machine.core_gflops = parser.get_double("gflops");
    machine.link_bandwidth_gbps = parser.get_double("bandwidth");
    machine.tile_size = parser.get_int("tile");
    const core::PatternDistribution dist(pattern, t, true, label);
    const sim::SimReport report = sim::simulate_cholesky(t, dist, machine);
    std::printf("%-12s P=%3lld  time = %8.2f s  total = %8.0f GF/s  "
                "per-node = %6.0f GF/s  messages = %lld\n",
                label, static_cast<long long>(pattern.num_nodes()),
                report.makespan_seconds, report.total_gflops(),
                report.per_node_gflops(),
                static_cast<long long>(report.messages));
  };
  std::printf("Cholesky of N=%lld (t=%lld):\n", static_cast<long long>(n),
              static_cast<long long>(t));
  simulate(search.best, "GCR&M");
  simulate(core::make_sbc(sbc), "SBC");
  return 0;
}
