// stf_runtime: the task-based execution model on one node, end to end.
//
//   ./stf_runtime --t 12 --tile 64 --workers 4
//
// Factorizes the same matrix with the sequential tiled algorithm and with
// the STF engine at several worker counts, verifies the results are
// bitwise identical (the engine reproduces sequential semantics), solves
// A x = b from the factors, and prints engine statistics plus a per-worker
// trace summary — the single-node half of the Chameleon/StarPU model the
// paper's distributions plug into.
#include <cstdio>
#include <map>
#include <string>

#include "linalg/factorizations.hpp"
#include "linalg/generators.hpp"
#include "linalg/solve.hpp"
#include "linalg/verify.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "runtime/stf_factorizations.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("stf_runtime",
                   "task-based single-node factorization walkthrough");
  parser.add("t", "12", "tiles per matrix side");
  parser.add("tile", "64", "tile size in elements");
  parser.add("workers", "4", "worker threads for the traced run");
  parser.add("seed", "7", "matrix seed");
  parser.add("trace", "",
             "write the traced run's Chrome trace_event JSON here");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t t = parser.get_int("t");
  const std::int64_t nb = parser.get_int("tile");
  const std::int64_t n = t * nb;
  Rng rng(static_cast<std::uint64_t>(parser.get_int("seed")));
  const linalg::DenseMatrix original = linalg::diag_dominant_matrix(n, rng);

  // Sequential reference.
  linalg::TiledMatrix reference = linalg::TiledMatrix::from_dense(original, nb);
  Stopwatch seq_watch;
  if (!linalg::tiled_lu_nopiv(reference)) {
    std::fprintf(stderr, "sequential factorization failed\n");
    return 1;
  }
  std::printf("matrix %lldx%lld (%lldx%lld tiles of %lld)\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(t), static_cast<long long>(t),
              static_cast<long long>(nb));
  std::printf("sequential tiled LU: %.3fs, residual %.2e\n",
              seq_watch.seconds(), linalg::lu_residual(original, reference));

  // Task-based runs at increasing worker counts.
  const std::string trace_path = parser.get("trace");
  obs::Recorder recorder;
  for (const int workers : {1, 2, static_cast<int>(parser.get_int("workers"))}) {
    linalg::TiledMatrix a = linalg::TiledMatrix::from_dense(original, nb);
    runtime::TaskEngine engine(workers);
    if (workers == parser.get_int("workers")) engine.set_recorder(&recorder);
    Stopwatch watch;
    if (!runtime::stf_lu_nopiv(engine, a)) {
      std::fprintf(stderr, "STF factorization failed\n");
      return 1;
    }
    const double elapsed = watch.seconds();
    bool identical = true;
    for (std::int64_t i = 0; i < n && identical; ++i)
      for (std::int64_t j = 0; j < n; ++j)
        if (a.at(i, j) != reference.at(i, j)) {
          identical = false;
          break;
        }
    const auto stats = engine.stats();
    std::printf(
        "STF, %d worker(s): %.3fs, %lld tasks, %lld edges, peak "
        "concurrency %lld, identical to sequential: %s\n",
        workers, elapsed, static_cast<long long>(stats.tasks_executed),
        static_cast<long long>(stats.dependency_edges),
        static_cast<long long>(stats.peak_concurrency),
        identical ? "yes" : "NO");

    if (workers != parser.get_int("workers")) continue;
    const obs::Trace trace = recorder.take();
    std::size_t events = 0;
    std::map<std::string, std::pair<std::int64_t, double>> by_kernel;
    for (const auto& track : trace.tracks) {
      for (const auto& event : track.events) {
        auto& [count, time] = by_kernel[event.name];
        ++count;
        time += event.end_seconds - event.start_seconds;
        ++events;
      }
    }
    if (events > 0) {
      std::printf("trace (%zu events over %zu worker tracks):\n", events,
                  trace.tracks.size());
      for (const auto& [name, agg] : by_kernel)
        std::printf("  %-10s x%-6lld %.3fs total\n", name.c_str(),
                    static_cast<long long>(agg.first), agg.second);
    }
    if (!trace_path.empty()) {
      if (!obs::write_chrome_trace_file(trace_path, trace)) {
        std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
        return 1;
      }
      std::printf("chrome trace -> %s\n", trace_path.c_str());
    }
  }

  // End-to-end: solve A x = b from the task-built factors.
  std::vector<double> b(static_cast<std::size_t>(n));
  for (double& v : b) v = 2.0 * rng.uniform() - 1.0;
  const std::vector<double> x = linalg::lu_solve(reference, b);
  std::printf("solve residual ||Ax-b||/||b|| = %.2e\n",
              linalg::solve_residual(original, x, b));
  return 0;
}
