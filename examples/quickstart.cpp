// Quickstart: build the distribution patterns for a node count and inspect
// their communication costs.
//
//   ./quickstart --nodes 23
//
// Shows the problem (2DBC degrades when P doesn't factor nicely) and both
// solutions: G-2DBC (LU) and GCR&M (Cholesky), with the predicted
// communication volume for a concrete matrix.
#include <cstdio>

#include "core/block_cyclic.hpp"
#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/pattern_io.hpp"
#include "core/pattern_search.hpp"
#include "core/sbc.hpp"
#include "util/args.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("quickstart",
                   "build and compare distribution patterns for P nodes");
  parser.add("nodes", "23", "number of nodes P");
  parser.add("t", "100", "tiles per matrix side (for volume predictions)");
  parser.add("seeds", "50", "GCR&M random restarts");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  const std::int64_t t = parser.get_int("t");

  std::printf("=== anyblock quickstart: P = %lld nodes ===\n\n",
              static_cast<long long>(P));

  // --- Non-symmetric (LU) case.
  std::printf("LU (non-symmetric). Every 2DBC factorization of P:\n");
  for (const auto& [r, c] : core::grid_shapes(P)) {
    std::printf("  2DBC %3lldx%-3lld  T = %5.2f\n", static_cast<long long>(r),
                static_cast<long long>(c), static_cast<double>(r + c));
  }
  const core::Pattern g2dbc = core::make_g2dbc(P);
  std::printf("  G-2DBC %lldx%lld  T = %.3f  (reference 2*sqrt(P) = %.3f)\n",
              static_cast<long long>(g2dbc.rows()),
              static_cast<long long>(g2dbc.cols()), core::lu_cost(g2dbc),
              core::lu_cost_reference(P));
  std::printf("  predicted LU comm volume at t=%lld: %.0f tiles (Eq. 1)\n\n",
              static_cast<long long>(t),
              core::predicted_lu_volume(g2dbc, t));

  // --- Symmetric (Cholesky) case.
  std::printf("Cholesky (symmetric).\n");
  if (core::sbc_feasible(P)) {
    const core::Pattern sbc = core::make_sbc(P);
    std::printf("  SBC exists for P: %lldx%lld  T = %.2f\n",
                static_cast<long long>(sbc.rows()),
                static_cast<long long>(sbc.cols()), core::cholesky_cost(sbc));
  } else {
    const core::SbcParams fallback = core::best_sbc_at_most(P);
    std::printf("  no SBC for P = %lld; nearest fallback uses %lld nodes "
                "(%lldx%lld, T = %.0f)\n",
                static_cast<long long>(P), static_cast<long long>(fallback.P),
                static_cast<long long>(fallback.a),
                static_cast<long long>(fallback.a), fallback.cost());
  }
  core::GcrmSearchOptions options;
  options.seeds = parser.get_int("seeds");
  const core::GcrmSearchResult search = core::gcrm_search(P, options);
  if (search.found) {
    std::printf("  GCR&M (all %lld nodes): %lldx%lld  T = %.3f "
                "(reference sqrt(2P) = %.3f, limit sqrt(3P/2) = %.3f)\n",
                static_cast<long long>(P),
                static_cast<long long>(search.best.rows()),
                static_cast<long long>(search.best.cols()), search.best_cost,
                core::sbc_cost_reference(P), core::gcrm_cost_limit(P));
    std::printf("  predicted Cholesky comm volume at t=%lld: %.0f tiles "
                "(Eq. 2)\n",
                static_cast<long long>(t),
                core::predicted_cholesky_volume(search.best, t));
    if (search.best.rows() <= 32) {
      std::printf("\nGCR&M pattern ('.' = diagonal cell, bound lazily):\n%s",
                  core::render_pattern(search.best).c_str());
    }
  }
  return 0;
}
