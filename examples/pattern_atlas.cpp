// pattern_atlas: the paper's conclusion made concrete — "one could imagine
// to provide a database containing, for each possible value of P, a very
// efficient pattern".
//
//   ./pattern_atlas --min 2 --max 40 --out atlas.db
//
// For every P in range, stores the best non-symmetric pattern (G-2DBC, or
// plain 2DBC when it degenerates) and the best symmetric pattern (SBC when
// feasible and cheaper, otherwise the GCR&M search winner), then reloads
// the database and prints a summary table.
#include <cstdio>

#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/pattern_io.hpp"
#include "core/pattern_search.hpp"
#include "core/sbc.hpp"
#include "util/args.hpp"
#include "util/stopwatch.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("pattern_atlas",
                   "precompute a best-known-pattern database over a P range");
  parser.add("min", "2", "smallest P");
  parser.add("max", "40", "largest P");
  parser.add("seeds", "50", "GCR&M random restarts per pattern size");
  parser.add("out", "pattern_atlas.db", "database output path");
  if (!parser.parse(argc, argv)) return 1;

  core::PatternDatabase db;
  core::GcrmSearchOptions options;
  options.seeds = parser.get_int("seeds");
  Stopwatch total;

  std::printf("%4s | %-12s %8s | %-12s %8s\n", "P", "nonsym", "T",
              "sym", "T");
  for (std::int64_t P = parser.get_int("min"); P <= parser.get_int("max");
       ++P) {
    const core::Pattern nonsym = core::make_g2dbc(P);
    db.put(P, core::PatternDatabase::Kind::kNonSymmetric, nonsym);

    // Symmetric: prefer SBC where it exists and is at least as cheap.
    core::Pattern sym;
    if (const core::GcrmSearchResult search = core::gcrm_search(P, options);
        search.found) {
      sym = search.best;
      if (core::sbc_feasible(P) &&
          core::cholesky_cost(core::make_sbc(P)) <= search.best_cost) {
        sym = core::make_sbc(P);
      }
    } else if (core::sbc_feasible(P)) {
      sym = core::make_sbc(P);
    } else {
      std::fprintf(stderr, "P=%lld: no symmetric pattern found, skipping\n",
                   static_cast<long long>(P));
      continue;
    }
    db.put(P, core::PatternDatabase::Kind::kSymmetric, sym);

    std::printf("%4lld | %5lldx%-6lld %8.3f | %5lldx%-6lld %8.3f\n",
                static_cast<long long>(P),
                static_cast<long long>(nonsym.rows()),
                static_cast<long long>(nonsym.cols()), core::lu_cost(nonsym),
                static_cast<long long>(sym.rows()),
                static_cast<long long>(sym.cols()),
                core::cholesky_cost(sym));
  }

  const std::string path = parser.get("out");
  if (!db.save_file(path)) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return 1;
  }
  // Round-trip check: the database a cluster site would ship must reload.
  core::PatternDatabase reloaded;
  if (!reloaded.load_file(path) || reloaded.size() != db.size()) {
    std::fprintf(stderr, "database round-trip failed\n");
    return 1;
  }
  std::printf("\n%zu patterns written to %s in %.1fs\n", db.size(),
              path.c_str(), total.seconds());
  return 0;
}
