// cluster_lu: the paper's motivating scenario end to end.
//
//   "My reservation came back with 23 nodes. How should I distribute the
//    matrix for the LU factorization?"
//
//   ./cluster_lu --nodes 23 --size 200000
//
// Simulates the factorization on the modeled cluster under every candidate
// distribution — each 2DBC factorization of P, the best 2DBC with fewer
// nodes, and G-2DBC on all P nodes — and reports time-to-solution plus
// total and per-node GFlop/s.
#include <cstdio>
#include <string>
#include <vector>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "sim/engine.hpp"
#include "util/args.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("cluster_lu",
                   "simulate LU under every candidate distribution");
  parser.add("nodes", "23", "number of nodes P");
  parser.add("size", "200000", "matrix size N");
  parser.add("tile", "1000", "tile size");
  parser.add("workers", "34", "compute workers per node");
  parser.add("gflops", "55", "per-core GFlop/s");
  parser.add("bandwidth", "12.5", "NIC bandwidth GB/s");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  const std::int64_t n = parser.get_int("size");
  const std::int64_t t = n / parser.get_int("tile");

  struct Row {
    std::string label;
    core::Pattern pattern;
  };
  std::vector<Row> rows;
  for (const auto& [r, c] : core::grid_shapes(P)) {
    rows.push_back({"2DBC " + std::to_string(r) + "x" + std::to_string(c),
                    core::make_2dbc(r, c)});
  }
  const core::Pattern smaller = core::best_2dbc_at_most(P);
  if (smaller.num_nodes() != P) {
    const auto [r, c] = core::best_grid(smaller.num_nodes());
    rows.push_back({"2DBC " + std::to_string(r) + "x" + std::to_string(c) +
                        " (fewer nodes)",
                    smaller});
  }
  rows.push_back({"G-2DBC", core::make_g2dbc(P)});

  std::printf("LU of a %lldx%lld matrix (t = %lld tiles of %lld), up to "
              "%lld nodes\n\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(t),
              static_cast<long long>(parser.get_int("tile")),
              static_cast<long long>(P));
  std::printf("%-24s %4s %8s %12s %12s %12s\n", "distribution", "P", "T",
              "time (s)", "GFlop/s", "GF/s/node");
  for (const auto& row : rows) {
    sim::MachineConfig machine;
    machine.nodes = row.pattern.num_nodes();
    machine.workers_per_node = static_cast<int>(parser.get_int("workers"));
    machine.core_gflops = parser.get_double("gflops");
    machine.link_bandwidth_gbps = parser.get_double("bandwidth");
    machine.tile_size = parser.get_int("tile");
    const core::PatternDistribution dist(row.pattern, t, false, row.label);
    const sim::SimReport report = sim::simulate_lu(t, dist, machine);
    std::printf("%-24s %4lld %8.3f %12.2f %12.0f %12.0f\n", row.label.c_str(),
                static_cast<long long>(row.pattern.num_nodes()),
                core::lu_cost(row.pattern), report.makespan_seconds,
                report.total_gflops(), report.per_node_gflops());
  }
  std::printf("\nLower T at equal P means less communication (Eq. 1); the "
              "winner is the distribution with the smallest time.\n");
  return 0;
}
