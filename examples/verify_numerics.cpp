// verify_numerics: run the *real* distributed factorizations (thread ranks
// over the vmpi message-passing layer) under irregular distributions, and
// check both the numbers and the communication model:
//   * the factorization residual against the original matrix,
//   * the measured tile-message count against Eq. 1 / Eq. 2 predictions
//     and against the exact owner-computes count.
//
//   ./verify_numerics --nodes 10 --t 16 --tile 8
#include <cstdio>

#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/pattern_search.hpp"
#include "dist/dist_factorization.hpp"
#include "linalg/generators.hpp"
#include "linalg/verify.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("verify_numerics",
                   "distributed factorizations: residuals + message counts");
  parser.add("nodes", "10", "number of nodes (thread ranks)");
  parser.add("t", "16", "tiles per matrix side");
  parser.add("tile", "8", "tile size in elements");
  parser.add("seed", "12345", "matrix seed");
  parser.add("gcrm-seeds", "30", "GCR&M random restarts");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  const std::int64_t t = parser.get_int("t");
  const std::int64_t nb = parser.get_int("tile");
  Rng rng(static_cast<std::uint64_t>(parser.get_int("seed")));
  bool all_good = true;

  // --- LU under G-2DBC.
  {
    const core::Pattern pattern = core::make_g2dbc(P);
    const linalg::DenseMatrix original =
        linalg::diag_dominant_matrix(t * nb, rng);
    const linalg::TiledMatrix input =
        linalg::TiledMatrix::from_dense(original, nb);
    const core::PatternDistribution distribution(pattern, t, false);
    const dist::DistRunResult run = dist::distributed_lu(input, distribution);
    const double residual = linalg::lu_residual(original, run.factored);
    const std::int64_t exact = core::exact_lu_volume(pattern, t);
    const double predicted = core::predicted_lu_volume(pattern, t);
    std::printf("LU, G-2DBC, P=%lld, t=%lld:\n", static_cast<long long>(P),
                static_cast<long long>(t));
    std::printf("  residual ||A-LU||/||A||  = %.2e  (ok: < 1e-12)\n",
                residual);
    std::printf("  tile messages measured   = %lld\n",
                static_cast<long long>(run.tile_messages));
    std::printf("  exact owner-computes     = %lld  (must match)\n",
                static_cast<long long>(exact));
    std::printf("  Eq. 1 prediction         = %.0f  (edge effects ignored)\n",
                predicted);
    all_good &= run.ok && residual < 1e-12 && run.tile_messages == exact;
  }

  // --- Cholesky under GCR&M.
  {
    core::GcrmSearchOptions options;
    options.seeds = parser.get_int("gcrm-seeds");
    const core::GcrmSearchResult search = core::gcrm_search(P, options);
    if (!search.found) {
      std::fprintf(stderr, "no GCR&M pattern for P=%lld\n",
                   static_cast<long long>(P));
      return 1;
    }
    const linalg::DenseMatrix original = linalg::spd_matrix(t * nb, rng);
    const linalg::TiledMatrix input =
        linalg::TiledMatrix::from_dense(original, nb);
    const core::PatternDistribution distribution(search.best, t, true);
    const dist::DistRunResult run =
        dist::distributed_cholesky(input, distribution);
    const double residual =
        linalg::cholesky_residual(original, run.factored);
    const std::int64_t exact = core::exact_cholesky_volume(search.best, t);
    const double predicted =
        core::predicted_cholesky_volume(search.best, t);
    std::printf("\nCholesky, GCR&M (%lldx%lld, T=%.3f), P=%lld, t=%lld:\n",
                static_cast<long long>(search.best.rows()),
                static_cast<long long>(search.best.cols()), search.best_cost,
                static_cast<long long>(P), static_cast<long long>(t));
    std::printf("  residual ||A-LL^T||/||A|| = %.2e  (ok: < 1e-12)\n",
                residual);
    std::printf("  tile messages measured    = %lld\n",
                static_cast<long long>(run.tile_messages));
    std::printf("  exact owner-computes      = %lld  (must match)\n",
                static_cast<long long>(exact));
    std::printf("  Eq. 2 prediction          = %.0f\n", predicted);
    all_good &= run.ok && residual < 1e-12 && run.tile_messages == exact;
  }

  std::printf("\n%s\n", all_good ? "ALL CHECKS PASSED" : "CHECKS FAILED");
  return all_good ? 0 : 1;
}
