# Empty dependencies file for anyblock.
# This may be replaced when dependencies are built.
