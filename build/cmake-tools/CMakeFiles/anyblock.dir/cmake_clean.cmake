file(REMOVE_RECURSE
  "../tools/anyblock"
  "../tools/anyblock.pdb"
  "CMakeFiles/anyblock.dir/anyblock_cli.cpp.o"
  "CMakeFiles/anyblock.dir/anyblock_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anyblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
