file(REMOVE_RECURSE
  "../examples/stf_runtime"
  "../examples/stf_runtime.pdb"
  "CMakeFiles/stf_runtime.dir/stf_runtime.cpp.o"
  "CMakeFiles/stf_runtime.dir/stf_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stf_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
