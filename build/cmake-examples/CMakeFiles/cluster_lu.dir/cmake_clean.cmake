file(REMOVE_RECURSE
  "../examples/cluster_lu"
  "../examples/cluster_lu.pdb"
  "CMakeFiles/cluster_lu.dir/cluster_lu.cpp.o"
  "CMakeFiles/cluster_lu.dir/cluster_lu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
