# Empty dependencies file for cluster_lu.
# This may be replaced when dependencies are built.
