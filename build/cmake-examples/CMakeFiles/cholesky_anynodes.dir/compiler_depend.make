# Empty compiler generated dependencies file for cholesky_anynodes.
# This may be replaced when dependencies are built.
