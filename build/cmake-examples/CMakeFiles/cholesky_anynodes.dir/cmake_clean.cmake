file(REMOVE_RECURSE
  "../examples/cholesky_anynodes"
  "../examples/cholesky_anynodes.pdb"
  "CMakeFiles/cholesky_anynodes.dir/cholesky_anynodes.cpp.o"
  "CMakeFiles/cholesky_anynodes.dir/cholesky_anynodes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cholesky_anynodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
