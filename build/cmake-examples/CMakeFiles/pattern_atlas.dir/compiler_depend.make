# Empty compiler generated dependencies file for pattern_atlas.
# This may be replaced when dependencies are built.
