file(REMOVE_RECURSE
  "../examples/pattern_atlas"
  "../examples/pattern_atlas.pdb"
  "CMakeFiles/pattern_atlas.dir/pattern_atlas.cpp.o"
  "CMakeFiles/pattern_atlas.dir/pattern_atlas.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
