file(REMOVE_RECURSE
  "../examples/verify_numerics"
  "../examples/verify_numerics.pdb"
  "CMakeFiles/verify_numerics.dir/verify_numerics.cpp.o"
  "CMakeFiles/verify_numerics.dir/verify_numerics.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verify_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
