# Empty dependencies file for verify_numerics.
# This may be replaced when dependencies are built.
