# Empty compiler generated dependencies file for dist_tests.
# This may be replaced when dependencies are built.
