
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dist/dist_factorization_test.cpp" "tests/CMakeFiles/dist_tests.dir/dist/dist_factorization_test.cpp.o" "gcc" "tests/CMakeFiles/dist_tests.dir/dist/dist_factorization_test.cpp.o.d"
  "/root/repo/tests/dist/dist_gemm_test.cpp" "tests/CMakeFiles/dist_tests.dir/dist/dist_gemm_test.cpp.o" "gcc" "tests/CMakeFiles/dist_tests.dir/dist/dist_gemm_test.cpp.o.d"
  "/root/repo/tests/dist/dist_solve_test.cpp" "tests/CMakeFiles/dist_tests.dir/dist/dist_solve_test.cpp.o" "gcc" "tests/CMakeFiles/dist_tests.dir/dist/dist_solve_test.cpp.o.d"
  "/root/repo/tests/dist/dist_syrk_test.cpp" "tests/CMakeFiles/dist_tests.dir/dist/dist_syrk_test.cpp.o" "gcc" "tests/CMakeFiles/dist_tests.dir/dist/dist_syrk_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anyblock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/anyblock_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anyblock_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anyblock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/anyblock_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/anyblock_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/anyblock_vmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
