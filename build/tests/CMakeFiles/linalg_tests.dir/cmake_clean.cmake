file(REMOVE_RECURSE
  "CMakeFiles/linalg_tests.dir/linalg/dense_matrix_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/dense_matrix_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/factorizations_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/factorizations_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/kernels_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/kernels_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/solve_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/solve_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/syrk_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/syrk_test.cpp.o.d"
  "CMakeFiles/linalg_tests.dir/linalg/tiled_matrix_test.cpp.o"
  "CMakeFiles/linalg_tests.dir/linalg/tiled_matrix_test.cpp.o.d"
  "linalg_tests"
  "linalg_tests.pdb"
  "linalg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
