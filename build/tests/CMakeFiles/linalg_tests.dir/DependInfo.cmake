
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linalg/dense_matrix_test.cpp" "tests/CMakeFiles/linalg_tests.dir/linalg/dense_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_tests.dir/linalg/dense_matrix_test.cpp.o.d"
  "/root/repo/tests/linalg/factorizations_test.cpp" "tests/CMakeFiles/linalg_tests.dir/linalg/factorizations_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_tests.dir/linalg/factorizations_test.cpp.o.d"
  "/root/repo/tests/linalg/kernels_test.cpp" "tests/CMakeFiles/linalg_tests.dir/linalg/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_tests.dir/linalg/kernels_test.cpp.o.d"
  "/root/repo/tests/linalg/solve_test.cpp" "tests/CMakeFiles/linalg_tests.dir/linalg/solve_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_tests.dir/linalg/solve_test.cpp.o.d"
  "/root/repo/tests/linalg/syrk_test.cpp" "tests/CMakeFiles/linalg_tests.dir/linalg/syrk_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_tests.dir/linalg/syrk_test.cpp.o.d"
  "/root/repo/tests/linalg/tiled_matrix_test.cpp" "tests/CMakeFiles/linalg_tests.dir/linalg/tiled_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/linalg_tests.dir/linalg/tiled_matrix_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anyblock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/anyblock_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anyblock_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anyblock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/anyblock_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/anyblock_vmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
