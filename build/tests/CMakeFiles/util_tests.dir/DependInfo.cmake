
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/args_test.cpp" "tests/CMakeFiles/util_tests.dir/util/args_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/args_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/util_tests.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/log_test.cpp" "tests/CMakeFiles/util_tests.dir/util/log_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/log_test.cpp.o.d"
  "/root/repo/tests/util/math_test.cpp" "tests/CMakeFiles/util_tests.dir/util/math_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/math_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_tests.dir/util/rng_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anyblock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/anyblock_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anyblock_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anyblock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/anyblock_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/anyblock_vmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
