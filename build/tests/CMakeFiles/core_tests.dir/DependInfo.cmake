
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/analysis_test.cpp" "tests/CMakeFiles/core_tests.dir/core/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/analysis_test.cpp.o.d"
  "/root/repo/tests/core/atlas_artifact_test.cpp" "tests/CMakeFiles/core_tests.dir/core/atlas_artifact_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/atlas_artifact_test.cpp.o.d"
  "/root/repo/tests/core/block_cyclic_test.cpp" "tests/CMakeFiles/core_tests.dir/core/block_cyclic_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/block_cyclic_test.cpp.o.d"
  "/root/repo/tests/core/bounds_test.cpp" "tests/CMakeFiles/core_tests.dir/core/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/bounds_test.cpp.o.d"
  "/root/repo/tests/core/cost_crosscheck_test.cpp" "tests/CMakeFiles/core_tests.dir/core/cost_crosscheck_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/cost_crosscheck_test.cpp.o.d"
  "/root/repo/tests/core/cost_test.cpp" "tests/CMakeFiles/core_tests.dir/core/cost_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/cost_test.cpp.o.d"
  "/root/repo/tests/core/distribution_test.cpp" "tests/CMakeFiles/core_tests.dir/core/distribution_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/distribution_test.cpp.o.d"
  "/root/repo/tests/core/g2dbc_test.cpp" "tests/CMakeFiles/core_tests.dir/core/g2dbc_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/g2dbc_test.cpp.o.d"
  "/root/repo/tests/core/gcrm_test.cpp" "tests/CMakeFiles/core_tests.dir/core/gcrm_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/gcrm_test.cpp.o.d"
  "/root/repo/tests/core/pattern_io_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pattern_io_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pattern_io_test.cpp.o.d"
  "/root/repo/tests/core/pattern_search_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pattern_search_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pattern_search_test.cpp.o.d"
  "/root/repo/tests/core/pattern_test.cpp" "tests/CMakeFiles/core_tests.dir/core/pattern_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/pattern_test.cpp.o.d"
  "/root/repo/tests/core/recommend_test.cpp" "tests/CMakeFiles/core_tests.dir/core/recommend_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/recommend_test.cpp.o.d"
  "/root/repo/tests/core/sbc_test.cpp" "tests/CMakeFiles/core_tests.dir/core/sbc_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/sbc_test.cpp.o.d"
  "/root/repo/tests/core/theory_properties_test.cpp" "tests/CMakeFiles/core_tests.dir/core/theory_properties_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/theory_properties_test.cpp.o.d"
  "/root/repo/tests/core/transform_test.cpp" "tests/CMakeFiles/core_tests.dir/core/transform_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/transform_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/anyblock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/anyblock_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anyblock_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anyblock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/anyblock_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/anyblock_vmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
