file(REMOVE_RECURSE
  "CMakeFiles/vmpi_tests.dir/vmpi/vmpi_stress_test.cpp.o"
  "CMakeFiles/vmpi_tests.dir/vmpi/vmpi_stress_test.cpp.o.d"
  "CMakeFiles/vmpi_tests.dir/vmpi/vmpi_test.cpp.o"
  "CMakeFiles/vmpi_tests.dir/vmpi/vmpi_test.cpp.o.d"
  "vmpi_tests"
  "vmpi_tests.pdb"
  "vmpi_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmpi_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
