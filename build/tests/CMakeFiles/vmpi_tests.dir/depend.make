# Empty dependencies file for vmpi_tests.
# This may be replaced when dependencies are built.
