file(REMOVE_RECURSE
  "CMakeFiles/comm_tests.dir/comm/multicast_test.cpp.o"
  "CMakeFiles/comm_tests.dir/comm/multicast_test.cpp.o.d"
  "comm_tests"
  "comm_tests.pdb"
  "comm_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
