# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/graph_tests[1]_include.cmake")
include("/root/repo/build/tests/linalg_tests[1]_include.cmake")
include("/root/repo/build/tests/runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/vmpi_tests[1]_include.cmake")
include("/root/repo/build/tests/comm_tests[1]_include.cmake")
include("/root/repo/build/tests/dist_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
