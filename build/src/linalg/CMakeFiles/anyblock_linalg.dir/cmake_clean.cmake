file(REMOVE_RECURSE
  "CMakeFiles/anyblock_linalg.dir/dense_matrix.cpp.o"
  "CMakeFiles/anyblock_linalg.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/anyblock_linalg.dir/factorizations.cpp.o"
  "CMakeFiles/anyblock_linalg.dir/factorizations.cpp.o.d"
  "CMakeFiles/anyblock_linalg.dir/generators.cpp.o"
  "CMakeFiles/anyblock_linalg.dir/generators.cpp.o.d"
  "CMakeFiles/anyblock_linalg.dir/kernels.cpp.o"
  "CMakeFiles/anyblock_linalg.dir/kernels.cpp.o.d"
  "CMakeFiles/anyblock_linalg.dir/solve.cpp.o"
  "CMakeFiles/anyblock_linalg.dir/solve.cpp.o.d"
  "CMakeFiles/anyblock_linalg.dir/tiled_matrix.cpp.o"
  "CMakeFiles/anyblock_linalg.dir/tiled_matrix.cpp.o.d"
  "CMakeFiles/anyblock_linalg.dir/tiled_panel.cpp.o"
  "CMakeFiles/anyblock_linalg.dir/tiled_panel.cpp.o.d"
  "CMakeFiles/anyblock_linalg.dir/verify.cpp.o"
  "CMakeFiles/anyblock_linalg.dir/verify.cpp.o.d"
  "libanyblock_linalg.a"
  "libanyblock_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anyblock_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
