# Empty compiler generated dependencies file for anyblock_linalg.
# This may be replaced when dependencies are built.
