file(REMOVE_RECURSE
  "libanyblock_linalg.a"
)
