
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/dense_matrix.cpp" "src/linalg/CMakeFiles/anyblock_linalg.dir/dense_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/anyblock_linalg.dir/dense_matrix.cpp.o.d"
  "/root/repo/src/linalg/factorizations.cpp" "src/linalg/CMakeFiles/anyblock_linalg.dir/factorizations.cpp.o" "gcc" "src/linalg/CMakeFiles/anyblock_linalg.dir/factorizations.cpp.o.d"
  "/root/repo/src/linalg/generators.cpp" "src/linalg/CMakeFiles/anyblock_linalg.dir/generators.cpp.o" "gcc" "src/linalg/CMakeFiles/anyblock_linalg.dir/generators.cpp.o.d"
  "/root/repo/src/linalg/kernels.cpp" "src/linalg/CMakeFiles/anyblock_linalg.dir/kernels.cpp.o" "gcc" "src/linalg/CMakeFiles/anyblock_linalg.dir/kernels.cpp.o.d"
  "/root/repo/src/linalg/solve.cpp" "src/linalg/CMakeFiles/anyblock_linalg.dir/solve.cpp.o" "gcc" "src/linalg/CMakeFiles/anyblock_linalg.dir/solve.cpp.o.d"
  "/root/repo/src/linalg/tiled_matrix.cpp" "src/linalg/CMakeFiles/anyblock_linalg.dir/tiled_matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/anyblock_linalg.dir/tiled_matrix.cpp.o.d"
  "/root/repo/src/linalg/tiled_panel.cpp" "src/linalg/CMakeFiles/anyblock_linalg.dir/tiled_panel.cpp.o" "gcc" "src/linalg/CMakeFiles/anyblock_linalg.dir/tiled_panel.cpp.o.d"
  "/root/repo/src/linalg/verify.cpp" "src/linalg/CMakeFiles/anyblock_linalg.dir/verify.cpp.o" "gcc" "src/linalg/CMakeFiles/anyblock_linalg.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anyblock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
