file(REMOVE_RECURSE
  "CMakeFiles/anyblock_comm.dir/config.cpp.o"
  "CMakeFiles/anyblock_comm.dir/config.cpp.o.d"
  "CMakeFiles/anyblock_comm.dir/multicast.cpp.o"
  "CMakeFiles/anyblock_comm.dir/multicast.cpp.o.d"
  "libanyblock_comm.a"
  "libanyblock_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anyblock_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
