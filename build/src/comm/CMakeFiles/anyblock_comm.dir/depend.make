# Empty dependencies file for anyblock_comm.
# This may be replaced when dependencies are built.
