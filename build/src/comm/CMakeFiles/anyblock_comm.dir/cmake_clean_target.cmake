file(REMOVE_RECURSE
  "libanyblock_comm.a"
)
