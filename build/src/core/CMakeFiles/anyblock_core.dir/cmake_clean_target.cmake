file(REMOVE_RECURSE
  "libanyblock_core.a"
)
