file(REMOVE_RECURSE
  "CMakeFiles/anyblock_core.dir/analysis.cpp.o"
  "CMakeFiles/anyblock_core.dir/analysis.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/block_cyclic.cpp.o"
  "CMakeFiles/anyblock_core.dir/block_cyclic.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/bounds.cpp.o"
  "CMakeFiles/anyblock_core.dir/bounds.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/cost.cpp.o"
  "CMakeFiles/anyblock_core.dir/cost.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/distribution.cpp.o"
  "CMakeFiles/anyblock_core.dir/distribution.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/g2dbc.cpp.o"
  "CMakeFiles/anyblock_core.dir/g2dbc.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/gcrm.cpp.o"
  "CMakeFiles/anyblock_core.dir/gcrm.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/pattern.cpp.o"
  "CMakeFiles/anyblock_core.dir/pattern.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/pattern_io.cpp.o"
  "CMakeFiles/anyblock_core.dir/pattern_io.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/pattern_search.cpp.o"
  "CMakeFiles/anyblock_core.dir/pattern_search.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/recommend.cpp.o"
  "CMakeFiles/anyblock_core.dir/recommend.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/sbc.cpp.o"
  "CMakeFiles/anyblock_core.dir/sbc.cpp.o.d"
  "CMakeFiles/anyblock_core.dir/transform.cpp.o"
  "CMakeFiles/anyblock_core.dir/transform.cpp.o.d"
  "libanyblock_core.a"
  "libanyblock_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anyblock_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
