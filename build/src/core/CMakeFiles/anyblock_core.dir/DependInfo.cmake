
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/anyblock_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/block_cyclic.cpp" "src/core/CMakeFiles/anyblock_core.dir/block_cyclic.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/block_cyclic.cpp.o.d"
  "/root/repo/src/core/bounds.cpp" "src/core/CMakeFiles/anyblock_core.dir/bounds.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/bounds.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/core/CMakeFiles/anyblock_core.dir/cost.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/cost.cpp.o.d"
  "/root/repo/src/core/distribution.cpp" "src/core/CMakeFiles/anyblock_core.dir/distribution.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/distribution.cpp.o.d"
  "/root/repo/src/core/g2dbc.cpp" "src/core/CMakeFiles/anyblock_core.dir/g2dbc.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/g2dbc.cpp.o.d"
  "/root/repo/src/core/gcrm.cpp" "src/core/CMakeFiles/anyblock_core.dir/gcrm.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/gcrm.cpp.o.d"
  "/root/repo/src/core/pattern.cpp" "src/core/CMakeFiles/anyblock_core.dir/pattern.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/pattern.cpp.o.d"
  "/root/repo/src/core/pattern_io.cpp" "src/core/CMakeFiles/anyblock_core.dir/pattern_io.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/pattern_io.cpp.o.d"
  "/root/repo/src/core/pattern_search.cpp" "src/core/CMakeFiles/anyblock_core.dir/pattern_search.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/pattern_search.cpp.o.d"
  "/root/repo/src/core/recommend.cpp" "src/core/CMakeFiles/anyblock_core.dir/recommend.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/recommend.cpp.o.d"
  "/root/repo/src/core/sbc.cpp" "src/core/CMakeFiles/anyblock_core.dir/sbc.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/sbc.cpp.o.d"
  "/root/repo/src/core/transform.cpp" "src/core/CMakeFiles/anyblock_core.dir/transform.cpp.o" "gcc" "src/core/CMakeFiles/anyblock_core.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anyblock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anyblock_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/anyblock_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/anyblock_vmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
