# Empty dependencies file for anyblock_core.
# This may be replaced when dependencies are built.
