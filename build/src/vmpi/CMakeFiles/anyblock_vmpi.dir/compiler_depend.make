# Empty compiler generated dependencies file for anyblock_vmpi.
# This may be replaced when dependencies are built.
