file(REMOVE_RECURSE
  "libanyblock_vmpi.a"
)
