file(REMOVE_RECURSE
  "CMakeFiles/anyblock_vmpi.dir/vmpi.cpp.o"
  "CMakeFiles/anyblock_vmpi.dir/vmpi.cpp.o.d"
  "libanyblock_vmpi.a"
  "libanyblock_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anyblock_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
