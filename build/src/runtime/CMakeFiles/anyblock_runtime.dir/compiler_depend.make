# Empty compiler generated dependencies file for anyblock_runtime.
# This may be replaced when dependencies are built.
