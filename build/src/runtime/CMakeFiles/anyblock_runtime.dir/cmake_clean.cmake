file(REMOVE_RECURSE
  "CMakeFiles/anyblock_runtime.dir/stf_factorizations.cpp.o"
  "CMakeFiles/anyblock_runtime.dir/stf_factorizations.cpp.o.d"
  "CMakeFiles/anyblock_runtime.dir/task_engine.cpp.o"
  "CMakeFiles/anyblock_runtime.dir/task_engine.cpp.o.d"
  "libanyblock_runtime.a"
  "libanyblock_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anyblock_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
