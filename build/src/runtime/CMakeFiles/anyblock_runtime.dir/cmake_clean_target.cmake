file(REMOVE_RECURSE
  "libanyblock_runtime.a"
)
