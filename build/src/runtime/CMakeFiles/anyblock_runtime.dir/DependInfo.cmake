
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/stf_factorizations.cpp" "src/runtime/CMakeFiles/anyblock_runtime.dir/stf_factorizations.cpp.o" "gcc" "src/runtime/CMakeFiles/anyblock_runtime.dir/stf_factorizations.cpp.o.d"
  "/root/repo/src/runtime/task_engine.cpp" "src/runtime/CMakeFiles/anyblock_runtime.dir/task_engine.cpp.o" "gcc" "src/runtime/CMakeFiles/anyblock_runtime.dir/task_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/anyblock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/anyblock_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
