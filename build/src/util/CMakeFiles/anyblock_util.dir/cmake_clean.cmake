file(REMOVE_RECURSE
  "CMakeFiles/anyblock_util.dir/args.cpp.o"
  "CMakeFiles/anyblock_util.dir/args.cpp.o.d"
  "CMakeFiles/anyblock_util.dir/csv.cpp.o"
  "CMakeFiles/anyblock_util.dir/csv.cpp.o.d"
  "CMakeFiles/anyblock_util.dir/log.cpp.o"
  "CMakeFiles/anyblock_util.dir/log.cpp.o.d"
  "CMakeFiles/anyblock_util.dir/math.cpp.o"
  "CMakeFiles/anyblock_util.dir/math.cpp.o.d"
  "CMakeFiles/anyblock_util.dir/rng.cpp.o"
  "CMakeFiles/anyblock_util.dir/rng.cpp.o.d"
  "libanyblock_util.a"
  "libanyblock_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anyblock_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
