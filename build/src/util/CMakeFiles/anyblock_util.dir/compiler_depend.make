# Empty compiler generated dependencies file for anyblock_util.
# This may be replaced when dependencies are built.
