file(REMOVE_RECURSE
  "libanyblock_util.a"
)
