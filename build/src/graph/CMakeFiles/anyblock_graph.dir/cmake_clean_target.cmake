file(REMOVE_RECURSE
  "libanyblock_graph.a"
)
