# Empty compiler generated dependencies file for anyblock_graph.
# This may be replaced when dependencies are built.
