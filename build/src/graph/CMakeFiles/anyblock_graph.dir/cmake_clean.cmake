file(REMOVE_RECURSE
  "CMakeFiles/anyblock_graph.dir/bipartite.cpp.o"
  "CMakeFiles/anyblock_graph.dir/bipartite.cpp.o.d"
  "CMakeFiles/anyblock_graph.dir/hopcroft_karp.cpp.o"
  "CMakeFiles/anyblock_graph.dir/hopcroft_karp.cpp.o.d"
  "libanyblock_graph.a"
  "libanyblock_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anyblock_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
