# Empty compiler generated dependencies file for anyblock_dist.
# This may be replaced when dependencies are built.
