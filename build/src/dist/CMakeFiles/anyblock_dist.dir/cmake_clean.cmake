file(REMOVE_RECURSE
  "CMakeFiles/anyblock_dist.dir/dist_factorization.cpp.o"
  "CMakeFiles/anyblock_dist.dir/dist_factorization.cpp.o.d"
  "CMakeFiles/anyblock_dist.dir/dist_solve.cpp.o"
  "CMakeFiles/anyblock_dist.dir/dist_solve.cpp.o.d"
  "libanyblock_dist.a"
  "libanyblock_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anyblock_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
