file(REMOVE_RECURSE
  "libanyblock_dist.a"
)
