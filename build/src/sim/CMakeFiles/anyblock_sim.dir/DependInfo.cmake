
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/anyblock_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/anyblock_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/anyblock_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/anyblock_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/anyblock_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/anyblock_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/anyblock_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anyblock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/anyblock_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/anyblock_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anyblock_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anyblock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
