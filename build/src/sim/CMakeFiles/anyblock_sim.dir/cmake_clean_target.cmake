file(REMOVE_RECURSE
  "libanyblock_sim.a"
)
