file(REMOVE_RECURSE
  "CMakeFiles/anyblock_sim.dir/engine.cpp.o"
  "CMakeFiles/anyblock_sim.dir/engine.cpp.o.d"
  "CMakeFiles/anyblock_sim.dir/machine.cpp.o"
  "CMakeFiles/anyblock_sim.dir/machine.cpp.o.d"
  "CMakeFiles/anyblock_sim.dir/workload.cpp.o"
  "CMakeFiles/anyblock_sim.dir/workload.cpp.o.d"
  "libanyblock_sim.a"
  "libanyblock_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anyblock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
