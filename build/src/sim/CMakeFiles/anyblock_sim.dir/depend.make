# Empty dependencies file for anyblock_sim.
# This may be replaced when dependencies are built.
