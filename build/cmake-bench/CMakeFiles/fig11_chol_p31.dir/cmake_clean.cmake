file(REMOVE_RECURSE
  "../bench/fig11_chol_p31"
  "../bench/fig11_chol_p31.pdb"
  "CMakeFiles/fig11_chol_p31.dir/fig11_chol_p31.cpp.o"
  "CMakeFiles/fig11_chol_p31.dir/fig11_chol_p31.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_chol_p31.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
