# Empty compiler generated dependencies file for fig11_chol_p31.
# This may be replaced when dependencies are built.
