file(REMOVE_RECURSE
  "../bench/syrk_comparison"
  "../bench/syrk_comparison.pdb"
  "CMakeFiles/syrk_comparison.dir/syrk_comparison.cpp.o"
  "CMakeFiles/syrk_comparison.dir/syrk_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syrk_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
