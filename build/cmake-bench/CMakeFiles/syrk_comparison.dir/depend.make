# Empty dependencies file for syrk_comparison.
# This may be replaced when dependencies are built.
