# Empty compiler generated dependencies file for fig07b_scaling_chol.
# This may be replaced when dependencies are built.
