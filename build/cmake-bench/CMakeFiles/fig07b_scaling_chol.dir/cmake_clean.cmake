file(REMOVE_RECURSE
  "../bench/fig07b_scaling_chol"
  "../bench/fig07b_scaling_chol.pdb"
  "CMakeFiles/fig07b_scaling_chol.dir/fig07b_scaling_chol.cpp.o"
  "CMakeFiles/fig07b_scaling_chol.dir/fig07b_scaling_chol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07b_scaling_chol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
