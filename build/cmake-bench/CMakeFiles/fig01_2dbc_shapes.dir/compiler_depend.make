# Empty compiler generated dependencies file for fig01_2dbc_shapes.
# This may be replaced when dependencies are built.
