file(REMOVE_RECURSE
  "../bench/fig01_2dbc_shapes"
  "../bench/fig01_2dbc_shapes.pdb"
  "CMakeFiles/fig01_2dbc_shapes.dir/fig01_2dbc_shapes.cpp.o"
  "CMakeFiles/fig01_2dbc_shapes.dir/fig01_2dbc_shapes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_2dbc_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
