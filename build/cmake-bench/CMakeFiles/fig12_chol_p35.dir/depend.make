# Empty dependencies file for fig12_chol_p35.
# This may be replaced when dependencies are built.
