file(REMOVE_RECURSE
  "../bench/fig12_chol_p35"
  "../bench/fig12_chol_p35.pdb"
  "CMakeFiles/fig12_chol_p35.dir/fig12_chol_p35.cpp.o"
  "CMakeFiles/fig12_chol_p35.dir/fig12_chol_p35.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_chol_p35.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
