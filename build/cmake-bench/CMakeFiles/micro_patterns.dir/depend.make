# Empty dependencies file for micro_patterns.
# This may be replaced when dependencies are built.
