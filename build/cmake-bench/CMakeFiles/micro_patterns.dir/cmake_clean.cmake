file(REMOVE_RECURSE
  "../bench/micro_patterns"
  "../bench/micro_patterns.pdb"
  "CMakeFiles/micro_patterns.dir/micro_patterns.cpp.o"
  "CMakeFiles/micro_patterns.dir/micro_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
