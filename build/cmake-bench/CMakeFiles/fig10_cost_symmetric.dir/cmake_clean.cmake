file(REMOVE_RECURSE
  "../bench/fig10_cost_symmetric"
  "../bench/fig10_cost_symmetric.pdb"
  "CMakeFiles/fig10_cost_symmetric.dir/fig10_cost_symmetric.cpp.o"
  "CMakeFiles/fig10_cost_symmetric.dir/fig10_cost_symmetric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cost_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
