# Empty dependencies file for fig09_gcrm_size.
# This may be replaced when dependencies are built.
