# Empty dependencies file for table1b_chol_patterns.
# This may be replaced when dependencies are built.
