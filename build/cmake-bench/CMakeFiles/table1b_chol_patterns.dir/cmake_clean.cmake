file(REMOVE_RECURSE
  "../bench/table1b_chol_patterns"
  "../bench/table1b_chol_patterns.pdb"
  "CMakeFiles/table1b_chol_patterns.dir/table1b_chol_patterns.cpp.o"
  "CMakeFiles/table1b_chol_patterns.dir/table1b_chol_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1b_chol_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
