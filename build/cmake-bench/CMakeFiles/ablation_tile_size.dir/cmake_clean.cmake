file(REMOVE_RECURSE
  "../bench/ablation_tile_size"
  "../bench/ablation_tile_size.pdb"
  "CMakeFiles/ablation_tile_size.dir/ablation_tile_size.cpp.o"
  "CMakeFiles/ablation_tile_size.dir/ablation_tile_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tile_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
