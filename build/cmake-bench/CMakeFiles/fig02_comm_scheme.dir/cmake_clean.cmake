file(REMOVE_RECURSE
  "../bench/fig02_comm_scheme"
  "../bench/fig02_comm_scheme.pdb"
  "CMakeFiles/fig02_comm_scheme.dir/fig02_comm_scheme.cpp.o"
  "CMakeFiles/fig02_comm_scheme.dir/fig02_comm_scheme.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_comm_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
