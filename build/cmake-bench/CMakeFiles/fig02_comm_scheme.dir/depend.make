# Empty dependencies file for fig02_comm_scheme.
# This may be replaced when dependencies are built.
