file(REMOVE_RECURSE
  "../bench/comm_profile"
  "../bench/comm_profile.pdb"
  "CMakeFiles/comm_profile.dir/comm_profile.cpp.o"
  "CMakeFiles/comm_profile.dir/comm_profile.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
