# Empty dependencies file for comm_profile.
# This may be replaced when dependencies are built.
