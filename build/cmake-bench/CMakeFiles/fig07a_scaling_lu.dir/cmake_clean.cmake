file(REMOVE_RECURSE
  "../bench/fig07a_scaling_lu"
  "../bench/fig07a_scaling_lu.pdb"
  "CMakeFiles/fig07a_scaling_lu.dir/fig07a_scaling_lu.cpp.o"
  "CMakeFiles/fig07a_scaling_lu.dir/fig07a_scaling_lu.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07a_scaling_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
