# Empty compiler generated dependencies file for fig07a_scaling_lu.
# This may be replaced when dependencies are built.
