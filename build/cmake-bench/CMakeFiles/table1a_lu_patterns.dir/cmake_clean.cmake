file(REMOVE_RECURSE
  "../bench/table1a_lu_patterns"
  "../bench/table1a_lu_patterns.pdb"
  "CMakeFiles/table1a_lu_patterns.dir/table1a_lu_patterns.cpp.o"
  "CMakeFiles/table1a_lu_patterns.dir/table1a_lu_patterns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1a_lu_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
