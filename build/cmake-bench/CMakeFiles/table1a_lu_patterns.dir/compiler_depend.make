# Empty compiler generated dependencies file for table1a_lu_patterns.
# This may be replaced when dependencies are built.
