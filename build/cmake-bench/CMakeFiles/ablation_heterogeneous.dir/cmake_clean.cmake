file(REMOVE_RECURSE
  "../bench/ablation_heterogeneous"
  "../bench/ablation_heterogeneous.pdb"
  "CMakeFiles/ablation_heterogeneous.dir/ablation_heterogeneous.cpp.o"
  "CMakeFiles/ablation_heterogeneous.dir/ablation_heterogeneous.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
