file(REMOVE_RECURSE
  "../bench/fig04_cost_g2dbc"
  "../bench/fig04_cost_g2dbc.pdb"
  "CMakeFiles/fig04_cost_g2dbc.dir/fig04_cost_g2dbc.cpp.o"
  "CMakeFiles/fig04_cost_g2dbc.dir/fig04_cost_g2dbc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_cost_g2dbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
