# Empty dependencies file for fig04_cost_g2dbc.
# This may be replaced when dependencies are built.
