file(REMOVE_RECURSE
  "../bench/fig03_g2dbc_example"
  "../bench/fig03_g2dbc_example.pdb"
  "CMakeFiles/fig03_g2dbc_example.dir/fig03_g2dbc_example.cpp.o"
  "CMakeFiles/fig03_g2dbc_example.dir/fig03_g2dbc_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_g2dbc_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
