# Empty dependencies file for fig03_g2dbc_example.
# This may be replaced when dependencies are built.
