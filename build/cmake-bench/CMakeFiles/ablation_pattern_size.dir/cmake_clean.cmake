file(REMOVE_RECURSE
  "../bench/ablation_pattern_size"
  "../bench/ablation_pattern_size.pdb"
  "CMakeFiles/ablation_pattern_size.dir/ablation_pattern_size.cpp.o"
  "CMakeFiles/ablation_pattern_size.dir/ablation_pattern_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pattern_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
