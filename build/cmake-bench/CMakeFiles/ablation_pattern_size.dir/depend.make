# Empty dependencies file for ablation_pattern_size.
# This may be replaced when dependencies are built.
