file(REMOVE_RECURSE
  "../bench/fig06_lu_p39"
  "../bench/fig06_lu_p39.pdb"
  "CMakeFiles/fig06_lu_p39.dir/fig06_lu_p39.cpp.o"
  "CMakeFiles/fig06_lu_p39.dir/fig06_lu_p39.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_lu_p39.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
