# Empty dependencies file for fig06_lu_p39.
# This may be replaced when dependencies are built.
