
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_collectives.cpp" "cmake-bench/CMakeFiles/ablation_collectives.dir/ablation_collectives.cpp.o" "gcc" "cmake-bench/CMakeFiles/ablation_collectives.dir/ablation_collectives.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/cmake-bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/anyblock_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/anyblock_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/anyblock_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/anyblock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anyblock_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/anyblock_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/anyblock_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/anyblock_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/anyblock_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
