file(REMOVE_RECURSE
  "../bench/fig05_lu_p23"
  "../bench/fig05_lu_p23.pdb"
  "CMakeFiles/fig05_lu_p23.dir/fig05_lu_p23.cpp.o"
  "CMakeFiles/fig05_lu_p23.dir/fig05_lu_p23.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_lu_p23.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
