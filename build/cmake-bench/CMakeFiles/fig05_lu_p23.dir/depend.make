# Empty dependencies file for fig05_lu_p23.
# This may be replaced when dependencies are built.
