file(REMOVE_RECURSE
  "../bench/fig08_gcrm_phase1"
  "../bench/fig08_gcrm_phase1.pdb"
  "CMakeFiles/fig08_gcrm_phase1.dir/fig08_gcrm_phase1.cpp.o"
  "CMakeFiles/fig08_gcrm_phase1.dir/fig08_gcrm_phase1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_gcrm_phase1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
