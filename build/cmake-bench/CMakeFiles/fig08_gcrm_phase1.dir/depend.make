# Empty dependencies file for fig08_gcrm_phase1.
# This may be replaced when dependencies are built.
