#include "graph/hopcroft_karp.hpp"

#include <limits>
#include <vector>

namespace anyblock::graph {
namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

class HopcroftKarpSolver {
 public:
  HopcroftKarpSolver(const BipartiteGraph& graph, Matching m)
      : graph_(graph),
        matching_(std::move(m)),
        dist_(graph.left_count()),
        queue_(graph.left_count()) {}

  Matching solve() {
    while (bfs_layers()) {
      for (std::size_t u = 0; u < graph_.left_count(); ++u) {
        if (matching_.match_left[u] == Matching::kUnmatched && dfs_augment(u))
          ++matching_.size;
      }
    }
    return std::move(matching_);
  }

 private:
  /// Builds layered distances from all free left vertices.  Returns true if
  /// some augmenting path exists.
  bool bfs_layers() {
    std::size_t head = 0;
    std::size_t tail = 0;
    for (std::size_t u = 0; u < graph_.left_count(); ++u) {
      if (matching_.match_left[u] == Matching::kUnmatched) {
        dist_[u] = 0;
        queue_[tail++] = static_cast<std::uint32_t>(u);
      } else {
        dist_[u] = kInf;
      }
    }
    bool found_free_right = false;
    while (head < tail) {
      const std::uint32_t u = queue_[head++];
      for (const std::uint32_t v : graph_.neighbors(u)) {
        const std::int32_t next = matching_.match_right[v];
        if (next == Matching::kUnmatched) {
          found_free_right = true;
        } else if (dist_[static_cast<std::size_t>(next)] == kInf) {
          dist_[static_cast<std::size_t>(next)] = dist_[u] + 1;
          queue_[tail++] = static_cast<std::uint32_t>(next);
        }
      }
    }
    return found_free_right;
  }

  /// Finds one augmenting path from `u` along the BFS layers.
  bool dfs_augment(std::size_t u) {
    for (const std::uint32_t v : graph_.neighbors(u)) {
      const std::int32_t next = matching_.match_right[v];
      const bool advance =
          next == Matching::kUnmatched ||
          (dist_[static_cast<std::size_t>(next)] == dist_[u] + 1 &&
           dfs_augment(static_cast<std::size_t>(next)));
      if (advance) {
        matching_.match_left[u] = static_cast<std::int32_t>(v);
        matching_.match_right[v] = static_cast<std::int32_t>(u);
        return true;
      }
    }
    dist_[u] = kInf;  // dead end: prune this vertex for the current phase
    return false;
  }

  const BipartiteGraph& graph_;
  Matching matching_;
  std::vector<std::uint32_t> dist_;
  std::vector<std::uint32_t> queue_;
};

}  // namespace

Matching hopcroft_karp(const BipartiteGraph& graph) {
  return hopcroft_karp(graph, greedy_matching(graph));
}

Matching hopcroft_karp(const BipartiteGraph& graph, Matching initial) {
  return HopcroftKarpSolver(graph, std::move(initial)).solve();
}

}  // namespace anyblock::graph
