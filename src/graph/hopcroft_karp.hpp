// Hopcroft-Karp maximum bipartite matching, O(E * sqrt(V)).
//
// GCR&M (paper, Algorithm 1, lines 11-12) relies on two maximum-matching
// computations between pattern cells and node duplicates; pattern sizes go
// up to r = 6*sqrt(P) so the graphs stay small (thousands of vertices), but
// the search driver runs the algorithm tens of thousands of times (r sweep
// x 100 seeds x P sweep), which makes the sqrt(V) factor worthwhile.
#pragma once

#include "graph/bipartite.hpp"

namespace anyblock::graph {

/// Computes a maximum matching of `graph`.
Matching hopcroft_karp(const BipartiteGraph& graph);

/// Extends an existing valid matching to maximum cardinality (warm start).
Matching hopcroft_karp(const BipartiteGraph& graph, Matching initial);

}  // namespace anyblock::graph
