// Bipartite graph container used by the GCR&M matching phases.
//
// Left vertices are pattern cells, right vertices are node duplicates
// (paper, Section V-A, second phase).  The container stores adjacency as a
// CSR-like structure built incrementally; edges can be added in any order
// before the first matching call.
#pragma once

#include <cstdint>
#include <vector>

namespace anyblock::graph {

class BipartiteGraph {
 public:
  /// Creates a graph with `left` and `right` vertices and no edges.
  BipartiteGraph(std::size_t left, std::size_t right);

  void add_edge(std::size_t left_vertex, std::size_t right_vertex);

  [[nodiscard]] std::size_t left_count() const { return left_adj_.size(); }
  [[nodiscard]] std::size_t right_count() const { return right_count_; }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(
      std::size_t left_vertex) const {
    return left_adj_[left_vertex];
  }

 private:
  std::vector<std::vector<std::uint32_t>> left_adj_;
  std::size_t right_count_;
  std::size_t edge_count_ = 0;
};

/// Result of a maximum-matching computation.
struct Matching {
  /// match_left[u] = matched right vertex, or kUnmatched.
  std::vector<std::int32_t> match_left;
  /// match_right[v] = matched left vertex, or kUnmatched.
  std::vector<std::int32_t> match_right;
  std::size_t size = 0;

  static constexpr std::int32_t kUnmatched = -1;
};

/// Simple greedy matching (first free neighbor); used as a baseline and to
/// warm-start Hopcroft-Karp.
Matching greedy_matching(const BipartiteGraph& graph);

/// Verifies that `m` is a valid matching of `graph` (consistency of the two
/// arrays, every matched pair is an edge).  Used by tests.
bool is_valid_matching(const BipartiteGraph& graph, const Matching& m);

}  // namespace anyblock::graph
