#include "graph/bipartite.hpp"

namespace anyblock::graph {

BipartiteGraph::BipartiteGraph(std::size_t left, std::size_t right)
    : left_adj_(left), right_count_(right) {}

void BipartiteGraph::add_edge(std::size_t left_vertex,
                              std::size_t right_vertex) {
  left_adj_[left_vertex].push_back(static_cast<std::uint32_t>(right_vertex));
  ++edge_count_;
}

Matching greedy_matching(const BipartiteGraph& graph) {
  Matching m;
  m.match_left.assign(graph.left_count(), Matching::kUnmatched);
  m.match_right.assign(graph.right_count(), Matching::kUnmatched);
  for (std::size_t u = 0; u < graph.left_count(); ++u) {
    for (const std::uint32_t v : graph.neighbors(u)) {
      if (m.match_right[v] == Matching::kUnmatched) {
        m.match_left[u] = static_cast<std::int32_t>(v);
        m.match_right[v] = static_cast<std::int32_t>(u);
        ++m.size;
        break;
      }
    }
  }
  return m;
}

bool is_valid_matching(const BipartiteGraph& graph, const Matching& m) {
  if (m.match_left.size() != graph.left_count()) return false;
  if (m.match_right.size() != graph.right_count()) return false;
  std::size_t counted = 0;
  for (std::size_t u = 0; u < graph.left_count(); ++u) {
    const std::int32_t v = m.match_left[u];
    if (v == Matching::kUnmatched) continue;
    if (v < 0 || static_cast<std::size_t>(v) >= graph.right_count())
      return false;
    if (m.match_right[static_cast<std::size_t>(v)] !=
        static_cast<std::int32_t>(u))
      return false;
    bool edge_exists = false;
    for (const std::uint32_t w : graph.neighbors(u)) {
      if (w == static_cast<std::uint32_t>(v)) {
        edge_exists = true;
        break;
      }
    }
    if (!edge_exists) return false;
    ++counted;
  }
  for (std::size_t v = 0; v < graph.right_count(); ++v) {
    const std::int32_t u = m.match_right[v];
    if (u == Matching::kUnmatched) continue;
    if (u < 0 || static_cast<std::size_t>(u) >= graph.left_count())
      return false;
    if (m.match_left[static_cast<std::size_t>(u)] !=
        static_cast<std::int32_t>(v))
      return false;
  }
  return counted == m.size;
}

}  // namespace anyblock::graph
