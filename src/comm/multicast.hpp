// Tile multicast over vmpi: one producer, an ordered group of consumers.
//
// Both sides of a multicast are driven by the *same* deterministic group
// description — the root rank plus the ordered list of distinct destination
// ranks (root excluded).  In the owner-computes factorizations every rank
// can recompute that list from the distribution alone, so no control
// messages are needed: a receiver derives its position in the group, learns
// which rank forwards to it, and which ranks it must forward to.
//
// Algorithms (selected by CollectiveConfig):
//   kEagerP2P       root multisends to every destination (shared buffer);
//                   receivers take one message from the root.
//   kBinomialTree   positions 0..d with the root at 0 and dests[p-1] at p;
//                   position p receives from p - 2^floor(log2 p) and
//                   forwards to p + s for every power of two s > p still in
//                   range — d messages total, ceil(log2(d+1)) rounds.
//   kPipelinedChain the payload is cut into config.chain_chunks pieces
//                   forwarded along the destination list in order; each
//                   chunk is relayed as soon as it arrives (vmpi's
//                   per-(source, tag) FIFO keeps chunks ordered) —
//                   d * chunks messages, d + chunks - 1 pipeline steps.
//
// Deadlock discipline: forwarding happens inside multicast_recv, so ranks
// that belong to several groups must call multicast_recv in a globally
// consistent order (the dist layer receives published tiles in publication
// order per iteration, which satisfies this).
//
// Delivery guarantees: multicast rides on the vmpi transport, which under an
// active fault::FaultInjector provides sequence-numbered at-least-once
// delivery — dropped hops are retransmitted on receiver timeout with
// exponential backoff, injected duplicates are discarded by sequence number,
// and per-(source, tag) FIFO order is preserved.  Every algorithm above
// therefore completes bit-identically to a fault-free run, and the
// application-level message counts still match the closed forms in
// core::exact_*_messages (retries live only in fault::FaultStats).
#pragma once

#include <cstdint>
#include <vector>

#include "comm/config.hpp"
#include "vmpi/vmpi.hpp"

namespace anyblock::comm {

/// Root side: delivers `data` to every rank in `dests` under `config`.
/// `dests` must be distinct ranks, in the group order every receiver will
/// also compute, and must not contain the calling rank.
void multicast_send(vmpi::RankContext& ctx, const CollectiveConfig& config,
                    std::int64_t tag, const vmpi::Payload& data,
                    const std::vector<int>& dests);

/// Receiver side: blocks until the payload multicast by `root` under `tag`
/// arrives, forwarding onward as the algorithm requires.  The calling rank
/// must appear in `dests`, and (root, dests) must match the sender's call.
vmpi::Payload multicast_recv(vmpi::RankContext& ctx,
                             const CollectiveConfig& config, std::int64_t tag,
                             int root, const std::vector<int>& dests);

}  // namespace anyblock::comm
