#include "comm/multicast.hpp"

#include <algorithm>
#include <stdexcept>

namespace anyblock::comm {

namespace {

using vmpi::Payload;
using vmpi::RankContext;

/// Binomial-tree children of `position` in a group of `m` holders: every
/// position + 2^k with 2^k > position still inside the group.
template <typename Fn>
void for_each_tree_child(std::int64_t position, std::int64_t m, Fn&& fn) {
  for (std::int64_t step = 1; step < m; step *= 2) {
    if (step <= position) continue;
    const std::int64_t child = position + step;
    if (child >= m) break;
    fn(child);
  }
}

/// Binomial-tree parent: strip the highest set bit of the position.
std::int64_t tree_parent(std::int64_t position) {
  std::int64_t bit = 1;
  while (bit * 2 <= position) bit *= 2;
  return position - bit;
}

/// 1-based position of the calling rank in the destination list (the root
/// holds position 0).
std::int64_t position_of(int self, const std::vector<int>& dests) {
  const auto it = std::find(dests.begin(), dests.end(), self);
  if (it == dests.end())
    throw std::invalid_argument(
        "multicast_recv: calling rank is not in the destination list");
  return (it - dests.begin()) + 1;
}

/// Rank sitting at tree/chain position p (position 0 is the root).
int rank_at(std::int64_t position, int root, const std::vector<int>& dests) {
  if (position == 0) return root;
  return dests[static_cast<std::size_t>(position - 1)];
}

/// Chunk k of an n-double payload covers [k*n/chunks, (k+1)*n/chunks);
/// chunk count is fixed by config, so trailing chunks may be empty when the
/// payload is shorter than the chunk count.
Payload chunk_of(const Payload& data, std::int64_t k, std::int64_t chunks) {
  const auto n = static_cast<std::int64_t>(data.size());
  const std::int64_t begin = k * n / chunks;
  const std::int64_t end = (k + 1) * n / chunks;
  return Payload(data.begin() + begin, data.begin() + end);
}

void check_chunks(const CollectiveConfig& config) {
  if (config.chain_chunks < 1)
    throw std::invalid_argument("chain_chunks must be >= 1");
}

}  // namespace

void multicast_send(RankContext& ctx, const CollectiveConfig& config,
                    std::int64_t tag, const Payload& data,
                    const std::vector<int>& dests) {
  if (dests.empty()) return;
  const auto d = static_cast<std::int64_t>(dests.size());
  switch (config.algorithm) {
    case Algorithm::kEagerP2P:
      ctx.multisend(dests, tag, data);
      return;
    case Algorithm::kBinomialTree:
      for_each_tree_child(0, d + 1, [&](std::int64_t child) {
        ctx.send(rank_at(child, ctx.rank(), dests), tag, data);
      });
      return;
    case Algorithm::kPipelinedChain: {
      check_chunks(config);
      // vmpi delivers equal-(source, tag) messages in send order, so the
      // chunks need no per-chunk tags.
      for (std::int64_t k = 0; k < config.chain_chunks; ++k)
        ctx.send(dests.front(), tag, chunk_of(data, k, config.chain_chunks));
      return;
    }
  }
  throw std::invalid_argument("unknown collective algorithm");
}

Payload multicast_recv(RankContext& ctx, const CollectiveConfig& config,
                       std::int64_t tag, int root,
                       const std::vector<int>& dests) {
  const auto d = static_cast<std::int64_t>(dests.size());
  const std::int64_t position = position_of(ctx.rank(), dests);
  switch (config.algorithm) {
    case Algorithm::kEagerP2P:
      return ctx.recv(root, tag);
    case Algorithm::kBinomialTree: {
      const int parent = rank_at(tree_parent(position), root, dests);
      Payload data = ctx.recv(parent, tag);
      for_each_tree_child(position, d + 1, [&](std::int64_t child) {
        ctx.send(rank_at(child, root, dests), tag, data);
      });
      return data;
    }
    case Algorithm::kPipelinedChain: {
      check_chunks(config);
      const int pred = rank_at(position - 1, root, dests);
      const bool relay = position < d;
      Payload data;
      for (std::int64_t k = 0; k < config.chain_chunks; ++k) {
        Payload piece = ctx.recv(pred, tag);
        if (relay)
          ctx.send(dests[static_cast<std::size_t>(position)], tag, piece);
        data.insert(data.end(), piece.begin(), piece.end());
      }
      return data;
    }
  }
  throw std::invalid_argument("unknown collective algorithm");
}

}  // namespace anyblock::comm
