// Collective configuration shared by every execution layer.
//
// The paper's runtime sends each tile point-to-point to every distinct
// consumer node (Section II-C), so message count equals communication
// volume (Eq. 1/2).  comm generalizes that into a pluggable tile-multicast
// abstraction with three interchangeable algorithms; the same
// CollectiveConfig drives the real vmpi execution (comm/multicast),
// the discrete-event simulator (sim), and the closed-form message-count
// predictions (core/cost), which is what keeps the three layers mutually
// verifiable: measured == simulated == predicted, per algorithm.
//
// This header is dependency-free on purpose: core/cost includes it without
// pulling in the message-passing layer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace anyblock::comm {

enum class Algorithm : std::uint8_t {
  /// The producer sends one point-to-point message per distinct consumer
  /// node — today's Chameleon behavior (paper, Section II-C).
  kEagerP2P,
  /// Receivers forward: the group forms a binomial tree rooted at the
  /// producer, so the critical path shrinks from d to ceil(log2(d + 1))
  /// hops while the total message count stays d.
  kBinomialTree,
  /// The payload is cut into fixed-count chunks forwarded along a chain of
  /// the d consumers; chunk k overlaps with chunk k+1 (a pipelined
  /// store-and-forward ring segment).  d * chunks messages, critical path
  /// d + chunks - 1 chunk-hops.
  kPipelinedChain,
};

struct CollectiveConfig {
  Algorithm algorithm = Algorithm::kEagerP2P;
  /// Chunks a payload is split into under kPipelinedChain (>= 1).  Chunk
  /// count is fixed by config, never by payload size, so the message-count
  /// prediction stays exact even for payloads smaller than the chunk count
  /// (trailing chunks are simply empty).
  std::int64_t chain_chunks = 4;
};

/// Short stable names: "p2p", "tree", "chain".
std::string algorithm_name(Algorithm algorithm);

/// Parses an algorithm name; throws std::invalid_argument on unknown input.
Algorithm parse_algorithm(std::string_view name);

/// Messages needed to multicast one payload from its producer to
/// `receivers` distinct consumer nodes:
///   p2p:   receivers            (one eager send per consumer)
///   tree:  receivers            (one tile per tree edge)
///   chain: receivers * chunks   (every chain link carries every chunk)
std::int64_t multicast_messages(std::int64_t receivers,
                                const CollectiveConfig& config);

/// Longest dependency chain of the multicast, in link-serialized sends:
///   p2p:   receivers (all sends serialize through the producer's NIC)
///   tree:  ceil(log2(receivers + 1))
///   chain: receivers + chunks - 1 (pipelined)
std::int64_t multicast_critical_path(std::int64_t receivers,
                                     const CollectiveConfig& config);

}  // namespace anyblock::comm
