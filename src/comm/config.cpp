#include "comm/config.hpp"

#include <stdexcept>

namespace anyblock::comm {

std::string algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kEagerP2P: return "p2p";
    case Algorithm::kBinomialTree: return "tree";
    case Algorithm::kPipelinedChain: return "chain";
  }
  throw std::invalid_argument("unknown collective algorithm");
}

Algorithm parse_algorithm(std::string_view name) {
  if (name == "p2p" || name == "eager") return Algorithm::kEagerP2P;
  if (name == "tree" || name == "binomial") return Algorithm::kBinomialTree;
  if (name == "chain" || name == "pipeline") return Algorithm::kPipelinedChain;
  throw std::invalid_argument("unknown collective algorithm: " +
                              std::string(name) +
                              " (expected p2p|tree|chain)");
}

std::int64_t multicast_messages(std::int64_t receivers,
                                const CollectiveConfig& config) {
  if (receivers < 0)
    throw std::invalid_argument("multicast_messages: negative receiver count");
  if (receivers == 0) return 0;
  switch (config.algorithm) {
    case Algorithm::kEagerP2P:
    case Algorithm::kBinomialTree: return receivers;
    case Algorithm::kPipelinedChain:
      if (config.chain_chunks < 1)
        throw std::invalid_argument("chain_chunks must be >= 1");
      return receivers * config.chain_chunks;
  }
  throw std::invalid_argument("unknown collective algorithm");
}

std::int64_t multicast_critical_path(std::int64_t receivers,
                                     const CollectiveConfig& config) {
  if (receivers < 0)
    throw std::invalid_argument(
        "multicast_critical_path: negative receiver count");
  if (receivers == 0) return 0;
  switch (config.algorithm) {
    case Algorithm::kEagerP2P: return receivers;
    case Algorithm::kBinomialTree: {
      // ceil(log2(receivers + 1)): rounds of doubling until the whole
      // group (producer + receivers) holds the payload.
      std::int64_t rounds = 0;
      std::int64_t holders = 1;
      while (holders < receivers + 1) {
        holders *= 2;
        ++rounds;
      }
      return rounds;
    }
    case Algorithm::kPipelinedChain:
      if (config.chain_chunks < 1)
        throw std::invalid_argument("chain_chunks must be >= 1");
      return receivers + config.chain_chunks - 1;
  }
  throw std::invalid_argument("unknown collective algorithm");
}

}  // namespace anyblock::comm
