// Owner-computes distributed factorizations over vmpi.
//
// Each node (thread rank) owns the tiles its Distribution assigns to it and
// performs every task writing those tiles (the owner-computes rule of
// Section II-C); input tiles it lacks arrive through a comm::Multicast
// collective rooted at the producing node, whose destination list is
// exactly the communication scheme of Fig. 2.  Under the default eager-p2p
// algorithm the measured per-run message counts equal exact_lu_volume /
// exact_cholesky_volume, and (up to edge effects) the Eq. 1 / Eq. 2
// predictions; under every algorithm they equal the closed-form
// exact_*_messages of core/cost.  Those equalities, plus factorization
// residuals, are what the integration tests assert.
#pragma once

#include <cstdint>

#include "comm/config.hpp"
#include "core/distribution.hpp"
#include "core/replicated.hpp"
#include "fault/fault.hpp"
#include "linalg/tiled_matrix.hpp"
#include "linalg/tiled_panel.hpp"
#include "vmpi/vmpi.hpp"

namespace anyblock::obs {
class Recorder;
}

namespace anyblock::dist {

struct DistRunResult {
  /// The factored matrix, gathered on the caller.
  linalg::TiledMatrix factored;
  /// True when every tile factorization succeeded on its owner.
  bool ok = false;
  /// Tile messages exchanged during the factorization proper (the final
  /// gather to rank 0 is excluded).
  std::int64_t tile_messages = 0;
  /// Tile messages *consumed* during the factorization proper — post-dedup
  /// under fault injection, so this equals tile_messages (and the Eq. 1/2
  /// closed forms) even when the wire carried drops and duplicates.
  std::int64_t tile_messages_received = 0;
  /// Full per-rank traffic including the gather.
  vmpi::RunReport report;
};

/// Distributed right-looking LU without pivoting.  `distribution` must map
/// node ids in [0, P) and serve at least input.tiles() tiles.  `config`
/// selects the tile-multicast collective (eager p2p by default).
///
/// With a non-null `recorder` every rank's sends and recvs are traced on
/// per-rank tracks (see vmpi::run_ranks); factorization-proper messages
/// carry tags < t*t, the final gather uses the band above, so trace
/// consumers can separate the two.
///
/// With a non-null `injector` the transport perturbs deliveries per the
/// seeded fault plan; the reliability protocol (see vmpi) guarantees the
/// factored matrix is bit-identical to the fault-free run.
DistRunResult distributed_lu(const linalg::TiledMatrix& input,
                             const core::Distribution& distribution,
                             const comm::CollectiveConfig& config = {},
                             obs::Recorder* recorder = nullptr,
                             fault::FaultInjector* injector = nullptr);

/// Distributed right-looking lower Cholesky (tiles strictly above the
/// diagonal are neither referenced nor communicated).
DistRunResult distributed_cholesky(const linalg::TiledMatrix& input,
                                   const core::Distribution& distribution,
                                   const comm::CollectiveConfig& config = {},
                                   obs::Recorder* recorder = nullptr,
                                   fault::FaultInjector* injector = nullptr);

/// 2.5D replicated LU (dist_factorization_25d.cpp): P = P_b * c ranks,
/// layer q = rank / P_b holding a full replica of the base layout.  Every
/// iteration runs the 2D rank body inside its compute layer (l mod c);
/// remote layers flush their partial sums to the home replica right before
/// a tile is finalized.  Under eager p2p the factorization-proper message
/// count equals core::exact_lu_volume_25d; under every collective it
/// equals core::exact_lu_messages_25d.  With c = 1 the run — results and
/// per-rank counts — is bit-identical to distributed_lu; with c > 1 it is
/// deterministic (fixed reduce order) but sums updates in a different
/// order than the 2D schedule.
DistRunResult distributed_lu_25d(const linalg::TiledMatrix& input,
                                 const core::ReplicatedDistribution& dist,
                                 const comm::CollectiveConfig& config = {},
                                 obs::Recorder* recorder = nullptr,
                                 fault::FaultInjector* injector = nullptr);

/// 2.5D replicated lower Cholesky; same contract as distributed_lu_25d
/// with core::exact_cholesky_volume_25d / exact_cholesky_messages_25d.
DistRunResult distributed_cholesky_25d(
    const linalg::TiledMatrix& input,
    const core::ReplicatedDistribution& dist,
    const comm::CollectiveConfig& config = {},
    obs::Recorder* recorder = nullptr,
    fault::FaultInjector* injector = nullptr);

/// Distributed SYRK: C := C - A*A^T on the lower triangle of C.  C tiles
/// follow `dist_c` (owner computes); A tiles follow `dist_a` with column l
/// of A mapped through column l mod t — each panel tile is sent once to
/// every distinct consumer on its C colrow, exactly as in the Cholesky
/// panel broadcast (Fig. 2, right).
DistRunResult distributed_syrk(const linalg::TiledMatrix& c_input,
                               const linalg::TiledPanel& a_input,
                               const core::Distribution& dist_c,
                               const core::Distribution& dist_a,
                               const comm::CollectiveConfig& config = {},
                               obs::Recorder* recorder = nullptr,
                               fault::FaultInjector* injector = nullptr);

/// Distributed GEMM: C := C + A*B with A of t x k tiles and B of k x t.
/// A(i, l) is broadcast along row i of C and B(l, j) down column j — the
/// communication pattern whose per-node volume Irony/Toledo/Tiskin bound
/// by 2 m^2 / sqrt(P) (paper, Section II-A).  A and B columns/rows map
/// through `dist` modulo t.
DistRunResult distributed_gemm(const linalg::TiledMatrix& c_input,
                               const linalg::TiledPanel& a_input,
                               const linalg::TiledPanel& b_input,
                               const core::Distribution& dist,
                               const comm::CollectiveConfig& config = {},
                               obs::Recorder* recorder = nullptr,
                               fault::FaultInjector* injector = nullptr);

}  // namespace anyblock::dist
