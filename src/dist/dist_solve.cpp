#include "dist/dist_solve.hpp"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "comm/multicast.hpp"
#include "dist/rank_helpers.hpp"

namespace anyblock::dist {
namespace {

using detail::GroupBuilder;
using detail::TileStore;
using detail::in_group;
using core::NodeId;
using vmpi::Payload;
using vmpi::RankContext;

/// Tag layout for a solve session: the factorization uses [0, t*t) and its
/// gather band [t*t, 2*t*t) is unused here (no gather of the factors), so
/// the solve phases start at 2*t*t.
struct SolveTags {
  std::int64_t t;
  [[nodiscard]] std::int64_t fwd_contrib(std::int64_t i, std::int64_t j) const {
    return 2 * t * t + i * t + j;
  }
  [[nodiscard]] std::int64_t fwd_segment(std::int64_t i) const {
    return 3 * t * t + i;
  }
  [[nodiscard]] std::int64_t bwd_contrib(std::int64_t i, std::int64_t j) const {
    return 3 * t * t + t + i * t + j;
  }
  [[nodiscard]] std::int64_t bwd_segment(std::int64_t i) const {
    return 4 * t * t + t + i;
  }
  [[nodiscard]] std::int64_t gather(std::int64_t i) const {
    return 4 * t * t + 2 * t + i;
  }
};

/// Which triangular system a substitution pass solves.
enum class Pass { kLuForward, kLuBackward, kCholForward, kCholBackward };

/// One substitution pass under the owner-computes rule.
///
/// For each segment index in pass order, contribution owners apply their
/// tile to the already-final segments they hold, send the partial to the
/// diagonal owner, which reduces, solves the diagonal tile system, stores
/// the segment into `segments`, and multicasts it to the distinct owners
/// that will need it later in this pass.  Every segment consumer receives
/// the segment at the end of its step (pass order on every rank), so the
/// forwarding collectives of comm::Multicast cannot deadlock.
class SubstitutionPass {
 public:
  SubstitutionPass(RankContext& ctx, TileStore& store,
                   const core::Distribution& dist, std::int64_t t,
                   std::int64_t nb, Pass pass, const SolveTags& tags,
                   const comm::CollectiveConfig& config)
      : ctx_(ctx),
        store_(store),
        dist_(dist),
        t_(t),
        nb_(nb),
        pass_(pass),
        tags_(tags),
        config_(config) {}

  /// `rhs(i)` provides the initial right-hand segment i on the diagonal
  /// owner; finished segments are stored into `segments`.
  template <typename Rhs>
  void run(std::unordered_map<std::int64_t, Payload>& segments, Rhs rhs) {
    const bool forward =
        pass_ == Pass::kLuForward || pass_ == Pass::kCholForward;
    for (std::int64_t step = 0; step < t_; ++step) {
      const std::int64_t i = forward ? step : t_ - 1 - step;
      send_contributions(i, segments);
      reduce_and_solve(i, segments, rhs);
      receive_segment(i, segments);
    }
  }

 private:
  /// Tile (i, j) participating in segment i's reduction, j in pass order.
  [[nodiscard]] bool is_contrib(std::int64_t i, std::int64_t j) const {
    switch (pass_) {
      case Pass::kLuForward:
      case Pass::kCholForward: return j < i;
      case Pass::kLuBackward: return j > i;
      case Pass::kCholBackward: return j > i;
    }
    return false;
  }

  /// The tile applied for contribution (i, j) and how.
  void apply_tile(std::int64_t i, std::int64_t j, const Payload& seg,
                  Payload& acc) {
    if (pass_ == Pass::kCholBackward) {
      // Row i of L^T comes from column i of L: tile (j, i), transposed.
      linalg::gemv_update_trans(store_.get(j, i), seg, acc, nb_);
    } else {
      linalg::gemv_update(store_.get(i, j), seg, acc, nb_);
    }
  }

  [[nodiscard]] NodeId tile_owner(std::int64_t i, std::int64_t j) const {
    return pass_ == Pass::kCholBackward ? dist_.owner(j, i)
                                        : dist_.owner(i, j);
  }

  [[nodiscard]] std::int64_t contrib_tag(std::int64_t i,
                                         std::int64_t j) const {
    const bool forward =
        pass_ == Pass::kLuForward || pass_ == Pass::kCholForward;
    return forward ? tags_.fwd_contrib(i, j) : tags_.bwd_contrib(i, j);
  }

  [[nodiscard]] std::int64_t segment_tag(std::int64_t i) const {
    const bool forward =
        pass_ == Pass::kLuForward || pass_ == Pass::kCholForward;
    return forward ? tags_.fwd_segment(i) : tags_.bwd_segment(i);
  }

  /// The multicast group of finished segment i: the distinct nodes that
  /// apply it to a later row of this pass, in deterministic order (every
  /// rank rebuilds the identical list, as comm::multicast_recv requires).
  [[nodiscard]] std::vector<int> segment_group(std::int64_t i) const {
    GroupBuilder group(dist_.owner(i, i));
    switch (pass_) {
      case Pass::kLuForward:
      case Pass::kCholForward:
        for (std::int64_t k = i + 1; k < t_; ++k) group.add(dist_.owner(k, i));
        break;
      case Pass::kLuBackward:
        for (std::int64_t k = 0; k < i; ++k) group.add(dist_.owner(k, i));
        break;
      case Pass::kCholBackward:
        // Contribution for row m < i uses tile (i, m), owned lower-side.
        for (std::int64_t m = 0; m < i; ++m) group.add(dist_.owner(i, m));
        break;
    }
    return std::move(group).take();
  }

  void send_contributions(std::int64_t i,
                          std::unordered_map<std::int64_t, Payload>& segments) {
    const int self = ctx_.rank();
    const NodeId diag_owner = dist_.owner(i, i);
    for (std::int64_t j = 0; j < t_; ++j) {
      if (!is_contrib(i, j)) continue;
      if (tile_owner(i, j) != self) continue;
      // Segment j is final and local: it arrived in receive_segment at the
      // end of step j (this rank is a segment_group(j) member by owning a
      // contributing tile of a later row).
      const Payload& segment = segments.at(segment_tag(j));
      Payload contribution(static_cast<std::size_t>(nb_), 0.0);
      apply_tile(i, j, segment, contribution);
      if (diag_owner == self) {
        local_[i * t_ + j] = std::move(contribution);
      } else {
        ctx_.send(static_cast<int>(diag_owner), contrib_tag(i, j),
                  std::move(contribution));
      }
    }
  }

  template <typename Rhs>
  void reduce_and_solve(std::int64_t i,
                        std::unordered_map<std::int64_t, Payload>& segments,
                        Rhs rhs) {
    const int self = ctx_.rank();
    if (dist_.owner(i, i) != self) return;
    Payload segment = rhs(i);
    for (std::int64_t j = 0; j < t_; ++j) {
      if (!is_contrib(i, j)) continue;
      Payload contribution;
      if (tile_owner(i, j) == self) {
        contribution = std::move(local_.at(i * t_ + j));
        local_.erase(i * t_ + j);
      } else {
        contribution = ctx_.recv(static_cast<int>(tile_owner(i, j)),
                                 contrib_tag(i, j));
      }
      // Contributions hold -(T * x_j); reduce by adding.
      for (std::int64_t e = 0; e < nb_; ++e)
        segment[static_cast<std::size_t>(e)] +=
            contribution[static_cast<std::size_t>(e)];
    }
    const Payload& diag = store_.get(i, i);
    switch (pass_) {
      case Pass::kLuForward: linalg::trsv_lower_unit(diag, segment, nb_); break;
      case Pass::kLuBackward: linalg::trsv_upper(diag, segment, nb_); break;
      case Pass::kCholForward: linalg::trsv_lower(diag, segment, nb_); break;
      case Pass::kCholBackward:
        linalg::trsv_lower_trans(diag, segment, nb_);
        break;
    }
    comm::multicast_send(ctx_, config_, segment_tag(i), segment,
                         segment_group(i));
    segments[segment_tag(i)] = std::move(segment);
  }

  /// Consumer half of the segment multicast, run by every group member at
  /// the end of step i.
  void receive_segment(std::int64_t i,
                       std::unordered_map<std::int64_t, Payload>& segments) {
    const NodeId diag_owner = dist_.owner(i, i);
    if (diag_owner == ctx_.rank()) return;  // root stored it already
    const auto dests = segment_group(i);
    if (!in_group(ctx_.rank(), dests)) return;
    segments.emplace(segment_tag(i),
                     comm::multicast_recv(ctx_, config_, segment_tag(i),
                                          static_cast<int>(diag_owner), dests));
  }

  RankContext& ctx_;
  TileStore& store_;
  const core::Distribution& dist_;
  std::int64_t t_;
  std::int64_t nb_;
  Pass pass_;
  const SolveTags& tags_;
  const comm::CollectiveConfig& config_;
  /// Contributions a rank owes itself (diag owner == contributor).
  std::unordered_map<std::int64_t, Payload> local_;
};

DistSolveResult run_solve(const linalg::TiledMatrix& input,
                          const std::vector<double>& b,
                          const core::Distribution& distribution,
                          bool cholesky, const comm::CollectiveConfig& config,
                          obs::Recorder* recorder,
                          fault::FaultInjector* injector) {
  const std::int64_t t = input.tiles();
  const std::int64_t nb = input.tile_size();
  if (static_cast<std::int64_t>(b.size()) != input.dim())
    throw std::invalid_argument("rhs length must equal the matrix dimension");
  const int ranks = static_cast<int>(distribution.num_nodes());
  const SolveTags tags{t};

  DistSolveResult result;
  result.x.assign(b.size(), 0.0);
  std::mutex out_mutex;
  std::atomic<bool> ok{true};
  std::vector<std::int64_t> factor_counts(static_cast<std::size_t>(ranks));
  std::vector<std::int64_t> solve_counts(static_cast<std::size_t>(ranks));

  result.report = vmpi::run_ranks(ranks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    TileStore store(input, distribution, self, /*lower_only=*/cholesky);
    if (cholesky) {
      detail::cholesky_factorize_rank(ctx, store, distribution, t, nb, ok,
                                      config);
    } else {
      detail::lu_factorize_rank(ctx, store, distribution, t, nb, ok, config);
    }
    factor_counts[static_cast<std::size_t>(self)] =
        ctx.traffic().messages_sent;

    // Forward pass: rhs = the b segment.
    std::unordered_map<std::int64_t, Payload> fwd_segments;
    SubstitutionPass forward(ctx, store, distribution, t, nb,
                             cholesky ? Pass::kCholForward : Pass::kLuForward,
                             tags, config);
    forward.run(fwd_segments, [&](std::int64_t i) {
      return Payload(b.begin() + i * nb, b.begin() + (i + 1) * nb);
    });

    // Backward pass: rhs = the forward result's segment (the diag owner of
    // row i computed and stored it during the forward pass).
    std::unordered_map<std::int64_t, Payload> bwd_segments;
    SubstitutionPass backward(
        ctx, store, distribution, t, nb,
        cholesky ? Pass::kCholBackward : Pass::kLuBackward, tags, config);
    backward.run(bwd_segments, [&](std::int64_t i) {
      return fwd_segments.at(tags.fwd_segment(i));
    });

    solve_counts[static_cast<std::size_t>(self)] =
        ctx.traffic().messages_sent -
        factor_counts[static_cast<std::size_t>(self)];

    // Assemble x on rank 0 from the diagonal owners.
    if (self == 0) {
      const std::lock_guard<std::mutex> lock(out_mutex);
      for (std::int64_t i = 0; i < t; ++i) {
        const int owner = static_cast<int>(distribution.owner(i, i));
        const Payload segment =
            owner == 0 ? bwd_segments.at(tags.bwd_segment(i))
                       : ctx.recv(owner, tags.gather(i));
        std::copy(segment.begin(), segment.end(),
                  result.x.begin() + i * nb);
      }
    } else {
      for (std::int64_t i = 0; i < t; ++i) {
        if (distribution.owner(i, i) != self) continue;
        ctx.send(0, tags.gather(i), bwd_segments.at(tags.bwd_segment(i)));
      }
    }
  }, recorder, injector);

  result.ok = ok.load();
  for (const auto c : factor_counts) result.factor_messages += c;
  for (const auto c : solve_counts) result.solve_messages += c;
  return result;
}

}  // namespace

DistSolveResult distributed_lu_solve(const linalg::TiledMatrix& input,
                                     const std::vector<double>& b,
                                     const core::Distribution& distribution,
                                     const comm::CollectiveConfig& config,
                                     obs::Recorder* recorder,
                                     fault::FaultInjector* injector) {
  return run_solve(input, b, distribution, /*cholesky=*/false, config,
                   recorder, injector);
}

DistSolveResult distributed_cholesky_solve(
    const linalg::TiledMatrix& input, const std::vector<double>& b,
    const core::Distribution& distribution,
    const comm::CollectiveConfig& config, obs::Recorder* recorder,
    fault::FaultInjector* injector) {
  return run_solve(input, b, distribution, /*cholesky=*/true, config,
                   recorder, injector);
}

}  // namespace anyblock::dist
