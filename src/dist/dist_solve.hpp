// Distributed solve: factorize A and solve A x = b in one distributed
// session, keeping the factors where the distribution placed them.
//
// The substitution phases follow the owner-computes rule too: the owner of
// tile (i, j) computes that tile's contribution to segment i and sends it
// to the diagonal owner, which solves the tile-level triangular system and
// multicasts the finished segment — through the comm::Multicast algorithm
// selected by the config — to the distinct owners that still need it.
// This is the operation end users run factorizations *for*, so the library
// ships it end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/config.hpp"
#include "core/distribution.hpp"
#include "fault/fault.hpp"
#include "linalg/tiled_matrix.hpp"
#include "vmpi/vmpi.hpp"

namespace anyblock::obs {
class Recorder;
}

namespace anyblock::dist {

struct DistSolveResult {
  std::vector<double> x;  ///< solution, assembled on the caller
  bool ok = false;
  /// Tile messages of the factorization phase (equals the exact
  /// owner-computes volume, as in DistRunResult).
  std::int64_t factor_messages = 0;
  /// Messages of the two substitution phases (contributions + segments).
  std::int64_t solve_messages = 0;
  vmpi::RunReport report;
};

/// LU factorization + forward/backward substitution; A diagonally dominant
/// (no pivoting).  A non-null `injector` perturbs the transport per the
/// seeded fault plan; the solution is bit-identical to the fault-free run.
DistSolveResult distributed_lu_solve(
    const linalg::TiledMatrix& input, const std::vector<double>& b,
    const core::Distribution& distribution,
    const comm::CollectiveConfig& config = {},
    obs::Recorder* recorder = nullptr,
    fault::FaultInjector* injector = nullptr);

/// Cholesky factorization + the two triangular solves; A symmetric positive
/// definite, lower triangle used.
DistSolveResult distributed_cholesky_solve(
    const linalg::TiledMatrix& input, const std::vector<double>& b,
    const core::Distribution& distribution,
    const comm::CollectiveConfig& config = {},
    obs::Recorder* recorder = nullptr,
    fault::FaultInjector* injector = nullptr);

}  // namespace anyblock::dist
