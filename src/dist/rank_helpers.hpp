// Internal per-rank building blocks shared by the distributed
// factorizations (dist_factorization.cpp) and solves (dist_solve.cpp).
// Not part of the public API.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "comm/multicast.hpp"
#include "core/distribution.hpp"
#include "linalg/kernels.hpp"
#include "linalg/tiled_matrix.hpp"
#include "vmpi/vmpi.hpp"

namespace anyblock::dist::detail {

using core::NodeId;
using linalg::TiledMatrix;
using vmpi::Payload;
using vmpi::RankContext;

/// Per-rank working state: owned tiles plus a cache of received tiles.
class TileStore {
 public:
  TileStore(const TiledMatrix& input, const core::Distribution& distribution,
            int rank, bool lower_only)
      : t_(input.tiles()), nb_(input.tile_size()) {
    for (std::int64_t i = 0; i < t_; ++i) {
      const std::int64_t j_end = lower_only ? i + 1 : t_;
      for (std::int64_t j = 0; j < j_end; ++j) {
        if (distribution.owner(i, j) != rank) continue;
        const auto tile = input.tile(i, j);
        tiles_.emplace(key(i, j), Payload(tile.begin(), tile.end()));
      }
    }
  }

  [[nodiscard]] std::int64_t key(std::int64_t i, std::int64_t j) const {
    return i * t_ + j;
  }
  [[nodiscard]] bool has(std::int64_t i, std::int64_t j) const {
    return tiles_.contains(key(i, j));
  }
  Payload& get(std::int64_t i, std::int64_t j) { return tiles_.at(key(i, j)); }
  void put(std::int64_t i, std::int64_t j, Payload data) {
    tiles_.emplace(key(i, j), std::move(data));
  }
  [[nodiscard]] const std::unordered_map<std::int64_t, Payload>& all() const {
    return tiles_;
  }
  [[nodiscard]] std::int64_t nb() const { return nb_; }

 private:
  std::int64_t t_;
  std::int64_t nb_;
  std::unordered_map<std::int64_t, Payload> tiles_;
};

/// Collects the ordered distinct destination ranks of one tile multicast,
/// excluding the producing (root) rank.  The insertion order is fixed by
/// the caller's loop structure, so every rank that rebuilds the same group
/// obtains the identical list — the property comm::multicast_recv relies
/// on to derive forwarding roles without control messages.
class GroupBuilder {
 public:
  explicit GroupBuilder(NodeId root) : root_(static_cast<int>(root)) {}
  void add(NodeId node) {
    const int rank = static_cast<int>(node);
    if (rank == root_) return;
    if (std::find(dests_.begin(), dests_.end(), rank) == dests_.end())
      dests_.push_back(rank);
  }
  [[nodiscard]] std::vector<int> take() && { return std::move(dests_); }

 private:
  int root_;
  std::vector<int> dests_;
};

/// Consumers of the LU diagonal tile (l, l): the TRSM owners on column l
/// and row l of the trailing matrix.
inline std::vector<int> lu_diag_group(const core::Distribution& dist,
                                      std::int64_t t, std::int64_t l) {
  GroupBuilder group(dist.owner(l, l));
  for (std::int64_t i = l + 1; i < t; ++i) group.add(dist.owner(i, l));
  for (std::int64_t j = l + 1; j < t; ++j) group.add(dist.owner(l, j));
  return std::move(group).take();
}

/// Consumers of the LU column-panel tile (i, l): GEMM owners on row i.
inline std::vector<int> lu_col_panel_group(const core::Distribution& dist,
                                           std::int64_t t, std::int64_t l,
                                           std::int64_t i) {
  GroupBuilder group(dist.owner(i, l));
  for (std::int64_t j = l + 1; j < t; ++j) group.add(dist.owner(i, j));
  return std::move(group).take();
}

/// Consumers of the LU row-panel tile (l, j): GEMM owners on column j.
inline std::vector<int> lu_row_panel_group(const core::Distribution& dist,
                                           std::int64_t t, std::int64_t l,
                                           std::int64_t j) {
  GroupBuilder group(dist.owner(l, j));
  for (std::int64_t i = l + 1; i < t; ++i) group.add(dist.owner(i, j));
  return std::move(group).take();
}

/// Consumers of the Cholesky diagonal tile (l, l): TRSM owners below it.
inline std::vector<int> chol_diag_group(const core::Distribution& dist,
                                        std::int64_t t, std::int64_t l) {
  GroupBuilder group(dist.owner(l, l));
  for (std::int64_t i = l + 1; i < t; ++i) group.add(dist.owner(i, l));
  return std::move(group).take();
}

/// Consumers of the Cholesky panel tile (i, l): the update owners on
/// colrow i of the trailing matrix (Fig. 2, right).
inline std::vector<int> chol_panel_group(const core::Distribution& dist,
                                         std::int64_t t, std::int64_t l,
                                         std::int64_t i) {
  GroupBuilder group(dist.owner(i, l));
  for (std::int64_t j = l + 1; j <= i; ++j) group.add(dist.owner(i, j));
  for (std::int64_t k = i; k < t; ++k) group.add(dist.owner(k, i));
  return std::move(group).take();
}

/// True when `rank` belongs to the multicast destination list.
inline bool in_group(int rank, const std::vector<int>& dests) {
  return std::find(dests.begin(), dests.end(), rank) != dests.end();
}

/// Receiver half of a tile multicast: when this rank consumes the tile
/// (appears in `dests`), blocks until it arrives — forwarding onward as the
/// collective algorithm requires — and stores it.  No-op otherwise.
inline void receive_published(TileStore& store, RankContext& ctx,
                              const comm::CollectiveConfig& config,
                              std::int64_t i, std::int64_t j, NodeId root,
                              const std::vector<int>& dests) {
  if (!in_group(ctx.rank(), dests)) return;
  store.put(i, j, comm::multicast_recv(ctx, config, store.key(i, j),
                                       static_cast<int>(root), dests));
}

/// Gathers all owned tiles to rank 0 and assembles the factored matrix.
/// Gather tags sit at [gather_base, gather_base + t*t); the default band
/// [t*t, 2*t*t) sits right above the 2D factorization tags.  The 2.5D path
/// passes t*t*(1+c) to clear its per-layer reduce bands.
void gather_to_root(TileStore& store, RankContext& ctx, std::int64_t t,
                    const core::Distribution& distribution, bool lower_only,
                    TiledMatrix& out, std::mutex& out_mutex,
                    std::int64_t gather_base);

inline void gather_to_root(TileStore& store, RankContext& ctx, std::int64_t t,
                           const core::Distribution& distribution,
                           bool lower_only, TiledMatrix& out,
                           std::mutex& out_mutex) {
  gather_to_root(store, ctx, t, distribution, lower_only, out, out_mutex,
                 t * t);
}

/// One rank's share of the right-looking LU factorization (tile tags in
/// [0, t*t)).  On return the rank's owned tiles hold their final values.
/// Every published tile travels through comm::Multicast under `config`;
/// tiles are received in publication order (diagonal, column panels by
/// row, row panels by column), the globally consistent order the
/// forwarding algorithms require.
void lu_factorize_rank(RankContext& ctx, TileStore& store,
                       const core::Distribution& distribution, std::int64_t t,
                       std::int64_t nb, std::atomic<bool>& ok,
                       const comm::CollectiveConfig& config);

/// One elimination iteration of the LU rank body (the l-th trip of
/// lu_factorize_rank's loop).  The 2.5D driver interleaves these with its
/// inter-layer reduce phases, passing a per-iteration layer view as
/// `distribution`; ranks outside every group simply fall through.
void lu_iteration_rank(RankContext& ctx, TileStore& store,
                       const core::Distribution& distribution, std::int64_t t,
                       std::int64_t l, std::int64_t nb, std::atomic<bool>& ok,
                       const comm::CollectiveConfig& config);

/// Same for the lower Cholesky factorization.
void cholesky_factorize_rank(RankContext& ctx, TileStore& store,
                             const core::Distribution& distribution,
                             std::int64_t t, std::int64_t nb,
                             std::atomic<bool>& ok,
                             const comm::CollectiveConfig& config);

/// One elimination iteration of the Cholesky rank body.
void cholesky_iteration_rank(RankContext& ctx, TileStore& store,
                             const core::Distribution& distribution,
                             std::int64_t t, std::int64_t l, std::int64_t nb,
                             std::atomic<bool>& ok,
                             const comm::CollectiveConfig& config);

}  // namespace anyblock::dist::detail
