// Internal per-rank building blocks shared by the distributed
// factorizations (dist_factorization.cpp) and solves (dist_solve.cpp).
// Not part of the public API.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/distribution.hpp"
#include "linalg/kernels.hpp"
#include "linalg/tiled_matrix.hpp"
#include "vmpi/vmpi.hpp"

namespace anyblock::dist::detail {

using core::NodeId;
using linalg::TiledMatrix;
using vmpi::Payload;
using vmpi::RankContext;

/// Per-rank working state: owned tiles plus a cache of received tiles.
class TileStore {
 public:
  TileStore(const TiledMatrix& input, const core::Distribution& distribution,
            int rank, bool lower_only)
      : t_(input.tiles()), nb_(input.tile_size()) {
    for (std::int64_t i = 0; i < t_; ++i) {
      const std::int64_t j_end = lower_only ? i + 1 : t_;
      for (std::int64_t j = 0; j < j_end; ++j) {
        if (distribution.owner(i, j) != rank) continue;
        const auto tile = input.tile(i, j);
        tiles_.emplace(key(i, j), Payload(tile.begin(), tile.end()));
      }
    }
  }

  [[nodiscard]] std::int64_t key(std::int64_t i, std::int64_t j) const {
    return i * t_ + j;
  }
  [[nodiscard]] bool has(std::int64_t i, std::int64_t j) const {
    return tiles_.contains(key(i, j));
  }
  Payload& get(std::int64_t i, std::int64_t j) { return tiles_.at(key(i, j)); }
  void put(std::int64_t i, std::int64_t j, Payload data) {
    tiles_.emplace(key(i, j), std::move(data));
  }
  [[nodiscard]] const std::unordered_map<std::int64_t, Payload>& all() const {
    return tiles_;
  }
  [[nodiscard]] std::int64_t nb() const { return nb_; }

 private:
  std::int64_t t_;
  std::int64_t nb_;
  std::unordered_map<std::int64_t, Payload> tiles_;
};

/// Collects distinct destination ranks, excluding the sender.
class DestSet {
 public:
  explicit DestSet(int self) : self_(self) {}
  void add(NodeId node) {
    if (node == self_) return;
    if (std::find(dests_.begin(), dests_.end(), node) == dests_.end())
      dests_.push_back(node);
  }
  [[nodiscard]] const std::vector<NodeId>& dests() const { return dests_; }

 private:
  int self_;
  std::vector<NodeId> dests_;
};

/// Fetches tile (i, j): the local copy if owned, the cached received copy,
/// or blocks on recv from the owner (exactly one recv per needed tile).
inline Payload& obtain(TileStore& store, RankContext& ctx,
                       const core::Distribution& distribution, std::int64_t i,
                       std::int64_t j) {
  if (!store.has(i, j)) {
    store.put(i, j, ctx.recv(static_cast<int>(distribution.owner(i, j)),
                             store.key(i, j)));
  }
  return store.get(i, j);
}

/// Gathers all owned tiles to rank 0 and assembles the factored matrix.
/// Gather tags sit at [t*t, 2*t*t).
void gather_to_root(TileStore& store, RankContext& ctx, std::int64_t t,
                    const core::Distribution& distribution, bool lower_only,
                    TiledMatrix& out, std::mutex& out_mutex);

/// One rank's share of the right-looking LU factorization (tile tags in
/// [0, t*t)).  On return the rank's owned tiles hold their final values.
void lu_factorize_rank(RankContext& ctx, TileStore& store,
                       const core::Distribution& distribution, std::int64_t t,
                       std::int64_t nb, std::atomic<bool>& ok);

/// Same for the lower Cholesky factorization.
void cholesky_factorize_rank(RankContext& ctx, TileStore& store,
                             const core::Distribution& distribution,
                             std::int64_t t, std::int64_t nb,
                             std::atomic<bool>& ok);

}  // namespace anyblock::dist::detail
