#include "dist/dist_factorization.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "dist/rank_helpers.hpp"
#include "linalg/kernels.hpp"

namespace anyblock::dist {

namespace detail {

void gather_to_root(TileStore& store, RankContext& ctx, std::int64_t t,
                    const core::Distribution& distribution, bool lower_only,
                    TiledMatrix& out, std::mutex& out_mutex) {
  const std::int64_t gather_base = t * t;
  if (ctx.rank() == 0) {
    const std::lock_guard<std::mutex> lock(out_mutex);
    for (std::int64_t i = 0; i < t; ++i) {
      const std::int64_t j_end = lower_only ? i + 1 : t;
      for (std::int64_t j = 0; j < j_end; ++j) {
        const int owner = static_cast<int>(distribution.owner(i, j));
        Payload data = owner == 0
                           ? store.get(i, j)
                           : ctx.recv(owner, gather_base + store.key(i, j));
        auto tile = out.tile(i, j);
        std::copy(data.begin(), data.end(), tile.begin());
      }
    }
  } else {
    for (std::int64_t i = 0; i < t; ++i) {
      const std::int64_t j_end = lower_only ? i + 1 : t;
      for (std::int64_t j = 0; j < j_end; ++j) {
        if (distribution.owner(i, j) != ctx.rank()) continue;
        ctx.send(0, gather_base + store.key(i, j), store.get(i, j));
      }
    }
  }
}

void lu_factorize_rank(RankContext& ctx, TileStore& store,
                       const core::Distribution& distribution, std::int64_t t,
                       std::int64_t nb, std::atomic<bool>& ok) {
  const int self = ctx.rank();
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return distribution.owner(i, j);
  };

  for (std::int64_t l = 0; l < t; ++l) {
    // --- GETRF(l, l) on its owner; broadcast along colrow l.
    if (owner(l, l) == self) {
      if (!linalg::getrf_nopiv(store.get(l, l), nb)) ok.store(false);
      DestSet dests(self);
      for (std::int64_t i = l + 1; i < t; ++i) dests.add(owner(i, l));
      for (std::int64_t j = l + 1; j < t; ++j) dests.add(owner(l, j));
      for (const NodeId d : dests.dests())
        ctx.send(static_cast<int>(d), store.key(l, l), store.get(l, l));
    }

    // --- TRSM on owned column-panel tiles; each result goes to every
    // distinct owner of the trailing row it feeds.
    for (std::int64_t i = l + 1; i < t; ++i) {
      if (owner(i, l) != self) continue;
      const Payload& diag = obtain(store, ctx, distribution, l, l);
      linalg::trsm_right_upper(diag, store.get(i, l), nb);
      DestSet dests(self);
      for (std::int64_t j = l + 1; j < t; ++j) dests.add(owner(i, j));
      for (const NodeId d : dests.dests())
        ctx.send(static_cast<int>(d), store.key(i, l), store.get(i, l));
    }

    // --- TRSM on owned row-panel tiles; results go down the columns.
    for (std::int64_t j = l + 1; j < t; ++j) {
      if (owner(l, j) != self) continue;
      const Payload& diag = obtain(store, ctx, distribution, l, l);
      linalg::trsm_left_lower_unit(diag, store.get(l, j), nb);
      DestSet dests(self);
      for (std::int64_t i = l + 1; i < t; ++i) dests.add(owner(i, j));
      for (const NodeId d : dests.dests())
        ctx.send(static_cast<int>(d), store.key(l, j), store.get(l, j));
    }

    // --- GEMM updates on owned trailing tiles.
    for (std::int64_t i = l + 1; i < t; ++i) {
      for (std::int64_t j = l + 1; j < t; ++j) {
        if (owner(i, j) != self) continue;
        const Payload& left = obtain(store, ctx, distribution, i, l);
        const Payload& top = obtain(store, ctx, distribution, l, j);
        linalg::gemm_update(left, top, store.get(i, j), nb);
      }
    }
  }
}

void cholesky_factorize_rank(RankContext& ctx, TileStore& store,
                             const core::Distribution& distribution,
                             std::int64_t t, std::int64_t nb,
                             std::atomic<bool>& ok) {
  const int self = ctx.rank();
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return distribution.owner(i, j);
  };

  for (std::int64_t l = 0; l < t; ++l) {
    // --- POTRF(l, l); the factor feeds the TRSMs below it.
    if (owner(l, l) == self) {
      if (!linalg::potrf_lower(store.get(l, l), nb)) ok.store(false);
      DestSet dests(self);
      for (std::int64_t i = l + 1; i < t; ++i) dests.add(owner(i, l));
      for (const NodeId d : dests.dests())
        ctx.send(static_cast<int>(d), store.key(l, l), store.get(l, l));
    }

    // --- TRSM on owned panel tiles; each result travels along *colrow i*
    // of the trailing matrix (Fig. 2, right): row segment (i, j) for
    // l < j <= i, then column segment (k, i) for k >= i.
    for (std::int64_t i = l + 1; i < t; ++i) {
      if (owner(i, l) != self) continue;
      const Payload& diag = obtain(store, ctx, distribution, l, l);
      linalg::trsm_right_lower_trans(diag, store.get(i, l), nb);
      DestSet dests(self);
      for (std::int64_t j = l + 1; j <= i; ++j) dests.add(owner(i, j));
      for (std::int64_t k = i; k < t; ++k) dests.add(owner(k, i));
      for (const NodeId d : dests.dests())
        ctx.send(static_cast<int>(d), store.key(i, l), store.get(i, l));
    }

    // --- SYRK/GEMM updates on owned trailing tiles (lower triangle).
    for (std::int64_t i = l + 1; i < t; ++i) {
      for (std::int64_t j = l + 1; j <= i; ++j) {
        if (owner(i, j) != self) continue;
        const Payload& left = obtain(store, ctx, distribution, i, l);
        if (i == j) {
          linalg::syrk_update_lower(left, store.get(i, i), nb);
        } else {
          const Payload& right = obtain(store, ctx, distribution, j, l);
          linalg::gemm_update_trans_b(left, right, store.get(i, j), nb);
        }
      }
    }
  }
}

}  // namespace detail

namespace {
using detail::DestSet;
using detail::TileStore;
using core::NodeId;
using linalg::TiledMatrix;
using vmpi::Payload;
using vmpi::RankContext;
}  // namespace

DistRunResult distributed_lu(const TiledMatrix& input,
                             const core::Distribution& distribution) {
  const std::int64_t t = input.tiles();
  const std::int64_t nb = input.tile_size();
  const int ranks = static_cast<int>(distribution.num_nodes());

  DistRunResult result;
  result.factored = TiledMatrix(t, nb);
  std::mutex out_mutex;
  std::atomic<bool> ok{true};
  std::vector<std::int64_t> factor_messages(static_cast<std::size_t>(ranks));

  result.report = vmpi::run_ranks(ranks, [&](RankContext& ctx) {
    TileStore store(input, distribution, ctx.rank(), /*lower_only=*/false);
    detail::lu_factorize_rank(ctx, store, distribution, t, nb, ok);
    factor_messages[static_cast<std::size_t>(ctx.rank())] =
        ctx.traffic().messages_sent;
    detail::gather_to_root(store, ctx, t, distribution, /*lower_only=*/false,
                           result.factored, out_mutex);
  });

  result.ok = ok.load();
  for (const auto count : factor_messages) result.tile_messages += count;
  return result;
}

DistRunResult distributed_cholesky(const TiledMatrix& input,
                                   const core::Distribution& distribution) {
  const std::int64_t t = input.tiles();
  const std::int64_t nb = input.tile_size();
  const int ranks = static_cast<int>(distribution.num_nodes());

  DistRunResult result;
  result.factored = TiledMatrix(t, nb);
  std::mutex out_mutex;
  std::atomic<bool> ok{true};
  std::vector<std::int64_t> factor_messages(static_cast<std::size_t>(ranks));

  result.report = vmpi::run_ranks(ranks, [&](RankContext& ctx) {
    TileStore store(input, distribution, ctx.rank(), /*lower_only=*/true);
    detail::cholesky_factorize_rank(ctx, store, distribution, t, nb, ok);
    factor_messages[static_cast<std::size_t>(ctx.rank())] =
        ctx.traffic().messages_sent;
    detail::gather_to_root(store, ctx, t, distribution, /*lower_only=*/true,
                           result.factored, out_mutex);
  });

  result.ok = ok.load();
  for (const auto count : factor_messages) result.tile_messages += count;
  return result;
}

DistRunResult distributed_syrk(const TiledMatrix& c_input,
                               const linalg::TiledPanel& a_input,
                               const core::Distribution& dist_c,
                               const core::Distribution& dist_a) {
  const std::int64_t t = c_input.tiles();
  const std::int64_t k = a_input.tile_cols();
  const std::int64_t nb = c_input.tile_size();
  if (a_input.tile_rows() != t || a_input.tile_size() != nb)
    throw std::invalid_argument("distributed_syrk: panel shape mismatch");
  const int ranks = static_cast<int>(dist_c.num_nodes());

  DistRunResult result;
  result.factored = TiledMatrix(t, nb);
  std::mutex out_mutex;
  std::atomic<bool> ok{true};
  std::vector<std::int64_t> update_messages(static_cast<std::size_t>(ranks));

  // A-tile tags occupy [0, t*k); the C gather sits above them.
  const auto a_tag = [k](std::int64_t i, std::int64_t l) { return i * k + l; };
  const auto owner_a = [&](std::int64_t i, std::int64_t l) {
    return dist_a.owner(i, l % t);
  };

  result.report = vmpi::run_ranks(ranks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    TileStore store(c_input, dist_c, self, /*lower_only=*/true);

    // Local copies of the owned A tiles.
    std::unordered_map<std::int64_t, Payload> a_tiles;
    for (std::int64_t i = 0; i < t; ++i) {
      for (std::int64_t l = 0; l < k; ++l) {
        if (owner_a(i, l) != self) continue;
        const auto tile = a_input.tile(i, l);
        a_tiles.emplace(a_tag(i, l), Payload(tile.begin(), tile.end()));
      }
    }
    const auto obtain_a = [&](std::int64_t i, std::int64_t l) -> Payload& {
      const std::int64_t tag = a_tag(i, l);
      auto it = a_tiles.find(tag);
      if (it == a_tiles.end()) {
        it = a_tiles
                 .emplace(tag, ctx.recv(static_cast<int>(owner_a(i, l)), tag))
                 .first;
      }
      return it->second;
    };

    for (std::int64_t l = 0; l < k; ++l) {
      // Broadcast owned panel tiles along their C colrows.
      for (std::int64_t i = 0; i < t; ++i) {
        if (owner_a(i, l) != self) continue;
        DestSet dests(self);
        for (std::int64_t j = 0; j <= i; ++j) dests.add(dist_c.owner(i, j));
        for (std::int64_t m = i; m < t; ++m) dests.add(dist_c.owner(m, i));
        for (const NodeId d : dests.dests())
          ctx.send(static_cast<int>(d), a_tag(i, l), a_tiles.at(a_tag(i, l)));
      }
      // Update owned C tiles.
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j <= i; ++j) {
          if (dist_c.owner(i, j) != self) continue;
          const Payload& left = obtain_a(i, l);
          if (i == j) {
            linalg::syrk_update_lower(left, store.get(i, i), nb);
          } else {
            linalg::gemm_update_trans_b(left, obtain_a(j, l),
                                        store.get(i, j), nb);
          }
        }
      }
    }

    update_messages[static_cast<std::size_t>(self)] =
        ctx.traffic().messages_sent;
    // Gather tags sit above the A-tile band: t*k + tile id.
    const std::int64_t gather_base = t * k;
    if (ctx.rank() == 0) {
      const std::lock_guard<std::mutex> lock(out_mutex);
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j <= i; ++j) {
          const int owner = static_cast<int>(dist_c.owner(i, j));
          Payload data = owner == 0
                             ? store.get(i, j)
                             : ctx.recv(owner, gather_base + store.key(i, j));
          auto tile = result.factored.tile(i, j);
          std::copy(data.begin(), data.end(), tile.begin());
        }
      }
    } else {
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j <= i; ++j) {
          if (dist_c.owner(i, j) != ctx.rank()) continue;
          ctx.send(0, gather_base + store.key(i, j), store.get(i, j));
        }
      }
    }
  });

  result.ok = ok.load();
  for (const auto count : update_messages) result.tile_messages += count;
  return result;
}

DistRunResult distributed_gemm(const TiledMatrix& c_input,
                               const linalg::TiledPanel& a_input,
                               const linalg::TiledPanel& b_input,
                               const core::Distribution& dist) {
  const std::int64_t t = c_input.tiles();
  const std::int64_t k = a_input.tile_cols();
  const std::int64_t nb = c_input.tile_size();
  if (a_input.tile_rows() != t || b_input.tile_cols() != t ||
      b_input.tile_rows() != k || a_input.tile_size() != nb ||
      b_input.tile_size() != nb)
    throw std::invalid_argument("distributed_gemm: shape mismatch");
  const int ranks = static_cast<int>(dist.num_nodes());

  DistRunResult result;
  result.factored = TiledMatrix(t, nb);
  std::mutex out_mutex;
  std::vector<std::int64_t> update_messages(static_cast<std::size_t>(ranks));

  // Tag bands: A tiles in [0, t*k), B tiles in [t*k, 2*t*k), gather above.
  const auto a_tag = [k](std::int64_t i, std::int64_t l) { return i * k + l; };
  const auto b_tag = [t, k](std::int64_t l, std::int64_t j) {
    return t * k + l * t + j;
  };
  const auto owner_a = [&](std::int64_t i, std::int64_t l) {
    return dist.owner(i, l % t);
  };
  const auto owner_b = [&](std::int64_t l, std::int64_t j) {
    return dist.owner(l % t, j);
  };

  result.report = vmpi::run_ranks(ranks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    TileStore store(c_input, dist, self, /*lower_only=*/false);

    std::unordered_map<std::int64_t, Payload> inputs;
    for (std::int64_t l = 0; l < k; ++l) {
      for (std::int64_t i = 0; i < t; ++i) {
        if (owner_a(i, l) == self) {
          const auto tile = a_input.tile(i, l);
          inputs.emplace(a_tag(i, l), Payload(tile.begin(), tile.end()));
        }
      }
      for (std::int64_t j = 0; j < t; ++j) {
        if (owner_b(l, j) == self) {
          const auto tile = b_input.tile(l, j);
          inputs.emplace(b_tag(l, j), Payload(tile.begin(), tile.end()));
        }
      }
    }
    const auto obtain_input = [&](std::int64_t tag, NodeId owner) -> Payload& {
      auto it = inputs.find(tag);
      if (it == inputs.end()) {
        it = inputs.emplace(tag, ctx.recv(static_cast<int>(owner), tag)).first;
      }
      return it->second;
    };

    for (std::int64_t l = 0; l < k; ++l) {
      // Broadcast owned A tiles along their C rows, B tiles down columns.
      for (std::int64_t i = 0; i < t; ++i) {
        if (owner_a(i, l) != self) continue;
        DestSet dests(self);
        for (std::int64_t j = 0; j < t; ++j) dests.add(dist.owner(i, j));
        for (const NodeId d : dests.dests())
          ctx.send(static_cast<int>(d), a_tag(i, l), inputs.at(a_tag(i, l)));
      }
      for (std::int64_t j = 0; j < t; ++j) {
        if (owner_b(l, j) != self) continue;
        DestSet dests(self);
        for (std::int64_t i = 0; i < t; ++i) dests.add(dist.owner(i, j));
        for (const NodeId d : dests.dests())
          ctx.send(static_cast<int>(d), b_tag(l, j), inputs.at(b_tag(l, j)));
      }
      // Accumulate owned C tiles.
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j < t; ++j) {
          if (dist.owner(i, j) != self) continue;
          const Payload& left = obtain_input(a_tag(i, l), owner_a(i, l));
          const Payload& right = obtain_input(b_tag(l, j), owner_b(l, j));
          linalg::gemm(1.0, left, false, right, false, 1.0, store.get(i, j),
                       nb);
        }
      }
    }

    update_messages[static_cast<std::size_t>(self)] =
        ctx.traffic().messages_sent;
    // Gather above the input bands.
    const std::int64_t gather_base = 2 * t * k;
    if (ctx.rank() == 0) {
      const std::lock_guard<std::mutex> lock(out_mutex);
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j < t; ++j) {
          const int owner = static_cast<int>(dist.owner(i, j));
          Payload data = owner == 0
                             ? store.get(i, j)
                             : ctx.recv(owner, gather_base + store.key(i, j));
          auto tile = result.factored.tile(i, j);
          std::copy(data.begin(), data.end(), tile.begin());
        }
      }
    } else {
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j < t; ++j) {
          if (dist.owner(i, j) != ctx.rank()) continue;
          ctx.send(0, gather_base + store.key(i, j), store.get(i, j));
        }
      }
    }
  });

  result.ok = true;
  for (const auto count : update_messages) result.tile_messages += count;
  return result;
}

}  // namespace anyblock::dist
