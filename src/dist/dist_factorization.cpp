#include "dist/dist_factorization.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "comm/multicast.hpp"
#include "obs/trace.hpp"
#include "dist/rank_helpers.hpp"
#include "linalg/kernels.hpp"

namespace anyblock::dist {

namespace detail {

void gather_to_root(TileStore& store, RankContext& ctx, std::int64_t t,
                    const core::Distribution& distribution, bool lower_only,
                    TiledMatrix& out, std::mutex& out_mutex,
                    std::int64_t gather_base) {
  if (ctx.rank() == 0) {
    const std::lock_guard<std::mutex> lock(out_mutex);
    for (std::int64_t i = 0; i < t; ++i) {
      const std::int64_t j_end = lower_only ? i + 1 : t;
      for (std::int64_t j = 0; j < j_end; ++j) {
        const int owner = static_cast<int>(distribution.owner(i, j));
        Payload data = owner == 0
                           ? store.get(i, j)
                           : ctx.recv(owner, gather_base + store.key(i, j));
        auto tile = out.tile(i, j);
        std::copy(data.begin(), data.end(), tile.begin());
      }
    }
  } else {
    for (std::int64_t i = 0; i < t; ++i) {
      const std::int64_t j_end = lower_only ? i + 1 : t;
      for (std::int64_t j = 0; j < j_end; ++j) {
        if (distribution.owner(i, j) != ctx.rank()) continue;
        ctx.send(0, gather_base + store.key(i, j), store.get(i, j));
      }
    }
  }
}

void lu_iteration_rank(RankContext& ctx, TileStore& store,
                       const core::Distribution& distribution, std::int64_t t,
                       std::int64_t l, std::int64_t nb, std::atomic<bool>& ok,
                       const comm::CollectiveConfig& config) {
  const int self = ctx.rank();
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return distribution.owner(i, j);
  };

  {
    // --- GETRF(l, l) on its owner; multicast along colrow l.  Every rank
    // rebuilds the identical destination list, so forwarding collectives
    // can derive their role from the list alone.
    const auto diag_group = lu_diag_group(distribution, t, l);
    if (owner(l, l) == self) {
      if (!linalg::getrf_nopiv(store.get(l, l), nb)) ok.store(false);
      comm::multicast_send(ctx, config, store.key(l, l), store.get(l, l),
                           diag_group);
    } else {
      receive_published(store, ctx, config, l, l, owner(l, l), diag_group);
    }

    // --- TRSM on owned column-panel tiles; each result is multicast to
    // every distinct owner of the trailing row it feeds.  TRSM owners are
    // always diag-group members, so the diagonal tile is local by now.
    for (std::int64_t i = l + 1; i < t; ++i) {
      if (owner(i, l) != self) continue;
      linalg::trsm_right_upper(store.get(l, l), store.get(i, l), nb);
      comm::multicast_send(ctx, config, store.key(i, l), store.get(i, l),
                           lu_col_panel_group(distribution, t, l, i));
    }

    // --- TRSM on owned row-panel tiles; results go down the columns.
    for (std::int64_t j = l + 1; j < t; ++j) {
      if (owner(l, j) != self) continue;
      linalg::trsm_left_lower_unit(store.get(l, l), store.get(l, j), nb);
      comm::multicast_send(ctx, config, store.key(l, j), store.get(l, j),
                           lu_row_panel_group(distribution, t, l, j));
    }

    // --- Receive the published panels in publication order (column panels
    // ascending i, then row panels ascending j).  The order is identical on
    // every rank, so relay obligations of the tree and chain algorithms can
    // never form a cycle; afterwards all GEMM inputs are local.
    for (std::int64_t i = l + 1; i < t; ++i) {
      if (owner(i, l) == self) continue;
      receive_published(store, ctx, config, i, l, owner(i, l),
                        lu_col_panel_group(distribution, t, l, i));
    }
    for (std::int64_t j = l + 1; j < t; ++j) {
      if (owner(l, j) == self) continue;
      receive_published(store, ctx, config, l, j, owner(l, j),
                        lu_row_panel_group(distribution, t, l, j));
    }

    // --- GEMM updates on owned trailing tiles.
    for (std::int64_t i = l + 1; i < t; ++i) {
      for (std::int64_t j = l + 1; j < t; ++j) {
        if (owner(i, j) != self) continue;
        linalg::gemm_update(store.get(i, l), store.get(l, j),
                            store.get(i, j), nb);
      }
    }
  }
}

void lu_factorize_rank(RankContext& ctx, TileStore& store,
                       const core::Distribution& distribution, std::int64_t t,
                       std::int64_t nb, std::atomic<bool>& ok,
                       const comm::CollectiveConfig& config) {
  for (std::int64_t l = 0; l < t; ++l)
    lu_iteration_rank(ctx, store, distribution, t, l, nb, ok, config);
}

void cholesky_iteration_rank(RankContext& ctx, TileStore& store,
                             const core::Distribution& distribution,
                             std::int64_t t, std::int64_t l, std::int64_t nb,
                             std::atomic<bool>& ok,
                             const comm::CollectiveConfig& config) {
  const int self = ctx.rank();
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return distribution.owner(i, j);
  };

  {
    // --- POTRF(l, l); the factor feeds the TRSMs below it.
    const auto diag_group = chol_diag_group(distribution, t, l);
    if (owner(l, l) == self) {
      if (!linalg::potrf_lower(store.get(l, l), nb)) ok.store(false);
      comm::multicast_send(ctx, config, store.key(l, l), store.get(l, l),
                           diag_group);
    } else {
      receive_published(store, ctx, config, l, l, owner(l, l), diag_group);
    }

    // --- TRSM on owned panel tiles; each result travels along *colrow i*
    // of the trailing matrix (Fig. 2, right): row segment (i, j) for
    // l < j <= i, then column segment (k, i) for k >= i.
    for (std::int64_t i = l + 1; i < t; ++i) {
      if (owner(i, l) != self) continue;
      linalg::trsm_right_lower_trans(store.get(l, l), store.get(i, l), nb);
      comm::multicast_send(ctx, config, store.key(i, l), store.get(i, l),
                           chol_panel_group(distribution, t, l, i));
    }

    // --- Receive the published panels ascending i (publication order —
    // the globally consistent order the forwarding algorithms require).
    // An owned update tile (i, j) needs panels (i, l) and (j, l); its
    // owner sits on colrow j via cell (i, j) with i >= j, hence is a
    // member of both panel groups.
    for (std::int64_t i = l + 1; i < t; ++i) {
      if (owner(i, l) == self) continue;
      receive_published(store, ctx, config, i, l, owner(i, l),
                        chol_panel_group(distribution, t, l, i));
    }

    // --- SYRK/GEMM updates on owned trailing tiles (lower triangle).
    for (std::int64_t i = l + 1; i < t; ++i) {
      for (std::int64_t j = l + 1; j <= i; ++j) {
        if (owner(i, j) != self) continue;
        if (i == j) {
          linalg::syrk_update_lower(store.get(i, l), store.get(i, i), nb);
        } else {
          linalg::gemm_update_trans_b(store.get(i, l), store.get(j, l),
                                      store.get(i, j), nb);
        }
      }
    }
  }
}

void cholesky_factorize_rank(RankContext& ctx, TileStore& store,
                             const core::Distribution& distribution,
                             std::int64_t t, std::int64_t nb,
                             std::atomic<bool>& ok,
                             const comm::CollectiveConfig& config) {
  for (std::int64_t l = 0; l < t; ++l)
    cholesky_iteration_rank(ctx, store, distribution, t, l, nb, ok, config);
}

}  // namespace detail

namespace {
using detail::GroupBuilder;
using detail::TileStore;
using detail::in_group;
using core::NodeId;
using linalg::TiledMatrix;
using vmpi::Payload;
using vmpi::RankContext;
}  // namespace

DistRunResult distributed_lu(const TiledMatrix& input,
                             const core::Distribution& distribution,
                             const comm::CollectiveConfig& config,
                             obs::Recorder* recorder,
                             fault::FaultInjector* injector) {
  const std::int64_t t = input.tiles();
  const std::int64_t nb = input.tile_size();
  const int ranks = static_cast<int>(distribution.num_nodes());

  DistRunResult result;
  result.factored = TiledMatrix(t, nb);
  std::mutex out_mutex;
  std::atomic<bool> ok{true};
  std::vector<std::int64_t> factor_messages(static_cast<std::size_t>(ranks));
  std::vector<std::int64_t> factor_received(static_cast<std::size_t>(ranks));

  result.report = vmpi::run_ranks(ranks, [&](RankContext& ctx) {
    TileStore store(input, distribution, ctx.rank(), /*lower_only=*/false);
    detail::lu_factorize_rank(ctx, store, distribution, t, nb, ok, config);
    const auto traffic = ctx.traffic();
    factor_messages[static_cast<std::size_t>(ctx.rank())] =
        traffic.messages_sent;
    factor_received[static_cast<std::size_t>(ctx.rank())] =
        traffic.messages_received;
    detail::gather_to_root(store, ctx, t, distribution, /*lower_only=*/false,
                           result.factored, out_mutex);
  }, recorder, injector);

  result.ok = ok.load();
  for (const auto count : factor_messages) result.tile_messages += count;
  for (const auto count : factor_received)
    result.tile_messages_received += count;
  return result;
}

DistRunResult distributed_cholesky(const TiledMatrix& input,
                                   const core::Distribution& distribution,
                                   const comm::CollectiveConfig& config,
                                   obs::Recorder* recorder,
                                   fault::FaultInjector* injector) {
  const std::int64_t t = input.tiles();
  const std::int64_t nb = input.tile_size();
  const int ranks = static_cast<int>(distribution.num_nodes());

  DistRunResult result;
  result.factored = TiledMatrix(t, nb);
  std::mutex out_mutex;
  std::atomic<bool> ok{true};
  std::vector<std::int64_t> factor_messages(static_cast<std::size_t>(ranks));
  std::vector<std::int64_t> factor_received(static_cast<std::size_t>(ranks));

  result.report = vmpi::run_ranks(ranks, [&](RankContext& ctx) {
    TileStore store(input, distribution, ctx.rank(), /*lower_only=*/true);
    detail::cholesky_factorize_rank(ctx, store, distribution, t, nb, ok,
                                    config);
    const auto traffic = ctx.traffic();
    factor_messages[static_cast<std::size_t>(ctx.rank())] =
        traffic.messages_sent;
    factor_received[static_cast<std::size_t>(ctx.rank())] =
        traffic.messages_received;
    detail::gather_to_root(store, ctx, t, distribution, /*lower_only=*/true,
                           result.factored, out_mutex);
  }, recorder, injector);

  result.ok = ok.load();
  for (const auto count : factor_messages) result.tile_messages += count;
  for (const auto count : factor_received)
    result.tile_messages_received += count;
  return result;
}

DistRunResult distributed_syrk(const TiledMatrix& c_input,
                               const linalg::TiledPanel& a_input,
                               const core::Distribution& dist_c,
                               const core::Distribution& dist_a,
                               const comm::CollectiveConfig& config,
                               obs::Recorder* recorder,
                               fault::FaultInjector* injector) {
  const std::int64_t t = c_input.tiles();
  const std::int64_t k = a_input.tile_cols();
  const std::int64_t nb = c_input.tile_size();
  if (a_input.tile_rows() != t || a_input.tile_size() != nb)
    throw std::invalid_argument("distributed_syrk: panel shape mismatch");
  const int ranks = static_cast<int>(dist_c.num_nodes());

  DistRunResult result;
  result.factored = TiledMatrix(t, nb);
  std::mutex out_mutex;
  std::atomic<bool> ok{true};
  std::vector<std::int64_t> update_messages(static_cast<std::size_t>(ranks));
  std::vector<std::int64_t> update_received(static_cast<std::size_t>(ranks));

  // A-tile tags occupy [0, t*k); the C gather sits above them.
  const auto a_tag = [k](std::int64_t i, std::int64_t l) { return i * k + l; };
  const auto owner_a = [&](std::int64_t i, std::int64_t l) {
    return dist_a.owner(i, l % t);
  };
  // A(i, l) travels along colrow i of C (the Cholesky panel pattern).
  const auto a_group = [&](std::int64_t i, std::int64_t l) {
    GroupBuilder group(owner_a(i, l));
    for (std::int64_t j = 0; j <= i; ++j) group.add(dist_c.owner(i, j));
    for (std::int64_t m = i; m < t; ++m) group.add(dist_c.owner(m, i));
    return std::move(group).take();
  };

  result.report = vmpi::run_ranks(ranks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    TileStore store(c_input, dist_c, self, /*lower_only=*/true);

    // Local copies of the owned A tiles.
    std::unordered_map<std::int64_t, Payload> a_tiles;
    for (std::int64_t i = 0; i < t; ++i) {
      for (std::int64_t l = 0; l < k; ++l) {
        if (owner_a(i, l) != self) continue;
        const auto tile = a_input.tile(i, l);
        a_tiles.emplace(a_tag(i, l), Payload(tile.begin(), tile.end()));
      }
    }

    for (std::int64_t l = 0; l < k; ++l) {
      // Multicast owned panel tiles along their C colrows; consumers
      // receive ascending i — the same order on every rank, so the
      // forwarding collectives cannot deadlock.
      for (std::int64_t i = 0; i < t; ++i) {
        const auto dests = a_group(i, l);
        if (owner_a(i, l) == self) {
          comm::multicast_send(ctx, config, a_tag(i, l),
                               a_tiles.at(a_tag(i, l)), dests);
        } else if (in_group(self, dests)) {
          a_tiles.emplace(a_tag(i, l),
                          comm::multicast_recv(
                              ctx, config, a_tag(i, l),
                              static_cast<int>(owner_a(i, l)), dests));
        }
      }
      // Update owned C tiles; the colrow memberships above guarantee both
      // A inputs of every owned tile are local.
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j <= i; ++j) {
          if (dist_c.owner(i, j) != self) continue;
          const Payload& left = a_tiles.at(a_tag(i, l));
          if (i == j) {
            linalg::syrk_update_lower(left, store.get(i, i), nb);
          } else {
            linalg::gemm_update_trans_b(left, a_tiles.at(a_tag(j, l)),
                                        store.get(i, j), nb);
          }
        }
      }
    }

    {
      const auto traffic = ctx.traffic();
      update_messages[static_cast<std::size_t>(self)] = traffic.messages_sent;
      update_received[static_cast<std::size_t>(self)] =
          traffic.messages_received;
    }
    // Gather tags sit above the A-tile band: t*k + tile id.
    const std::int64_t gather_base = t * k;
    if (ctx.rank() == 0) {
      const std::lock_guard<std::mutex> lock(out_mutex);
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j <= i; ++j) {
          const int owner = static_cast<int>(dist_c.owner(i, j));
          Payload data = owner == 0
                             ? store.get(i, j)
                             : ctx.recv(owner, gather_base + store.key(i, j));
          auto tile = result.factored.tile(i, j);
          std::copy(data.begin(), data.end(), tile.begin());
        }
      }
    } else {
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j <= i; ++j) {
          if (dist_c.owner(i, j) != ctx.rank()) continue;
          ctx.send(0, gather_base + store.key(i, j), store.get(i, j));
        }
      }
    }
  }, recorder, injector);

  result.ok = ok.load();
  for (const auto count : update_messages) result.tile_messages += count;
  for (const auto count : update_received)
    result.tile_messages_received += count;
  return result;
}

DistRunResult distributed_gemm(const TiledMatrix& c_input,
                               const linalg::TiledPanel& a_input,
                               const linalg::TiledPanel& b_input,
                               const core::Distribution& dist,
                               const comm::CollectiveConfig& config,
                               obs::Recorder* recorder,
                               fault::FaultInjector* injector) {
  const std::int64_t t = c_input.tiles();
  const std::int64_t k = a_input.tile_cols();
  const std::int64_t nb = c_input.tile_size();
  if (a_input.tile_rows() != t || b_input.tile_cols() != t ||
      b_input.tile_rows() != k || a_input.tile_size() != nb ||
      b_input.tile_size() != nb)
    throw std::invalid_argument("distributed_gemm: shape mismatch");
  const int ranks = static_cast<int>(dist.num_nodes());

  DistRunResult result;
  result.factored = TiledMatrix(t, nb);
  std::mutex out_mutex;
  std::vector<std::int64_t> update_messages(static_cast<std::size_t>(ranks));
  std::vector<std::int64_t> update_received(static_cast<std::size_t>(ranks));

  // Tag bands: A tiles in [0, t*k), B tiles in [t*k, 2*t*k), gather above.
  const auto a_tag = [k](std::int64_t i, std::int64_t l) { return i * k + l; };
  const auto b_tag = [t, k](std::int64_t l, std::int64_t j) {
    return t * k + l * t + j;
  };
  const auto owner_a = [&](std::int64_t i, std::int64_t l) {
    return dist.owner(i, l % t);
  };
  const auto owner_b = [&](std::int64_t l, std::int64_t j) {
    return dist.owner(l % t, j);
  };
  // A(i, l) travels along row i of C; B(l, j) travels down column j.
  const auto a_group = [&](std::int64_t i, std::int64_t l) {
    GroupBuilder group(owner_a(i, l));
    for (std::int64_t j = 0; j < t; ++j) group.add(dist.owner(i, j));
    return std::move(group).take();
  };
  const auto b_group = [&](std::int64_t l, std::int64_t j) {
    GroupBuilder group(owner_b(l, j));
    for (std::int64_t i = 0; i < t; ++i) group.add(dist.owner(i, j));
    return std::move(group).take();
  };

  result.report = vmpi::run_ranks(ranks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    TileStore store(c_input, dist, self, /*lower_only=*/false);

    std::unordered_map<std::int64_t, Payload> inputs;
    for (std::int64_t l = 0; l < k; ++l) {
      for (std::int64_t i = 0; i < t; ++i) {
        if (owner_a(i, l) == self) {
          const auto tile = a_input.tile(i, l);
          inputs.emplace(a_tag(i, l), Payload(tile.begin(), tile.end()));
        }
      }
      for (std::int64_t j = 0; j < t; ++j) {
        if (owner_b(l, j) == self) {
          const auto tile = b_input.tile(l, j);
          inputs.emplace(b_tag(l, j), Payload(tile.begin(), tile.end()));
        }
      }
    }
    // Send-or-receive one published input tile; publication order (A rows
    // ascending, then B columns ascending) is the globally consistent
    // receive order that keeps the forwarding collectives deadlock-free.
    const auto exchange = [&](std::int64_t tag, NodeId root,
                              const std::vector<int>& dests) {
      if (root == self) {
        comm::multicast_send(ctx, config, tag, inputs.at(tag), dests);
      } else if (in_group(self, dests)) {
        inputs.emplace(tag, comm::multicast_recv(ctx, config, tag,
                                                 static_cast<int>(root),
                                                 dests));
      }
    };

    for (std::int64_t l = 0; l < k; ++l) {
      for (std::int64_t i = 0; i < t; ++i)
        exchange(a_tag(i, l), owner_a(i, l), a_group(i, l));
      for (std::int64_t j = 0; j < t; ++j)
        exchange(b_tag(l, j), owner_b(l, j), b_group(l, j));
      // Accumulate owned C tiles; all inputs are local by now.
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j < t; ++j) {
          if (dist.owner(i, j) != self) continue;
          linalg::gemm(1.0, inputs.at(a_tag(i, l)), false,
                       inputs.at(b_tag(l, j)), false, 1.0, store.get(i, j),
                       nb);
        }
      }
    }

    {
      const auto traffic = ctx.traffic();
      update_messages[static_cast<std::size_t>(self)] = traffic.messages_sent;
      update_received[static_cast<std::size_t>(self)] =
          traffic.messages_received;
    }
    // Gather above the input bands.
    const std::int64_t gather_base = 2 * t * k;
    if (ctx.rank() == 0) {
      const std::lock_guard<std::mutex> lock(out_mutex);
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j < t; ++j) {
          const int owner = static_cast<int>(dist.owner(i, j));
          Payload data = owner == 0
                             ? store.get(i, j)
                             : ctx.recv(owner, gather_base + store.key(i, j));
          auto tile = result.factored.tile(i, j);
          std::copy(data.begin(), data.end(), tile.begin());
        }
      }
    } else {
      for (std::int64_t i = 0; i < t; ++i) {
        for (std::int64_t j = 0; j < t; ++j) {
          if (dist.owner(i, j) != ctx.rank()) continue;
          ctx.send(0, gather_base + store.key(i, j), store.get(i, j));
        }
      }
    }
  }, recorder, injector);

  result.ok = true;
  for (const auto count : update_messages) result.tile_messages += count;
  for (const auto count : update_received)
    result.tile_messages_received += count;
  return result;
}

}  // namespace anyblock::dist
