// 2.5D replicated execution of the distributed factorizations.
//
// Rank q * P_b + b is base rank b's replica on layer q
// (core/replicated.hpp).  Every iteration l runs node-for-node like the 2D
// rank body on layer l mod c — panel multicasts never leave the layer — and
// trailing updates accumulate into layer-local partial sums.  The only
// inter-layer traffic is the reduce phase at the head of each iteration:
// each remote layer flushes its partial of every tile the iteration is
// about to finalize to the home replica (a single-destination multicast, so
// message counts stay comparable across collectives), and the home replica
// adds them in ascending layer order — the deterministic summation order
// the run-twice tests rely on.
//
// Tag bands: [0, t^2) panel tiles (disjoint rank sets per layer),
// [t^2 * (1 + q), t^2 * (2 + q)) reduces flushed from layer q, and the
// gather above all of them at t^2 * (1 + c).
//
// With c = 1 the reduce phases are empty, layer 0's view is the base
// distribution, and the execution is bit-identical to
// distributed_lu/distributed_cholesky (golden 2.5D dist tests).  With
// c > 1 the result is deterministic but not bit-identical to the 2D run:
// updates are summed in a different order.
#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "comm/multicast.hpp"
#include "dist/dist_factorization.hpp"
#include "dist/rank_helpers.hpp"

namespace anyblock::dist {
namespace {

using core::NodeId;
using detail::TileStore;
using linalg::TiledMatrix;
using vmpi::Payload;
using vmpi::RankContext;

/// The base distribution as seen from one layer: every tile is owned by its
/// base owner's replica on that layer.  Passing the view of layer l mod c
/// into the 2D iteration body reproduces the base schedule inside the
/// layer, self-skips included.
class LayerView final : public core::Distribution {
 public:
  LayerView(const core::ReplicatedDistribution& dist, std::int64_t layer)
      : dist_(dist), layer_(layer) {}
  [[nodiscard]] NodeId owner(std::int64_t i, std::int64_t j) const override {
    return dist_.replica(dist_.base().owner(i, j), layer_);
  }
  [[nodiscard]] std::int64_t num_nodes() const override {
    return dist_.num_nodes();
  }
  [[nodiscard]] std::string name() const override { return dist_.name(); }

 private:
  const core::ReplicatedDistribution& dist_;
  std::int64_t layer_;
};

/// Flush/receive the remote-layer partial sums of one tile iteration l is
/// about to finalize.  Remote layers send; the home replica accumulates in
/// ascending source-layer order.
void reduce_tile(RankContext& ctx, TileStore& store,
                 const core::ReplicatedDistribution& dist, std::int64_t t,
                 std::int64_t l, std::int64_t i, std::int64_t j,
                 const comm::CollectiveConfig& config) {
  const int self = ctx.rank();
  const NodeId base_owner = dist.base().owner(i, j);
  const int home =
      static_cast<int>(dist.replica(base_owner, dist.home_layer(l)));
  for (std::int64_t s = 0; s < dist.remote_layer_count(l); ++s) {
    const std::int64_t source_layer = dist.remote_layer(l, s);
    const int source = static_cast<int>(dist.replica(base_owner, source_layer));
    const std::int64_t tag = t * t * (1 + source_layer) + store.key(i, j);
    const std::vector<int> dests{home};
    if (self == source) {
      comm::multicast_send(ctx, config, tag, store.get(i, j), dests);
    } else if (self == home) {
      const Payload partial =
          comm::multicast_recv(ctx, config, tag, source, dests);
      Payload& accumulator = store.get(i, j);
      for (std::size_t e = 0; e < accumulator.size(); ++e)
        accumulator[e] += partial[e];
    }
  }
}

/// Builds this rank's tile store: one buffer per tile of its base rank,
/// holding the input values on the tile's home layer and a zero accumulator
/// on every other layer (remote layers only ever contribute updates).
TileStore make_layer_store(const TiledMatrix& input,
                           const core::ReplicatedDistribution& dist,
                           const LayerView& view, int rank,
                           std::int64_t my_layer, bool lower_only) {
  const std::int64_t t = input.tiles();
  TileStore store(input, view, rank, lower_only);
  for (std::int64_t i = 0; i < t; ++i) {
    const std::int64_t j_end = lower_only ? i + 1 : t;
    for (std::int64_t j = 0; j < j_end; ++j) {
      if (view.owner(i, j) != rank) continue;
      const std::int64_t m = i < j ? i : j;
      if (dist.home_layer(m) == my_layer) continue;
      Payload& tile = store.get(i, j);
      std::fill(tile.begin(), tile.end(), 0.0);
    }
  }
  return store;
}

DistRunResult run_25d(const TiledMatrix& input,
                      const core::ReplicatedDistribution& distribution,
                      const comm::CollectiveConfig& config,
                      obs::Recorder* recorder, fault::FaultInjector* injector,
                      bool symmetric) {
  const std::int64_t t = input.tiles();
  const std::int64_t nb = input.tile_size();
  const std::int64_t base_nodes = distribution.base_nodes();
  const int ranks = static_cast<int>(distribution.num_nodes());

  DistRunResult result;
  result.factored = TiledMatrix(t, nb);
  std::mutex out_mutex;
  std::atomic<bool> ok{true};
  std::vector<std::int64_t> factor_messages(static_cast<std::size_t>(ranks));
  std::vector<std::int64_t> factor_received(static_cast<std::size_t>(ranks));

  result.report = vmpi::run_ranks(ranks, [&](RankContext& ctx) {
    const int self = ctx.rank();
    const std::int64_t my_layer = self / base_nodes;
    const LayerView my_view(distribution, my_layer);
    TileStore store = make_layer_store(input, distribution, my_view, self,
                                       my_layer, /*lower_only=*/symmetric);

    for (std::int64_t l = 0; l < t; ++l) {
      // Reduce phase: finalized tiles in task order — the diagonal, the
      // column panel, and (LU only) the row panel.
      reduce_tile(ctx, store, distribution, t, l, l, l, config);
      for (std::int64_t i = l + 1; i < t; ++i)
        reduce_tile(ctx, store, distribution, t, l, i, l, config);
      if (!symmetric)
        for (std::int64_t j = l + 1; j < t; ++j)
          reduce_tile(ctx, store, distribution, t, l, l, j, config);

      // The unchanged 2D iteration body on the compute layer; every other
      // layer owns nothing under this view and falls straight through.
      const LayerView iteration_view(distribution, distribution.home_layer(l));
      if (symmetric) {
        detail::cholesky_iteration_rank(ctx, store, iteration_view, t, l, nb,
                                        ok, config);
      } else {
        detail::lu_iteration_rank(ctx, store, iteration_view, t, l, nb, ok,
                                  config);
      }
    }

    const auto traffic = ctx.traffic();
    factor_messages[static_cast<std::size_t>(self)] = traffic.messages_sent;
    factor_received[static_cast<std::size_t>(self)] =
        traffic.messages_received;
    detail::gather_to_root(store, ctx, t, distribution,
                           /*lower_only=*/symmetric, result.factored,
                           out_mutex,
                           t * t * (1 + distribution.layers()));
  }, recorder, injector);

  result.ok = ok.load();
  for (const auto count : factor_messages) result.tile_messages += count;
  for (const auto count : factor_received)
    result.tile_messages_received += count;
  return result;
}

}  // namespace

DistRunResult distributed_lu_25d(const TiledMatrix& input,
                                 const core::ReplicatedDistribution& dist,
                                 const comm::CollectiveConfig& config,
                                 obs::Recorder* recorder,
                                 fault::FaultInjector* injector) {
  return run_25d(input, dist, config, recorder, injector,
                 /*symmetric=*/false);
}

DistRunResult distributed_cholesky_25d(
    const TiledMatrix& input, const core::ReplicatedDistribution& dist,
    const comm::CollectiveConfig& config, obs::Recorder* recorder,
    fault::FaultInjector* injector) {
  return run_25d(input, dist, config, recorder, injector, /*symmetric=*/true);
}

}  // namespace anyblock::dist
