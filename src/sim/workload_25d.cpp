#include "sim/workload_25d.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace anyblock::sim {
namespace {

/// Largest d with d * (d + 1) / 2 <= s (see implicit_workload.cpp).
std::int64_t triangular_row(std::int64_t s) {
  auto d = static_cast<std::int64_t>(
      (std::sqrt(8.0 * static_cast<double>(s) + 1.0) - 1.0) / 2.0);
  while (d > 0 && d * (d + 1) / 2 > s) --d;
  while ((d + 1) * (d + 2) / 2 <= s) ++d;
  return d;
}

/// Materialized-builder twin of WorkloadBuilder with chains keyed by
/// (tile, layer): a task writing tile (i, j) on layer q chains after the
/// previous writer of that tile *on the same layer*.  At one layer the key
/// degenerates to the tile, reproducing WorkloadBuilder exactly.
class Builder25d {
 public:
  Builder25d(std::int64_t t, const core::ReplicatedDistribution& distribution,
             const MachineConfig& machine)
      : t_(t),
        dist_(distribution),
        machine_(machine),
        last_writer_(static_cast<std::size_t>(t * t * distribution.layers()),
                     -1),
        instance_of_tile_(static_cast<std::size_t>(t * t), -1) {}

  [[nodiscard]] std::int32_t home_node(std::int64_t l, std::int64_t i,
                                       std::int64_t j) const {
    return static_cast<std::int32_t>(dist_.compute_node(l, i, j));
  }
  [[nodiscard]] std::int32_t layer_node(std::int64_t q, std::int64_t i,
                                        std::int64_t j) const {
    return static_cast<std::int32_t>(
        dist_.replica(dist_.base().owner(i, j), q));
  }

  /// Creates a task writing tile (i, j) on layer `layer`.
  std::int64_t add_task(TaskType type, std::int64_t l, std::int64_t i,
                        std::int64_t j, std::int32_t node,
                        std::int64_t layer) {
    const auto id = static_cast<std::int64_t>(work_.tasks.size());
    SimTask task;
    task.type = type;
    task.l = static_cast<std::int32_t>(l);
    task.i = static_cast<std::int32_t>(i);
    task.j = static_cast<std::int32_t>(j);
    task.node = node;
    task.deps = 0;
    const auto key =
        static_cast<std::size_t>((i * t_ + j) * dist_.layers() + layer);
    if (last_writer_[key] >= 0) {
      work_.tasks[static_cast<std::size_t>(last_writer_[key])].successor = id;
      ++task.deps;
    }
    last_writer_[key] = id;
    work_.tasks.push_back(task);
    work_.total_flops += machine_.task_flops(type);
    return id;
  }

  std::int64_t publish_instance(std::int64_t task) {
    const auto inst = static_cast<std::int64_t>(work_.instances.size());
    work_.instances.push_back(
        {work_.tasks[static_cast<std::size_t>(task)].node, {}});
    work_.tasks[static_cast<std::size_t>(task)].publishes = inst;
    return inst;
  }

  void publish(std::int64_t task, std::int64_t i, std::int64_t j) {
    instance_of_tile_[static_cast<std::size_t>(i * t_ + j)] =
        publish_instance(task);
  }

  void consume_instance(std::int64_t task, std::int64_t inst) {
    Instance& instance = work_.instances[static_cast<std::size_t>(inst)];
    SimTask& consumer = work_.tasks[static_cast<std::size_t>(task)];
    ++consumer.deps;
    for (auto& group : instance.groups) {
      if (group.node == consumer.node) {
        group.waiters.push_back(task);
        return;
      }
    }
    instance.groups.push_back({consumer.node, {task}});
  }

  void consume(std::int64_t task, std::int64_t i, std::int64_t j) {
    const std::int64_t inst =
        instance_of_tile_[static_cast<std::size_t>(i * t_ + j)];
    if (inst < 0) throw std::logic_error("consuming an unpublished tile");
    consume_instance(task, inst);
  }

  /// Emits the flush block then the reduce block of iteration l over the
  /// finalized tiles listed by `for_each_tile` (called twice, same order).
  template <class ForEachTile>
  void add_reduction_blocks(std::int64_t l, ForEachTile&& for_each_tile) {
    const std::int64_t remote = dist_.remote_layer_count(l);
    if (remote == 0) return;
    flush_insts_.clear();
    for_each_tile([&](std::int64_t i, std::int64_t j) {
      for (std::int64_t s = 0; s < remote; ++s) {
        const std::int64_t q = dist_.remote_layer(l, s);
        const std::int64_t flush =
            add_task(TaskType::kFlush, l, i, j, layer_node(q, i, j), q);
        flush_insts_.push_back(publish_instance(flush));
      }
    });
    std::size_t next = 0;
    const std::int64_t home = dist_.home_layer(l);
    for_each_tile([&](std::int64_t i, std::int64_t j) {
      for (std::int64_t s = 0; s < remote; ++s) {
        const std::int64_t reduce =
            add_task(TaskType::kReduce, l, i, j, home_node(l, i, j), home);
        consume_instance(reduce, flush_insts_[next++]);
      }
    });
  }

  Workload take() { return std::move(work_); }

 private:
  std::int64_t t_;
  const core::ReplicatedDistribution& dist_;
  const MachineConfig& machine_;
  Workload work_;
  std::vector<std::int64_t> last_writer_;     ///< keyed (i*t + j)*c + layer
  std::vector<std::int64_t> instance_of_tile_;
  std::vector<std::int64_t> flush_insts_;
};

}  // namespace

Workload build_lu_workload_25d(std::int64_t t,
                               const core::ReplicatedDistribution& distribution,
                               const MachineConfig& machine) {
  if (t <= 0) throw std::invalid_argument("tile grid must be positive");
  Builder25d builder(t, distribution, machine);
  for (std::int64_t l = 0; l < t; ++l) {
    const std::int64_t home = distribution.home_layer(l);
    builder.add_reduction_blocks(l, [&](auto&& tile) {
      tile(l, l);
      for (std::int64_t i = l + 1; i < t; ++i) tile(i, l);
      for (std::int64_t j = l + 1; j < t; ++j) tile(l, j);
    });
    const std::int64_t getrf = builder.add_task(
        TaskType::kGetrf, l, l, l, builder.home_node(l, l, l), home);
    builder.publish(getrf, l, l);
    for (std::int64_t i = l + 1; i < t; ++i) {
      const std::int64_t trsm = builder.add_task(
          TaskType::kTrsm, l, i, l, builder.home_node(l, i, l), home);
      builder.consume(trsm, l, l);
      builder.publish(trsm, i, l);
    }
    for (std::int64_t j = l + 1; j < t; ++j) {
      const std::int64_t trsm = builder.add_task(
          TaskType::kTrsm, l, l, j, builder.home_node(l, l, j), home);
      builder.consume(trsm, l, l);
      builder.publish(trsm, l, j);
    }
    for (std::int64_t i = l + 1; i < t; ++i) {
      for (std::int64_t j = l + 1; j < t; ++j) {
        const std::int64_t gemm = builder.add_task(
            TaskType::kGemm, l, i, j, builder.home_node(l, i, j), home);
        builder.consume(gemm, i, l);
        builder.consume(gemm, l, j);
      }
    }
  }
  return builder.take();
}

Workload build_cholesky_workload_25d(
    std::int64_t t, const core::ReplicatedDistribution& distribution,
    const MachineConfig& machine) {
  if (t <= 0) throw std::invalid_argument("tile grid must be positive");
  Builder25d builder(t, distribution, machine);
  for (std::int64_t l = 0; l < t; ++l) {
    const std::int64_t home = distribution.home_layer(l);
    builder.add_reduction_blocks(l, [&](auto&& tile) {
      tile(l, l);
      for (std::int64_t i = l + 1; i < t; ++i) tile(i, l);
    });
    const std::int64_t potrf = builder.add_task(
        TaskType::kPotrf, l, l, l, builder.home_node(l, l, l), home);
    builder.publish(potrf, l, l);
    for (std::int64_t i = l + 1; i < t; ++i) {
      const std::int64_t trsm = builder.add_task(
          TaskType::kTrsm, l, i, l, builder.home_node(l, i, l), home);
      builder.consume(trsm, l, l);
      builder.publish(trsm, i, l);
    }
    for (std::int64_t i = l + 1; i < t; ++i) {
      const std::int64_t syrk = builder.add_task(
          TaskType::kSyrk, l, i, i, builder.home_node(l, i, i), home);
      builder.consume(syrk, i, l);
      for (std::int64_t j = l + 1; j < i; ++j) {
        const std::int64_t gemm = builder.add_task(
            TaskType::kGemm, l, i, j, builder.home_node(l, i, j), home);
        builder.consume(gemm, i, l);
        builder.consume(gemm, j, l);
      }
    }
  }
  return builder.take();
}

Implicit25dWorkload::Implicit25dWorkload(
    SimKernel kernel, std::int64_t t,
    const core::ReplicatedDistribution& distribution,
    const MachineConfig& machine)
    : kernel_(kernel),
      t_(t),
      layers_(distribution.layers()),
      dist_(&distribution),
      machine_(&machine) {
  if (t <= 0) throw std::invalid_argument("tile grid must be positive");
  if (kernel != SimKernel::kLu && kernel != SimKernel::kCholesky)
    throw std::invalid_argument("2.5D supports LU and Cholesky");
  task_base_.resize(static_cast<std::size_t>(t) + 1);
  inst_base_.resize(static_cast<std::size_t>(t) + 1);
  std::int64_t tasks = 0;
  std::int64_t insts = 0;
  for (std::int64_t l = 0; l < t; ++l) {
    task_base_[static_cast<std::size_t>(l)] = tasks;
    inst_base_[static_cast<std::size_t>(l)] = insts;
    const std::int64_t k = t - 1 - l;
    const std::int64_t fb = flush_block(l);
    total_flops_ += static_cast<double>(fb) *
                    (machine.task_flops(TaskType::kFlush) +
                     machine.task_flops(TaskType::kReduce));
    if (kernel == SimKernel::kLu) {
      tasks += 2 * fb + 1 + 2 * k + k * k;
      insts += fb + 1 + 2 * k;
      total_flops_ += machine.task_flops(TaskType::kGetrf) +
                      2.0 * static_cast<double>(k) *
                          machine.task_flops(TaskType::kTrsm) +
                      static_cast<double>(k) * static_cast<double>(k) *
                          machine.task_flops(TaskType::kGemm);
    } else {
      tasks += 2 * fb + 1 + 2 * k + k * (k - 1) / 2;
      insts += fb + 1 + k;
      total_flops_ += machine.task_flops(TaskType::kPotrf) +
                      static_cast<double>(k) *
                          (machine.task_flops(TaskType::kTrsm) +
                           machine.task_flops(TaskType::kSyrk)) +
                      static_cast<double>(k * (k - 1) / 2) *
                          machine.task_flops(TaskType::kGemm);
    }
  }
  task_base_[static_cast<std::size_t>(t)] = tasks;
  inst_base_[static_cast<std::size_t>(t)] = insts;
  task_count_ = tasks;
  instance_count_ = insts;
}

std::int64_t Implicit25dWorkload::iteration_of(std::int64_t id) const {
  const auto it = std::upper_bound(task_base_.begin(), task_base_.end(), id);
  return (it - task_base_.begin()) - 1;
}

Implicit25dWorkload::Decoded Implicit25dWorkload::decode(
    std::int64_t id) const {
  const std::int64_t l = iteration_of(id);
  const std::int64_t r = id - task_base_[static_cast<std::size_t>(l)];
  const std::int64_t k = t_ - 1 - l;
  const std::int64_t fb = flush_block(l);
  if (r < 2 * fb) {
    // Flush/reduce blocks: tile-major in finalized-tile order, source-layer
    // slot minor.
    const std::int64_t within = r < fb ? r : r - fb;
    const TaskType type = r < fb ? TaskType::kFlush : TaskType::kReduce;
    const std::int64_t tile = within / rq(l);
    const std::int64_t slot = within % rq(l);
    if (tile == 0) return {type, l, l, l, slot};
    if (kernel_ == SimKernel::kCholesky || tile <= k)
      return {type, l, l + tile, l, slot};
    return {type, l, l, l + (tile - k), slot};
  }
  const std::int64_t r2 = r - 2 * fb;
  if (kernel_ == SimKernel::kLu) {
    if (r2 == 0) return {TaskType::kGetrf, l, l, l};
    if (r2 <= k) return {TaskType::kTrsm, l, l + r2, l};
    if (r2 <= 2 * k) return {TaskType::kTrsm, l, l, l + (r2 - k)};
    const std::int64_t g = r2 - 1 - 2 * k;
    return {TaskType::kGemm, l, l + 1 + g / k, l + 1 + g % k};
  }
  if (r2 == 0) return {TaskType::kPotrf, l, l, l};
  if (r2 <= k) return {TaskType::kTrsm, l, l + r2, l};
  const std::int64_t s = r2 - 1 - k;
  const std::int64_t d = triangular_row(s);
  const std::int64_t e = s - d * (d + 1) / 2;
  const std::int64_t i = l + 1 + d;
  if (e == 0) return {TaskType::kSyrk, l, i, i};
  return {TaskType::kGemm, l, i, l + e};
}

std::int32_t Implicit25dWorkload::initial_deps(std::int64_t id) const {
  const Decoded task = decode(id);
  switch (task.type) {
    case TaskType::kFlush:
      // Chains after the last GEMM/SYRK of its layer (layer q < l always
      // updated the tile at iteration q at the latest).
      return 1;
    case TaskType::kReduce:
      // The flushed partial, plus a chain edge from the previous home-layer
      // writer: the prior reduce (slot > 0) or the last home-layer update
      // (which exists once l >= c).
      return 1 + ((task.slot > 0 || task.l >= layers_) ? 1 : 0);
    case TaskType::kGetrf:
    case TaskType::kPotrf:
      return task.l > 0 ? 1 : 0;
    case TaskType::kTrsm:
      return 1 + (task.l > 0 ? 1 : 0);
    case TaskType::kSyrk:
      return 1 + (task.l >= layers_ ? 1 : 0);
    case TaskType::kGemm:
      return 2 + (task.l >= layers_ ? 1 : 0);
    case TaskType::kLoad:
      break;
  }
  throw std::logic_error("unreachable 2.5D task type");
}

TaskView Implicit25dWorkload::task(std::int64_t id) const {
  const Decoded raw = decode(id);
  TaskView view;
  view.type = raw.type;
  view.l = static_cast<std::int32_t>(raw.l);
  view.i = static_cast<std::int32_t>(raw.i);
  view.j = static_cast<std::int32_t>(raw.j);

  const std::int64_t l = raw.l;
  const std::int64_t k = t_ - 1 - l;
  const std::int64_t fb = flush_block(l);
  const std::int64_t base = task_base_[static_cast<std::size_t>(l)];
  const std::int64_t ibase = inst_base_[static_cast<std::size_t>(l)];

  if (raw.type == TaskType::kFlush) {
    const std::int64_t q = dist_->remote_layer(l, raw.slot);
    const auto node =
        static_cast<std::int32_t>(dist_->replica(dist_->base().owner(raw.i, raw.j), q));
    if (node < 0 || node >= machine_->nodes)
      throw std::invalid_argument("task node outside the machine");
    view.node = node;
    view.publishes = ibase + tile_index(l, raw.i, raw.j) * rq(l) + raw.slot;
    return view;
  }

  view.node = compute_node(l, raw.i, raw.j);

  switch (raw.type) {
    case TaskType::kReduce:
      view.successor = raw.slot + 1 < rq(l)
                           ? id + 1
                           : base + 2 * fb + tile_index(l, raw.i, raw.j);
      break;
    case TaskType::kGetrf:
    case TaskType::kPotrf:
      view.publishes = ibase + fb;
      break;
    case TaskType::kTrsm:
      view.publishes = raw.j == l ? ibase + fb + (raw.i - l)
                                  : ibase + fb + k + (raw.j - l);
      break;
    case TaskType::kSyrk: {
      // SYRK(l, i, i): next writer of (i, i) on layer l mod c.
      const std::int64_t m = raw.i;
      if (l + layers_ < m) {
        view.successor = chol_row(l + layers_, raw.i);
      } else if (dist_->home_layer(l) == dist_->home_layer(m)) {
        view.successor = finalize_entry(m, raw.i, raw.i);
      } else {
        view.successor = flush_task(m, raw.i, raw.i, dist_->home_layer(l));
      }
      break;
    }
    case TaskType::kGemm: {
      const std::int64_t m = raw.i < raw.j ? raw.i : raw.j;
      if (l + layers_ < m) {
        view.successor = kernel_ == SimKernel::kLu
                             ? lu_gemm(l + layers_, raw.i, raw.j)
                             : chol_row(l + layers_, raw.i) +
                                   (raw.j - (l + layers_));
      } else if (dist_->home_layer(l) == dist_->home_layer(m)) {
        view.successor = finalize_entry(m, raw.i, raw.j);
      } else {
        view.successor = flush_task(m, raw.i, raw.j, dist_->home_layer(l));
      }
      break;
    }
    case TaskType::kFlush:
    case TaskType::kLoad:
      break;
  }
  return view;
}

ImplicitInstance& Implicit25dWorkload::begin_instance(std::int64_t instance_id,
                                                      std::int32_t producer) {
  const std::int64_t slot = pool_.acquire();
  live_.at_or_insert(instance_id, slot) = slot;
  ++live_count_;
  if (live_count_ > live_peak_) live_peak_ = live_count_;
  ImplicitInstance& state = pool_[slot];
  state.producer_node = producer;
  state.used_groups = 0;
  return state;
}

void Implicit25dWorkload::add_consumer(ImplicitInstance& state,
                                       std::int32_t node,
                                       std::int64_t waiter) {
  for (std::int32_t g = 0; g < state.used_groups; ++g) {
    ImplicitGroup& group = state.groups[static_cast<std::size_t>(g)];
    if (group.node == node) {
      group.waiters.push_back(waiter);
      return;
    }
  }
  if (state.used_groups == static_cast<std::int32_t>(state.groups.size()))
    state.groups.emplace_back();
  ImplicitGroup& group =
      state.groups[static_cast<std::size_t>(state.used_groups++)];
  group.node = node;
  group.waiters.clear();
  group.waiters.push_back(waiter);
}

Implicit25dWorkload::InstanceHandle Implicit25dWorkload::publish(
    std::int64_t instance, const TaskView& task) {
  ImplicitInstance& state = begin_instance(instance, task.node);
  const std::int64_t l = task.l;
  const std::int64_t i = task.i;
  const std::int64_t j = task.j;
  const std::int64_t k = t_ - 1 - l;
  const std::int64_t fb = flush_block(l);
  const std::int64_t base = task_base_[static_cast<std::size_t>(l)];

  if (task.type == TaskType::kFlush) {
    // One consumer: the matching reduce on the home replica, at the same
    // offset inside the reduce block as this flush inside the flush block.
    const std::int64_t offset =
        instance - inst_base_[static_cast<std::size_t>(l)];
    add_consumer(state, compute_node(l, i, j), base + fb + offset);
    return &state;
  }

  if (kernel_ == SimKernel::kLu) {
    if (task.type == TaskType::kGetrf) {
      for (std::int64_t i2 = l + 1; i2 < t_; ++i2)
        add_consumer(state, compute_node(l, i2, l), base + 2 * fb + (i2 - l));
      for (std::int64_t j2 = l + 1; j2 < t_; ++j2)
        add_consumer(state, compute_node(l, l, j2),
                     base + 2 * fb + k + (j2 - l));
    } else if (task.j == l) {
      for (std::int64_t j2 = l + 1; j2 < t_; ++j2)
        add_consumer(state, compute_node(l, i, j2), lu_gemm(l, i, j2));
    } else {
      for (std::int64_t i2 = l + 1; i2 < t_; ++i2)
        add_consumer(state, compute_node(l, i2, j), lu_gemm(l, i2, j));
    }
  } else {
    if (task.type == TaskType::kPotrf) {
      for (std::int64_t i2 = l + 1; i2 < t_; ++i2)
        add_consumer(state, compute_node(l, i2, l), base + 2 * fb + (i2 - l));
    } else {
      add_consumer(state, compute_node(l, i, i), chol_row(l, i));
      for (std::int64_t j2 = l + 1; j2 < i; ++j2)
        add_consumer(state, compute_node(l, i, j2), chol_row(l, i) + (j2 - l));
      for (std::int64_t i2 = i + 1; i2 < t_; ++i2)
        add_consumer(state, compute_node(l, i2, i), chol_row(l, i2) + (i - l));
    }
  }
  return &state;
}

void Implicit25dWorkload::release(std::int64_t instance_id) {
  const std::int64_t* slot = live_.find(instance_id);
  if (slot == nullptr)
    throw std::logic_error("releasing an instance that is not in flight");
  pool_.release(*slot);
  live_.erase(instance_id);
  --live_count_;
}

}  // namespace anyblock::sim
