// Implicit (generator-driven) task DAGs for the cluster simulator.
//
// The materialized Workload holds every task up front: O(t^3) SimTasks plus
// instance/waiter vectors — ~40 GB for LU at t = 2048, which caps the
// simulator near the paper's own scales.  The right-looking factorizations
// are perfectly regular, though: a task is identified by (iteration l, tile
// i, j) alone, and every edge of the DAG is a closed-form function of that
// triple.  This model exploits that:
//
//   * Task *ordinals* reproduce the materialized builder's construction
//     order exactly (the engine tie-breaks ready tasks by ordinal), so the
//     two modes simulate bit-identical trajectories — the equivalence tests
//     hold makespans, message counts and obs metric rows equal.
//   * Dependency counters live in a FlatMap64 *frontier*, created lazily on
//     first satisfaction and erased on readiness: O(active tiles), not
//     O(total tasks).
//   * Published-instance consumer groups are generated when the producer
//     finishes and recycled (RecyclingPool) once every remote copy is
//     delivered, so instance state is bounded by in-flight communication.
//
// Peak memory is O(t^2) against the materialized O(t^3); the Cholesky
// acceptance run (P = 4096, t = 2048, 1.4e9 tasks) fits in a few hundred MB.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/distribution.hpp"
#include "sim/machine.hpp"
#include "sim/pool.hpp"

namespace anyblock::sim {

/// Which factorization DAG the generator walks.
enum class SimKernel : std::uint8_t { kLu, kCholesky, kSyrk };

/// Everything the engine needs to run one task, decoded from its ordinal.
struct TaskView {
  TaskType type = TaskType::kGemm;
  std::int32_t l = -1;
  std::int32_t i = -1;
  std::int32_t j = -1;
  std::int32_t node = -1;
  std::int64_t successor = -1;  ///< next writer of the same tile
  std::int64_t publishes = -1;  ///< instance ordinal produced, if any
};

/// Consumers of one published tile on one node (implicit counterpart of
/// InstanceGroup; waiter ordinals in materialized-builder order).
struct ImplicitGroup {
  std::int32_t node = -1;
  std::vector<std::int64_t> waiters;
};

/// In-flight state of one published instance, pooled and recycled.
struct ImplicitInstance {
  std::int32_t producer_node = -1;
  std::int32_t used_groups = 0;  ///< live prefix of `groups`
  std::vector<ImplicitGroup> groups;
};

class ImplicitWorkload {
 public:
  /// LU / Cholesky on a t x t tile grid under `distribution`.
  ImplicitWorkload(SimKernel kernel, std::int64_t t,
                   const core::Distribution& distribution,
                   const MachineConfig& machine);
  /// SYRK: C (t x t, lower, `dist_c`) -= A A^T with A of t x k tiles on
  /// `dist_a` (column l mapped through l mod t), mirroring
  /// build_syrk_workload.
  ImplicitWorkload(std::int64_t t, std::int64_t k,
                   const core::Distribution& dist_c,
                   const core::Distribution& dist_a,
                   const MachineConfig& machine);

  [[nodiscard]] SimKernel kernel() const { return kernel_; }
  [[nodiscard]] std::int64_t task_count() const { return task_count_; }
  [[nodiscard]] std::int64_t instance_count() const { return instance_count_; }
  [[nodiscard]] double total_flops() const { return total_flops_; }

  /// Tasks with no dependencies, in ordinal order (the engine seeds the
  /// ready queues from these at time zero).
  template <class F>
  void for_each_initially_ready(F&& f) const {
    if (kernel_ == SimKernel::kSyrk) {
      for (std::int64_t id = 0; id < t_ * k_; ++id) f(id);
    } else {
      f(std::int64_t{0});  // GETRF/POTRF of iteration 0
    }
  }

  /// Full decode of one task ordinal (owner lookup included).
  [[nodiscard]] TaskView task(std::int64_t id) const;

  /// One dependency of `id` satisfied; true when the task became ready.
  /// The counter is created from the closed-form dependency count on first
  /// touch and erased when it reaches zero.
  bool satisfy(std::int64_t id) {
    std::int64_t& deps = deps_.at_or_insert(id, -1);
    if (deps < 0) deps = initial_deps(id);
    if (--deps == 0) {
      deps_.erase(id);
      return true;
    }
    return false;
  }

  using InstanceHandle = const ImplicitInstance*;

  /// Builds the consumer groups of `instance`, published by the decoded
  /// producer `task`.  Must be called exactly once, when the producer
  /// finishes.
  InstanceHandle publish(std::int64_t instance, const TaskView& task);
  /// Looks up a published-but-undelivered instance.
  [[nodiscard]] InstanceHandle instance(std::int64_t instance_id) {
    const std::int64_t* slot = live_.find(instance_id);
    if (slot == nullptr)
      throw std::logic_error("implicit instance not in flight");
    return &pool_[*slot];
  }
  /// Recycles the instance once the engine saw every remote delivery.
  void release(std::int64_t instance_id);

  static std::int32_t producer_node(InstanceHandle handle) {
    return handle->producer_node;
  }
  static std::int64_t group_count(InstanceHandle handle) {
    return handle->used_groups;
  }
  static std::int32_t group_node(InstanceHandle handle, std::int64_t g) {
    return handle->groups[static_cast<std::size_t>(g)].node;
  }
  template <class F>
  static void for_each_waiter(InstanceHandle handle, std::int64_t g, F&& f) {
    for (const std::int64_t waiter :
         handle->groups[static_cast<std::size_t>(g)].waiters)
      f(waiter);
  }

  /// Peak live frontier entries + in-flight instances, for BENCH_sim.json
  /// and the obs per-phase metrics.
  [[nodiscard]] std::int64_t frontier_peak() const {
    return static_cast<std::int64_t>(deps_.peak_size()) + live_peak_;
  }

  /// Closed-form unmet-dependency count at creation (public for tests).
  [[nodiscard]] std::int32_t initial_deps(std::int64_t id) const;

 private:
  struct Decoded {
    TaskType type;
    std::int64_t l, i, j;
  };

  [[nodiscard]] Decoded decode(std::int64_t id) const;
  [[nodiscard]] std::int64_t iteration_of(std::int64_t id) const;
  [[nodiscard]] std::int32_t owner(std::int64_t i, std::int64_t j) const {
    const auto node = static_cast<std::int32_t>(dist_->owner(i, j));
    if (node < 0 || node >= machine_->nodes)
      throw std::invalid_argument("task node outside the machine");
    return node;
  }

  // Ordinal helpers (all reproduce the materialized builder's ids).
  [[nodiscard]] std::int64_t lu_gemm(std::int64_t l, std::int64_t i,
                                     std::int64_t j) const {
    const std::int64_t k = t_ - 1 - l;
    return task_base_[static_cast<std::size_t>(l)] + 1 + 2 * k +
           (i - l - 1) * k + (j - l - 1);
  }
  /// Cholesky "update block" start for row i of iteration l: SYRK(i,i) sits
  /// here, GEMM(i, j) at +  (j - l).
  [[nodiscard]] std::int64_t chol_row(std::int64_t l, std::int64_t i) const {
    const std::int64_t k = t_ - 1 - l;
    const std::int64_t d = i - l - 1;
    return task_base_[static_cast<std::size_t>(l)] + 1 + k + d * (d + 1) / 2;
  }
  /// SYRK-workload update block for row i of iteration l (after the loads).
  [[nodiscard]] std::int64_t syrk_row(std::int64_t l, std::int64_t i) const {
    return t_ * k_ + l * (t_ * (t_ + 1) / 2) + i * (i + 1) / 2;
  }

  ImplicitInstance& begin_instance(std::int64_t instance_id,
                                   std::int32_t producer);
  static void add_consumer(ImplicitInstance& state, std::int32_t node,
                           std::int64_t waiter);

  SimKernel kernel_;
  std::int64_t t_ = 0;
  std::int64_t k_ = 0;  ///< SYRK inner tile count
  const core::Distribution* dist_ = nullptr;    ///< C's distribution
  const core::Distribution* dist_a_ = nullptr;  ///< SYRK A distribution
  const MachineConfig* machine_ = nullptr;

  /// task_base_[l] = ordinal of the first task of iteration l;
  /// inst_base_[l] likewise for instances.  Size t + 1 (back() = totals).
  std::vector<std::int64_t> task_base_;
  std::vector<std::int64_t> inst_base_;
  std::int64_t task_count_ = 0;
  std::int64_t instance_count_ = 0;
  double total_flops_ = 0.0;

  FlatMap64 deps_;   ///< task ordinal -> unmet dependencies (the frontier)
  FlatMap64 live_;   ///< instance ordinal -> pool slot
  RecyclingPool<ImplicitInstance> pool_;
  std::int64_t live_count_ = 0;
  std::int64_t live_peak_ = 0;
};

}  // namespace anyblock::sim
