// Discrete-event simulator: executes a Workload on a MachineConfig.
//
// Nodes have `workers_per_node` compute slots and a full-duplex NIC.  Ready
// tasks queue per node, ordered by a critical-path priority (earlier
// iterations first; panel factorizations ahead of solves ahead of updates)
// — the same heuristic the StarPU schedulers apply.  When a producer task
// finishes, its published tile is handed to local consumers immediately and
// sent to every remote consumer node as one point-to-point message; NIC
// transfers serialize per link (sender out-link, receiver in-link), and
// communication overlaps computation, as in the paper's asynchronous
// runtime (Section II-C).
#pragma once

#include <cstdint>
#include <vector>

#include "core/replicated.hpp"
#include "sim/machine.hpp"
#include "sim/workload.hpp"

namespace anyblock::sim {

struct NodeReport {
  double busy_seconds = 0.0;  ///< summed task durations
  std::int64_t tasks = 0;
  std::int64_t messages_sent = 0;
  double bytes_sent = 0.0;
};

struct SimReport {
  double makespan_seconds = 0.0;
  double total_flops = 0.0;
  std::int64_t tasks = 0;
  /// Application-level messages (one per logical transfer, matching the
  /// closed forms); retransmissions and duplicates count in `faults` only.
  std::int64_t messages = 0;
  std::vector<NodeReport> per_node;
  /// Injected-fault and recovery counters (all zero with a disabled plan).
  fault::FaultStats faults;
  /// Simulator events processed (task finishes + arrivals + retransmits).
  std::int64_t events = 0;
  /// Wall-clock seconds spent building the DAG representation and running
  /// the event loop (the BENCH_sim.json axes).
  double build_seconds = 0.0;
  double run_seconds = 0.0;
  /// Peak resident DAG state: implicit mode reports its frontier (lazy dep
  /// counters + in-flight instances); materialized mode reports the full
  /// task count, since everything stays resident.
  std::int64_t frontier_peak = 0;

  [[nodiscard]] double total_gflops() const {
    return makespan_seconds > 0 ? total_flops / makespan_seconds / 1e9 : 0.0;
  }
  [[nodiscard]] double per_node_gflops() const {
    return per_node.empty() ? 0.0
                            : total_gflops() /
                                  static_cast<double>(per_node.size());
  }
  /// Fraction of worker time spent computing (1 = perfectly busy machine).
  [[nodiscard]] double efficiency(const MachineConfig& machine) const;
};

/// Runs the simulation to completion.  The workload must reference node ids
/// in [0, machine.nodes).
SimReport simulate(Workload workload, const MachineConfig& machine);

/// Convenience wrappers: build + simulate.
SimReport simulate_lu(std::int64_t t, const core::Distribution& distribution,
                      const MachineConfig& machine);
SimReport simulate_cholesky(std::int64_t t,
                            const core::Distribution& distribution,
                            const MachineConfig& machine);
SimReport simulate_syrk(std::int64_t t, std::int64_t k,
                        const core::Distribution& dist_c,
                        const core::Distribution& dist_a,
                        const MachineConfig& machine);

/// 2.5D variants (sim/workload_25d.hpp): machine.nodes must equal
/// distribution.num_nodes() = base nodes * memory factor.  With one layer
/// these simulate bit-identical trajectories to simulate_lu/cholesky on the
/// base distribution (the golden 2.5D equivalence tests).
SimReport simulate_lu_25d(std::int64_t t,
                          const core::ReplicatedDistribution& distribution,
                          const MachineConfig& machine);
SimReport simulate_cholesky_25d(
    std::int64_t t, const core::ReplicatedDistribution& distribution,
    const MachineConfig& machine);

}  // namespace anyblock::sim
