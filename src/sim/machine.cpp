#include "sim/machine.hpp"

#include <limits>
#include <stdexcept>

#include "linalg/kernels.hpp"

namespace anyblock::sim {

std::int64_t estimated_task_count(bool symmetric, std::int64_t tiles) {
  if (tiles >= 2'000'000)  // t^3 would overflow; the answer is "huge" anyway
    return std::numeric_limits<std::int64_t>::max();
  const std::int64_t cubic =
      symmetric ? tiles * tiles * tiles / 6 : tiles * tiles * tiles / 3;
  return cubic + tiles * tiles + tiles;
}

WorkloadMode choose_workload_mode(const std::string& name,
                                  std::int64_t estimated_tasks) {
  if (name == "materialized") return WorkloadMode::kMaterialized;
  if (name == "implicit") return WorkloadMode::kImplicit;
  if (name == "auto")
    return estimated_tasks > kMaterializeTaskLimit ? WorkloadMode::kImplicit
                                                   : WorkloadMode::kMaterialized;
  throw std::invalid_argument("unknown workload mode: " + name +
                              " (expected auto|materialized|implicit)");
}

EventQueueMode parse_event_queue_mode(const std::string& name) {
  if (name == "calendar") return EventQueueMode::kCalendar;
  if (name == "heap") return EventQueueMode::kBinaryHeap;
  throw std::invalid_argument("unknown event queue: " + name +
                              " (expected calendar|heap)");
}

double MachineConfig::task_flops(TaskType type) const {
  switch (type) {
    case TaskType::kGetrf: return linalg::getrf_flops(tile_size);
    case TaskType::kPotrf: return linalg::potrf_flops(tile_size);
    case TaskType::kTrsm: return linalg::trsm_flops(tile_size);
    case TaskType::kGemm: return linalg::gemm_flops(tile_size);
    case TaskType::kSyrk: return linalg::syrk_flops(tile_size);
    case TaskType::kLoad: return 0.0;
    case TaskType::kFlush: return 0.0;
    case TaskType::kReduce:
      // Element-wise add of one received partial sum into the home tile.
      return static_cast<double>(tile_size) * static_cast<double>(tile_size);
  }
  return 0.0;
}

double MachineConfig::task_seconds(TaskType type) const {
  return task_flops(type) / (core_gflops * 1e9);
}

double MachineConfig::perturbed_speed(std::int64_t node) const {
  double speed = speed_of(node);
  if (faults.slow_node_fraction > 0.0 &&
      fault::unit_draw(faults.seed,
                       {fault::kStreamSlowNode,
                        static_cast<std::uint64_t>(node)}) <
          faults.slow_node_fraction)
    speed *= faults.slow_node_speed;
  return speed;
}

}  // namespace anyblock::sim
