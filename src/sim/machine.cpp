#include "sim/machine.hpp"

#include "linalg/kernels.hpp"

namespace anyblock::sim {

double MachineConfig::task_flops(TaskType type) const {
  switch (type) {
    case TaskType::kGetrf: return linalg::getrf_flops(tile_size);
    case TaskType::kPotrf: return linalg::potrf_flops(tile_size);
    case TaskType::kTrsm: return linalg::trsm_flops(tile_size);
    case TaskType::kGemm: return linalg::gemm_flops(tile_size);
    case TaskType::kSyrk: return linalg::syrk_flops(tile_size);
    case TaskType::kLoad: return 0.0;
  }
  return 0.0;
}

double MachineConfig::task_seconds(TaskType type) const {
  return task_flops(type) / (core_gflops * 1e9);
}

double MachineConfig::perturbed_speed(std::int64_t node) const {
  double speed = speed_of(node);
  if (faults.slow_node_fraction > 0.0 &&
      fault::unit_draw(faults.seed,
                       {fault::kStreamSlowNode,
                        static_cast<std::uint64_t>(node)}) <
          faults.slow_node_fraction)
    speed *= faults.slow_node_speed;
  return speed;
}

}  // namespace anyblock::sim
