// Machine model for the cluster simulator.
//
// Stands in for the paper's testbed: 44 nodes x 36-core Intel Xeon Skylake
// 6240, 100 Gb/s OmniPath, one MPI process per node, one core reserved for
// the StarPU scheduler and one for MPI (Section IV-D) — hence the default
// of 34 workers.  Kernel durations derive from exact flop counts and a
// per-core effective rate; tile transfers from a full-duplex
// latency/bandwidth link per node.  Absolute numbers are calibration, the
// comparisons between distributions are emergent (see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/config.hpp"
#include "fault/fault.hpp"

namespace anyblock::obs {
class Recorder;
}

namespace anyblock::sim {

/// kLoad models an already-resident input tile (zero compute): its only
/// effect is publishing the tile so remote consumers receive a message.
/// kFlush and kReduce are 2.5D-only: a flush publishes a remote layer's
/// partial sum toward the tile's home replica (zero compute, like kLoad);
/// a reduce adds one received partial into the home tile (tile_size^2
/// flops).  Neither exists at memory factor c = 1.
enum class TaskType : std::uint8_t {
  kGetrf,
  kPotrf,
  kTrsm,
  kGemm,
  kSyrk,
  kLoad,
  kFlush,
  kReduce
};

/// How the simulator obtains the task DAG.  Both modes simulate the exact
/// same trajectory (bit-identical makespans and counters — enforced by the
/// equivalence tests); they differ only in memory: materialized holds every
/// task up front (O(t^3)), implicit generates tasks and consumer groups on
/// demand from closed forms (O(t^2) frontier), which is what makes
/// 100M+-task grids simulable.
enum class WorkloadMode : std::uint8_t { kMaterialized, kImplicit };

/// Pending-event structure.  The calendar queue is O(1) amortized and the
/// default; the binary heap is the seed engine's O(log n) structure, kept
/// as the reference for property tests and perf baselines.  Both pop in
/// the same deterministic (time, sequence) order.
enum class EventQueueMode : std::uint8_t { kCalendar, kBinaryHeap };

/// Estimated materialized task count of a t-tile factorization — the input
/// to the "auto" workload-mode choice.  Exact counts need the kernel, but
/// the cubic term dominates at every size where the choice matters.
[[nodiscard]] std::int64_t estimated_task_count(bool symmetric,
                                               std::int64_t tiles);

/// Materialized task count above which choose_workload_mode("auto", ...)
/// switches to the implicit generator; ~4M tasks is a few hundred MB of
/// materialized DAG, the point where build time and memory start to hurt.
inline constexpr std::int64_t kMaterializeTaskLimit = 4'000'000;

/// Parses "materialized" | "implicit" | "auto"; auto picks implicit above
/// kMaterializeTaskLimit estimated tasks.  Throws std::invalid_argument on
/// anything else.
[[nodiscard]] WorkloadMode choose_workload_mode(const std::string& name,
                                               std::int64_t estimated_tasks);

/// Parses "calendar" | "heap"; throws std::invalid_argument on anything
/// else.
[[nodiscard]] EventQueueMode parse_event_queue_mode(const std::string& name);

struct MachineConfig {
  std::int64_t nodes = 1;
  /// Compute workers per node (cores minus scheduler and MPI cores).
  int workers_per_node = 34;
  /// Effective per-core double-precision rate on tile kernels (GFlop/s).
  double core_gflops = 55.0;
  /// Per-node full-duplex NIC bandwidth (GB/s); 100 Gb/s OmniPath = 12.5.
  double link_bandwidth_gbps = 12.5;
  /// One-way message latency (microseconds).
  double link_latency_us = 1.5;
  /// Tile side in matrix elements (paper: 500).
  std::int64_t tile_size = 500;
  /// Per-node relative speeds (empty = homogeneous).  The paper's platform
  /// is homogeneous; its conclusion names heterogeneous nodes as an open
  /// extension — supported here so distributions can be stress-tested
  /// against skewed machines.
  std::vector<double> node_speed;
  /// StarPU-style critical-path priorities (panel ops and early iterations
  /// first).  Turn off for the FIFO-scheduling ablation.
  bool priority_scheduling = true;
  /// Tile-multicast collective, mirroring comm::Multicast exactly: eager
  /// p2p is the Chameleon model (serial point-to-point sends from the
  /// producer — paper, Section II-C); the binomial tree and pipelined
  /// chain are the forwarding optimizations the paper notes Chameleon does
  /// *not* implement, exposed for the collectives ablation.  Per published
  /// tile with d remote consumers the simulated message count follows the
  /// same closed forms as core::exact_*_messages: d for p2p and tree,
  /// d * chain_chunks for the chain.
  comm::CollectiveConfig collective;

  /// DAG representation (see WorkloadMode).  simulate_lu/cholesky/syrk
  /// dispatch on this; simulate(Workload, ...) is materialized by nature.
  WorkloadMode workload_mode = WorkloadMode::kMaterialized;

  /// Pending-event structure (see EventQueueMode); affects speed only,
  /// never results.
  EventQueueMode event_queue = EventQueueMode::kCalendar;

  /// Deterministic platform perturbation, sharing the vmpi fault model:
  /// per-message drop/duplicate/delay fates (recovered by receiver-timeout
  /// retransmission in virtual time), link-bandwidth jitter, and seeded
  /// node slowdowns.  Zero effect when the plan is disabled, so robustness
  /// ablations toggle one field.
  fault::FaultPlan faults;

  /// Optional trace recorder (not owned): when set, the simulator records
  /// one obs::kSimTask event per executed kernel and one obs::kSimTransfer
  /// event per link message, on per-node tracks, in *virtual* seconds —
  /// the simulated counterpart of the StarPU traces the paper inspects to
  /// explain idle time (Section VI).
  obs::Recorder* recorder = nullptr;

  /// Relative speed of one node (1.0 when homogeneous).
  [[nodiscard]] double speed_of(std::int64_t node) const {
    return node_speed.empty() ? 1.0
                              : node_speed[static_cast<std::size_t>(node)];
  }

  /// speed_of() combined with the fault plan's seeded slow-node draw: a
  /// node selected by the slow_node_fraction lottery runs at
  /// slow_node_speed times its configured speed.
  [[nodiscard]] double perturbed_speed(std::int64_t node) const;

  [[nodiscard]] double tile_bytes() const {
    return 8.0 * static_cast<double>(tile_size) *
           static_cast<double>(tile_size);
  }
  /// Seconds to push one tile through a link (excluding latency).
  [[nodiscard]] double tile_transfer_seconds() const {
    return tile_bytes() / (link_bandwidth_gbps * 1e9);
  }
  [[nodiscard]] double latency_seconds() const {
    return link_latency_us * 1e-6;
  }
  /// Seconds to run one kernel of the given type on one worker.
  [[nodiscard]] double task_seconds(TaskType type) const;
  /// Flops of one kernel of the given type.
  [[nodiscard]] double task_flops(TaskType type) const;
  /// Aggregate peak of the whole machine (GFlop/s), for sanity checks.
  [[nodiscard]] double peak_gflops() const {
    return static_cast<double>(nodes) * workers_per_node * core_gflops;
  }
};

}  // namespace anyblock::sim
