// 2.5D task DAGs for the cluster simulator (core/replicated.hpp).
//
// The 2.5D schedule keeps the 2D right-looking structure but rotates every
// iteration onto compute layer l mod c and defers the trailing-matrix
// exchange: updates accumulate into layer-local partial sums, and a tile is
// only reduced across layers right before it is finalized.  Two new task
// types carry that:
//
//   kFlush(l, i, j)   on a *remote* layer: publishes the layer's partial
//                     sum of tile (i, j) toward the home replica (zero
//                     compute; its published instance has exactly one
//                     consumer group — the matching reduce task).
//   kReduce(l, i, j)  on the *home* layer: adds one received partial into
//                     the home tile (tile^2 flops); reduces of one tile
//                     chain in ascending source-layer order, then the
//                     finalizing GETRF/POTRF/TRSM chains after the last.
//
// Per iteration l (k = t-1-l, rq = min(l, c-1) remote layers) the task
// order is: the flush block, the reduce block, then the unchanged 2D body
// (panel ops and the layer's GEMMs/SYRKs).  Chains are keyed by
// (tile, layer) — a GEMM chains after the previous writer of the same tile
// *on its own layer* — so at c = 1 both blocks are empty, the layer key is
// constant, and the construction degenerates task-for-task, instance-for-
// instance into build_lu_workload/build_cholesky_workload: the golden
// equivalence tests pin that bit-identity across collectives, workload
// modes and fault plans.
//
// Implicit25dWorkload is the generator-driven twin (the exact analogue of
// ImplicitWorkload): ordinals reproduce the materialized 2.5D builder's
// construction order from closed forms, so both modes simulate the same
// trajectory while the implicit frontier stays O(t^2).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/replicated.hpp"
#include "sim/implicit_workload.hpp"
#include "sim/machine.hpp"
#include "sim/pool.hpp"
#include "sim/workload.hpp"

namespace anyblock::sim {

/// Builds the materialized 2.5D LU task graph for a t x t tile matrix.
Workload build_lu_workload_25d(std::int64_t t,
                               const core::ReplicatedDistribution& distribution,
                               const MachineConfig& machine);

/// Builds the materialized 2.5D Cholesky (lower) task graph.
Workload build_cholesky_workload_25d(
    std::int64_t t, const core::ReplicatedDistribution& distribution,
    const MachineConfig& machine);

class Implicit25dWorkload {
 public:
  /// kLu or kCholesky on a t x t tile grid under `distribution`.
  Implicit25dWorkload(SimKernel kernel, std::int64_t t,
                      const core::ReplicatedDistribution& distribution,
                      const MachineConfig& machine);

  [[nodiscard]] SimKernel kernel() const { return kernel_; }
  [[nodiscard]] std::int64_t task_count() const { return task_count_; }
  [[nodiscard]] std::int64_t instance_count() const { return instance_count_; }
  [[nodiscard]] double total_flops() const { return total_flops_; }

  template <class F>
  void for_each_initially_ready(F&& f) const {
    f(std::int64_t{0});  // iteration 0 has no flushes: GETRF/POTRF leads
  }

  [[nodiscard]] TaskView task(std::int64_t id) const;

  bool satisfy(std::int64_t id) {
    std::int64_t& deps = deps_.at_or_insert(id, -1);
    if (deps < 0) deps = initial_deps(id);
    if (--deps == 0) {
      deps_.erase(id);
      return true;
    }
    return false;
  }

  using InstanceHandle = const ImplicitInstance*;

  InstanceHandle publish(std::int64_t instance, const TaskView& task);
  [[nodiscard]] InstanceHandle instance(std::int64_t instance_id) {
    const std::int64_t* slot = live_.find(instance_id);
    if (slot == nullptr)
      throw std::logic_error("implicit instance not in flight");
    return &pool_[*slot];
  }
  void release(std::int64_t instance_id);

  static std::int32_t producer_node(InstanceHandle handle) {
    return handle->producer_node;
  }
  static std::int64_t group_count(InstanceHandle handle) {
    return handle->used_groups;
  }
  static std::int32_t group_node(InstanceHandle handle, std::int64_t g) {
    return handle->groups[static_cast<std::size_t>(g)].node;
  }
  template <class F>
  static void for_each_waiter(InstanceHandle handle, std::int64_t g, F&& f) {
    for (const std::int64_t waiter :
         handle->groups[static_cast<std::size_t>(g)].waiters)
      f(waiter);
  }

  [[nodiscard]] std::int64_t frontier_peak() const {
    return static_cast<std::int64_t>(deps_.peak_size()) + live_peak_;
  }

  /// Closed-form unmet-dependency count at creation (public for tests).
  [[nodiscard]] std::int32_t initial_deps(std::int64_t id) const;

 private:
  struct Decoded {
    TaskType type;
    std::int64_t l, i, j;
    std::int64_t slot = -1;  ///< flush/reduce slot (source-layer index)
  };

  [[nodiscard]] Decoded decode(std::int64_t id) const;
  [[nodiscard]] std::int64_t iteration_of(std::int64_t id) const;

  /// min(l, c - 1): remote layers flushing into iteration l's tiles.
  [[nodiscard]] std::int64_t rq(std::int64_t l) const {
    return dist_->remote_layer_count(l);
  }
  /// Flush-block size of iteration l (== reduce-block size).
  [[nodiscard]] std::int64_t flush_block(std::int64_t l) const {
    const std::int64_t k = t_ - 1 - l;
    return (kernel_ == SimKernel::kLu ? 2 * k + 1 : k + 1) * rq(l);
  }
  /// Index of tile (i, j) in iteration l's finalized-tile order:
  /// (l, l) first, then the column panel, then (LU) the row panel.
  [[nodiscard]] std::int64_t tile_index(std::int64_t l, std::int64_t i,
                                        std::int64_t j) const {
    if (i == l && j == l) return 0;
    if (j == l) return i - l;
    return (t_ - 1 - l) + (j - l);
  }

  [[nodiscard]] std::int32_t compute_node(std::int64_t l, std::int64_t i,
                                          std::int64_t j) const {
    const auto node = static_cast<std::int32_t>(dist_->compute_node(l, i, j));
    if (node < 0 || node >= machine_->nodes)
      throw std::invalid_argument("task node outside the machine");
    return node;
  }

  /// Ordinal of GEMM(l, i, j) in the LU layout.
  [[nodiscard]] std::int64_t lu_gemm(std::int64_t l, std::int64_t i,
                                     std::int64_t j) const {
    const std::int64_t k = t_ - 1 - l;
    return task_base_[static_cast<std::size_t>(l)] + 2 * flush_block(l) + 1 +
           2 * k + (i - l - 1) * k + (j - l - 1);
  }
  /// Cholesky update-block start for row i of iteration l.
  [[nodiscard]] std::int64_t chol_row(std::int64_t l, std::int64_t i) const {
    const std::int64_t k = t_ - 1 - l;
    const std::int64_t d = i - l - 1;
    return task_base_[static_cast<std::size_t>(l)] + 2 * flush_block(l) + 1 +
           k + d * (d + 1) / 2;
  }
  /// Ordinal of the first task of iteration m writing finalized tile
  /// (i, j): its first reduce when partial sums exist, else the finalizer.
  [[nodiscard]] std::int64_t finalize_entry(std::int64_t m, std::int64_t i,
                                            std::int64_t j) const {
    const std::int64_t base = task_base_[static_cast<std::size_t>(m)];
    const std::int64_t tile = tile_index(m, i, j);
    if (rq(m) > 0) return base + flush_block(m) + tile * rq(m);
    return base + 2 * flush_block(m) + tile;
  }
  /// Ordinal of iteration m's flush of tile (i, j) from layer q.
  [[nodiscard]] std::int64_t flush_task(std::int64_t m, std::int64_t i,
                                        std::int64_t j, std::int64_t q) const {
    return task_base_[static_cast<std::size_t>(m)] +
           tile_index(m, i, j) * rq(m) + dist_->remote_slot(m, q);
  }

  ImplicitInstance& begin_instance(std::int64_t instance_id,
                                   std::int32_t producer);
  static void add_consumer(ImplicitInstance& state, std::int32_t node,
                           std::int64_t waiter);

  SimKernel kernel_;
  std::int64_t t_ = 0;
  std::int64_t layers_ = 1;
  const core::ReplicatedDistribution* dist_ = nullptr;
  const MachineConfig* machine_ = nullptr;

  std::vector<std::int64_t> task_base_;
  std::vector<std::int64_t> inst_base_;
  std::int64_t task_count_ = 0;
  std::int64_t instance_count_ = 0;
  double total_flops_ = 0.0;

  FlatMap64 deps_;
  FlatMap64 live_;
  RecyclingPool<ImplicitInstance> pool_;
  std::int64_t live_count_ = 0;
  std::int64_t live_peak_ = 0;
};

}  // namespace anyblock::sim
