#include "sim/implicit_workload.hpp"

#include <algorithm>
#include <cmath>

namespace anyblock::sim {
namespace {

/// Largest d with d * (d + 1) / 2 <= s (row index inside a triangular
/// update block).  The sqrt seed is exact for any s below 2^50; the
/// adjustment loops absorb rounding at the boundaries.
std::int64_t triangular_row(std::int64_t s) {
  auto d = static_cast<std::int64_t>(
      (std::sqrt(8.0 * static_cast<double>(s) + 1.0) - 1.0) / 2.0);
  while (d > 0 && d * (d + 1) / 2 > s) --d;
  while ((d + 1) * (d + 2) / 2 <= s) ++d;
  return d;
}

}  // namespace

ImplicitWorkload::ImplicitWorkload(SimKernel kernel, std::int64_t t,
                                   const core::Distribution& distribution,
                                   const MachineConfig& machine)
    : kernel_(kernel), t_(t), dist_(&distribution), machine_(&machine) {
  if (t <= 0) throw std::invalid_argument("tile grid must be positive");
  if (kernel == SimKernel::kSyrk)
    throw std::invalid_argument("SYRK requires the two-distribution ctor");
  task_base_.resize(static_cast<std::size_t>(t) + 1);
  inst_base_.resize(static_cast<std::size_t>(t) + 1);
  std::int64_t tasks = 0;
  std::int64_t insts = 0;
  for (std::int64_t l = 0; l < t; ++l) {
    task_base_[static_cast<std::size_t>(l)] = tasks;
    inst_base_[static_cast<std::size_t>(l)] = insts;
    const std::int64_t k = t - 1 - l;
    if (kernel == SimKernel::kLu) {
      tasks += 1 + 2 * k + k * k;
      insts += 1 + 2 * k;
      total_flops_ += machine.task_flops(TaskType::kGetrf) +
                      2.0 * static_cast<double>(k) *
                          machine.task_flops(TaskType::kTrsm) +
                      static_cast<double>(k) * static_cast<double>(k) *
                          machine.task_flops(TaskType::kGemm);
    } else {
      tasks += 1 + 2 * k + k * (k - 1) / 2;
      insts += 1 + k;
      total_flops_ += machine.task_flops(TaskType::kPotrf) +
                      static_cast<double>(k) *
                          (machine.task_flops(TaskType::kTrsm) +
                           machine.task_flops(TaskType::kSyrk)) +
                      static_cast<double>(k * (k - 1) / 2) *
                          machine.task_flops(TaskType::kGemm);
    }
  }
  task_base_[static_cast<std::size_t>(t)] = tasks;
  inst_base_[static_cast<std::size_t>(t)] = insts;
  task_count_ = tasks;
  instance_count_ = insts;
}

ImplicitWorkload::ImplicitWorkload(std::int64_t t, std::int64_t k,
                                   const core::Distribution& dist_c,
                                   const core::Distribution& dist_a,
                                   const MachineConfig& machine)
    : kernel_(SimKernel::kSyrk),
      t_(t),
      k_(k),
      dist_(&dist_c),
      dist_a_(&dist_a),
      machine_(&machine) {
  if (t <= 0 || k <= 0)
    throw std::invalid_argument("tile grids must be positive");
  task_count_ = t * k + k * (t * (t + 1) / 2);
  instance_count_ = t * k;
  total_flops_ =
      static_cast<double>(k) *
      (static_cast<double>(t) * machine.task_flops(TaskType::kSyrk) +
       static_cast<double>(t * (t - 1) / 2) *
           machine.task_flops(TaskType::kGemm));
}

std::int64_t ImplicitWorkload::iteration_of(std::int64_t id) const {
  const auto it =
      std::upper_bound(task_base_.begin(), task_base_.end(), id);
  return (it - task_base_.begin()) - 1;
}

ImplicitWorkload::Decoded ImplicitWorkload::decode(std::int64_t id) const {
  switch (kernel_) {
    case SimKernel::kLu: {
      const std::int64_t l = iteration_of(id);
      const std::int64_t r = id - task_base_[static_cast<std::size_t>(l)];
      const std::int64_t k = t_ - 1 - l;
      if (r == 0) return {TaskType::kGetrf, l, l, l};
      if (r <= k) return {TaskType::kTrsm, l, l + r, l};
      if (r <= 2 * k) return {TaskType::kTrsm, l, l, l + (r - k)};
      const std::int64_t g = r - 1 - 2 * k;
      return {TaskType::kGemm, l, l + 1 + g / k, l + 1 + g % k};
    }
    case SimKernel::kCholesky: {
      const std::int64_t l = iteration_of(id);
      const std::int64_t r = id - task_base_[static_cast<std::size_t>(l)];
      const std::int64_t k = t_ - 1 - l;
      if (r == 0) return {TaskType::kPotrf, l, l, l};
      if (r <= k) return {TaskType::kTrsm, l, l + r, l};
      const std::int64_t s = r - 1 - k;
      const std::int64_t d = triangular_row(s);
      const std::int64_t e = s - d * (d + 1) / 2;
      const std::int64_t i = l + 1 + d;
      if (e == 0) return {TaskType::kSyrk, l, i, i};
      return {TaskType::kGemm, l, i, l + e};
    }
    case SimKernel::kSyrk: {
      if (id < t_ * k_) return {TaskType::kLoad, -1, -1, -1};
      const std::int64_t block = t_ * (t_ + 1) / 2;
      const std::int64_t r = id - t_ * k_;
      const std::int64_t l = r / block;
      const std::int64_t w = r - l * block;
      const std::int64_t i = triangular_row(w);
      const std::int64_t e = w - i * (i + 1) / 2;
      if (e == 0) return {TaskType::kSyrk, l, i, i};
      return {TaskType::kGemm, l, i, e - 1};
    }
  }
  throw std::logic_error("unreachable kernel");
}

std::int32_t ImplicitWorkload::initial_deps(std::int64_t id) const {
  const Decoded task = decode(id);
  std::int32_t deps = 0;
  switch (task.type) {
    case TaskType::kGetrf:
    case TaskType::kPotrf:
    case TaskType::kLoad:
      break;
    case TaskType::kTrsm:
    case TaskType::kSyrk:
      deps = 1;
      break;
    case TaskType::kGemm:
      deps = 2;
      break;
  }
  // Chain edge from the previous writer of the same tile (every task of
  // iteration l > 0 has one; loads write nothing).
  if (task.type != TaskType::kLoad && task.l > 0) ++deps;
  return deps;
}

TaskView ImplicitWorkload::task(std::int64_t id) const {
  const Decoded raw = decode(id);
  TaskView view;
  view.type = raw.type;
  view.l = static_cast<std::int32_t>(raw.l);
  view.i = static_cast<std::int32_t>(raw.i);
  view.j = static_cast<std::int32_t>(raw.j);

  if (raw.type == TaskType::kLoad) {
    // Loads keep l = i = j = -1 (materialized parity); their node and
    // published instance come from the ordinal: loads are created i-major,
    // column-minor, so load/instance ordinal = i * k + l.
    const std::int64_t i = id / k_;
    const std::int64_t lc = id % k_;
    const auto node = static_cast<std::int32_t>(dist_a_->owner(i, lc % t_));
    if (node < 0 || node >= machine_->nodes)
      throw std::invalid_argument("task node outside the machine");
    view.node = node;
    view.publishes = id;
    return view;
  }

  view.node = owner(raw.i, raw.j);

  const std::int64_t l = raw.l;
  switch (kernel_) {
    case SimKernel::kLu: {
      const std::int64_t base = inst_base_[static_cast<std::size_t>(l)];
      const std::int64_t k = t_ - 1 - l;
      if (raw.type == TaskType::kGetrf) {
        view.publishes = base;
      } else if (raw.type == TaskType::kTrsm) {
        view.publishes = raw.j == l ? base + (raw.i - l)
                                    : base + k + (raw.j - l);
      } else {  // GEMM(l, i, j): next writer of tile (i, j) at iteration l+1
        const std::int64_t l2 = l + 1;
        const std::int64_t k2 = t_ - 1 - l2;
        const std::int64_t base2 = task_base_[static_cast<std::size_t>(l2)];
        if (raw.i == l2 && raw.j == l2)
          view.successor = base2;  // GETRF(l+1)
        else if (raw.j == l2)
          view.successor = base2 + (raw.i - l2);  // TRSM(l+1, i, l+1)
        else if (raw.i == l2)
          view.successor = base2 + k2 + (raw.j - l2);  // TRSM(l+1, l+1, j)
        else
          view.successor = lu_gemm(l2, raw.i, raw.j);
      }
      break;
    }
    case SimKernel::kCholesky: {
      const std::int64_t base = inst_base_[static_cast<std::size_t>(l)];
      if (raw.type == TaskType::kPotrf) {
        view.publishes = base;
      } else if (raw.type == TaskType::kTrsm) {
        view.publishes = base + (raw.i - l);
      } else if (raw.type == TaskType::kSyrk) {
        // SYRK(l, i, i) -> POTRF(l+1) when i reaches the diagonal, else
        // SYRK(l+1, i, i).
        const std::int64_t l2 = l + 1;
        view.successor = raw.i == l2
                             ? task_base_[static_cast<std::size_t>(l2)]
                             : chol_row(l2, raw.i);
      } else {  // GEMM(l, i, j) -> TRSM(l+1, i, l+1) or GEMM(l+1, i, j)
        const std::int64_t l2 = l + 1;
        view.successor =
            raw.j == l2
                ? task_base_[static_cast<std::size_t>(l2)] + (raw.i - l2)
                : chol_row(l2, raw.i) + (raw.j - l2);
      }
      break;
    }
    case SimKernel::kSyrk: {
      // Update tasks publish nothing; each chains to the same (i, j) update
      // of the next A column.
      if (l + 1 < k_) {
        view.successor = raw.type == TaskType::kSyrk
                             ? syrk_row(l + 1, raw.i)
                             : syrk_row(l + 1, raw.i) + 1 + raw.j;
      }
      break;
    }
  }
  return view;
}

ImplicitInstance& ImplicitWorkload::begin_instance(std::int64_t instance_id,
                                                   std::int32_t producer) {
  const std::int64_t slot = pool_.acquire();
  live_.at_or_insert(instance_id, slot) = slot;
  ++live_count_;
  if (live_count_ > live_peak_) live_peak_ = live_count_;
  ImplicitInstance& state = pool_[slot];
  state.producer_node = producer;
  state.used_groups = 0;
  return state;
}

void ImplicitWorkload::add_consumer(ImplicitInstance& state, std::int32_t node,
                                    std::int64_t waiter) {
  // Linear scan, like the materialized builder: group order is first
  // occurrence by node, and group counts are small (bounded by the
  // distribution's per-tile consumer spread, not by P).
  for (std::int32_t g = 0; g < state.used_groups; ++g) {
    ImplicitGroup& group = state.groups[static_cast<std::size_t>(g)];
    if (group.node == node) {
      group.waiters.push_back(waiter);
      return;
    }
  }
  if (state.used_groups == static_cast<std::int32_t>(state.groups.size()))
    state.groups.emplace_back();
  ImplicitGroup& group =
      state.groups[static_cast<std::size_t>(state.used_groups++)];
  group.node = node;
  group.waiters.clear();
  group.waiters.push_back(waiter);
}

ImplicitWorkload::InstanceHandle ImplicitWorkload::publish(
    std::int64_t instance, const TaskView& task) {
  ImplicitInstance& state = begin_instance(instance, task.node);
  const std::int64_t l = task.l;
  const std::int64_t i = task.i;
  const std::int64_t j = task.j;

  switch (kernel_) {
    case SimKernel::kLu: {
      const std::int64_t base = task_base_[static_cast<std::size_t>(l)];
      const std::int64_t k = t_ - 1 - l;
      if (task.type == TaskType::kGetrf) {
        // Tile (l, l): both TRSM panels, rows first (builder order).
        for (std::int64_t i2 = l + 1; i2 < t_; ++i2)
          add_consumer(state, owner(i2, l), base + (i2 - l));
        for (std::int64_t j2 = l + 1; j2 < t_; ++j2)
          add_consumer(state, owner(l, j2), base + k + (j2 - l));
      } else if (task.j == l) {
        // TRSM(l, i, l), tile (i, l): the GEMM row i.
        for (std::int64_t j2 = l + 1; j2 < t_; ++j2)
          add_consumer(state, owner(i, j2), lu_gemm(l, i, j2));
      } else {
        // TRSM(l, l, j), tile (l, j): the GEMM column j.
        for (std::int64_t i2 = l + 1; i2 < t_; ++i2)
          add_consumer(state, owner(i2, j), lu_gemm(l, i2, j));
      }
      break;
    }
    case SimKernel::kCholesky: {
      if (task.type == TaskType::kPotrf) {
        const std::int64_t base = task_base_[static_cast<std::size_t>(l)];
        for (std::int64_t i2 = l + 1; i2 < t_; ++i2)
          add_consumer(state, owner(i2, l), base + (i2 - l));
      } else {
        // TRSM(l, i, l), tile (i, l): SYRK(i, i), then GEMMs of row i,
        // then GEMMs of column i in lower rows — the builder's traversal.
        add_consumer(state, owner(i, i), chol_row(l, i));
        for (std::int64_t j2 = l + 1; j2 < i; ++j2)
          add_consumer(state, owner(i, j2), chol_row(l, i) + (j2 - l));
        for (std::int64_t i2 = i + 1; i2 < t_; ++i2)
          add_consumer(state, owner(i2, i), chol_row(l, i2) + (i - l));
      }
      break;
    }
    case SimKernel::kSyrk: {
      // A load: instance ordinal encodes (row ir, column lc).
      const std::int64_t ir = instance / k_;
      const std::int64_t lc = instance % k_;
      add_consumer(state, owner(ir, ir), syrk_row(lc, ir));
      for (std::int64_t j2 = 0; j2 < ir; ++j2)
        add_consumer(state, owner(ir, j2), syrk_row(lc, ir) + 1 + j2);
      for (std::int64_t i2 = ir + 1; i2 < t_; ++i2)
        add_consumer(state, owner(i2, ir), syrk_row(lc, i2) + 1 + ir);
      break;
    }
  }
  return &state;
}

void ImplicitWorkload::release(std::int64_t instance_id) {
  const std::int64_t* slot = live_.find(instance_id);
  if (slot == nullptr)
    throw std::logic_error("releasing an instance that is not in flight");
  pool_.release(*slot);
  live_.erase(instance_id);
  --live_count_;
}

}  // namespace anyblock::sim
