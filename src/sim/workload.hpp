// Implicit-DAG workload builders for the cluster simulator.
//
// The right-looking factorizations have a fixed dependency structure, so
// instead of a generic DAG the builder emits:
//   * a flat task table (type, iteration, tile, owner node) with a
//     precomputed dependency count,
//   * per-tile *chains* (the sequence of tasks writing a tile runs on its
//     owner, so chain edges never communicate), and
//   * published *instances*: each panel tile is produced once (by
//     GETRF/POTRF/TRSM) and then consumed by update tasks; consumers are
//     grouped by node, one tile message per remote group (eager sends with
//     per-destination dedup — the communication scheme of Fig. 2).
#pragma once

#include <cstdint>
#include <vector>

#include "core/distribution.hpp"
#include "sim/machine.hpp"

namespace anyblock::sim {

/// Task and instance ids are 64-bit throughout: LU at t >= ~1700 already
/// has more than INT32_MAX tasks, and the implicit generator hands out the
/// same ordinals for grids far past that (see implicit_workload.hpp).
struct SimTask {
  TaskType type;
  std::int32_t l;  ///< iteration
  std::int32_t i;  ///< tile row
  std::int32_t j;  ///< tile column
  std::int32_t node;
  std::int32_t deps;            ///< unmet dependencies at start
  std::int64_t successor = -1;  ///< next task writing the same tile
  std::int64_t publishes = -1;  ///< instance produced, if any
};

/// Consumers of one published tile on one node.
struct InstanceGroup {
  std::int32_t node;
  std::vector<std::int64_t> waiters;  ///< task ids unblocked by availability
};

/// A published tile (exactly one per matrix tile in these algorithms).
struct Instance {
  std::int32_t producer_node;
  std::vector<InstanceGroup> groups;
};

struct Workload {
  std::vector<SimTask> tasks;
  std::vector<Instance> instances;
  double total_flops = 0.0;

  [[nodiscard]] std::int64_t task_count() const {
    return static_cast<std::int64_t>(tasks.size());
  }
  /// Tile messages the eager protocol will send (remote groups).
  [[nodiscard]] std::int64_t message_count() const;
};

/// Builds the LU task graph for a t x t tile matrix under `distribution`.
Workload build_lu_workload(std::int64_t t,
                           const core::Distribution& distribution,
                           const MachineConfig& machine);

/// Builds the Cholesky (lower) task graph.
Workload build_cholesky_workload(std::int64_t t,
                                 const core::Distribution& distribution,
                                 const MachineConfig& machine);

/// Builds the SYRK task graph C -= A*A^T for C of t x t tiles (lower,
/// owned per `dist_c`) and A of t x k tiles (owned per `dist_a`, column l
/// mapped through column l mod t).  A tiles enter as zero-cost kLoad tasks
/// so their broadcast along C colrows is charged to the network like any
/// published tile.
Workload build_syrk_workload(std::int64_t t, std::int64_t k,
                             const core::Distribution& dist_c,
                             const core::Distribution& dist_a,
                             const MachineConfig& machine);

}  // namespace anyblock::sim
