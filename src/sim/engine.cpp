#include "sim/engine.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace anyblock::sim {
namespace {

/// Scheduling priority: smaller key runs first.  Earlier iterations beat
/// later ones; within an iteration, factorizations beat solves beat updates
/// — keeping the critical path (the panel chain) moving.
std::int64_t priority_key(const SimTask& task) {
  int rank = 3;
  switch (task.type) {
    case TaskType::kLoad:
    case TaskType::kGetrf:
    case TaskType::kPotrf: rank = 0; break;
    case TaskType::kTrsm: rank = 1; break;
    case TaskType::kSyrk: rank = 2; break;
    case TaskType::kGemm: rank = 3; break;
  }
  return static_cast<std::int64_t>(task.l) * 4 + rank;
}

struct Event {
  double time;
  enum class Kind : std::uint8_t { kTaskFinish, kArrival } kind;
  std::int32_t a;  ///< task id (finish) or instance id (arrival)
  std::int32_t b;  ///< destination node (arrival); group index
  std::uint64_t sequence;  ///< deterministic FIFO tie-break
};

struct EventLater {
  bool operator()(const Event& x, const Event& y) const {
    if (x.time != y.time) return x.time > y.time;
    return x.sequence > y.sequence;
  }
};

struct ReadyEntry {
  std::int64_t key;
  std::int32_t task;
};

struct ReadyLater {
  bool operator()(const ReadyEntry& x, const ReadyEntry& y) const {
    if (x.key != y.key) return x.key > y.key;
    return x.task > y.task;
  }
};

class Simulator {
 public:
  Simulator(Workload workload, const MachineConfig& machine)
      : work_(std::move(workload)),
        machine_(machine),
        free_workers_(static_cast<std::size_t>(machine.nodes),
                      machine.workers_per_node),
        ready_(static_cast<std::size_t>(machine.nodes)),
        out_free_(static_cast<std::size_t>(machine.nodes), 0.0),
        in_free_(static_cast<std::size_t>(machine.nodes), 0.0) {
    report_.per_node.resize(static_cast<std::size_t>(machine.nodes));
    if (machine.workers_per_node < 1)
      throw std::invalid_argument("need at least one worker per node");
    if (!machine.node_speed.empty()) {
      if (machine.node_speed.size() !=
          static_cast<std::size_t>(machine.nodes))
        throw std::invalid_argument("node_speed must list every node");
      for (const double speed : machine.node_speed) {
        if (speed <= 0.0)
          throw std::invalid_argument("node speeds must be positive");
      }
    }
  }

  SimReport run() {
    // Seed: every task with no dependencies is ready at time zero.
    for (std::size_t id = 0; id < work_.tasks.size(); ++id) {
      const SimTask& task = work_.tasks[id];
      if (task.node < 0 || task.node >= machine_.nodes)
        throw std::invalid_argument("task node outside the machine");
      if (task.deps == 0) enqueue_ready(static_cast<std::int32_t>(id), 0.0);
    }

    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      now_ = event.time;
      if (event.kind == Event::Kind::kTaskFinish) {
        on_task_finish(event.a);
      } else {
        on_arrival(event.a, event.b);
      }
    }

    report_.makespan_seconds = now_;
    report_.total_flops = work_.total_flops;
    report_.tasks = work_.task_count();
    return std::move(report_);
  }

 private:
  void push_event(double time, Event::Kind kind, std::int32_t a,
                  std::int32_t b) {
    events_.push({time, kind, a, b, sequence_++});
  }

  /// A task became runnable at `time`: start it if a worker is free on its
  /// node, otherwise park it in the node's priority queue.
  void enqueue_ready(std::int32_t task_id, double time) {
    const SimTask& task = work_.tasks[static_cast<std::size_t>(task_id)];
    auto& free = free_workers_[static_cast<std::size_t>(task.node)];
    if (free > 0) {
      --free;
      start_task(task_id, time);
    } else {
      // FIFO ablation: readiness order replaces the critical-path key.
      const std::int64_t key = machine_.priority_scheduling
                                   ? priority_key(task)
                                   : static_cast<std::int64_t>(ready_seq_++);
      ready_[static_cast<std::size_t>(task.node)].push({key, task_id});
    }
  }

  void start_task(std::int32_t task_id, double time) {
    const SimTask& task = work_.tasks[static_cast<std::size_t>(task_id)];
    const double duration =
        machine_.task_seconds(task.type) / machine_.speed_of(task.node);
    auto& node = report_.per_node[static_cast<std::size_t>(task.node)];
    node.busy_seconds += duration;
    ++node.tasks;
    push_event(time + duration, Event::Kind::kTaskFinish, task_id, 0);
  }

  void satisfy(std::int32_t task_id, double time) {
    SimTask& task = work_.tasks[static_cast<std::size_t>(task_id)];
    if (--task.deps == 0) enqueue_ready(task_id, time);
  }

  void on_task_finish(std::int32_t task_id) {
    const SimTask& task = work_.tasks[static_cast<std::size_t>(task_id)];

    // Free the worker; pull the best parked task on this node.
    auto& queue = ready_[static_cast<std::size_t>(task.node)];
    if (!queue.empty()) {
      const std::int32_t next = queue.top().task;
      queue.pop();
      start_task(next, now_);
    } else {
      ++free_workers_[static_cast<std::size_t>(task.node)];
    }

    // Chain successor (same tile, same node).
    if (task.successor >= 0) satisfy(task.successor, now_);

    // Published tile: local consumers now; remote groups receive messages —
    // serially from the producer (the Chameleon point-to-point model) or
    // through a binomial forwarding tree (collectives ablation).
    if (task.publishes >= 0) {
      const Instance& instance =
          work_.instances[static_cast<std::size_t>(task.publishes)];
      for (std::size_t g = 0; g < instance.groups.size(); ++g) {
        const InstanceGroup& group = instance.groups[g];
        if (group.node == task.node) {
          for (const std::int32_t waiter : group.waiters) satisfy(waiter, now_);
        } else if (!machine_.tree_broadcast) {
          send_tile(task.node, group.node, task.publishes,
                    static_cast<std::int32_t>(g));
        }
      }
      if (machine_.tree_broadcast)
        forward_tree(task.publishes, /*position=*/0, task.node);
    }
  }

  /// Remote group indices of an instance, in group order; position p in the
  /// broadcast tree maps to remotes[p-1] (the producer is position 0).
  std::vector<std::int32_t> remote_groups(std::int32_t instance_id) const {
    const Instance& instance =
        work_.instances[static_cast<std::size_t>(instance_id)];
    std::vector<std::int32_t> remotes;
    for (std::size_t g = 0; g < instance.groups.size(); ++g) {
      if (instance.groups[g].node != instance.producer_node)
        remotes.push_back(static_cast<std::int32_t>(g));
    }
    return remotes;
  }

  /// Binomial broadcast step: the holder at `position` sends the tile to
  /// positions position + 2^k for every 2^k > position still in range.
  void forward_tree(std::int32_t instance_id, std::int64_t position,
                    std::int32_t from_node) {
    const auto remotes = remote_groups(instance_id);
    const auto m = static_cast<std::int64_t>(remotes.size()) + 1;
    for (std::int64_t step = 1; step < m; step *= 2) {
      if (step <= position) continue;
      const std::int64_t child = position + step;
      if (child >= m) break;
      const std::int32_t group_index =
          remotes[static_cast<std::size_t>(child - 1)];
      const Instance& instance =
          work_.instances[static_cast<std::size_t>(instance_id)];
      send_tile(from_node,
                instance.groups[static_cast<std::size_t>(group_index)].node,
                instance_id, group_index);
    }
  }

  /// Schedules one tile transfer src -> dst; links serialize transfers in
  /// the order they are requested (full duplex: the out-link of the sender
  /// and the in-link of the receiver are distinct resources).
  void send_tile(std::int32_t src, std::int32_t dst, std::int32_t instance,
                 std::int32_t group) {
    auto& out = out_free_[static_cast<std::size_t>(src)];
    auto& in = in_free_[static_cast<std::size_t>(dst)];
    const double start = std::max({now_, out, in});
    const double end = start + machine_.tile_transfer_seconds();
    out = end;
    in = end;
    push_event(end + machine_.latency_seconds(), Event::Kind::kArrival,
               instance, group);
    auto& node = report_.per_node[static_cast<std::size_t>(src)];
    ++node.messages_sent;
    node.bytes_sent += machine_.tile_bytes();
    ++report_.messages;
  }

  void on_arrival(std::int32_t instance_id, std::int32_t group_index) {
    const InstanceGroup& group =
        work_.instances[static_cast<std::size_t>(instance_id)]
            .groups[static_cast<std::size_t>(group_index)];
    for (const std::int32_t waiter : group.waiters) satisfy(waiter, now_);
    if (machine_.tree_broadcast) {
      // This receiver becomes a forwarder: find its tree position.
      const auto remotes = remote_groups(instance_id);
      for (std::size_t p = 0; p < remotes.size(); ++p) {
        if (remotes[p] == group_index) {
          forward_tree(instance_id, static_cast<std::int64_t>(p) + 1,
                       group.node);
          break;
        }
      }
    }
  }

  Workload work_;
  const MachineConfig& machine_;
  SimReport report_;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t sequence_ = 0;
  std::uint64_t ready_seq_ = 0;
  double now_ = 0.0;

  std::vector<int> free_workers_;
  std::vector<std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                                  ReadyLater>>
      ready_;
  std::vector<double> out_free_;
  std::vector<double> in_free_;
};

}  // namespace

double SimReport::efficiency(const MachineConfig& machine) const {
  double busy = 0.0;
  for (const auto& node : per_node) busy += node.busy_seconds;
  const double capacity = makespan_seconds *
                          static_cast<double>(machine.nodes) *
                          machine.workers_per_node;
  return capacity > 0 ? busy / capacity : 0.0;
}

SimReport simulate(Workload workload, const MachineConfig& machine) {
  return Simulator(std::move(workload), machine).run();
}

SimReport simulate_lu(std::int64_t t, const core::Distribution& distribution,
                      const MachineConfig& machine) {
  return simulate(build_lu_workload(t, distribution, machine), machine);
}

SimReport simulate_cholesky(std::int64_t t,
                            const core::Distribution& distribution,
                            const MachineConfig& machine) {
  return simulate(build_cholesky_workload(t, distribution, machine), machine);
}

SimReport simulate_syrk(std::int64_t t, std::int64_t k,
                        const core::Distribution& dist_c,
                        const core::Distribution& dist_a,
                        const MachineConfig& machine) {
  return simulate(build_syrk_workload(t, k, dist_c, dist_a, machine),
                  machine);
}

}  // namespace anyblock::sim
