#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/implicit_workload.hpp"
#include "sim/pool.hpp"
#include "sim/workload_25d.hpp"
#include "util/stopwatch.hpp"

namespace anyblock::sim {
namespace {

const char* task_type_name(TaskType type) {
  switch (type) {
    case TaskType::kGetrf: return "getrf";
    case TaskType::kPotrf: return "potrf";
    case TaskType::kTrsm: return "trsm";
    case TaskType::kGemm: return "gemm";
    case TaskType::kSyrk: return "syrk";
    case TaskType::kLoad: return "load";
    case TaskType::kFlush: return "flush";
    case TaskType::kReduce: return "reduce";
  }
  return "task";
}

/// Scheduling priority: smaller key runs first.  Earlier iterations beat
/// later ones; within an iteration, factorizations beat solves beat updates
/// — keeping the critical path (the panel chain) moving.
std::int64_t priority_key(const TaskView& task) {
  int rank = 3;
  switch (task.type) {
    case TaskType::kLoad:
    case TaskType::kFlush:
    case TaskType::kReduce:
    case TaskType::kGetrf:
    case TaskType::kPotrf: rank = 0; break;
    case TaskType::kTrsm: rank = 1; break;
    case TaskType::kSyrk: rank = 2; break;
    case TaskType::kGemm: rank = 3; break;
  }
  return static_cast<std::int64_t>(task.l) * 4 + rank;
}

struct ReadyEntry {
  std::int64_t key;
  std::int64_t task;
};

struct ReadyLater {
  bool operator()(const ReadyEntry& x, const ReadyEntry& y) const {
    if (x.key != y.key) return x.key > y.key;
    // Construction-order ordinal: ties resolve the same way in both
    // workload modes because implicit ordinals equal materialized ids.
    return x.task > y.task;
  }
};

/// Model adapter over a fully materialized Workload: the seed
/// representation, still the default and the equivalence oracle.
class MaterializedModel {
 public:
  MaterializedModel(Workload work, std::int64_t nodes)
      : work_(std::move(work)), nodes_(nodes) {}

  [[nodiscard]] std::int64_t task_count() const { return work_.task_count(); }
  [[nodiscard]] double total_flops() const { return work_.total_flops; }
  /// Everything stays resident, so the "frontier" is the whole DAG.
  [[nodiscard]] std::int64_t frontier_peak() const {
    return work_.task_count();
  }

  template <class F>
  void for_each_initially_ready(F&& f) const {
    // Same pass as the seed engine: validate every task's node, seed the
    // dependency-free ones in id order.
    for (std::size_t id = 0; id < work_.tasks.size(); ++id) {
      const SimTask& task = work_.tasks[id];
      if (task.node < 0 || task.node >= nodes_)
        throw std::invalid_argument("task node outside the machine");
      if (task.deps == 0) f(static_cast<std::int64_t>(id));
    }
  }

  [[nodiscard]] TaskView task(std::int64_t id) const {
    const SimTask& task = work_.tasks[static_cast<std::size_t>(id)];
    TaskView view;
    view.type = task.type;
    view.l = task.l;
    view.i = task.i;
    view.j = task.j;
    view.node = task.node;
    view.successor = task.successor;
    view.publishes = task.publishes;
    return view;
  }

  bool satisfy(std::int64_t id) {
    return --work_.tasks[static_cast<std::size_t>(id)].deps == 0;
  }

  using InstanceHandle = const Instance*;
  InstanceHandle publish(std::int64_t instance_id, const TaskView&) {
    return instance(instance_id);
  }
  [[nodiscard]] InstanceHandle instance(std::int64_t instance_id) const {
    return &work_.instances[static_cast<std::size_t>(instance_id)];
  }
  void release(std::int64_t) {}

  static std::int32_t producer_node(InstanceHandle handle) {
    return handle->producer_node;
  }
  static std::int64_t group_count(InstanceHandle handle) {
    return static_cast<std::int64_t>(handle->groups.size());
  }
  static std::int32_t group_node(InstanceHandle handle, std::int64_t g) {
    return handle->groups[static_cast<std::size_t>(g)].node;
  }
  template <class F>
  static void for_each_waiter(InstanceHandle handle, std::int64_t g, F&& f) {
    for (const std::int64_t waiter :
         handle->groups[static_cast<std::size_t>(g)].waiters)
      f(waiter);
  }

 private:
  Workload work_;
  std::int64_t nodes_;
};

/// The event loop, templated over the DAG representation (Model) and the
/// pending-event structure (Queue).  All four combinations simulate the
/// exact same trajectory; the template exists so the hot path pays for
/// neither virtual dispatch nor the representation it does not use.
template <class Model, class Queue>
class SimulatorCore {
 public:
  SimulatorCore(Model& model, const MachineConfig& machine)
      : model_(model),
        machine_(machine),
        injector_(machine.faults),  // validates the plan
        free_workers_(static_cast<std::size_t>(machine.nodes),
                      machine.workers_per_node),
        ready_(static_cast<std::size_t>(machine.nodes)),
        out_free_(static_cast<std::size_t>(machine.nodes), 0.0),
        in_free_(static_cast<std::size_t>(machine.nodes), 0.0) {
    report_.per_node.resize(static_cast<std::size_t>(machine.nodes));
    if (machine_.recorder != nullptr) {
      node_sinks_.reserve(static_cast<std::size_t>(machine.nodes));
      for (std::int64_t node = 0; node < machine.nodes; ++node)
        node_sinks_.push_back(
            machine_.recorder->track("node " + std::to_string(node)));
    }
    if (machine.workers_per_node < 1)
      throw std::invalid_argument("need at least one worker per node");
    if (machine.collective.algorithm == comm::Algorithm::kPipelinedChain &&
        machine.collective.chain_chunks < 1)
      throw std::invalid_argument("chain_chunks must be at least 1");
    if (!machine.node_speed.empty()) {
      if (machine.node_speed.size() !=
          static_cast<std::size_t>(machine.nodes))
        throw std::invalid_argument("node_speed must list every node");
      for (const double speed : machine.node_speed) {
        if (speed <= 0.0)
          throw std::invalid_argument("node speeds must be positive");
      }
    }
  }

  SimReport run() {
    const Stopwatch watch;
    model_.for_each_initially_ready(
        [&](std::int64_t id) { enqueue_ready(id, 0.0); });

    while (!events_.empty()) {
      const Event event = events_.pop();
      now_ = event.time;
      ++report_.events;
      if (event.kind == Event::Kind::kTaskFinish) {
        on_task_finish(event.a);
      } else if (event.kind == Event::Kind::kRetransmit) {
        on_retransmit(event);
      } else {
        on_arrival(event);
      }
    }

    report_.makespan_seconds = now_;
    report_.total_flops = model_.total_flops();
    report_.tasks = model_.task_count();
    report_.faults = injector_.stats();
    report_.frontier_peak = model_.frontier_peak();
    report_.run_seconds = watch.seconds();
    return std::move(report_);
  }

 private:
  using InstanceHandle = typename Model::InstanceHandle;

  void push_event(double time, Event::Kind kind, std::int64_t a,
                  std::int32_t b, std::int32_t c = 0, std::int32_t src = -1,
                  std::int32_t attempt = 0, bool duplicate = false) {
    Event event;
    event.time = time;
    event.kind = kind;
    event.a = a;
    event.b = b;
    event.c = c;
    event.src = src;
    event.attempt = attempt;
    event.duplicate = duplicate;
    event.sequence = sequence_++;
    events_.push(event);
  }

  /// A task became runnable at `time`: start it if a worker is free on its
  /// node, otherwise park it in the node's priority queue.
  void enqueue_ready(std::int64_t task_id, double time) {
    const TaskView task = model_.task(task_id);
    auto& free = free_workers_[static_cast<std::size_t>(task.node)];
    if (free > 0) {
      --free;
      start_task(task_id, task, time);
    } else {
      // FIFO ablation: readiness order replaces the critical-path key.
      const std::int64_t key = machine_.priority_scheduling
                                   ? priority_key(task)
                                   : static_cast<std::int64_t>(ready_seq_++);
      ready_[static_cast<std::size_t>(task.node)].push({key, task_id});
    }
  }

  void start_task(std::int64_t task_id, const TaskView& task, double time) {
    const double duration =
        machine_.task_seconds(task.type) / machine_.perturbed_speed(task.node);
    auto& node = report_.per_node[static_cast<std::size_t>(task.node)];
    node.busy_seconds += duration;
    ++node.tasks;
    if (machine_.recorder != nullptr) {
      // Virtual-time interval: start and finish are both known here, so
      // the whole slice is recorded at schedule time.
      obs::Event event;
      event.kind = obs::EventKind::kSimTask;
      event.name = std::string(task_type_name(task.type)) + "(" +
                   std::to_string(task.i) + "," + std::to_string(task.j) +
                   ")";
      event.start_seconds = time;
      event.end_seconds = time + duration;
      event.priority = static_cast<int>(task.l);
      node_sinks_[static_cast<std::size_t>(task.node)]->record(
          std::move(event));
    }
    push_event(time + duration, Event::Kind::kTaskFinish, task_id, 0);
  }

  void satisfy(std::int64_t task_id, double time) {
    if (model_.satisfy(task_id)) enqueue_ready(task_id, time);
  }

  void on_task_finish(std::int64_t task_id) {
    const TaskView task = model_.task(task_id);

    // Free the worker; pull the best parked task on this node.
    auto& queue = ready_[static_cast<std::size_t>(task.node)];
    if (!queue.empty()) {
      const std::int64_t next = queue.top().task;
      queue.pop();
      start_task(next, model_.task(next), now_);
    } else {
      ++free_workers_[static_cast<std::size_t>(task.node)];
    }

    // Chain successor (same tile, same node).
    if (task.successor >= 0) satisfy(task.successor, now_);

    // Published tile: local consumers now; remote groups receive messages
    // through the configured collective — the exact counterpart of
    // comm::multicast_send, so simulated message counts match the measured
    // vmpi counters per algorithm.
    if (task.publishes >= 0) {
      const InstanceHandle handle = model_.publish(task.publishes, task);
      const std::int64_t groups = Model::group_count(handle);
      for (std::int64_t g = 0; g < groups; ++g) {
        if (Model::group_node(handle, g) == task.node)
          Model::for_each_waiter(
              handle, g, [&](std::int64_t waiter) { satisfy(waiter, now_); });
      }
      switch (machine_.collective.algorithm) {
        case comm::Algorithm::kEagerP2P: {
          for (std::int64_t g = 0; g < groups; ++g) {
            const std::int32_t dst = Model::group_node(handle, g);
            if (dst == task.node) continue;
            send_tile(task.node, dst, task.publishes,
                      static_cast<std::int32_t>(g), 0, machine_.tile_bytes());
          }
          break;
        }
        case comm::Algorithm::kBinomialTree: {
          remote_groups(handle);
          forward_tree(handle, task.publishes, /*position=*/0, task.node);
          break;
        }
        case comm::Algorithm::kPipelinedChain: {
          // The producer pushes every chunk to the head of the chain; each
          // receiver relays chunks onward as they arrive (on_arrival).
          remote_groups(handle);
          if (remotes_.empty()) break;
          const std::int32_t head =
              Model::group_node(handle, remotes_[0]);
          for (std::int64_t chunk = 0; chunk < chain_chunks(); ++chunk) {
            send_tile(task.node, head, task.publishes, remotes_[0],
                      static_cast<std::int32_t>(chunk), chunk_bytes());
          }
          break;
        }
      }
      // No pending transfer references the instance (e.g. every consumer
      // was local): the model can reclaim it right away.
      if (inflight_.find(task.publishes) == nullptr)
        model_.release(task.publishes);
    }
  }

  [[nodiscard]] std::int64_t chain_chunks() const {
    return machine_.collective.chain_chunks;
  }
  [[nodiscard]] double chunk_bytes() const {
    return machine_.tile_bytes() / static_cast<double>(chain_chunks());
  }

  /// Fills remotes_ with the remote group indices of `handle`, in group
  /// order; position p in the broadcast tree maps to remotes_[p-1] (the
  /// producer is position 0).  One scratch vector: no per-event allocation.
  void remote_groups(InstanceHandle handle) {
    remotes_.clear();
    const std::int64_t groups = Model::group_count(handle);
    const std::int32_t producer = Model::producer_node(handle);
    for (std::int64_t g = 0; g < groups; ++g) {
      if (Model::group_node(handle, g) != producer)
        remotes_.push_back(static_cast<std::int32_t>(g));
    }
  }

  /// Binomial broadcast step: the holder at `position` sends the tile to
  /// positions position + 2^k for every 2^k > position still in range.
  /// Uses remotes_ as filled by the caller.
  void forward_tree(InstanceHandle handle, std::int64_t instance_id,
                    std::int64_t position, std::int32_t from_node) {
    const auto m = static_cast<std::int64_t>(remotes_.size()) + 1;
    for (std::int64_t step = 1; step < m; step *= 2) {
      if (step <= position) continue;
      const std::int64_t child = position + step;
      if (child >= m) break;
      const std::int32_t group_index =
          remotes_[static_cast<std::size_t>(child - 1)];
      send_tile(from_node, Model::group_node(handle, group_index),
                instance_id, group_index, 0, machine_.tile_bytes());
    }
  }

  /// Counts one more pending transfer event (arrival or retransmit)
  /// referencing `instance`.
  void ref_instance(std::int64_t instance) {
    ++inflight_.at_or_insert(instance, 0);
  }

  /// A pending transfer event referencing `instance` was consumed; when the
  /// last one goes, the model reclaims the instance (implicit mode recycles
  /// its group state — the mechanism that keeps memory at the frontier).
  void unref_instance(std::int64_t instance) {
    std::int64_t* refs = inflight_.find(instance);
    if (--*refs == 0) {
      inflight_.erase(instance);
      model_.release(instance);
    }
  }

  /// Schedules one transfer of `bytes` src -> dst; links serialize
  /// transfers in the order they are requested (full duplex: the out-link
  /// of the sender and the in-link of the receiver are distinct resources).
  ///
  /// `attempt` 0 is the application-level send; only it books the message
  /// counters and the kSimTransfer event, so report_.messages keeps
  /// matching the closed forms under faults.  Retransmissions (attempt > 0)
  /// occupy the wire all the same but count only in the fault stats.
  void send_tile(std::int32_t src, std::int32_t dst, std::int64_t instance,
                 std::int32_t group, std::int32_t chunk, double bytes,
                 std::int32_t attempt = 0) {
    fault::Fate fate;
    if (injector_.message_faults())
      fate = injector_.fate_of(src, dst, instance,
                               static_cast<std::uint64_t>(chunk), attempt);
    auto& out = out_free_[static_cast<std::size_t>(src)];
    auto& in = in_free_[static_cast<std::size_t>(dst)];
    const double start = std::max({now_, out, in});
    double wire_seconds = bytes / (machine_.link_bandwidth_gbps * 1e9);
    if (machine_.faults.link_jitter > 0.0) {
      // Deterministic per-transfer bandwidth factor in [1 - j, 1 + j].
      const double u = fault::unit_draw(
          machine_.faults.seed,
          {fault::kStreamLinkJitter, static_cast<std::uint64_t>(src),
           static_cast<std::uint64_t>(dst), static_cast<std::uint64_t>(instance),
           static_cast<std::uint64_t>(chunk),
           static_cast<std::uint64_t>(attempt)});
      wire_seconds /= 1.0 - machine_.faults.link_jitter +
                      2.0 * machine_.faults.link_jitter * u;
    }
    const double end = start + wire_seconds;
    out = end;
    in = end;
    if (attempt == 0) {
      auto& node = report_.per_node[static_cast<std::size_t>(src)];
      ++node.messages_sent;
      node.bytes_sent += bytes;
      ++report_.messages;
      if (machine_.recorder != nullptr) {
        // Link occupancy window on the sender's track: one event per
        // simulated message, so kSimTransfer counts equal report_.messages.
        obs::Event event;
        event.kind = obs::EventKind::kSimTransfer;
        event.start_seconds = start;
        event.end_seconds = end;
        event.source = src;
        event.dest = dst;
        event.tag = instance;
        event.bytes = static_cast<std::int64_t>(bytes);
        event.flow = machine_.recorder->next_flow();
        node_sinks_[static_cast<std::size_t>(src)]->record(std::move(event));
      }
    }
    if (fate.dropped) {
      injector_.note_drop();
      record_fault(src, "drop", src, dst, instance);
      if (attempt >= machine_.faults.max_retries)
        throw std::runtime_error(
            "sim: message permanently lost after " +
            std::to_string(attempt + 1) + " attempts (instance " +
            std::to_string(instance) + ", node " + std::to_string(src) +
            " -> " + std::to_string(dst) + ")");
      // Receiver-driven recovery in virtual time: the receiver notices the
      // missing message one (backed-off) timeout after it should have
      // arrived and requests a retransmission.
      injector_.note_timeout_wait();
      const double timeout = machine_.faults.recv_timeout_ms * 1e-3 *
                             std::pow(2.0, static_cast<double>(attempt));
      ref_instance(instance);
      push_event(end + machine_.latency_seconds() + timeout,
                 Event::Kind::kRetransmit, instance, group, chunk, src,
                 attempt + 1);
      return;
    }
    double extra = 0.0;
    if (fate.delay_seconds > 0.0) {
      injector_.note_delay();
      record_fault(src, "delay", src, dst, instance);
      extra = fate.delay_seconds;
    }
    ref_instance(instance);
    push_event(end + machine_.latency_seconds() + extra, Event::Kind::kArrival,
               instance, group, chunk, src);
    if (fate.duplicated) {
      injector_.note_duplicate();
      record_fault(src, "duplicate", src, dst, instance);
      ref_instance(instance);
      push_event(end + machine_.latency_seconds() + extra,
                 Event::Kind::kArrival, instance, group, chunk, src, attempt,
                 /*duplicate=*/true);
    }
  }

  /// The virtual receiver timed out on a dropped transmission: push the
  /// retained copy again with the bumped attempt number (it can be dropped
  /// again — the backoff above keeps doubling).
  void on_retransmit(const Event& event) {
    injector_.note_retry();
    const InstanceHandle handle = model_.instance(event.a);
    const std::int32_t dst = Model::group_node(handle, event.b);
    record_fault(dst, "retry", event.src, dst, event.a);
    const double bytes =
        machine_.collective.algorithm == comm::Algorithm::kPipelinedChain
            ? chunk_bytes()
            : machine_.tile_bytes();
    send_tile(event.src, dst, event.a, event.b, event.c, bytes,
              event.attempt);
    unref_instance(event.a);
  }

  /// Records a fault/recovery event on a node track (virtual time; the
  /// simulator is single-threaded so any track is safe to append to).
  void record_fault(std::int32_t track_node, const char* what,
                    std::int32_t src, std::int32_t dst,
                    std::int64_t instance) {
    if (machine_.recorder == nullptr) return;
    obs::Event event;
    event.kind = obs::EventKind::kFault;
    event.name = what;
    event.start_seconds = event.end_seconds = now_;
    event.source = src;
    event.dest = dst;
    event.tag = instance;
    node_sinks_[static_cast<std::size_t>(track_node)]->record(
        std::move(event));
  }

  /// Position of `group_index` in the remote order (1-based, producer = 0).
  [[nodiscard]] std::int64_t position_of(std::int32_t group_index) const {
    for (std::size_t p = 0; p < remotes_.size(); ++p) {
      if (remotes_[p] == group_index) return static_cast<std::int64_t>(p) + 1;
    }
    throw std::logic_error("arrival at a node outside the multicast group");
  }

  void on_arrival(const Event& event) {
    const std::int64_t instance_id = event.a;
    const std::int32_t group_index = event.b;
    const std::int32_t chunk = event.c;
    const InstanceHandle handle = model_.instance(instance_id);
    const std::int32_t group_node = Model::group_node(handle, group_index);
    if (event.duplicate) {
      // At-least-once delivery: the injected extra copy is detected by its
      // repeated sequence number and discarded before it can satisfy
      // waiters, relay chain chunks, or bump the chunk counter.
      injector_.note_dedup_discard();
      record_fault(group_node, "dedup", event.src, group_node, instance_id);
      unref_instance(instance_id);
      return;
    }
    switch (machine_.collective.algorithm) {
      case comm::Algorithm::kEagerP2P: {
        Model::for_each_waiter(
            handle, group_index,
            [&](std::int64_t waiter) { satisfy(waiter, now_); });
        break;
      }
      case comm::Algorithm::kBinomialTree: {
        Model::for_each_waiter(
            handle, group_index,
            [&](std::int64_t waiter) { satisfy(waiter, now_); });
        // This receiver becomes a forwarder at its tree position.
        remote_groups(handle);
        forward_tree(handle, instance_id, position_of(group_index),
                     group_node);
        break;
      }
      case comm::Algorithm::kPipelinedChain: {
        // Relay the chunk down the chain, then count it; waiters run only
        // once the whole tile (every chunk) has arrived.
        remote_groups(handle);
        const std::int64_t position = position_of(group_index);
        if (position < static_cast<std::int64_t>(remotes_.size())) {
          const std::int32_t next =
              remotes_[static_cast<std::size_t>(position)];
          send_tile(group_node, Model::group_node(handle, next), instance_id,
                    next, chunk, chunk_bytes());
        }
        // Chunk counters key by (instance, group); entries are erased once
        // the tile completes, so the map tracks in-flight tiles only.
        const std::int64_t key = instance_id * machine_.nodes + group_index;
        std::int64_t& arrived = chain_arrived_.at_or_insert(key, 0);
        if (++arrived == chain_chunks()) {
          chain_arrived_.erase(key);
          Model::for_each_waiter(
              handle, group_index,
              [&](std::int64_t waiter) { satisfy(waiter, now_); });
        }
        break;
      }
    }
    unref_instance(instance_id);
  }

  Model& model_;
  const MachineConfig& machine_;
  /// Deterministic message-fault schedule shared with vmpi (counters only
  /// when the plan is disabled — every fate_of call is skipped then).
  fault::FaultInjector injector_;
  SimReport report_;

  Queue events_;
  std::uint64_t sequence_ = 0;
  std::uint64_t ready_seq_ = 0;
  double now_ = 0.0;

  std::vector<int> free_workers_;
  std::vector<std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                                  ReadyLater>>
      ready_;
  std::vector<double> out_free_;
  std::vector<double> in_free_;
  /// Chunks arrived so far per (instance, group), chain mode only.
  FlatMap64 chain_arrived_;
  /// Pending transfer events per instance; zero => the model may reclaim.
  FlatMap64 inflight_;
  /// Scratch for remote_groups() (cleared per use, allocated once).
  std::vector<std::int32_t> remotes_;
  /// Per-node trace tracks (empty when machine_.recorder is null).
  std::vector<obs::TrackSink*> node_sinks_;
};

template <class Model>
SimReport run_model(Model& model, const MachineConfig& machine) {
  if (machine.event_queue == EventQueueMode::kBinaryHeap)
    return SimulatorCore<Model, BinaryHeapEventQueue>(model, machine).run();
  return SimulatorCore<Model, CalendarQueue>(model, machine).run();
}

/// Shared build-then-run scaffolding of the three kernel entry points.
template <class MakeImplicit, class MakeWorkload>
SimReport simulate_kernel(const MachineConfig& machine,
                          MakeImplicit&& make_implicit,
                          MakeWorkload&& make_workload) {
  const Stopwatch watch;
  if (machine.workload_mode == WorkloadMode::kImplicit) {
    auto model = make_implicit();
    const double build = watch.seconds();
    SimReport report = run_model(model, machine);
    report.build_seconds = build;
    return report;
  }
  MaterializedModel model(make_workload(), machine.nodes);
  const double build = watch.seconds();
  SimReport report = run_model(model, machine);
  report.build_seconds = build;
  return report;
}

}  // namespace

double SimReport::efficiency(const MachineConfig& machine) const {
  double busy = 0.0;
  for (const auto& node : per_node) busy += node.busy_seconds;
  const double capacity = makespan_seconds *
                          static_cast<double>(machine.nodes) *
                          machine.workers_per_node;
  return capacity > 0 ? busy / capacity : 0.0;
}

SimReport simulate(Workload workload, const MachineConfig& machine) {
  const Stopwatch watch;
  MaterializedModel model(std::move(workload), machine.nodes);
  const double build = watch.seconds();
  SimReport report = run_model(model, machine);
  report.build_seconds = build;
  return report;
}

SimReport simulate_lu(std::int64_t t, const core::Distribution& distribution,
                      const MachineConfig& machine) {
  return simulate_kernel(
      machine,
      [&] { return ImplicitWorkload(SimKernel::kLu, t, distribution, machine); },
      [&] { return build_lu_workload(t, distribution, machine); });
}

SimReport simulate_cholesky(std::int64_t t,
                            const core::Distribution& distribution,
                            const MachineConfig& machine) {
  return simulate_kernel(
      machine,
      [&] {
        return ImplicitWorkload(SimKernel::kCholesky, t, distribution,
                                machine);
      },
      [&] { return build_cholesky_workload(t, distribution, machine); });
}

SimReport simulate_lu_25d(std::int64_t t,
                          const core::ReplicatedDistribution& distribution,
                          const MachineConfig& machine) {
  return simulate_kernel(
      machine,
      [&] {
        return Implicit25dWorkload(SimKernel::kLu, t, distribution, machine);
      },
      [&] { return build_lu_workload_25d(t, distribution, machine); });
}

SimReport simulate_cholesky_25d(
    std::int64_t t, const core::ReplicatedDistribution& distribution,
    const MachineConfig& machine) {
  return simulate_kernel(
      machine,
      [&] {
        return Implicit25dWorkload(SimKernel::kCholesky, t, distribution,
                                   machine);
      },
      [&] { return build_cholesky_workload_25d(t, distribution, machine); });
}

SimReport simulate_syrk(std::int64_t t, std::int64_t k,
                        const core::Distribution& dist_c,
                        const core::Distribution& dist_a,
                        const MachineConfig& machine) {
  return simulate_kernel(
      machine,
      [&] { return ImplicitWorkload(t, k, dist_c, dist_a, machine); },
      [&] { return build_syrk_workload(t, k, dist_c, dist_a, machine); });
}

}  // namespace anyblock::sim
