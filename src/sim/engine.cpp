#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "obs/trace.hpp"

namespace anyblock::sim {
namespace {

const char* task_type_name(TaskType type) {
  switch (type) {
    case TaskType::kGetrf: return "getrf";
    case TaskType::kPotrf: return "potrf";
    case TaskType::kTrsm: return "trsm";
    case TaskType::kGemm: return "gemm";
    case TaskType::kSyrk: return "syrk";
    case TaskType::kLoad: return "load";
  }
  return "task";
}

/// Scheduling priority: smaller key runs first.  Earlier iterations beat
/// later ones; within an iteration, factorizations beat solves beat updates
/// — keeping the critical path (the panel chain) moving.
std::int64_t priority_key(const SimTask& task) {
  int rank = 3;
  switch (task.type) {
    case TaskType::kLoad:
    case TaskType::kGetrf:
    case TaskType::kPotrf: rank = 0; break;
    case TaskType::kTrsm: rank = 1; break;
    case TaskType::kSyrk: rank = 2; break;
    case TaskType::kGemm: rank = 3; break;
  }
  return static_cast<std::int64_t>(task.l) * 4 + rank;
}

struct Event {
  double time;
  enum class Kind : std::uint8_t { kTaskFinish, kArrival, kRetransmit } kind;
  std::int32_t a;  ///< task id (finish) or instance id (arrival/retransmit)
  std::int32_t b;  ///< destination node (arrival); group index
  std::int32_t c;  ///< chunk index (pipelined-chain arrivals; 0 otherwise)
  std::int32_t src = -1;      ///< sending node (arrival/retransmit)
  std::int32_t attempt = 0;   ///< transmission attempt (retransmit)
  bool duplicate = false;     ///< injected duplicate copy (arrival)
  std::uint64_t sequence;     ///< deterministic FIFO tie-break
};

struct EventLater {
  bool operator()(const Event& x, const Event& y) const {
    if (x.time != y.time) return x.time > y.time;
    return x.sequence > y.sequence;
  }
};

struct ReadyEntry {
  std::int64_t key;
  std::int32_t task;
};

struct ReadyLater {
  bool operator()(const ReadyEntry& x, const ReadyEntry& y) const {
    if (x.key != y.key) return x.key > y.key;
    return x.task > y.task;
  }
};

class Simulator {
 public:
  Simulator(Workload workload, const MachineConfig& machine)
      : work_(std::move(workload)),
        machine_(machine),
        injector_(machine.faults),  // validates the plan
        free_workers_(static_cast<std::size_t>(machine.nodes),
                      machine.workers_per_node),
        ready_(static_cast<std::size_t>(machine.nodes)),
        out_free_(static_cast<std::size_t>(machine.nodes), 0.0),
        in_free_(static_cast<std::size_t>(machine.nodes), 0.0) {
    report_.per_node.resize(static_cast<std::size_t>(machine.nodes));
    if (machine_.recorder != nullptr) {
      node_sinks_.reserve(static_cast<std::size_t>(machine.nodes));
      for (std::int64_t node = 0; node < machine.nodes; ++node)
        node_sinks_.push_back(
            machine_.recorder->track("node " + std::to_string(node)));
    }
    if (machine.workers_per_node < 1)
      throw std::invalid_argument("need at least one worker per node");
    if (machine.collective.algorithm == comm::Algorithm::kPipelinedChain &&
        machine.collective.chain_chunks < 1)
      throw std::invalid_argument("chain_chunks must be at least 1");
    if (!machine.node_speed.empty()) {
      if (machine.node_speed.size() !=
          static_cast<std::size_t>(machine.nodes))
        throw std::invalid_argument("node_speed must list every node");
      for (const double speed : machine.node_speed) {
        if (speed <= 0.0)
          throw std::invalid_argument("node speeds must be positive");
      }
    }
  }

  SimReport run() {
    // Seed: every task with no dependencies is ready at time zero.
    for (std::size_t id = 0; id < work_.tasks.size(); ++id) {
      const SimTask& task = work_.tasks[id];
      if (task.node < 0 || task.node >= machine_.nodes)
        throw std::invalid_argument("task node outside the machine");
      if (task.deps == 0) enqueue_ready(static_cast<std::int32_t>(id), 0.0);
    }

    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      now_ = event.time;
      if (event.kind == Event::Kind::kTaskFinish) {
        on_task_finish(event.a);
      } else if (event.kind == Event::Kind::kRetransmit) {
        on_retransmit(event);
      } else {
        on_arrival(event);
      }
    }

    report_.makespan_seconds = now_;
    report_.total_flops = work_.total_flops;
    report_.tasks = work_.task_count();
    report_.faults = injector_.stats();
    return std::move(report_);
  }

 private:
  void push_event(double time, Event::Kind kind, std::int32_t a,
                  std::int32_t b, std::int32_t c = 0, std::int32_t src = -1,
                  std::int32_t attempt = 0, bool duplicate = false) {
    events_.push({time, kind, a, b, c, src, attempt, duplicate, sequence_++});
  }

  /// A task became runnable at `time`: start it if a worker is free on its
  /// node, otherwise park it in the node's priority queue.
  void enqueue_ready(std::int32_t task_id, double time) {
    const SimTask& task = work_.tasks[static_cast<std::size_t>(task_id)];
    auto& free = free_workers_[static_cast<std::size_t>(task.node)];
    if (free > 0) {
      --free;
      start_task(task_id, time);
    } else {
      // FIFO ablation: readiness order replaces the critical-path key.
      const std::int64_t key = machine_.priority_scheduling
                                   ? priority_key(task)
                                   : static_cast<std::int64_t>(ready_seq_++);
      ready_[static_cast<std::size_t>(task.node)].push({key, task_id});
    }
  }

  void start_task(std::int32_t task_id, double time) {
    const SimTask& task = work_.tasks[static_cast<std::size_t>(task_id)];
    const double duration =
        machine_.task_seconds(task.type) / machine_.perturbed_speed(task.node);
    auto& node = report_.per_node[static_cast<std::size_t>(task.node)];
    node.busy_seconds += duration;
    ++node.tasks;
    if (machine_.recorder != nullptr) {
      // Virtual-time interval: start and finish are both known here, so
      // the whole slice is recorded at schedule time.
      obs::Event event;
      event.kind = obs::EventKind::kSimTask;
      event.name = std::string(task_type_name(task.type)) + "(" +
                   std::to_string(task.i) + "," + std::to_string(task.j) +
                   ")";
      event.start_seconds = time;
      event.end_seconds = time + duration;
      event.priority = static_cast<int>(task.l);
      node_sinks_[static_cast<std::size_t>(task.node)]->record(
          std::move(event));
    }
    push_event(time + duration, Event::Kind::kTaskFinish, task_id, 0);
  }

  void satisfy(std::int32_t task_id, double time) {
    SimTask& task = work_.tasks[static_cast<std::size_t>(task_id)];
    if (--task.deps == 0) enqueue_ready(task_id, time);
  }

  void on_task_finish(std::int32_t task_id) {
    const SimTask& task = work_.tasks[static_cast<std::size_t>(task_id)];

    // Free the worker; pull the best parked task on this node.
    auto& queue = ready_[static_cast<std::size_t>(task.node)];
    if (!queue.empty()) {
      const std::int32_t next = queue.top().task;
      queue.pop();
      start_task(next, now_);
    } else {
      ++free_workers_[static_cast<std::size_t>(task.node)];
    }

    // Chain successor (same tile, same node).
    if (task.successor >= 0) satisfy(task.successor, now_);

    // Published tile: local consumers now; remote groups receive messages
    // through the configured collective — the exact counterpart of
    // comm::multicast_send, so simulated message counts match the measured
    // vmpi counters per algorithm.
    if (task.publishes >= 0) {
      const Instance& instance =
          work_.instances[static_cast<std::size_t>(task.publishes)];
      for (const InstanceGroup& group : instance.groups) {
        if (group.node == task.node)
          for (const std::int32_t waiter : group.waiters) satisfy(waiter, now_);
      }
      switch (machine_.collective.algorithm) {
        case comm::Algorithm::kEagerP2P: {
          for (std::size_t g = 0; g < instance.groups.size(); ++g) {
            if (instance.groups[g].node == task.node) continue;
            send_tile(task.node, instance.groups[g].node, task.publishes,
                      static_cast<std::int32_t>(g), 0, machine_.tile_bytes());
          }
          break;
        }
        case comm::Algorithm::kBinomialTree: {
          forward_tree(task.publishes, /*position=*/0, task.node);
          break;
        }
        case comm::Algorithm::kPipelinedChain: {
          // The producer pushes every chunk to the head of the chain; each
          // receiver relays chunks onward as they arrive (on_arrival).
          const auto remotes = remote_groups(task.publishes);
          if (remotes.empty()) break;
          const std::int32_t head =
              instance.groups[static_cast<std::size_t>(remotes[0])].node;
          for (std::int64_t chunk = 0; chunk < chain_chunks(); ++chunk) {
            send_tile(task.node, head, task.publishes, remotes[0],
                      static_cast<std::int32_t>(chunk), chunk_bytes());
          }
          break;
        }
      }
    }
  }

  [[nodiscard]] std::int64_t chain_chunks() const {
    return machine_.collective.chain_chunks;
  }
  [[nodiscard]] double chunk_bytes() const {
    return machine_.tile_bytes() / static_cast<double>(chain_chunks());
  }

  /// Remote group indices of an instance, in group order; position p in the
  /// broadcast tree maps to remotes[p-1] (the producer is position 0).
  std::vector<std::int32_t> remote_groups(std::int32_t instance_id) const {
    const Instance& instance =
        work_.instances[static_cast<std::size_t>(instance_id)];
    std::vector<std::int32_t> remotes;
    for (std::size_t g = 0; g < instance.groups.size(); ++g) {
      if (instance.groups[g].node != instance.producer_node)
        remotes.push_back(static_cast<std::int32_t>(g));
    }
    return remotes;
  }

  /// Binomial broadcast step: the holder at `position` sends the tile to
  /// positions position + 2^k for every 2^k > position still in range.
  void forward_tree(std::int32_t instance_id, std::int64_t position,
                    std::int32_t from_node) {
    const auto remotes = remote_groups(instance_id);
    const auto m = static_cast<std::int64_t>(remotes.size()) + 1;
    for (std::int64_t step = 1; step < m; step *= 2) {
      if (step <= position) continue;
      const std::int64_t child = position + step;
      if (child >= m) break;
      const std::int32_t group_index =
          remotes[static_cast<std::size_t>(child - 1)];
      const Instance& instance =
          work_.instances[static_cast<std::size_t>(instance_id)];
      send_tile(from_node,
                instance.groups[static_cast<std::size_t>(group_index)].node,
                instance_id, group_index, 0, machine_.tile_bytes());
    }
  }

  /// Schedules one transfer of `bytes` src -> dst; links serialize
  /// transfers in the order they are requested (full duplex: the out-link
  /// of the sender and the in-link of the receiver are distinct resources).
  ///
  /// `attempt` 0 is the application-level send; only it books the message
  /// counters and the kSimTransfer event, so report_.messages keeps
  /// matching the closed forms under faults.  Retransmissions (attempt > 0)
  /// occupy the wire all the same but count only in the fault stats.
  void send_tile(std::int32_t src, std::int32_t dst, std::int32_t instance,
                 std::int32_t group, std::int32_t chunk, double bytes,
                 std::int32_t attempt = 0) {
    fault::Fate fate;
    if (injector_.message_faults())
      fate = injector_.fate_of(src, dst, instance,
                               static_cast<std::uint64_t>(chunk), attempt);
    auto& out = out_free_[static_cast<std::size_t>(src)];
    auto& in = in_free_[static_cast<std::size_t>(dst)];
    const double start = std::max({now_, out, in});
    double wire_seconds = bytes / (machine_.link_bandwidth_gbps * 1e9);
    if (machine_.faults.link_jitter > 0.0) {
      // Deterministic per-transfer bandwidth factor in [1 - j, 1 + j].
      const double u = fault::unit_draw(
          machine_.faults.seed,
          {fault::kStreamLinkJitter, static_cast<std::uint64_t>(src),
           static_cast<std::uint64_t>(dst), static_cast<std::uint64_t>(instance),
           static_cast<std::uint64_t>(chunk),
           static_cast<std::uint64_t>(attempt)});
      wire_seconds /= 1.0 - machine_.faults.link_jitter +
                      2.0 * machine_.faults.link_jitter * u;
    }
    const double end = start + wire_seconds;
    out = end;
    in = end;
    if (attempt == 0) {
      auto& node = report_.per_node[static_cast<std::size_t>(src)];
      ++node.messages_sent;
      node.bytes_sent += bytes;
      ++report_.messages;
      if (machine_.recorder != nullptr) {
        // Link occupancy window on the sender's track: one event per
        // simulated message, so kSimTransfer counts equal report_.messages.
        obs::Event event;
        event.kind = obs::EventKind::kSimTransfer;
        event.start_seconds = start;
        event.end_seconds = end;
        event.source = src;
        event.dest = dst;
        event.tag = instance;
        event.bytes = static_cast<std::int64_t>(bytes);
        event.flow = machine_.recorder->next_flow();
        node_sinks_[static_cast<std::size_t>(src)]->record(std::move(event));
      }
    }
    if (fate.dropped) {
      injector_.note_drop();
      record_fault(src, "drop", src, dst, instance);
      if (attempt >= machine_.faults.max_retries)
        throw std::runtime_error(
            "sim: message permanently lost after " +
            std::to_string(attempt + 1) + " attempts (instance " +
            std::to_string(instance) + ", node " + std::to_string(src) +
            " -> " + std::to_string(dst) + ")");
      // Receiver-driven recovery in virtual time: the receiver notices the
      // missing message one (backed-off) timeout after it should have
      // arrived and requests a retransmission.
      injector_.note_timeout_wait();
      const double timeout = machine_.faults.recv_timeout_ms * 1e-3 *
                             std::pow(2.0, static_cast<double>(attempt));
      push_event(end + machine_.latency_seconds() + timeout,
                 Event::Kind::kRetransmit, instance, group, chunk, src,
                 attempt + 1);
      return;
    }
    double extra = 0.0;
    if (fate.delay_seconds > 0.0) {
      injector_.note_delay();
      record_fault(src, "delay", src, dst, instance);
      extra = fate.delay_seconds;
    }
    push_event(end + machine_.latency_seconds() + extra, Event::Kind::kArrival,
               instance, group, chunk, src);
    if (fate.duplicated) {
      injector_.note_duplicate();
      record_fault(src, "duplicate", src, dst, instance);
      push_event(end + machine_.latency_seconds() + extra,
                 Event::Kind::kArrival, instance, group, chunk, src, attempt,
                 /*duplicate=*/true);
    }
  }

  /// The virtual receiver timed out on a dropped transmission: push the
  /// retained copy again with the bumped attempt number (it can be dropped
  /// again — the backoff above keeps doubling).
  void on_retransmit(const Event& event) {
    injector_.note_retry();
    const Instance& instance =
        work_.instances[static_cast<std::size_t>(event.a)];
    const std::int32_t dst =
        instance.groups[static_cast<std::size_t>(event.b)].node;
    record_fault(dst, "retry", event.src, dst, event.a);
    const double bytes =
        machine_.collective.algorithm == comm::Algorithm::kPipelinedChain
            ? chunk_bytes()
            : machine_.tile_bytes();
    send_tile(event.src, dst, event.a, event.b, event.c, bytes,
              event.attempt);
  }

  /// Records a fault/recovery event on a node track (virtual time; the
  /// simulator is single-threaded so any track is safe to append to).
  void record_fault(std::int32_t track_node, const char* what,
                    std::int32_t src, std::int32_t dst,
                    std::int32_t instance) {
    if (machine_.recorder == nullptr) return;
    obs::Event event;
    event.kind = obs::EventKind::kFault;
    event.name = what;
    event.start_seconds = event.end_seconds = now_;
    event.source = src;
    event.dest = dst;
    event.tag = instance;
    node_sinks_[static_cast<std::size_t>(track_node)]->record(
        std::move(event));
  }

  /// Position of `group_index` in the remote order (1-based, producer = 0).
  [[nodiscard]] static std::int64_t position_of(
      const std::vector<std::int32_t>& remotes, std::int32_t group_index) {
    for (std::size_t p = 0; p < remotes.size(); ++p) {
      if (remotes[p] == group_index) return static_cast<std::int64_t>(p) + 1;
    }
    throw std::logic_error("arrival at a node outside the multicast group");
  }

  void on_arrival(const Event& event) {
    const std::int32_t instance_id = event.a;
    const std::int32_t group_index = event.b;
    const std::int32_t chunk = event.c;
    const Instance& instance =
        work_.instances[static_cast<std::size_t>(instance_id)];
    const InstanceGroup& group =
        instance.groups[static_cast<std::size_t>(group_index)];
    if (event.duplicate) {
      // At-least-once delivery: the injected extra copy is detected by its
      // repeated sequence number and discarded before it can satisfy
      // waiters, relay chain chunks, or bump the chunk counter.
      injector_.note_dedup_discard();
      record_fault(group.node, "dedup", event.src, group.node, instance_id);
      return;
    }
    switch (machine_.collective.algorithm) {
      case comm::Algorithm::kEagerP2P: {
        for (const std::int32_t waiter : group.waiters) satisfy(waiter, now_);
        break;
      }
      case comm::Algorithm::kBinomialTree: {
        for (const std::int32_t waiter : group.waiters) satisfy(waiter, now_);
        // This receiver becomes a forwarder at its tree position.
        const auto remotes = remote_groups(instance_id);
        forward_tree(instance_id, position_of(remotes, group_index),
                     group.node);
        break;
      }
      case comm::Algorithm::kPipelinedChain: {
        // Relay the chunk down the chain, then count it; waiters run only
        // once the whole tile (every chunk) has arrived.
        const auto remotes = remote_groups(instance_id);
        const std::int64_t position = position_of(remotes, group_index);
        if (position < static_cast<std::int64_t>(remotes.size())) {
          const std::int32_t next = remotes[static_cast<std::size_t>(position)];
          send_tile(group.node,
                    instance.groups[static_cast<std::size_t>(next)].node,
                    instance_id, next, chunk, chunk_bytes());
        }
        const std::int64_t key =
            (static_cast<std::int64_t>(instance_id) << 32) |
            static_cast<std::uint32_t>(group_index);
        if (++chain_arrived_[key] == chain_chunks()) {
          for (const std::int32_t waiter : group.waiters) satisfy(waiter, now_);
        }
        break;
      }
    }
  }

  Workload work_;
  const MachineConfig& machine_;
  /// Deterministic message-fault schedule shared with vmpi (counters only
  /// when the plan is disabled — every fate_of call is skipped then).
  fault::FaultInjector injector_;
  SimReport report_;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::uint64_t sequence_ = 0;
  std::uint64_t ready_seq_ = 0;
  double now_ = 0.0;

  std::vector<int> free_workers_;
  std::vector<std::priority_queue<ReadyEntry, std::vector<ReadyEntry>,
                                  ReadyLater>>
      ready_;
  std::vector<double> out_free_;
  std::vector<double> in_free_;
  /// Chunks arrived so far per (instance << 32 | group), chain mode only.
  std::unordered_map<std::int64_t, std::int64_t> chain_arrived_;
  /// Per-node trace tracks (empty when machine_.recorder is null).
  std::vector<obs::TrackSink*> node_sinks_;
};

}  // namespace

double SimReport::efficiency(const MachineConfig& machine) const {
  double busy = 0.0;
  for (const auto& node : per_node) busy += node.busy_seconds;
  const double capacity = makespan_seconds *
                          static_cast<double>(machine.nodes) *
                          machine.workers_per_node;
  return capacity > 0 ? busy / capacity : 0.0;
}

SimReport simulate(Workload workload, const MachineConfig& machine) {
  return Simulator(std::move(workload), machine).run();
}

SimReport simulate_lu(std::int64_t t, const core::Distribution& distribution,
                      const MachineConfig& machine) {
  return simulate(build_lu_workload(t, distribution, machine), machine);
}

SimReport simulate_cholesky(std::int64_t t,
                            const core::Distribution& distribution,
                            const MachineConfig& machine) {
  return simulate(build_cholesky_workload(t, distribution, machine), machine);
}

SimReport simulate_syrk(std::int64_t t, std::int64_t k,
                        const core::Distribution& dist_c,
                        const core::Distribution& dist_a,
                        const MachineConfig& machine) {
  return simulate(build_syrk_workload(t, k, dist_c, dist_a, machine),
                  machine);
}

}  // namespace anyblock::sim
