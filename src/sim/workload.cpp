#include "sim/workload.hpp"

#include <stdexcept>

namespace anyblock::sim {
namespace {

/// Incremental builder sharing the chain/instance bookkeeping between the
/// LU and Cholesky generators.
class WorkloadBuilder {
 public:
  WorkloadBuilder(std::int64_t t, const core::Distribution& distribution,
                  const MachineConfig& machine)
      : t_(t),
        dist_(distribution),
        machine_(machine),
        last_writer_(static_cast<std::size_t>(t * t), -1),
        instance_of_tile_(static_cast<std::size_t>(t * t), -1) {}

  [[nodiscard]] std::int32_t owner(std::int64_t i, std::int64_t j) const {
    return static_cast<std::int32_t>(dist_.owner(i, j));
  }

  /// Creates a task writing tile (i, j); chains it after the previous
  /// writer of that tile (same node, no communication).
  std::int64_t add_task(TaskType type, std::int64_t l, std::int64_t i,
                        std::int64_t j) {
    const auto id = static_cast<std::int64_t>(work_.tasks.size());
    SimTask task;
    task.type = type;
    task.l = static_cast<std::int32_t>(l);
    task.i = static_cast<std::int32_t>(i);
    task.j = static_cast<std::int32_t>(j);
    task.node = owner(i, j);
    task.deps = 0;
    const auto tile = static_cast<std::size_t>(i * t_ + j);
    if (last_writer_[tile] >= 0) {
      work_.tasks[static_cast<std::size_t>(last_writer_[tile])].successor = id;
      ++task.deps;
    }
    last_writer_[tile] = id;
    work_.tasks.push_back(task);
    work_.total_flops += machine_.task_flops(type);
    return id;
  }

  /// Creates a zero-cost task on `node` standing for an input tile that is
  /// already resident there (SYRK's A panel).
  std::int64_t add_load_task(std::int32_t node) {
    const auto id = static_cast<std::int64_t>(work_.tasks.size());
    SimTask task;
    task.type = TaskType::kLoad;
    task.l = task.i = task.j = -1;
    task.node = node;
    task.deps = 0;
    work_.tasks.push_back(task);
    return id;
  }

  /// Marks `task` as publishing an instance; returns its handle.
  std::int64_t publish_instance(std::int64_t task) {
    const auto inst = static_cast<std::int64_t>(work_.instances.size());
    work_.instances.push_back(
        {work_.tasks[static_cast<std::size_t>(task)].node, {}});
    work_.tasks[static_cast<std::size_t>(task)].publishes = inst;
    return inst;
  }

  /// Marks `task` as publishing tile (i, j) for later consumption.
  void publish(std::int64_t task, std::int64_t i, std::int64_t j) {
    instance_of_tile_[static_cast<std::size_t>(i * t_ + j)] =
        publish_instance(task);
  }

  /// Registers `task` as consuming instance `inst`: one more dependency,
  /// satisfied locally on the producer's node or by a message.
  void consume_instance(std::int64_t task, std::int64_t inst) {
    Instance& instance = work_.instances[static_cast<std::size_t>(inst)];
    SimTask& consumer = work_.tasks[static_cast<std::size_t>(task)];
    ++consumer.deps;
    for (auto& group : instance.groups) {
      if (group.node == consumer.node) {
        group.waiters.push_back(task);
        return;
      }
    }
    instance.groups.push_back({consumer.node, {task}});
  }

  /// Tile-keyed consume for the factorization builders.
  void consume(std::int64_t task, std::int64_t i, std::int64_t j) {
    const std::int64_t inst =
        instance_of_tile_[static_cast<std::size_t>(i * t_ + j)];
    if (inst < 0) throw std::logic_error("consuming an unpublished tile");
    consume_instance(task, inst);
  }

  Workload take() { return std::move(work_); }

 private:
  std::int64_t t_;
  const core::Distribution& dist_;
  const MachineConfig& machine_;
  Workload work_;
  std::vector<std::int64_t> last_writer_;
  std::vector<std::int64_t> instance_of_tile_;
};

}  // namespace

std::int64_t Workload::message_count() const {
  std::int64_t count = 0;
  for (const auto& instance : instances) {
    for (const auto& group : instance.groups) {
      if (group.node != instance.producer_node) ++count;
    }
  }
  return count;
}

Workload build_lu_workload(std::int64_t t,
                           const core::Distribution& distribution,
                           const MachineConfig& machine) {
  if (t <= 0) throw std::invalid_argument("tile grid must be positive");
  WorkloadBuilder builder(t, distribution, machine);
  for (std::int64_t l = 0; l < t; ++l) {
    const std::int64_t getrf = builder.add_task(TaskType::kGetrf, l, l, l);
    builder.publish(getrf, l, l);
    for (std::int64_t i = l + 1; i < t; ++i) {
      const std::int64_t trsm = builder.add_task(TaskType::kTrsm, l, i, l);
      builder.consume(trsm, l, l);
      builder.publish(trsm, i, l);
    }
    for (std::int64_t j = l + 1; j < t; ++j) {
      const std::int64_t trsm = builder.add_task(TaskType::kTrsm, l, l, j);
      builder.consume(trsm, l, l);
      builder.publish(trsm, l, j);
    }
    for (std::int64_t i = l + 1; i < t; ++i) {
      for (std::int64_t j = l + 1; j < t; ++j) {
        const std::int64_t gemm = builder.add_task(TaskType::kGemm, l, i, j);
        builder.consume(gemm, i, l);
        builder.consume(gemm, l, j);
      }
    }
  }
  return builder.take();
}

Workload build_syrk_workload(std::int64_t t, std::int64_t k,
                             const core::Distribution& dist_c,
                             const core::Distribution& dist_a,
                             const MachineConfig& machine) {
  if (t <= 0 || k <= 0)
    throw std::invalid_argument("tile grids must be positive");
  WorkloadBuilder builder(t, dist_c, machine);

  // A tiles: resident inputs, one published instance each.
  std::vector<std::int64_t> a_instance(static_cast<std::size_t>(t * k));
  for (std::int64_t i = 0; i < t; ++i) {
    for (std::int64_t l = 0; l < k; ++l) {
      const std::int64_t load = builder.add_load_task(
          static_cast<std::int32_t>(dist_a.owner(i, l % t)));
      a_instance[static_cast<std::size_t>(i * k + l)] =
          builder.publish_instance(load);
    }
  }
  const auto a_inst = [&](std::int64_t i, std::int64_t l) {
    return a_instance[static_cast<std::size_t>(i * k + l)];
  };

  for (std::int64_t l = 0; l < k; ++l) {
    for (std::int64_t i = 0; i < t; ++i) {
      const std::int64_t syrk = builder.add_task(TaskType::kSyrk, l, i, i);
      builder.consume_instance(syrk, a_inst(i, l));
      for (std::int64_t j = 0; j < i; ++j) {
        const std::int64_t gemm = builder.add_task(TaskType::kGemm, l, i, j);
        builder.consume_instance(gemm, a_inst(i, l));
        builder.consume_instance(gemm, a_inst(j, l));
      }
    }
  }
  return builder.take();
}

Workload build_cholesky_workload(std::int64_t t,
                                 const core::Distribution& distribution,
                                 const MachineConfig& machine) {
  if (t <= 0) throw std::invalid_argument("tile grid must be positive");
  WorkloadBuilder builder(t, distribution, machine);
  for (std::int64_t l = 0; l < t; ++l) {
    const std::int64_t potrf = builder.add_task(TaskType::kPotrf, l, l, l);
    builder.publish(potrf, l, l);
    for (std::int64_t i = l + 1; i < t; ++i) {
      const std::int64_t trsm = builder.add_task(TaskType::kTrsm, l, i, l);
      builder.consume(trsm, l, l);
      builder.publish(trsm, i, l);
    }
    for (std::int64_t i = l + 1; i < t; ++i) {
      const std::int64_t syrk = builder.add_task(TaskType::kSyrk, l, i, i);
      builder.consume(syrk, i, l);
      for (std::int64_t j = l + 1; j < i; ++j) {
        const std::int64_t gemm = builder.add_task(TaskType::kGemm, l, i, j);
        builder.consume(gemm, i, l);
        builder.consume(gemm, j, l);
      }
    }
  }
  return builder.take();
}

}  // namespace anyblock::sim
