// Pending-event set of the discrete-event simulator.
//
// Two interchangeable implementations pop events in exactly the same
// deterministic order — strictly increasing (time, sequence):
//
//   * BinaryHeapEventQueue: std::priority_queue over EventLater, the seed
//     engine's structure.  O(log n) per operation; kept as the oracle for
//     the property tests and as the BENCH_sim.json baseline.
//   * CalendarQueue: Brown's bucketed calendar queue (R. Brown, CACM 1988).
//     Events hash by time into a ring of width-w buckets; a sweep cursor
//     pops the current "day" bucket by bucket.  For the near-uniform
//     event-time distributions the factorization DAGs produce, insert and
//     pop are O(1) amortized — the difference between simulating millions
//     and billions of events.
//
// Determinism is a hard requirement (the implicit/materialized equivalence
// tests compare makespans bit-for-bit), so the calendar keeps each bucket
// sorted by EventLater and resolves cross-bucket candidates with the same
// comparator; bucket count and width only affect speed, never order.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace anyblock::sim {

/// One pending simulator event.  `a` holds a task or instance ordinal and
/// must be 64-bit: implicit workloads pass ordinals past 2^31 (LU with
/// t >= ~1700 has more than INT32_MAX tasks).
struct Event {
  double time = 0.0;
  enum class Kind : std::uint8_t { kTaskFinish, kArrival, kRetransmit } kind =
      Kind::kTaskFinish;
  std::int64_t a = 0;         ///< task ordinal (finish) or instance ordinal
  std::int32_t b = 0;         ///< destination group index (arrival)
  std::int32_t c = 0;         ///< chunk index (pipelined-chain arrivals)
  std::int32_t src = -1;      ///< sending node (arrival/retransmit)
  std::int32_t attempt = 0;   ///< transmission attempt (retransmit)
  bool duplicate = false;     ///< injected duplicate copy (arrival)
  std::uint64_t sequence = 0; ///< deterministic FIFO tie-break
};

/// Strict weak order "x fires after y": earlier time wins, then the lower
/// push sequence.  The priority_queue comparator and the calendar's
/// in-bucket sort are this same functor, so both structures agree on order.
struct EventLater {
  bool operator()(const Event& x, const Event& y) const {
    if (x.time != y.time) return x.time > y.time;
    return x.sequence > y.sequence;
  }
};

/// The seed engine's global heap, wrapped in the pop()-returning interface
/// shared with CalendarQueue.
class BinaryHeapEventQueue {
 public:
  void push(const Event& event) { heap_.push(event); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  Event pop() {
    Event event = heap_.top();
    heap_.pop();
    return event;
  }

 private:
  std::priority_queue<Event, std::vector<Event>, EventLater> heap_;
};

/// Bucketed calendar queue.  Buckets are vectors sorted descending by
/// (time, sequence) so back() is each bucket's earliest event; vectors are
/// recycled across years, so steady-state operation allocates nothing.
class CalendarQueue {
 public:
  CalendarQueue();

  void push(const Event& event);
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Removes and returns the (time, sequence)-minimal event.  Must not be
  /// called on an empty queue.
  Event pop();

  /// Introspection for tests and the BENCH harness.
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] double bucket_width() const { return width_; }
  [[nodiscard]] std::int64_t resizes() const { return resizes_; }

 private:
  /// Virtual bucket index of a timestamp: floor(time / width).  Monotone in
  /// time, so sweeping virtual buckets in order visits events in time order
  /// up to in-bucket ties (handled by the sorted buckets).
  [[nodiscard]] std::uint64_t virtual_bucket(double time) const;

  void insert_sorted(std::vector<Event>& bucket, const Event& event);
  /// Rebuilds with `buckets` buckets and a width estimated from a sample of
  /// the queued events.  Order-preserving by construction.
  void rebuild(std::size_t buckets);
  Event pop_direct();

  std::vector<std::vector<Event>> buckets_;
  std::size_t mask_ = 0;        ///< buckets_.size() - 1 (size is a power of 2)
  double width_ = 1.0;          ///< seconds per bucket
  std::size_t size_ = 0;
  std::uint64_t cursor_ = 0;    ///< virtual bucket the sweep is standing on
  std::int64_t resizes_ = 0;
  std::vector<Event> spill_;    ///< scratch vector reused by rebuild()
};

}  // namespace anyblock::sim
