// Allocation helpers for the 100x-scale simulator hot path.
//
//   * RecyclingPool<T>: slot pool with a free list.  Released objects keep
//     their heap allocations (a recycled InstanceState reuses its group and
//     waiter vectors' capacity), so steady-state publish/release cycles of
//     the implicit workload allocate nothing.
//   * FlatMap64: open-addressing hash map from int64 keys to int64 values
//     with linear probing and backward-shift deletion.  This is the
//     implicit DAG's frontier (task ordinal -> unmet dependencies): it sees
//     roughly three operations per task — billions per run — where the
//     node-based std::unordered_map's allocation-per-insert and pointer
//     chasing would dominate the whole simulation.
#pragma once

#include <cstdint>
#include <cstddef>
#include <deque>
#include <vector>

namespace anyblock::sim {

/// Pool of reusable T slots addressed by a dense index.  acquire() prefers
/// recycled slots; release() never destroys the object, so T's internal
/// buffers survive for the next acquire (callers re-initialize logically).
template <class T>
class RecyclingPool {
 public:
  std::int64_t acquire() {
    if (!free_.empty()) {
      const std::int64_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    slots_.emplace_back();
    return static_cast<std::int64_t>(slots_.size()) - 1;
  }

  void release(std::int64_t slot) { free_.push_back(slot); }

  T& operator[](std::int64_t slot) {
    return slots_[static_cast<std::size_t>(slot)];
  }
  const T& operator[](std::int64_t slot) const {
    return slots_[static_cast<std::size_t>(slot)];
  }

  [[nodiscard]] std::int64_t live() const {
    return static_cast<std::int64_t>(slots_.size() - free_.size());
  }

 private:
  std::deque<T> slots_;  // deque: references stay valid across acquire()
  std::vector<std::int64_t> free_;
};

/// Open-addressing int64 -> int64 map.  Keys must be non-negative (the
/// empty slot marker is -1); the table grows at 70% load and never shrinks
/// within a run — peak size is the DAG frontier, O(t^2), not O(t^3).
class FlatMap64 {
 public:
  FlatMap64() { reset(kMinSlots); }

  /// Returns a reference to the value for `key`, inserting `missing` first
  /// when absent.
  std::int64_t& at_or_insert(std::int64_t key, std::int64_t missing) {
    if ((size_ + 1) * 10 > slots_.size() * 7) grow();
    std::size_t slot = probe_start(key);
    while (true) {
      Slot& entry = slots_[slot];
      if (entry.key == key) return entry.value;
      if (entry.key == kEmpty) {
        entry.key = key;
        entry.value = missing;
        ++size_;
        if (size_ > peak_) peak_ = size_;
        return entry.value;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// Pointer to the value for `key`, or nullptr when absent.
  std::int64_t* find(std::int64_t key) {
    std::size_t slot = probe_start(key);
    while (true) {
      Slot& entry = slots_[slot];
      if (entry.key == key) return &entry.value;
      if (entry.key == kEmpty) return nullptr;
      slot = (slot + 1) & mask_;
    }
  }

  /// Removes `key` (which must be present), backward-shifting the probe
  /// chain so lookups never need tombstones.
  void erase(std::int64_t key) {
    std::size_t slot = probe_start(key);
    while (slots_[slot].key != key) slot = (slot + 1) & mask_;
    std::size_t hole = slot;
    std::size_t next = hole;
    while (true) {
      next = (next + 1) & mask_;
      const Slot& candidate = slots_[next];
      if (candidate.key == kEmpty) break;
      const std::size_t ideal = probe_start(candidate.key);
      // Move the candidate back iff its ideal slot lies outside the cyclic
      // interval (hole, next] — i.e. the hole sits on its probe path.
      const bool on_path = next >= hole ? (ideal <= hole || ideal > next)
                                        : (ideal <= hole && ideal > next);
      if (on_path) {
        slots_[hole] = candidate;
        hole = next;
      }
    }
    slots_[hole].key = kEmpty;
    --size_;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t peak_size() const { return peak_; }

 private:
  static constexpr std::int64_t kEmpty = -1;
  static constexpr std::size_t kMinSlots = 64;

  struct Slot {
    std::int64_t key = kEmpty;
    std::int64_t value = 0;
  };

  [[nodiscard]] std::size_t probe_start(std::int64_t key) const {
    // splitmix64 finalizer: full avalanche so sequential ordinals spread.
    auto x = static_cast<std::uint64_t>(key);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & mask_;
  }

  void reset(std::size_t slots) {
    slots_.assign(slots, Slot{});
    mask_ = slots - 1;
    size_ = 0;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    reset(old.size() * 2);
    for (const Slot& entry : old) {
      if (entry.key == kEmpty) continue;
      std::size_t slot = probe_start(entry.key);
      while (slots_[slot].key != kEmpty) slot = (slot + 1) & mask_;
      slots_[slot] = entry;
      ++size_;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace anyblock::sim
