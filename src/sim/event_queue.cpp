#include "sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace anyblock::sim {
namespace {

constexpr std::size_t kMinBuckets = 16;
/// Below this width the virtual-bucket division risks overflowing and the
/// buckets stop discriminating anyway (ties are handled in-bucket).
constexpr double kMinWidth = 1e-15;

}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets), mask_(kMinBuckets - 1) {}

std::uint64_t CalendarQueue::virtual_bucket(double time) const {
  if (time <= 0.0) return 0;
  const double index = time / width_;
  // Far-future events (retransmission backoff can push times many years
  // of bucket-widths out) saturate instead of overflowing; they are found
  // by the direct scan once the sweep exhausts nearer days.
  constexpr double kMaxIndex = 9.0e18;  // < 2^63, exactly representable
  if (index >= kMaxIndex) return static_cast<std::uint64_t>(kMaxIndex);
  return static_cast<std::uint64_t>(index);
}

void CalendarQueue::insert_sorted(std::vector<Event>& bucket,
                                  const Event& event) {
  // Buckets stay sorted "descending" under EventLater, i.e. back() is the
  // earliest (time, sequence).  Typical DES inserts land at the front or
  // back of a short bucket, so the binary search + memmove is cheap.
  const auto position =
      std::upper_bound(bucket.begin(), bucket.end(), event, EventLater{});
  bucket.insert(position, event);
}

void CalendarQueue::push(const Event& event) {
  const std::uint64_t vb = virtual_bucket(event.time);
  if (size_ == 0 || vb < cursor_) cursor_ = vb;
  insert_sorted(buckets_[vb & mask_], event);
  ++size_;
  if (size_ > 2 * buckets_.size()) rebuild(buckets_.size() * 2);
}

Event CalendarQueue::pop() {
  // Sweep at most one full year of buckets starting at the cursor.  An
  // event qualifies when it belongs to the virtual bucket the cursor is
  // standing on; later-year events sharing the physical bucket stay put.
  for (std::size_t step = 0; step <= mask_; ++step) {
    std::vector<Event>& bucket = buckets_[cursor_ & mask_];
    if (!bucket.empty() &&
        virtual_bucket(bucket.back().time) == cursor_) {
      Event event = bucket.back();
      bucket.pop_back();
      --size_;
      if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4)
        rebuild(buckets_.size() / 2);
      return event;
    }
    ++cursor_;
  }
  return pop_direct();
}

Event CalendarQueue::pop_direct() {
  // The current year is empty: find the globally earliest event with one
  // scan over the bucket minima and jump the cursor to its day.
  std::size_t best = buckets_.size();
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b].empty()) continue;
    if (best == buckets_.size() ||
        EventLater{}(buckets_[best].back(), buckets_[b].back()))
      best = b;
  }
  // size_ > 0 guarantees a nonempty bucket.
  auto& bucket = buckets_[best];
  Event event = bucket.back();
  bucket.pop_back();
  --size_;
  cursor_ = virtual_bucket(event.time);
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4)
    rebuild(buckets_.size() / 2);
  return event;
}

void CalendarQueue::rebuild(std::size_t buckets) {
  ++resizes_;
  spill_.clear();
  spill_.reserve(size_);
  for (auto& bucket : buckets_)
    spill_.insert(spill_.end(), bucket.begin(), bucket.end());

  // Width estimate (Brown's heuristic, simplified): average gap between the
  // earliest events, doubled so a bucket holds a couple of events.  The
  // estimate only tunes performance — order never depends on it.
  if (spill_.size() >= 2) {
    const std::size_t sample =
        std::min<std::size_t>(spill_.size(), 64);
    std::partial_sort(spill_.begin(),
                      spill_.begin() + static_cast<std::ptrdiff_t>(sample),
                      spill_.end(), [](const Event& x, const Event& y) {
                        return EventLater{}(y, x);  // earliest first
                      });
    const double spread = spill_[sample - 1].time - spill_[0].time;
    const double gap = spread / static_cast<double>(sample - 1);
    if (std::isfinite(gap) && gap > kMinWidth) width_ = 2.0 * gap;
  }

  const std::size_t count = std::max(buckets, kMinBuckets);
  buckets_.assign(count, {});
  mask_ = count - 1;
  size_ = 0;
  cursor_ = 0;
  for (const Event& event : spill_) {
    const std::uint64_t vb = virtual_bucket(event.time);
    if (size_ == 0 || vb < cursor_) cursor_ = vb;
    insert_sorted(buckets_[vb & mask_], event);
    ++size_;
  }
}

}  // namespace anyblock::sim
