#include "core/replicated.hpp"

#include <stdexcept>
#include <utility>

namespace anyblock::core {

ReplicatedDistribution::ReplicatedDistribution(
    std::shared_ptr<const Distribution> base, std::int64_t layers)
    : base_(std::move(base)), layers_(layers) {
  if (!base_) throw std::invalid_argument("replicated: null base distribution");
  if (layers_ < 1)
    throw std::invalid_argument("replicated: memory factor must be >= 1, got " +
                                std::to_string(layers_));
}

NodeId ReplicatedDistribution::owner(std::int64_t i, std::int64_t j) const {
  const std::int64_t m = i < j ? i : j;
  return replica(base_->owner(i, j), home_layer(m));
}

std::string ReplicatedDistribution::name() const {
  if (layers_ == 1) return base_->name();
  return base_->name() + "+2.5d(c=" + std::to_string(layers_) + ")";
}

}  // namespace anyblock::core
