// Pattern transformations.
//
// The cost metric T(G) is invariant under transposition and under any
// renaming of the nodes; canonical relabeling makes that usable — two
// patterns are *equivalent* when their canonical forms are equal, which
// deduplicates search results and lets tests state invariants cleanly.
#pragma once

#include "core/pattern.hpp"

namespace anyblock::core {

/// The transposed pattern (cell (i, j) -> (j, i)); swaps row/column roles,
/// so T_LU is preserved and colrows are preserved for square patterns.
Pattern transposed(const Pattern& pattern);

/// Renames nodes in order of first appearance (row-major scan); free cells
/// stay free.  Two patterns that differ only by node naming share one
/// canonical form.
Pattern canonical_relabel(const Pattern& pattern);

/// True when the patterns are equal up to a renaming of the nodes.
bool equivalent_up_to_relabel(const Pattern& a, const Pattern& b);

}  // namespace anyblock::core
