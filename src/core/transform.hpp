// Pattern transformations.
//
// The cost metric T(G) is invariant under transposition and under any
// renaming of the nodes; canonical relabeling makes that usable — two
// patterns are *equivalent* when their canonical forms are equal, which
// deduplicates search results and lets tests state invariants cleanly.
#pragma once

#include "core/pattern.hpp"

namespace anyblock::core {

/// The transposed pattern (cell (i, j) -> (j, i)); swaps row/column roles,
/// so T_LU is preserved and colrows are preserved for square patterns.
Pattern transposed(const Pattern& pattern);

/// Renames nodes in order of first appearance (row-major scan); free cells
/// stay free.  Two patterns that differ only by node naming share one
/// canonical form.
Pattern canonical_relabel(const Pattern& pattern);

/// True when the patterns are equal up to a renaming of the nodes.
bool equivalent_up_to_relabel(const Pattern& a, const Pattern& b);

/// The ownership pattern of 2.5D compute layer `layer` over a base pattern
/// on P_b nodes: every assigned cell b becomes its replica
/// `layer * P_b + b` in the stacked P_b * layers node space; free cells
/// stay free.  `layer_pattern(base, 0, c)` is the layer-0 pattern a 2.5D
/// distribution presents to redistribution tooling.  Throws
/// std::invalid_argument when layer is outside [0, layers) or layers < 1.
Pattern layer_pattern(const Pattern& base, std::int64_t layer,
                      std::int64_t layers);

/// Morphs a 2.5D layer pattern back onto its 2D base node space: node id
/// n -> n mod base_nodes, free cells stay free.  Round trip with
/// layer_pattern is the identity on ownership:
/// `project_to_base(layer_pattern(g, q, c), g.num_nodes()) == g` for every
/// layer q.  Throws std::invalid_argument when base_nodes < 1.
Pattern project_to_base(const Pattern& layered, std::int64_t base_nodes);

}  // namespace anyblock::core
