#include "core/pattern_search.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace anyblock::core {

std::uint64_t gcrm_attempt_seed(std::uint64_t base_seed, std::int64_t r,
                                std::int64_t s) {
  return split_seed(split_seed(base_seed, static_cast<std::uint64_t>(r)),
                    static_cast<std::uint64_t>(s));
}

std::int64_t gcrm_sweep_max_r(std::int64_t P,
                              const GcrmSearchOptions& options) {
  return static_cast<std::int64_t>(options.max_r_factor *
                                   std::sqrt(static_cast<double>(P)));
}

std::vector<std::int64_t> gcrm_feasible_sizes(std::int64_t P,
                                              std::int64_t max_r) {
  std::vector<std::int64_t> sizes;
  for (std::int64_t r = 2; r <= max_r; ++r) {
    if (gcrm_feasible(P, r)) sizes.push_back(r);
  }
  return sizes;
}

GcrmSearchResult gcrm_search(std::int64_t P, const GcrmSearchOptions& options,
                             bool keep_samples) {
  if (P <= 0) throw std::invalid_argument("P must be positive");
  GcrmSearchResult result;
  const std::int64_t max_r = gcrm_sweep_max_r(P, options);

  double best_balanced_cost = 0.0;
  bool have_balanced = false;

  for (const std::int64_t r : gcrm_feasible_sizes(P, max_r)) {
    for (std::int64_t s = 0; s < options.seeds; ++s) {
      const std::uint64_t seed = gcrm_attempt_seed(options.base_seed, r, s);
      GcrmResult attempt = gcrm_build(P, r, seed);
      const bool balanced =
          attempt.valid && attempt.pattern.is_balanced(options.balance_slack);
      if (keep_samples)
        result.samples.push_back(
            {r, seed, attempt.cost, attempt.valid, balanced});
      if (!attempt.valid) continue;

      // Balanced patterns strictly dominate unbalanced ones; among patterns
      // of the same class, lower z-bar wins.
      if (balanced) {
        if (!have_balanced || attempt.cost < best_balanced_cost) {
          have_balanced = true;
          best_balanced_cost = attempt.cost;
          result.best = std::move(attempt.pattern);
          result.best_cost = attempt.cost;
          result.best_r = r;
          result.best_seed = seed;
          result.found = true;
        }
      } else if (!have_balanced &&
                 (!result.found || attempt.cost < result.best_cost)) {
        result.best = std::move(attempt.pattern);
        result.best_cost = attempt.cost;
        result.best_r = r;
        result.best_seed = seed;
        result.found = true;
      }
    }
  }
  return result;
}

Pattern best_gcrm_pattern(std::int64_t P) {
  const GcrmSearchResult result = gcrm_search(P, GcrmSearchOptions{});
  if (!result.found)
    throw std::runtime_error("GCR&M search found no valid pattern");
  return result.best;
}

}  // namespace anyblock::core
