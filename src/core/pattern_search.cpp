#include "core/pattern_search.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace anyblock::core {

std::uint64_t gcrm_attempt_seed(std::uint64_t base_seed, std::int64_t r,
                                std::int64_t s) {
  return split_seed(split_seed(base_seed, static_cast<std::uint64_t>(r)),
                    static_cast<std::uint64_t>(s));
}

std::int64_t gcrm_sweep_max_r(std::int64_t P,
                              const GcrmSearchOptions& options) {
  // r <= f * sqrt(P)  <=>  r^2 <= f^2 * P.  Squaring first and taking the
  // exact integer square root keeps the boundary size: the old
  // static_cast<int64>(f * sqrt(P)) dropped r = k whenever the rounded
  // product landed at k - epsilon.  llround absorbs the one representation
  // rounding of f^2 * P (exact for integral f^2 * P in range).
  const double squared = options.max_r_factor * options.max_r_factor *
                         static_cast<double>(P);
  if (!(squared >= 1.0)) return 0;  // also rejects NaN / negative factors
  if (squared >= 9.2e18)
    throw std::overflow_error("gcrm_sweep_max_r: max_r_factor^2 * P overflows");
  return isqrt_floor(std::llround(squared));
}

double gcrm_balanced_cost_floor(std::int64_t P, std::int64_t r,
                                std::int64_t balance_slack) {
  // Minimum cells per node: loads are integers summing to r(r-1), so the
  // max load is >= ceil(r(r-1)/P); balancedness pulls every load to within
  // `slack` of it, and validity keeps every node above zero.
  const std::int64_t cells = r * (r - 1);
  std::int64_t c_min = ceil_div(cells, P) - balance_slack;
  if (c_min < 1) c_min = 1;
  // Fewest colrows a node owning c_min cells can appear on: its cells are
  // ordered pairs of its own colrows, so v(v-1) >= c_min (and v >= 2, both
  // colrows of any single cell).
  std::int64_t v = std::max<std::int64_t>(2, isqrt_floor(c_min));
  while (v * (v - 1) < c_min) ++v;
  return static_cast<double>(P * v) / static_cast<double>(r);
}

std::vector<std::int64_t> gcrm_feasible_sizes(std::int64_t P,
                                              std::int64_t max_r) {
  std::vector<std::int64_t> sizes;
  for (std::int64_t r = 2; r <= max_r; ++r) {
    if (gcrm_feasible(P, r)) sizes.push_back(r);
  }
  return sizes;
}

void GcrmSweepProfile::merge(const GcrmSweepProfile& other) {
  searches += other.searches;
  sizes_feasible += other.sizes_feasible;
  sizes_pruned += other.sizes_pruned;
  attempts_built += other.attempts_built;
  attempts_abandoned += other.attempts_abandoned;
  attempts_skipped += other.attempts_skipped;
  timings.phase1_seconds += other.timings.phase1_seconds;
  timings.covers_seconds += other.timings.covers_seconds;
  timings.match_seconds += other.timings.match_seconds;
  timings.fallback_seconds += other.timings.fallback_seconds;
  timings.finalize_seconds += other.timings.finalize_seconds;
  total_seconds += other.total_seconds;
}

std::vector<std::pair<std::string, double>> GcrmSweepProfile::metric_rows()
    const {
  return {
      {"sweep_searches", static_cast<double>(searches)},
      {"sweep_sizes_feasible", static_cast<double>(sizes_feasible)},
      {"sweep_sizes_pruned", static_cast<double>(sizes_pruned)},
      {"sweep_attempts_built", static_cast<double>(attempts_built)},
      {"sweep_attempts_abandoned", static_cast<double>(attempts_abandoned)},
      {"sweep_attempts_skipped", static_cast<double>(attempts_skipped)},
      {"sweep_phase1_seconds", timings.phase1_seconds},
      {"sweep_covers_seconds", timings.covers_seconds},
      {"sweep_match_seconds", timings.match_seconds},
      {"sweep_fallback_seconds", timings.fallback_seconds},
      {"sweep_finalize_seconds", timings.finalize_seconds},
      {"sweep_total_seconds", total_seconds},
  };
}

namespace {

/// One pattern size's local reduction: exactly what the flat sequential
/// sweep would keep had it only seen this size's attempts.  Strict `<`
/// keeps the earliest seed of equal cost, so merging blocks in ascending-r
/// order replays the flat sweep's tie-breaking.
struct SizeBest {
  bool have_balanced = false;
  double balanced_cost = 0.0;
  std::uint64_t balanced_seed = 0;

  bool have_valid = false;
  double valid_cost = 0.0;
  std::uint64_t valid_seed = 0;

  std::vector<GcrmSample> samples;
};

/// Runs all seeds of one pattern size.  `threshold` (nullable) is the
/// cheapest balanced cost built anywhere so far (+inf when none): attempts
/// abandon against it, and it tightens as this block builds cheaper
/// patterns.  Null threshold = reference mode: never abandon.
SizeBest reduce_size_block(std::int64_t P, std::int64_t r,
                           const GcrmSearchOptions& options,
                           bool keep_samples, double* threshold,
                           GcrmSweepProfile* profile) {
  SizeBest best;
  GcrmBuildControls controls;
  controls.timings = profile ? &profile->timings : nullptr;
  for (std::int64_t s = 0; s < options.seeds; ++s) {
    const std::uint64_t seed = gcrm_attempt_seed(options.base_seed, r, s);
    if (threshold) controls.abandon_above = *threshold;
    GcrmResult attempt = gcrm_build(P, r, seed, controls);
    if (attempt.abandoned) {
      if (profile) ++profile->attempts_abandoned;
      continue;
    }
    if (profile) ++profile->attempts_built;
    const bool balanced =
        attempt.valid && attempt.pattern.is_balanced(options.balance_slack);
    if (keep_samples)
      best.samples.push_back({r, seed, attempt.cost, attempt.valid, balanced});
    if (!attempt.valid) continue;
    if (balanced) {
      if (!best.have_balanced || attempt.cost < best.balanced_cost) {
        best.have_balanced = true;
        best.balanced_cost = attempt.cost;
        best.balanced_seed = seed;
      }
      if (threshold && attempt.cost < *threshold) *threshold = attempt.cost;
    }
    if (!best.have_valid || attempt.cost < best.valid_cost) {
      best.have_valid = true;
      best.valid_cost = attempt.cost;
      best.valid_seed = seed;
    }
  }
  return best;
}

}  // namespace

GcrmSearchResult gcrm_search(std::int64_t P, const GcrmSearchOptions& options,
                             bool keep_samples, GcrmSweepProfile* profile) {
  if (P <= 0) throw std::invalid_argument("P must be positive");
  const auto sweep_start = std::chrono::steady_clock::now();

  const std::vector<std::int64_t> sizes =
      gcrm_feasible_sizes(P, gcrm_sweep_max_r(P, options));
  if (profile) {
    ++profile->searches;
    profile->sizes_feasible += static_cast<std::int64_t>(sizes.size());
  }

  // Samples must record every attempt, so pruning turns off with them.
  const bool prune = options.prune && !keep_samples;
  std::vector<SizeBest> blocks(sizes.size());
  double threshold = std::numeric_limits<double>::infinity();

  if (prune) {
    // Descending r: winners empirically sit near max_r, so the incumbent
    // tightens immediately and low-r blocks fall to the cost floor.  The
    // execution order is free to differ from canonical order because the
    // threshold only ever removes attempts that provably lose the strict-<
    // selection below (see the pruned-sweep invariants in DESIGN.md).
    for (std::size_t idx = sizes.size(); idx-- > 0;) {
      const std::int64_t r = sizes[idx];
      if (gcrm_balanced_cost_floor(P, r, options.balance_slack) > threshold) {
        if (profile) {
          ++profile->sizes_pruned;
          profile->attempts_skipped += options.seeds;
        }
        continue;  // block stays empty: nothing in it can win
      }
      blocks[idx] = reduce_size_block(P, r, options, /*keep_samples=*/false,
                                      &threshold, profile);
    }
  } else {
    for (std::size_t idx = 0; idx < sizes.size(); ++idx)
      blocks[idx] = reduce_size_block(P, sizes[idx], options, keep_samples,
                                      /*threshold=*/nullptr, profile);
  }

  // Canonical ascending-r merge: replay the flat sequential selection over
  // the block reductions.  Balanced patterns strictly dominate unbalanced
  // ones; among patterns of the same class, lower z-bar wins and strict `<`
  // keeps the earliest (r, s).
  GcrmSearchResult result;
  bool have_balanced = false;
  double best_balanced_cost = 0.0;
  for (std::size_t idx = 0; idx < blocks.size(); ++idx) {
    SizeBest& block = blocks[idx];
    if (keep_samples)
      result.samples.insert(result.samples.end(),
                            std::make_move_iterator(block.samples.begin()),
                            std::make_move_iterator(block.samples.end()));
    if (block.have_balanced &&
        (!have_balanced || block.balanced_cost < best_balanced_cost)) {
      have_balanced = true;
      best_balanced_cost = block.balanced_cost;
      result.best_cost = block.balanced_cost;
      result.best_r = sizes[idx];
      result.best_seed = block.balanced_seed;
      result.found = true;
    }
    if (!have_balanced && block.have_valid &&
        (!result.found || block.valid_cost < result.best_cost)) {
      result.best_cost = block.valid_cost;
      result.best_r = sizes[idx];
      result.best_seed = block.valid_seed;
      result.found = true;
    }
  }
  // One extra construction rebuilds the winner from its coordinates — the
  // same determinism the winners table relies on.
  if (result.found)
    result.best = gcrm_build(P, result.best_r, result.best_seed).pattern;

  if (profile)
    profile->total_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
  return result;
}

Pattern best_gcrm_pattern(std::int64_t P) {
  const GcrmSearchResult result = gcrm_search(P, GcrmSearchOptions{});
  if (!result.found)
    throw std::runtime_error("GCR&M search found no valid pattern");
  return result.best;
}

}  // namespace anyblock::core