#include "core/recommend.hpp"

#include <sstream>
#include <stdexcept>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/sbc.hpp"

namespace anyblock::core {

bool kernel_is_symmetric(Kernel kernel) { return kernel != Kernel::kLu; }

std::string kernel_name(Kernel kernel) {
  switch (kernel) {
    case Kernel::kLu: return "lu";
    case Kernel::kCholesky: return "cholesky";
    case Kernel::kSyrk: return "syrk";
  }
  return "unknown";
}

Recommendation recommend_lu(std::int64_t P) {
  if (P <= 0) throw std::invalid_argument("P must be positive");
  Recommendation rec;
  const G2dbcParams params = g2dbc_params(P);
  rec.pattern = make_g2dbc(P);
  rec.cost = lu_cost(rec.pattern);
  std::ostringstream why;
  if (params.degenerate()) {
    rec.scheme = "2DBC";
    why << "P = " << P << " factors as " << params.b << "x" << params.a
        << ", so plain 2DBC already achieves T = " << rec.cost;
  } else {
    rec.scheme = "G-2DBC";
    why << "no balanced near-square 2DBC grid exists for P = " << P
        << "; G-2DBC reaches T = " << rec.cost
        << " (vs " << lu_cost(best_2dbc(P)) << " for the best 2DBC)";
  }
  rec.rationale = why.str();
  return rec;
}

Recommendation recommend_symmetric_from_search(std::int64_t P,
                                               const GcrmSearchResult& search,
                                               const RecommendOptions& options) {
  if (P <= 0) throw std::invalid_argument("P must be positive");
  Recommendation rec;
  // SBC when feasible, GCR&M otherwise — and even when SBC exists, keep the
  // GCR&M result if the search happens to beat it.
  const auto sbc = sbc_params(P);
  if (sbc && (!search.found || sbc->cost() <= search.best_cost)) {
    rec.pattern = make_sbc(*sbc);
    rec.scheme = "SBC";
    rec.cost = sbc->cost();
    std::ostringstream why;
    why << "P = " << P << " is an SBC-feasible node count ("
        << (sbc->kind == SbcKind::kTriangular ? "a(a-1)/2" : "a^2/2")
        << " with a = " << sbc->a << "), T = " << rec.cost;
    rec.rationale = why.str();
    return rec;
  }
  if (!search.found)
    throw std::runtime_error("GCR&M search found no valid pattern");
  rec.pattern = search.best;
  rec.scheme = "GCR&M";
  rec.cost = search.best_cost;
  std::ostringstream why;
  why << "no SBC pattern " << (sbc ? "beats GCR&M" : "exists")
      << " for P = " << P << "; GCR&M search (r <= " << options.search.max_r_factor
      << "*sqrt(P), " << options.search.seeds << " seeds) reached T = "
      << rec.cost;
  rec.rationale = why.str();
  return rec;
}

Recommendation recommend_pattern(std::int64_t P, Kernel kernel,
                                 const RecommendOptions& options) {
  if (P <= 0) throw std::invalid_argument("P must be positive");
  if (kernel == Kernel::kLu) return recommend_lu(P);
  const GcrmSearchResult search = gcrm_search(P, options.search);
  return recommend_symmetric_from_search(P, search, options);
}

}  // namespace anyblock::core
