#include "core/cost.hpp"

#include <stdexcept>
#include <vector>

#include "core/distribution.hpp"

namespace anyblock::core {

double lu_cost(const Pattern& pattern) {
  return pattern.mean_row_distinct() + pattern.mean_col_distinct();
}

double cholesky_cost(const Pattern& pattern) {
  return pattern.mean_colrow_distinct();
}

double symmetric_cost(const Pattern& pattern) {
  if (pattern.is_square()) return cholesky_cost(pattern);
  return lu_cost(pattern) - 1.0;
}

double predicted_lu_volume(const Pattern& pattern, std::int64_t t) {
  const double sum = static_cast<double>(t) * static_cast<double>(t + 1) / 2.0;
  return sum * (lu_cost(pattern) - 2.0);
}

double predicted_cholesky_volume(const Pattern& pattern, std::int64_t t) {
  const double sum = static_cast<double>(t) * static_cast<double>(t + 1) / 2.0;
  return sum * (cholesky_cost(pattern) - 1.0);
}

namespace {

/// Distinct-node accumulator with epoch marking: clears in O(1) between
/// queries, so the exact-volume loops stay close to linear in cells visited.
class DistinctCounter {
 public:
  explicit DistinctCounter(std::int64_t num_nodes)
      : mark_(static_cast<std::size_t>(num_nodes), 0) {}

  void begin(NodeId excluded) {
    ++epoch_;
    excluded_ = excluded;
    count_ = 0;
  }

  void add(NodeId n) {
    if (n == excluded_) return;
    auto& m = mark_[static_cast<std::size_t>(n)];
    if (m != epoch_) {
      m = epoch_;
      ++count_;
    }
  }

  [[nodiscard]] std::int64_t count() const { return count_; }

 private:
  std::vector<std::uint64_t> mark_;
  std::uint64_t epoch_ = 0;
  NodeId excluded_ = Pattern::kFree;
  std::int64_t count_ = 0;
};

}  // namespace

std::int64_t exact_lu_volume(const Pattern& pattern, std::int64_t t) {
  if (!pattern.is_complete())
    throw std::invalid_argument("exact_lu_volume requires a complete pattern");
  const std::int64_t r = pattern.rows();
  const std::int64_t c = pattern.cols();
  DistinctCounter distinct(pattern.num_nodes());
  std::int64_t volume = 0;

  auto owner = [&](std::int64_t i, std::int64_t j) {
    return pattern.at(i % r, j % c);
  };

  for (std::int64_t l = 0; l + 1 < t; ++l) {
    // Diagonal tile (l, l): needed by the TRSM owners on row l (right of l)
    // and on column l (below l).
    distinct.begin(owner(l, l));
    for (std::int64_t j = l + 1; j < t && j <= l + c; ++j)
      distinct.add(owner(l, j));
    for (std::int64_t i = l + 1; i < t && i <= l + r; ++i)
      distinct.add(owner(i, l));
    volume += distinct.count();

    // Panel tile (i, l): needed by GEMM owners on row i, columns > l.  Under
    // cyclic replication the trailing row repeats with period c, so scanning
    // min(t-1-l, c) columns covers every distinct owner.
    for (std::int64_t i = l + 1; i < t; ++i) {
      distinct.begin(owner(i, l));
      for (std::int64_t j = l + 1; j < t && j <= l + c; ++j)
        distinct.add(owner(i, j));
      volume += distinct.count();
    }

    // Panel tile (l, j): needed by GEMM owners on column j, rows > l.
    for (std::int64_t j = l + 1; j < t; ++j) {
      distinct.begin(owner(l, j));
      for (std::int64_t i = l + 1; i < t && i <= l + r; ++i)
        distinct.add(owner(i, j));
      volume += distinct.count();
    }
  }
  return volume;
}

std::int64_t exact_cholesky_volume(const Pattern& pattern, std::int64_t t) {
  if (!pattern.is_square())
    throw std::invalid_argument(
        "exact_cholesky_volume requires a square pattern");
  const PatternDistribution dist(pattern, t, /*symmetric=*/true);
  DistinctCounter distinct(pattern.num_nodes());
  std::int64_t volume = 0;

  for (std::int64_t l = 0; l + 1 < t; ++l) {
    // Diagonal tile (l, l): needed by TRSM owners on column l, below l.
    distinct.begin(dist.owner(l, l));
    for (std::int64_t i = l + 1; i < t; ++i) distinct.add(dist.owner(i, l));
    volume += distinct.count();

    // Panel tile (i, l), i > l: needed by the update owners on colrow i of
    // the trailing matrix — GEMM(i, j) for l < j < i, SYRK(i, i), and
    // GEMM(k, i) for k > i.  Free diagonal cells are bound per replica by
    // the distribution, so no periodicity shortcut applies here.
    for (std::int64_t i = l + 1; i < t; ++i) {
      distinct.begin(dist.owner(i, l));
      for (std::int64_t j = l + 1; j <= i; ++j) distinct.add(dist.owner(i, j));
      for (std::int64_t k = i; k < t; ++k) distinct.add(dist.owner(k, i));
      volume += distinct.count();
    }
  }
  return volume;
}

std::int64_t exact_lu_volume(const Distribution& distribution,
                             std::int64_t t) {
  DistinctCounter distinct(distribution.num_nodes());
  std::int64_t volume = 0;
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return distribution.owner(i, j);
  };
  for (std::int64_t l = 0; l + 1 < t; ++l) {
    distinct.begin(owner(l, l));
    for (std::int64_t j = l + 1; j < t; ++j) distinct.add(owner(l, j));
    for (std::int64_t i = l + 1; i < t; ++i) distinct.add(owner(i, l));
    volume += distinct.count();
    for (std::int64_t i = l + 1; i < t; ++i) {
      distinct.begin(owner(i, l));
      for (std::int64_t j = l + 1; j < t; ++j) distinct.add(owner(i, j));
      volume += distinct.count();
    }
    for (std::int64_t j = l + 1; j < t; ++j) {
      distinct.begin(owner(l, j));
      for (std::int64_t i = l + 1; i < t; ++i) distinct.add(owner(i, j));
      volume += distinct.count();
    }
  }
  return volume;
}

std::int64_t exact_cholesky_volume(const Distribution& distribution,
                                   std::int64_t t) {
  DistinctCounter distinct(distribution.num_nodes());
  std::int64_t volume = 0;
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return distribution.owner(i, j);
  };
  for (std::int64_t l = 0; l + 1 < t; ++l) {
    distinct.begin(owner(l, l));
    for (std::int64_t i = l + 1; i < t; ++i) distinct.add(owner(i, l));
    volume += distinct.count();
    for (std::int64_t i = l + 1; i < t; ++i) {
      distinct.begin(owner(i, l));
      for (std::int64_t j = l + 1; j <= i; ++j) distinct.add(owner(i, j));
      for (std::int64_t m = i; m < t; ++m) distinct.add(owner(m, i));
      volume += distinct.count();
    }
  }
  return volume;
}

double predicted_syrk_volume(const Pattern& pattern, std::int64_t t,
                             std::int64_t k) {
  return static_cast<double>(k) * static_cast<double>(t) *
         (cholesky_cost(pattern) - 1.0);
}

std::int64_t exact_syrk_volume(const Pattern& pattern, std::int64_t t,
                               std::int64_t k) {
  if (!pattern.is_square())
    throw std::invalid_argument("exact_syrk_volume requires a square pattern");
  const PatternDistribution dist_c(pattern, t, /*symmetric=*/true);
  const PatternDistribution dist_a(pattern, t, /*symmetric=*/false);
  DistinctCounter distinct(pattern.num_nodes());
  std::int64_t volume = 0;

  for (std::int64_t l = 0; l < k; ++l) {
    for (std::int64_t i = 0; i < t; ++i) {
      // A(i, l) feeds every update task on colrow i of C.
      distinct.begin(dist_a.owner(i, l % t));
      for (std::int64_t j = 0; j <= i; ++j) distinct.add(dist_c.owner(i, j));
      for (std::int64_t m = i; m < t; ++m) distinct.add(dist_c.owner(m, i));
      volume += distinct.count();
    }
  }
  return volume;
}

double predicted_gemm_volume(const Pattern& pattern, std::int64_t t,
                             std::int64_t k) {
  return static_cast<double>(k) * static_cast<double>(t) *
         (lu_cost(pattern) - 2.0);
}

std::vector<std::int64_t> lu_message_profile(
    const Distribution& distribution, std::int64_t t,
    const comm::CollectiveConfig& config) {
  DistinctCounter distinct(distribution.num_nodes());
  std::vector<std::int64_t> profile(static_cast<std::size_t>(t), 0);
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return distribution.owner(i, j);
  };
  const auto cost = [&] {
    return comm::multicast_messages(distinct.count(), config);
  };
  for (std::int64_t l = 0; l + 1 < t; ++l) {
    auto& messages = profile[static_cast<std::size_t>(l)];
    distinct.begin(owner(l, l));
    for (std::int64_t j = l + 1; j < t; ++j) distinct.add(owner(l, j));
    for (std::int64_t i = l + 1; i < t; ++i) distinct.add(owner(i, l));
    messages += cost();
    for (std::int64_t i = l + 1; i < t; ++i) {
      distinct.begin(owner(i, l));
      for (std::int64_t j = l + 1; j < t; ++j) distinct.add(owner(i, j));
      messages += cost();
    }
    for (std::int64_t j = l + 1; j < t; ++j) {
      distinct.begin(owner(l, j));
      for (std::int64_t i = l + 1; i < t; ++i) distinct.add(owner(i, j));
      messages += cost();
    }
  }
  return profile;
}

std::vector<std::int64_t> cholesky_message_profile(
    const Distribution& distribution, std::int64_t t,
    const comm::CollectiveConfig& config) {
  DistinctCounter distinct(distribution.num_nodes());
  std::vector<std::int64_t> profile(static_cast<std::size_t>(t), 0);
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return distribution.owner(i, j);
  };
  const auto cost = [&] {
    return comm::multicast_messages(distinct.count(), config);
  };
  for (std::int64_t l = 0; l + 1 < t; ++l) {
    auto& messages = profile[static_cast<std::size_t>(l)];
    distinct.begin(owner(l, l));
    for (std::int64_t i = l + 1; i < t; ++i) distinct.add(owner(i, l));
    messages += cost();
    for (std::int64_t i = l + 1; i < t; ++i) {
      distinct.begin(owner(i, l));
      for (std::int64_t j = l + 1; j <= i; ++j) distinct.add(owner(i, j));
      for (std::int64_t m = i; m < t; ++m) distinct.add(owner(m, i));
      messages += cost();
    }
  }
  return profile;
}

namespace {

std::int64_t sum_of(const std::vector<std::int64_t>& values) {
  std::int64_t total = 0;
  for (const auto v : values) total += v;
  return total;
}

}  // namespace

std::int64_t exact_lu_messages(const Distribution& distribution,
                               std::int64_t t,
                               const comm::CollectiveConfig& config) {
  return sum_of(lu_message_profile(distribution, t, config));
}

std::int64_t exact_cholesky_messages(const Distribution& distribution,
                                     std::int64_t t,
                                     const comm::CollectiveConfig& config) {
  return sum_of(cholesky_message_profile(distribution, t, config));
}

std::int64_t reduce_count_lu(std::int64_t t, std::int64_t layers) {
  std::int64_t total = 0;
  for (std::int64_t l = 0; l < t; ++l) {
    const std::int64_t rq = l < layers - 1 ? l : layers - 1;
    total += (2 * (t - 1 - l) + 1) * rq;
  }
  return total;
}

std::int64_t reduce_count_cholesky(std::int64_t t, std::int64_t layers) {
  std::int64_t total = 0;
  for (std::int64_t l = 0; l < t; ++l) {
    const std::int64_t rq = l < layers - 1 ? l : layers - 1;
    total += (t - l) * rq;
  }
  return total;
}

std::int64_t exact_lu_volume_25d(const ReplicatedDistribution& distribution,
                                 std::int64_t t) {
  return exact_lu_volume(distribution.base(), t) +
         reduce_count_lu(t, distribution.layers());
}

std::int64_t exact_cholesky_volume_25d(
    const ReplicatedDistribution& distribution, std::int64_t t) {
  return exact_cholesky_volume(distribution.base(), t) +
         reduce_count_cholesky(t, distribution.layers());
}

std::int64_t exact_lu_messages_25d(const ReplicatedDistribution& distribution,
                                   std::int64_t t,
                                   const comm::CollectiveConfig& config) {
  return exact_lu_messages(distribution.base(), t, config) +
         reduce_count_lu(t, distribution.layers()) *
             comm::multicast_messages(1, config);
}

std::int64_t exact_cholesky_messages_25d(
    const ReplicatedDistribution& distribution, std::int64_t t,
    const comm::CollectiveConfig& config) {
  return exact_cholesky_messages(distribution.base(), t, config) +
         reduce_count_cholesky(t, distribution.layers()) *
             comm::multicast_messages(1, config);
}

std::vector<std::int64_t> lu_send_profile_25d(
    const ReplicatedDistribution& distribution, std::int64_t t) {
  const Distribution& base = distribution.base();
  DistinctCounter distinct(base.num_nodes());
  std::vector<std::int64_t> profile(
      static_cast<std::size_t>(distribution.num_nodes()), 0);
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return base.owner(i, j);
  };
  const auto credit = [&](NodeId producer, std::int64_t layer) {
    profile[static_cast<std::size_t>(distribution.replica(producer, layer))] +=
        distinct.count();
  };
  for (std::int64_t l = 0; l + 1 < t; ++l) {
    // Panel broadcasts of iteration l, all inside compute layer l mod c.
    const std::int64_t h = distribution.home_layer(l);
    distinct.begin(owner(l, l));
    for (std::int64_t j = l + 1; j < t; ++j) distinct.add(owner(l, j));
    for (std::int64_t i = l + 1; i < t; ++i) distinct.add(owner(i, l));
    credit(owner(l, l), h);
    for (std::int64_t i = l + 1; i < t; ++i) {
      distinct.begin(owner(i, l));
      for (std::int64_t j = l + 1; j < t; ++j) distinct.add(owner(i, j));
      credit(owner(i, l), h);
    }
    for (std::int64_t j = l + 1; j < t; ++j) {
      distinct.begin(owner(l, j));
      for (std::int64_t i = l + 1; i < t; ++i) distinct.add(owner(i, j));
      credit(owner(l, j), h);
    }
  }
  // Inter-layer reduction: every tile finalized at iteration m is flushed by
  // each remote layer that accumulated a partial sum for it (one tile each).
  for (std::int64_t m = 0; m < t; ++m) {
    const std::int64_t rq = distribution.remote_layer_count(m);
    const auto flush = [&](std::int64_t i, std::int64_t j) {
      for (std::int64_t s = 0; s < rq; ++s)
        profile[static_cast<std::size_t>(distribution.replica(
            owner(i, j), distribution.remote_layer(m, s)))] += 1;
    };
    flush(m, m);
    for (std::int64_t i = m + 1; i < t; ++i) flush(i, m);
    for (std::int64_t j = m + 1; j < t; ++j) flush(m, j);
  }
  return profile;
}

std::vector<std::int64_t> cholesky_send_profile_25d(
    const ReplicatedDistribution& distribution, std::int64_t t) {
  const Distribution& base = distribution.base();
  DistinctCounter distinct(base.num_nodes());
  std::vector<std::int64_t> profile(
      static_cast<std::size_t>(distribution.num_nodes()), 0);
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return base.owner(i, j);
  };
  const auto credit = [&](NodeId producer, std::int64_t layer) {
    profile[static_cast<std::size_t>(distribution.replica(producer, layer))] +=
        distinct.count();
  };
  for (std::int64_t l = 0; l + 1 < t; ++l) {
    const std::int64_t h = distribution.home_layer(l);
    distinct.begin(owner(l, l));
    for (std::int64_t i = l + 1; i < t; ++i) distinct.add(owner(i, l));
    credit(owner(l, l), h);
    for (std::int64_t i = l + 1; i < t; ++i) {
      distinct.begin(owner(i, l));
      for (std::int64_t j = l + 1; j <= i; ++j) distinct.add(owner(i, j));
      for (std::int64_t m = i; m < t; ++m) distinct.add(owner(m, i));
      credit(owner(i, l), h);
    }
  }
  for (std::int64_t m = 0; m < t; ++m) {
    const std::int64_t rq = distribution.remote_layer_count(m);
    const auto flush = [&](std::int64_t i, std::int64_t j) {
      for (std::int64_t s = 0; s < rq; ++s)
        profile[static_cast<std::size_t>(distribution.replica(
            owner(i, j), distribution.remote_layer(m, s)))] += 1;
    };
    flush(m, m);
    for (std::int64_t i = m + 1; i < t; ++i) flush(i, m);
  }
  return profile;
}

std::int64_t exact_gemm_volume(const Pattern& pattern, std::int64_t t,
                               std::int64_t k) {
  const PatternDistribution dist_c(pattern, t, /*symmetric=*/false);
  DistinctCounter distinct(pattern.num_nodes());
  std::int64_t volume = 0;

  for (std::int64_t l = 0; l < k; ++l) {
    // A(i, l) feeds every GEMM task on row i of C.
    for (std::int64_t i = 0; i < t; ++i) {
      distinct.begin(dist_c.owner(i, l % t));
      for (std::int64_t j = 0; j < t; ++j) distinct.add(dist_c.owner(i, j));
      volume += distinct.count();
    }
    // B(l, j) feeds every GEMM task on column j of C.
    for (std::int64_t j = 0; j < t; ++j) {
      distinct.begin(dist_c.owner(l % t, j));
      for (std::int64_t i = 0; i < t; ++i) distinct.add(dist_c.owner(i, j));
      volume += distinct.count();
    }
  }
  return volume;
}

}  // namespace anyblock::core
