// Communication and load-balance analysis of a distribution.
//
// Complements the scalar cost metric T(G) with the structure behind it:
// how the communication volume is spread over iterations (Section III's
// domain-shrinking edge effects made visible) and over sender nodes, plus
// tile-load balance statistics — the two properties (comm volume, balance)
// a pattern is designed around.
#pragma once

#include <cstdint>
#include <vector>

#include "core/distribution.hpp"
#include "core/pattern.hpp"

namespace anyblock::core {

struct CommProfile {
  /// Tiles sent at each factorization iteration.
  std::vector<std::int64_t> per_iteration;
  /// Tiles sent by each node over the whole factorization.
  std::vector<std::int64_t> per_node_sent;

  [[nodiscard]] std::int64_t total() const;
  /// max(per_node_sent) / mean(per_node_sent): 1.0 = perfectly even
  /// senders.  Returns 0 when nothing is sent.
  [[nodiscard]] double sender_imbalance() const;
};

/// Per-iteration/per-node breakdown of the exact LU owner-computes volume
/// (totals match exact_lu_volume).  Requires a complete pattern.
CommProfile lu_comm_profile(const Pattern& pattern, std::int64_t t);

/// Same for Cholesky (lower triangle); totals match exact_cholesky_volume.
CommProfile cholesky_comm_profile(const Pattern& pattern, std::int64_t t);

struct LoadStats {
  std::int64_t min_tiles = 0;
  std::int64_t max_tiles = 0;
  double mean_tiles = 0.0;
  /// max/mean: 1.0 = perfect balance.
  double imbalance = 0.0;
};

/// Tile-count balance of a distribution over the full square (LU) or lower
/// triangle (Cholesky) of a t x t tile grid.
LoadStats tile_load_stats(const Distribution& distribution, std::int64_t t,
                          bool symmetric);

}  // namespace anyblock::core
