#include "core/pattern_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace anyblock::core {

std::string render_pattern(const Pattern& pattern) {
  // Column width fits the largest node id.
  int width = 1;
  for (std::int64_t v = pattern.num_nodes() - 1; v >= 10; v /= 10) ++width;
  std::ostringstream oss;
  for (std::int64_t i = 0; i < pattern.rows(); ++i) {
    for (std::int64_t j = 0; j < pattern.cols(); ++j) {
      if (j > 0) oss << ' ';
      const NodeId n = pattern.at(i, j);
      if (n == Pattern::kFree) {
        oss << std::setw(width) << '.';
      } else {
        oss << std::setw(width) << n;
      }
    }
    oss << '\n';
  }
  return oss.str();
}

std::string serialize_pattern(const Pattern& pattern) {
  std::ostringstream oss;
  oss << "pattern " << pattern.rows() << ' ' << pattern.cols() << ' '
      << pattern.num_nodes() << '\n';
  for (std::int64_t i = 0; i < pattern.rows(); ++i) {
    for (std::int64_t j = 0; j < pattern.cols(); ++j) {
      if (j > 0) oss << ' ';
      oss << pattern.at(i, j);
    }
    oss << '\n';
  }
  return oss.str();
}

std::optional<Pattern> parse_pattern(std::istream& in) {
  std::string tag;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nodes = 0;
  if (!(in >> tag >> rows >> cols >> nodes) || tag != "pattern") {
    return std::nullopt;
  }
  if (rows <= 0 || cols <= 0 || nodes <= 0) return std::nullopt;
  Pattern pattern(rows, cols, nodes);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      std::int64_t value = 0;
      if (!(in >> value)) return std::nullopt;
      if (value != Pattern::kFree && (value < 0 || value >= nodes)) {
        return std::nullopt;
      }
      pattern.set(i, j, static_cast<NodeId>(value));
    }
  }
  return pattern;
}

std::optional<Pattern> parse_pattern_string(const std::string& text) {
  std::istringstream iss(text);
  return parse_pattern(iss);
}

void PatternDatabase::put(std::int64_t P, Kind kind, Pattern pattern) {
  entries_.insert_or_assign({P, static_cast<int>(kind)}, std::move(pattern));
}

std::optional<Pattern> PatternDatabase::get(std::int64_t P, Kind kind) const {
  const auto it = entries_.find({P, static_cast<int>(kind)});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void PatternDatabase::save(std::ostream& out) const {
  out << "anyblock-pattern-db 1 " << entries_.size() << '\n';
  for (const auto& [key, pattern] : entries_) {
    out << "entry " << key.first << ' ' << key.second << '\n'
        << serialize_pattern(pattern);
  }
}

bool PatternDatabase::load(std::istream& in) {
  entries_.clear();
  std::string magic;
  int version = 0;
  std::size_t count = 0;
  if (!(in >> magic >> version >> count) || magic != "anyblock-pattern-db" ||
      version != 1) {
    return false;
  }
  for (std::size_t k = 0; k < count; ++k) {
    std::string tag;
    std::int64_t P = 0;
    int kind = 0;
    if (!(in >> tag >> P >> kind) || tag != "entry") {
      entries_.clear();
      return false;
    }
    auto pattern = parse_pattern(in);
    if (!pattern) {
      entries_.clear();
      return false;
    }
    entries_.insert_or_assign({P, kind}, std::move(*pattern));
  }
  return true;
}

bool PatternDatabase::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  save(out);
  return static_cast<bool>(out);
}

bool PatternDatabase::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  return load(in);
}

}  // namespace anyblock::core
