#include "core/pattern_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace anyblock::core {

PatternIoError::PatternIoError(std::string path, std::string detail)
    : std::runtime_error(path + ": " + detail),
      path_(std::move(path)),
      detail_(std::move(detail)) {}

std::string render_pattern(const Pattern& pattern) {
  // Column width fits the largest node id.
  int width = 1;
  for (std::int64_t v = pattern.num_nodes() - 1; v >= 10; v /= 10) ++width;
  std::ostringstream oss;
  for (std::int64_t i = 0; i < pattern.rows(); ++i) {
    for (std::int64_t j = 0; j < pattern.cols(); ++j) {
      if (j > 0) oss << ' ';
      const NodeId n = pattern.at(i, j);
      if (n == Pattern::kFree) {
        oss << std::setw(width) << '.';
      } else {
        oss << std::setw(width) << n;
      }
    }
    oss << '\n';
  }
  return oss.str();
}

std::string serialize_pattern(const Pattern& pattern) {
  std::ostringstream oss;
  oss << "pattern " << pattern.rows() << ' ' << pattern.cols() << ' '
      << pattern.num_nodes() << '\n';
  for (std::int64_t i = 0; i < pattern.rows(); ++i) {
    for (std::int64_t j = 0; j < pattern.cols(); ++j) {
      if (j > 0) oss << ' ';
      oss << pattern.at(i, j);
    }
    oss << '\n';
  }
  return oss.str();
}

namespace {

std::optional<Pattern> fail(std::string* error, const std::string& detail) {
  if (error != nullptr) *error = detail;
  return std::nullopt;
}

}  // namespace

std::optional<Pattern> parse_pattern(std::istream& in, std::string* error) {
  std::string tag;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t nodes = 0;
  if (!(in >> tag)) return fail(error, "truncated: missing 'pattern' header");
  if (tag != "pattern")
    return fail(error, "bad header tag '" + tag + "' (expected 'pattern')");
  if (!(in >> rows >> cols >> nodes))
    return fail(error, "truncated or non-numeric pattern dimensions");
  if (rows <= 0 || cols <= 0 || nodes <= 0)
    return fail(error, "non-positive pattern dimensions");
  if (rows > kMaxPatternSide || cols > kMaxPatternSide ||
      rows > kMaxPatternCells / cols) {
    std::ostringstream oss;
    oss << "implausible pattern size " << rows << "x" << cols
        << " (cap: side <= " << kMaxPatternSide << ", cells <= "
        << kMaxPatternCells << ")";
    return fail(error, oss.str());
  }
  if (nodes > rows * cols)
    return fail(error, "more nodes than cells");
  Pattern pattern(rows, cols, nodes);
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      std::int64_t value = 0;
      if (!(in >> value)) {
        std::ostringstream oss;
        oss << "truncated or non-numeric cell (" << i << ", " << j << ")";
        return fail(error, oss.str());
      }
      if (value != Pattern::kFree && (value < 0 || value >= nodes)) {
        std::ostringstream oss;
        oss << "cell (" << i << ", " << j << ") holds node id " << value
            << " outside [0, " << nodes << ")";
        return fail(error, oss.str());
      }
      pattern.set(i, j, static_cast<NodeId>(value));
    }
  }
  return pattern;
}

std::optional<Pattern> parse_pattern(std::istream& in) {
  return parse_pattern(in, nullptr);
}

std::optional<Pattern> parse_pattern_string(const std::string& text) {
  std::istringstream iss(text);
  return parse_pattern(iss);
}

Pattern load_pattern_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw PatternIoError(path, "cannot open file");
  std::string detail;
  auto pattern = parse_pattern(in, &detail);
  if (!pattern) throw PatternIoError(path, detail);
  return std::move(*pattern);
}

void PatternDatabase::put(std::int64_t P, Kind kind, Pattern pattern) {
  entries_.insert_or_assign({P, static_cast<int>(kind)}, std::move(pattern));
}

std::optional<Pattern> PatternDatabase::get(std::int64_t P, Kind kind) const {
  const auto it = entries_.find({P, static_cast<int>(kind)});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void PatternDatabase::save(std::ostream& out) const {
  out << "anyblock-pattern-db 1 " << entries_.size() << '\n';
  for (const auto& [key, pattern] : entries_) {
    out << "entry " << key.first << ' ' << key.second << '\n'
        << serialize_pattern(pattern);
  }
}

std::string PatternDatabase::load_detail(std::istream& in) {
  entries_.clear();
  std::string magic;
  int version = 0;
  std::int64_t count = 0;
  if (!(in >> magic >> version >> count))
    return "truncated database header";
  if (magic != "anyblock-pattern-db")
    return "bad magic '" + magic + "' (expected 'anyblock-pattern-db')";
  if (version != 1)
    return "unsupported database version " + std::to_string(version);
  if (count < 0) return "negative entry count";
  for (std::int64_t k = 0; k < count; ++k) {
    std::string tag;
    std::int64_t P = 0;
    int kind = 0;
    if (!(in >> tag >> P >> kind) || tag != "entry") {
      entries_.clear();
      return "entry " + std::to_string(k) + ": truncated or bad record header";
    }
    if (P <= 0 || kind < 0 || kind > 1) {
      entries_.clear();
      return "entry " + std::to_string(k) + ": bad key (P = " +
             std::to_string(P) + ", kind = " + std::to_string(kind) + ")";
    }
    std::string detail;
    auto pattern = parse_pattern(in, &detail);
    if (!pattern) {
      entries_.clear();
      return "entry " + std::to_string(k) + " (P = " + std::to_string(P) +
             "): " + detail;
    }
    entries_.insert_or_assign({P, kind}, std::move(*pattern));
  }
  return {};
}

bool PatternDatabase::load(std::istream& in) {
  return load_detail(in).empty();
}

bool PatternDatabase::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  save(out);
  return static_cast<bool>(out);
}

bool PatternDatabase::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  return load(in);
}

void PatternDatabase::load_file_strict(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw PatternIoError(path, "cannot open file");
  const std::string detail = load_detail(in);
  if (!detail.empty()) throw PatternIoError(path, detail);
}

}  // namespace anyblock::core
