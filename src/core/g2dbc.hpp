// Generalized 2D Block-Cyclic (paper, Section IV).
//
// For any node count P, with
//     a = ceil(sqrt(P)),   b = ceil(P / a),   c = a*b - P   (0 <= c < a),
// G-2DBC builds a balanced pattern of size b(b-1) x P in which every row
// holds exactly a distinct nodes, so
//     T = a + (b^2 (a-c) + (b-1)^2 c) / P  <=  2 sqrt(P) + 2 / sqrt(P)
// (Lemma 2) — the communication efficiency of a square 2DBC grid, for *any*
// P.  When c = 0 (P = p^2 or p(p+1)) the construction degenerates to the
// plain b x a block-cyclic grid.
//
// Construction (Section IV-A): an *incomplete pattern* IP of size b x a
// enumerates nodes row-major, leaving the last c cells of the last row
// undefined.  Pattern P_i (1 <= i <= b-1) copies IP and fills the undefined
// cells with the last c elements of IP's row i; LP is IP's first a-c
// columns.  The full pattern stacks b-1 row-blocks, block i being b-1
// copies of P_i followed by one copy of LP.
#pragma once

#include <cstdint>

#include "core/pattern.hpp"

namespace anyblock::core {

/// The derived construction parameters for a given P.
struct G2dbcParams {
  std::int64_t P = 0;
  std::int64_t a = 0;  ///< ceil(sqrt(P)): distinct nodes per row
  std::int64_t b = 0;  ///< ceil(P / a): rows of the incomplete pattern
  std::int64_t c = 0;  ///< a*b - P: undefined cells in IP's last row
  /// True when c = 0 and the pattern degenerates to plain 2DBC (b x a).
  [[nodiscard]] bool degenerate() const { return c == 0; }
  /// Dimensions of the full pattern (b(b-1) x P, or b x a when degenerate).
  [[nodiscard]] std::int64_t pattern_rows() const;
  [[nodiscard]] std::int64_t pattern_cols() const;
};

G2dbcParams g2dbc_params(std::int64_t P);

/// The incomplete pattern IP (b x a, last c cells of the last row free).
/// Exposed for tests and for the Fig. 3 reproduction.
Pattern g2dbc_incomplete_pattern(const G2dbcParams& params);

/// Sub-pattern P_i for 1 <= i <= b-1 (b x a, complete).
Pattern g2dbc_sub_pattern(const G2dbcParams& params, std::int64_t i);

/// The full G-2DBC pattern for P nodes.
Pattern make_g2dbc(std::int64_t P);

/// Closed-form cost T of the G-2DBC pattern (Section IV-B):
/// a + (b^2 (a-c) + (b-1)^2 c) / P.
double g2dbc_cost_formula(std::int64_t P);

}  // namespace anyblock::core
