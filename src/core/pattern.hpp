// Distribution patterns (paper, Section III).
//
// A pattern G of size r x c assigns a node to every *cell*; the matrix
// *tile* (i, j) is then owned by the node in cell (i mod r, j mod c).
// Unlike plain 2D block-cyclic, a node may appear several times in the
// pattern.  Square patterns may leave diagonal cells *free* (unassigned):
// each diagonal cell belongs to a unique colrow, so it can later be bound
// to any node of that colrow — per matrix replica — without changing the
// communication cost (paper, Section V).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace anyblock::core {

using NodeId = std::int32_t;

class Pattern {
 public:
  /// Sentinel for a free (unassigned) diagonal cell.
  static constexpr NodeId kFree = -1;

  Pattern() = default;

  /// Creates an `rows x cols` pattern over `num_nodes` nodes with every cell
  /// free.  Only diagonal cells of square patterns may remain free in a
  /// finished pattern (see validate()).
  Pattern(std::int64_t rows, std::int64_t cols, std::int64_t num_nodes);

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }
  [[nodiscard]] std::int64_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] bool is_square() const { return rows_ == cols_; }

  [[nodiscard]] NodeId at(std::int64_t row, std::int64_t col) const {
    return cells_[static_cast<std::size_t>(row * cols_ + col)];
  }
  void set(std::int64_t row, std::int64_t col, NodeId node);

  /// Owner of matrix tile (i, j) under cyclic replication of this pattern.
  /// The cell must not be free; use Distribution for incomplete patterns.
  [[nodiscard]] NodeId owner_of_tile(std::int64_t i, std::int64_t j) const {
    return at(i % rows_, j % cols_);
  }

  /// True if no cell is free.
  [[nodiscard]] bool is_complete() const;

  /// Number of free cells (all of which must lie on the diagonal).
  [[nodiscard]] std::int64_t free_cell_count() const;

  /// Number of cells assigned to each node (free cells excluded).
  [[nodiscard]] std::vector<std::int64_t> node_loads() const;

  /// A pattern is balanced when every node appears the same number of times
  /// (paper, Section III-C).  `slack` allows |load - mean| <= slack, which is
  /// the right notion for incomplete patterns where the lazy diagonal
  /// assignment will even out a +/-1 imbalance (paper, Eq. 3 discussion).
  [[nodiscard]] bool is_balanced(std::int64_t slack = 0) const;

  /// Number of distinct nodes in row i / column j (free cells ignored).
  [[nodiscard]] std::int64_t distinct_in_row(std::int64_t i) const;
  [[nodiscard]] std::int64_t distinct_in_col(std::int64_t j) const;

  /// Number of distinct nodes in colrow i = row i  union  column i
  /// (paper, Definition 1).  Requires a square pattern.  Free diagonal cells
  /// contribute nothing: they are always bound to a node of their colrow.
  [[nodiscard]] std::int64_t distinct_in_colrow(std::int64_t i) const;

  /// Mean distinct-node counts: x-bar, y-bar, z-bar of Section III.
  [[nodiscard]] double mean_row_distinct() const;
  [[nodiscard]] double mean_col_distinct() const;
  [[nodiscard]] double mean_colrow_distinct() const;

  /// Checks structural invariants; returns an empty string when valid, or a
  /// human-readable description of the first violation:
  ///  - every assigned cell holds a node id in [0, num_nodes)
  ///  - every node appears at least once
  ///  - free cells only occur on the diagonal of a square pattern.
  [[nodiscard]] std::string validate() const;

  bool operator==(const Pattern&) const = default;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t num_nodes_ = 0;
  std::vector<NodeId> cells_;
};

}  // namespace anyblock::core
