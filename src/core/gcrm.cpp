#include "core/gcrm.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/cost.hpp"
#include "graph/hopcroft_karp.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace anyblock::core {

bool gcrm_feasible(std::int64_t P, std::int64_t r) {
  if (P <= 0 || r <= 1) return false;
  // Eq. 3: the lazy diagonal assignment can only even out the load if no
  // node is forced above r^2/P cells...
  if (ceil_div(r * (r - 1), P) * P > r * r) return false;
  // ... and every node needs at least one off-diagonal cell to be present
  // on some colrow at all.
  return r * (r - 1) >= P;
}

namespace {

/// Working state shared by the two phases of Algorithm 1.
class GcrmRun {
 public:
  GcrmRun(std::int64_t P, std::int64_t r, std::uint64_t seed)
      : P_(P),
        r_(r),
        rng_(seed),
        has_(static_cast<std::size_t>(P * r), false),
        colrows_(static_cast<std::size_t>(P)),
        cover_load_(static_cast<std::size_t>(P), 0),
        colrow_usage_(static_cast<std::size_t>(r), 0),
        covered_(static_cast<std::size_t>(r * r), false) {
    uncovered_ = r * (r - 1) / 2;
  }

  GcrmResult run() {
    phase1();
    GcrmResult result = phase2();
    result.colrows_per_node = colrows_;
    return result;
  }

 private:
  [[nodiscard]] bool has(std::int64_t p, std::int64_t q) const {
    return has_[static_cast<std::size_t>(p * r_ + q)];
  }

  void add_colrow(std::int64_t p, std::int64_t q) {
    has_[static_cast<std::size_t>(p * r_ + q)] = true;
    colrows_[static_cast<std::size_t>(p)].push_back(
        static_cast<std::int32_t>(q));
    ++colrow_usage_[static_cast<std::size_t>(q)];
    // Credit every newly covered pair {q, i}, i already held by p.
    for (const std::int32_t i : colrows_[static_cast<std::size_t>(p)]) {
      if (i == q) continue;
      auto flag = covered_flag(i, q);  // vector<bool> proxy (by value)
      if (!flag) {
        flag = true;
        --uncovered_;
        ++cover_load_[static_cast<std::size_t>(p)];
      }
    }
  }

  [[nodiscard]] std::vector<bool>::reference covered_flag(std::int64_t i,
                                                          std::int64_t j) {
    const auto lo = std::min(i, j);
    const auto hi = std::max(i, j);
    return covered_[static_cast<std::size_t>(lo * r_ + hi)];
  }

  /// Algorithm 1, lines 1-10.
  void phase1() {
    // Round-robin initialization: colrow i -> node i mod P (line 3).
    for (std::int64_t i = 0; i < r_; ++i) add_colrow(i % P_, i);

    while (uncovered_ > 0) {
      const std::int64_t p = least_cover_loaded_node();
      const std::int64_t b = best_colrow_for(p);
      add_colrow(p, b);
    }
  }

  /// Least-loaded node by pairs covered so far; ties broken randomly.
  std::int64_t least_cover_loaded_node() {
    std::int64_t best = 0;
    std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
    std::size_t tie_count = 0;
    for (std::int64_t p = 0; p < P_; ++p) {
      const std::int64_t load = cover_load_[static_cast<std::size_t>(p)];
      if (load < best_load) {
        best_load = load;
        best = p;
        tie_count = 1;
      } else if (load == best_load && rng_.below(++tie_count) == 0) {
        best = p;  // reservoir sampling over ties
      }
    }
    return best;
  }

  /// Line 8: the colrow covering the most new cells for node p; ties go to
  /// the least-used colrow, then random.
  std::int64_t best_colrow_for(std::int64_t p) {
    const auto& mine = colrows_[static_cast<std::size_t>(p)];
    std::int64_t best = -1;
    std::int64_t best_gain = -1;
    std::int64_t best_usage = std::numeric_limits<std::int64_t>::max();
    std::size_t tie_count = 0;
    for (std::int64_t q = 0; q < r_; ++q) {
      if (has(p, q)) continue;
      std::int64_t gain = 0;
      for (const std::int32_t i : mine) {
        if (!covered_flag(i, q)) ++gain;
      }
      const std::int64_t usage = colrow_usage_[static_cast<std::size_t>(q)];
      if (gain > best_gain || (gain == best_gain && usage < best_usage)) {
        best = q;
        best_gain = gain;
        best_usage = usage;
        tie_count = 1;
      } else if (gain == best_gain && usage == best_usage &&
                 rng_.below(++tie_count) == 0) {
        best = q;
      }
    }
    if (best < 0)
      throw std::logic_error("GCR&M phase 1: node already holds all colrows");
    return best;
  }

  /// Algorithm 1, lines 11-14: two matching rounds plus a greedy fallback.
  GcrmResult phase2() {
    // Enumerate ordered off-diagonal cells and their covering nodes.
    struct Cell {
      std::int32_t i;
      std::int32_t j;
    };
    std::vector<Cell> cells;
    cells.reserve(static_cast<std::size_t>(r_ * (r_ - 1)));
    for (std::int32_t i = 0; i < r_; ++i)
      for (std::int32_t j = 0; j < r_; ++j)
        if (i != j) cells.push_back({i, j});

    // covers[cell] = nodes holding both colrows, in random order so the
    // matching's arbitrary choices vary across seeds.
    std::vector<std::vector<std::int32_t>> covers(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
      for (std::int64_t p = 0; p < P_; ++p) {
        if (has(p, cells[c].i) && has(p, cells[c].j))
          covers[c].push_back(static_cast<std::int32_t>(p));
      }
      rng_.shuffle(covers[c].begin(), covers[c].end());
    }

    const std::int64_t k = (r_ * (r_ - 1)) / P_;
    std::vector<std::int32_t> cell_owner(cells.size(), -1);
    std::vector<std::int64_t> assigned(static_cast<std::size_t>(P_), 0);
    GcrmResult result;

    // Round 1: k duplicates per node — no node can exceed k cells, but some
    // cells may stay unassigned.
    {
      graph::BipartiteGraph g(cells.size(),
                              static_cast<std::size_t>(P_ * k));
      for (std::size_t c = 0; c < cells.size(); ++c)
        for (const std::int32_t p : covers[c])
          for (std::int64_t dup = 0; dup < k; ++dup)
            g.add_edge(c, static_cast<std::size_t>(p * k + dup));
      const graph::Matching m = graph::hopcroft_karp(g);
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (m.match_left[c] == graph::Matching::kUnmatched) continue;
        const auto p = static_cast<std::int32_t>(m.match_left[c] / k);
        cell_owner[c] = p;
        ++assigned[static_cast<std::size_t>(p)];
        ++result.cells_matched_round1;
      }
    }

    // Round 2: one extra duplicate per node for the leftovers, keeping every
    // load at most ceil(r(r-1)/P) — nodes already at the ceiling (possible
    // when P divides r(r-1), so k equals the ceiling) are excluded.
    {
      const std::int64_t cap = ceil_div(r_ * (r_ - 1), P_);
      graph::BipartiteGraph g(cells.size(), static_cast<std::size_t>(P_));
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (cell_owner[c] >= 0) continue;
        for (const std::int32_t p : covers[c])
          if (assigned[static_cast<std::size_t>(p)] < cap)
            g.add_edge(c, static_cast<std::size_t>(p));
      }
      const graph::Matching m = graph::hopcroft_karp(g);
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (cell_owner[c] >= 0) continue;
        if (m.match_left[c] == graph::Matching::kUnmatched) continue;
        const auto p = static_cast<std::int32_t>(m.match_left[c]);
        cell_owner[c] = p;
        ++assigned[static_cast<std::size_t>(p)];
        ++result.cells_matched_round2;
      }
    }

    // Fallback (lines 13-14): least-loaded node that already holds colrow i
    // or colrow j; the missing colrow is added to its assignment.
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cell_owner[c] >= 0) continue;
      const std::int32_t i = cells[c].i;
      const std::int32_t j = cells[c].j;
      std::int32_t best = -1;
      std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
      std::size_t tie_count = 0;
      for (std::int64_t p = 0; p < P_; ++p) {
        if (!has(p, i) && !has(p, j)) continue;
        const std::int64_t load = assigned[static_cast<std::size_t>(p)];
        if (load < best_load) {
          best = static_cast<std::int32_t>(p);
          best_load = load;
          tie_count = 1;
        } else if (load == best_load && rng_.below(++tie_count) == 0) {
          best = static_cast<std::int32_t>(p);
        }
      }
      if (best < 0)
        throw std::logic_error("GCR&M fallback: cell with no adjacent node");
      if (!has(best, i)) add_colrow(best, i);
      if (!has(best, j)) add_colrow(best, j);
      cell_owner[c] = best;
      ++assigned[static_cast<std::size_t>(best)];
      ++result.cells_fallback;
    }

    // Materialize the pattern: diagonal free, everything else assigned.
    result.pattern = Pattern(r_, r_, P_);
    for (std::size_t c = 0; c < cells.size(); ++c)
      result.pattern.set(cells[c].i, cells[c].j, cell_owner[c]);
    result.valid = result.pattern.validate().empty();
    if (result.valid) result.cost = cholesky_cost(result.pattern);
    return result;
  }

  std::int64_t P_;
  std::int64_t r_;
  Rng rng_;
  std::vector<bool> has_;  ///< has_[p*r + q]: node p holds colrow q
  std::vector<std::vector<std::int32_t>> colrows_;  ///< A[p]
  std::vector<std::int64_t> cover_load_;  ///< pairs credited per node
  std::vector<std::int64_t> colrow_usage_;
  std::vector<bool> covered_;  ///< covered_[min*r + max] per pair
  std::int64_t uncovered_;
};

}  // namespace

GcrmResult gcrm_build(std::int64_t P, std::int64_t r, std::uint64_t seed) {
  if (!gcrm_feasible(P, r))
    throw std::invalid_argument("infeasible (P, r) for GCR&M: Eq. 3 violated");
  return GcrmRun(P, r, seed).run();
}

}  // namespace anyblock::core
