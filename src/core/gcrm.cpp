#include "core/gcrm.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "core/cost.hpp"
#include "graph/hopcroft_karp.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace anyblock::core {

bool gcrm_feasible(std::int64_t P, std::int64_t r) {
  if (P <= 0 || r <= 1) return false;
  // Past this bound the Eq. 3 product below (at most r(r-1) + P - 1 with
  // P <= r(r-1)) can exceed int64; such sizes are far beyond anything the
  // builder accepts, so report them infeasible instead of wrapping.
  if (r > 2'147'483'647) return false;
  // Every node needs at least one off-diagonal cell to be present on some
  // colrow at all.
  if (r * (r - 1) < P) return false;
  // Eq. 3: the lazy diagonal assignment can only even out the load if no
  // node is forced above r^2/P cells.
  return ceil_div(r * (r - 1), P) * P <= r * r;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Accumulates elapsed seconds into `*sink` on destruction; no-op (and no
/// clock read) when sink is null, so the untimed path stays untouched.
class PhaseTimer {
 public:
  explicit PhaseTimer(double* sink)
      : sink_(sink), start_(sink ? Clock::now() : Clock::time_point{}) {}
  ~PhaseTimer() {
    if (sink_)
      *sink_ += std::chrono::duration<double>(Clock::now() - start_).count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double* sink_;
  Clock::time_point start_;
};

/// Round-1 matching: maximum bipartite matching of cells against k
/// duplicates per node, WITHOUT materializing the k-duplicated graph.
///
/// Replays Hopcroft-Karp over the duplicate graph decision-for-decision
/// (same greedy warm start, same BFS discovery order, same DFS scan order),
/// so the cell -> node assignment is bit-identical to building the
/// duplicate graph and running graph::hopcroft_karp on it — the invariants
/// that make the compression exact are spelled out in DESIGN.md ("Pruned
/// sweep invariants"):
///  * duplicate slots of a node fill in ascending index order and a
///    matched slot never becomes free again, so "the first free duplicate"
///    is always slot used[p];
///  * BFS layer labels are shortest alternating distances, which depend
///    only on which cells each node holds — not on which duplicate holds
///    them — so scanning a node's matched slots once per BFS phase (instead
///    of once per arriving cell) discovers the same cells in the same
///    order;
///  * the DFS tries a node's matched slots in ascending order and then its
///    first free slot, exactly the duplicate adjacency order.
/// The duplicate graph has I*k edges (I = cell/node incidences); this
/// walks the I incidences directly, which is what makes large-P sweeps
/// affordable.
class Round1Matcher {
 public:
  Round1Matcher(const std::vector<std::vector<std::int32_t>>& covers,
                std::int64_t P, std::int64_t k)
      : covers_(covers),
        k_(k),
        cell_node_(covers.size(), -1),
        slots_(static_cast<std::size_t>(P * k), -1),
        used_(static_cast<std::size_t>(P), 0),
        node_epoch_(static_cast<std::size_t>(P), 0),
        dist_(covers.size(), kInf),
        queue_(covers.size()) {}

  /// Runs greedy warm start + Hopcroft-Karp phases; returns cell -> node
  /// (-1 = unmatched), identical to match_left[c] / k on the dup graph.
  const std::vector<std::int32_t>& solve() {
    for (std::size_t c = 0; c < covers_.size(); ++c) {
      for (const std::int32_t p : covers_[c]) {
        if (used_[static_cast<std::size_t>(p)] < k_) {
          take_free_slot(static_cast<std::int32_t>(c), p);
          break;
        }
      }
    }
    while (bfs_layers()) {
      for (std::size_t c = 0; c < covers_.size(); ++c)
        if (cell_node_[c] < 0) dfs_augment(static_cast<std::int32_t>(c));
    }
    return cell_node_;
  }

 private:
  static constexpr std::uint32_t kInf =
      std::numeric_limits<std::uint32_t>::max();

  void take_free_slot(std::int32_t cell, std::int32_t p) {
    auto& used = used_[static_cast<std::size_t>(p)];
    slots_[static_cast<std::size_t>(p * k_ + used)] = cell;
    ++used;
    cell_node_[static_cast<std::size_t>(cell)] = p;
  }

  bool bfs_layers() {
    std::size_t head = 0;
    std::size_t tail = 0;
    for (std::size_t c = 0; c < covers_.size(); ++c) {
      if (cell_node_[c] < 0) {
        dist_[c] = 0;
        queue_[tail++] = static_cast<std::int32_t>(c);
      } else {
        dist_[c] = kInf;
      }
    }
    ++epoch_;
    bool found_free = false;
    while (head < tail) {
      const auto u = static_cast<std::size_t>(queue_[head++]);
      for (const std::int32_t p : covers_[u]) {
        const auto pi = static_cast<std::size_t>(p);
        if (used_[pi] < k_) found_free = true;
        if (node_epoch_[pi] == epoch_) continue;  // slots already scanned
        node_epoch_[pi] = epoch_;
        for (std::int64_t i = 0; i < used_[pi]; ++i) {
          const auto w =
              static_cast<std::size_t>(slots_[static_cast<std::size_t>(
                  p * k_ + i)]);
          if (dist_[w] == kInf) {
            dist_[w] = dist_[u] + 1;
            queue_[tail++] = static_cast<std::int32_t>(w);
          }
        }
      }
    }
    return found_free;
  }

  bool dfs_augment(std::int32_t u) {
    const auto ui = static_cast<std::size_t>(u);
    for (const std::int32_t p : covers_[ui]) {
      const auto pi = static_cast<std::size_t>(p);
      for (std::int64_t i = 0; i < used_[pi]; ++i) {
        const auto slot = static_cast<std::size_t>(p * k_ + i);
        const std::int32_t w = slots_[slot];
        if (dist_[static_cast<std::size_t>(w)] == dist_[ui] + 1 &&
            dfs_augment(w)) {
          slots_[slot] = u;
          cell_node_[ui] = p;
          return true;
        }
      }
      if (used_[pi] < k_) {
        take_free_slot(u, p);
        return true;
      }
    }
    dist_[ui] = kInf;  // dead end: prune this cell for the current phase
    return false;
  }

  const std::vector<std::vector<std::int32_t>>& covers_;
  std::int64_t k_;
  std::vector<std::int32_t> cell_node_;  ///< cell -> matched node, -1 free
  std::vector<std::int32_t> slots_;      ///< slots_[p*k + i]: cell in dup i
  std::vector<std::int64_t> used_;       ///< matched duplicates per node
  std::vector<std::uint32_t> node_epoch_;
  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> dist_;
  std::vector<std::int32_t> queue_;
};

/// Working state shared by the two phases of Algorithm 1.
class GcrmRun {
 public:
  GcrmRun(std::int64_t P, std::int64_t r, std::uint64_t seed,
          const GcrmBuildControls& controls)
      : P_(P),
        r_(r),
        rng_(seed),
        controls_(controls),
        abandon_enabled_(std::isfinite(controls.abandon_above)),
        has_(static_cast<std::size_t>(P * r), false),
        colrows_(static_cast<std::size_t>(P)),
        cover_load_(static_cast<std::size_t>(P), 0),
        colrow_usage_(static_cast<std::size_t>(r), 0),
        covered_(static_cast<std::size_t>(r * r), false) {
    uncovered_ = r * (r - 1) / 2;
    if (abandon_enabled_)
      appears_.assign(static_cast<std::size_t>(P * r), false);
  }

  GcrmResult run() {
    {
      PhaseTimer t(controls_.timings ? &controls_.timings->phase1_seconds
                                     : nullptr);
      phase1();
    }
    GcrmResult result = phase2();
    result.colrows_per_node = colrows_;
    return result;
  }

 private:
  [[nodiscard]] bool has(std::int64_t p, std::int64_t q) const {
    return has_[static_cast<std::size_t>(p * r_ + q)];
  }

  void add_colrow(std::int64_t p, std::int64_t q) {
    has_[static_cast<std::size_t>(p * r_ + q)] = true;
    colrows_[static_cast<std::size_t>(p)].push_back(
        static_cast<std::int32_t>(q));
    ++colrow_usage_[static_cast<std::size_t>(q)];
    // Credit every newly covered pair {q, i}, i already held by p.
    for (const std::int32_t i : colrows_[static_cast<std::size_t>(p)]) {
      if (i == q) continue;
      auto flag = covered_flag(i, q);  // vector<bool> proxy (by value)
      if (!flag) {
        flag = true;
        --uncovered_;
        ++cover_load_[static_cast<std::size_t>(p)];
      }
    }
  }

  [[nodiscard]] std::vector<bool>::reference covered_flag(std::int64_t i,
                                                          std::int64_t j) {
    const auto lo = std::min(i, j);
    const auto hi = std::max(i, j);
    return covered_[static_cast<std::size_t>(lo * r_ + hi)];
  }

  /// Records that node p owns a cell on colrows i and j of the finished
  /// pattern.  Assignments are never revoked, so `committed_ / r` is a
  /// monotone lower bound on the final z-bar at every point of phase 2.
  void commit_cell(std::int64_t p, std::int64_t i, std::int64_t j) {
    auto fi = appears_[static_cast<std::size_t>(p * r_ + i)];
    if (!fi) {
      fi = true;
      ++committed_;
    }
    auto fj = appears_[static_cast<std::size_t>(p * r_ + j)];
    if (!fj) {
      fj = true;
      ++committed_;
    }
  }

  /// True when the committed-incidence bound already strictly exceeds the
  /// incumbent: fl(x) is monotone, so fl(committed/r) > threshold (itself a
  /// double produced by the same total/r division in mean_colrow_distinct)
  /// implies the finished pattern's computed cost exceeds it too — the
  /// attempt cannot win a strict-< selection.
  [[nodiscard]] bool over_threshold() const {
    return static_cast<double>(committed_) / static_cast<double>(r_) >
           controls_.abandon_above;
  }

  /// Algorithm 1, lines 1-10.
  void phase1() {
    // Round-robin initialization: colrow i -> node i mod P (line 3).
    for (std::int64_t i = 0; i < r_; ++i) add_colrow(i % P_, i);

    while (uncovered_ > 0) {
      const std::int64_t p = least_cover_loaded_node();
      const std::int64_t b = best_colrow_for(p);
      add_colrow(p, b);
    }
  }

  /// Least-loaded node by pairs covered so far; ties broken randomly.
  std::int64_t least_cover_loaded_node() {
    std::int64_t best = 0;
    std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
    std::size_t tie_count = 0;
    for (std::int64_t p = 0; p < P_; ++p) {
      const std::int64_t load = cover_load_[static_cast<std::size_t>(p)];
      if (load < best_load) {
        best_load = load;
        best = p;
        tie_count = 1;
      } else if (load == best_load && rng_.below(++tie_count) == 0) {
        best = p;  // reservoir sampling over ties
      }
    }
    return best;
  }

  /// Line 8: the colrow covering the most new cells for node p; ties go to
  /// the least-used colrow, then random.
  std::int64_t best_colrow_for(std::int64_t p) {
    const auto& mine = colrows_[static_cast<std::size_t>(p)];
    std::int64_t best = -1;
    std::int64_t best_gain = -1;
    std::int64_t best_usage = std::numeric_limits<std::int64_t>::max();
    std::size_t tie_count = 0;
    for (std::int64_t q = 0; q < r_; ++q) {
      if (has(p, q)) continue;
      std::int64_t gain = 0;
      for (const std::int32_t i : mine) {
        if (!covered_flag(i, q)) ++gain;
      }
      const std::int64_t usage = colrow_usage_[static_cast<std::size_t>(q)];
      if (gain > best_gain || (gain == best_gain && usage < best_usage)) {
        best = q;
        best_gain = gain;
        best_usage = usage;
        tie_count = 1;
      } else if (gain == best_gain && usage == best_usage &&
                 rng_.below(++tie_count) == 0) {
        best = q;
      }
    }
    if (best < 0)
      throw std::logic_error("GCR&M phase 1: node already holds all colrows");
    return best;
  }

  /// Algorithm 1, lines 11-14: two matching rounds plus a greedy fallback.
  GcrmResult phase2() {
    // Enumerate ordered off-diagonal cells and their covering nodes.
    struct Cell {
      std::int32_t i;
      std::int32_t j;
    };
    std::vector<Cell> cells;
    std::vector<std::vector<std::int32_t>> covers;
    {
      PhaseTimer t(controls_.timings ? &controls_.timings->covers_seconds
                                     : nullptr);
      cells.reserve(static_cast<std::size_t>(r_ * (r_ - 1)));
      for (std::int32_t i = 0; i < r_; ++i)
        for (std::int32_t j = 0; j < r_; ++j)
          if (i != j) cells.push_back({i, j});

      // covers[cell] = nodes holding both colrows.  Enumerated per node over
      // its colrow pairs — O(sum |A[p]|^2) instead of the O(r^2 P) per-cell
      // scan — with p ascending in the outer loop, so each list accumulates
      // nodes in exactly the order the per-cell scan produced.  Cell (i, j)
      // with i != j sits at index i*(r-1) + j - (j > i).
      covers.resize(cells.size());
      for (std::int64_t p = 0; p < P_; ++p) {
        const auto& mine = colrows_[static_cast<std::size_t>(p)];
        for (const std::int32_t a : mine) {
          for (const std::int32_t b : mine) {
            if (a == b) continue;
            const auto c = static_cast<std::size_t>(
                static_cast<std::int64_t>(a) * (r_ - 1) + b - (b > a ? 1 : 0));
            covers[c].push_back(static_cast<std::int32_t>(p));
          }
        }
      }
      // Shuffled in ascending cell order: the same RNG draws, in the same
      // order, as when each list was shuffled right after its scan.
      for (auto& list : covers) rng_.shuffle(list.begin(), list.end());
    }

    const std::int64_t k = (r_ * (r_ - 1)) / P_;
    std::vector<std::int32_t> cell_owner(cells.size(), -1);
    std::vector<std::int64_t> assigned(static_cast<std::size_t>(P_), 0);
    GcrmResult result;

    // Round 1: k duplicates per node — no node can exceed k cells, but some
    // cells may stay unassigned.
    {
      PhaseTimer t(controls_.timings ? &controls_.timings->match_seconds
                                     : nullptr);
      Round1Matcher matcher(covers, P_, k);
      const std::vector<std::int32_t>& owner = matcher.solve();
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (owner[c] < 0) continue;
        const std::int32_t p = owner[c];
        cell_owner[c] = p;
        ++assigned[static_cast<std::size_t>(p)];
        ++result.cells_matched_round1;
        if (abandon_enabled_) commit_cell(p, cells[c].i, cells[c].j);
      }
    }
    if (abandon_enabled_ && over_threshold()) {
      result.abandoned = true;
      return result;
    }

    // Round 2: one extra duplicate per node for the leftovers, keeping every
    // load at most ceil(r(r-1)/P) — nodes already at the ceiling (possible
    // when P divides r(r-1), so k equals the ceiling) are excluded.
    {
      PhaseTimer t(controls_.timings ? &controls_.timings->match_seconds
                                     : nullptr);
      const std::int64_t cap = ceil_div(r_ * (r_ - 1), P_);
      graph::BipartiteGraph g(cells.size(), static_cast<std::size_t>(P_));
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (cell_owner[c] >= 0) continue;
        for (const std::int32_t p : covers[c])
          if (assigned[static_cast<std::size_t>(p)] < cap)
            g.add_edge(c, static_cast<std::size_t>(p));
      }
      const graph::Matching m = graph::hopcroft_karp(g);
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (cell_owner[c] >= 0) continue;
        if (m.match_left[c] == graph::Matching::kUnmatched) continue;
        const auto p = static_cast<std::int32_t>(m.match_left[c]);
        cell_owner[c] = p;
        ++assigned[static_cast<std::size_t>(p)];
        ++result.cells_matched_round2;
        if (abandon_enabled_) commit_cell(p, cells[c].i, cells[c].j);
      }
    }
    if (abandon_enabled_ && over_threshold()) {
      result.abandoned = true;
      return result;
    }

    // Fallback (lines 13-14): least-loaded node that already holds colrow i
    // or colrow j; the missing colrow is added to its assignment.
    {
      PhaseTimer t(controls_.timings ? &controls_.timings->fallback_seconds
                                     : nullptr);
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (cell_owner[c] >= 0) continue;
        const std::int32_t i = cells[c].i;
        const std::int32_t j = cells[c].j;
        std::int32_t best = -1;
        std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
        std::size_t tie_count = 0;
        for (std::int64_t p = 0; p < P_; ++p) {
          if (!has(p, i) && !has(p, j)) continue;
          const std::int64_t load = assigned[static_cast<std::size_t>(p)];
          if (load < best_load) {
            best = static_cast<std::int32_t>(p);
            best_load = load;
            tie_count = 1;
          } else if (load == best_load && rng_.below(++tie_count) == 0) {
            best = static_cast<std::int32_t>(p);
          }
        }
        if (best < 0)
          throw std::logic_error("GCR&M fallback: cell with no adjacent node");
        if (!has(best, i)) add_colrow(best, i);
        if (!has(best, j)) add_colrow(best, j);
        cell_owner[c] = best;
        ++assigned[static_cast<std::size_t>(best)];
        ++result.cells_fallback;
        if (abandon_enabled_) {
          commit_cell(best, i, j);
          if (over_threshold()) {
            result.abandoned = true;
            return result;
          }
        }
      }
    }

    // Materialize the pattern: diagonal free, everything else assigned.
    {
      PhaseTimer t(controls_.timings ? &controls_.timings->finalize_seconds
                                     : nullptr);
      result.pattern = Pattern(r_, r_, P_);
      for (std::size_t c = 0; c < cells.size(); ++c)
        result.pattern.set(cells[c].i, cells[c].j, cell_owner[c]);
      result.valid = result.pattern.validate().empty();
      if (result.valid) result.cost = cholesky_cost(result.pattern);
    }
    return result;
  }

  std::int64_t P_;
  std::int64_t r_;
  Rng rng_;
  GcrmBuildControls controls_;
  bool abandon_enabled_;
  std::vector<bool> has_;  ///< has_[p*r + q]: node p holds colrow q
  std::vector<std::vector<std::int32_t>> colrows_;  ///< A[p]
  std::vector<std::int64_t> cover_load_;  ///< pairs credited per node
  std::vector<std::int64_t> colrow_usage_;
  std::vector<bool> covered_;   ///< covered_[min*r + max] per pair
  std::vector<bool> appears_;   ///< appears_[p*r + q]: p owns a cell on q
  std::int64_t committed_ = 0;  ///< incidences implied by assigned cells
  std::int64_t uncovered_;
};

}  // namespace

GcrmResult gcrm_build(std::int64_t P, std::int64_t r, std::uint64_t seed) {
  return gcrm_build(P, r, seed, GcrmBuildControls{});
}

GcrmResult gcrm_build(std::int64_t P, std::int64_t r, std::uint64_t seed,
                      const GcrmBuildControls& controls) {
  if (!gcrm_feasible(P, r))
    throw std::invalid_argument("infeasible (P, r) for GCR&M: Eq. 3 violated");
  if (r > kGcrmMaxSide)
    throw std::invalid_argument(
        "GCR&M pattern side r = " + std::to_string(r) + " exceeds " +
        std::to_string(kGcrmMaxSide) +
        ": r(r-1) cell ids would overflow the 32-bit matching vertices");
  return GcrmRun(P, r, seed, controls).run();
}

}  // namespace anyblock::core