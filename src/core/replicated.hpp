// 2.5D replicated distribution (Kwasniewski et al., COnfLUX-style).
//
// A ReplicatedDistribution stacks `layers` (the memory factor c) replicas of
// a 2D base distribution over P_b nodes into a P = P_b * c node machine.
// Node ids are `replica(b, q) = q * P_b + b`: layer q holds a full copy of
// the base layout, so every input tile is stored c times — that is the
// memory the scheme trades for communication.
//
// Ownership rules (the contract every execution layer implements):
//  - *Compute layer rotation.*  All work of elimination iteration l runs on
//    layer `home_layer(l) = l mod c`: the panel tasks (GETRF/POTRF/TRSM) and
//    every trailing-matrix update of that iteration.  Panel broadcasts
//    therefore stay *inside* one layer and keep the base pattern's
//    self-skips, so the broadcast volume equals the 2D volume of the base
//    on P_b nodes — asymptotically 2 t^2 sqrt(c / P) instead of
//    2 t^2 / sqrt(P).
//  - *Update accumulation.*  A trailing tile (i, j) accumulates the updates
//    of iteration l on layer l mod c, into a local partial sum held by the
//    replica of its base owner on that layer.  No communication happens for
//    updates at all until the tile is about to be finalized.
//  - *Reduction.*  Tile (i, j) is finalized at iteration m = min(i, j) on
//    its *home* layer m mod c.  Right before that, each of the
//    `remote_layer_count(m) = min(m, c - 1)` other layers that accumulated
//    partial updates flushes its partial sum to the home replica (ascending
//    layer order, so floating-point summation is deterministic).  This is
//    the only inter-layer traffic: min(m, c-1) tile-sized messages per
//    finalized tile.
//  - c = 1 degenerates to the base distribution exactly: one layer, no
//    partial sums, no reduction — every execution layer must be
//    bit-identical to the plain 2D path (enforced by the golden tests).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/distribution.hpp"

namespace anyblock::core {

class ReplicatedDistribution final : public Distribution {
 public:
  /// Wraps `base` (a 2D distribution over base->num_nodes() nodes) into
  /// `layers` stacked replicas.  Throws std::invalid_argument when
  /// layers < 1.
  ReplicatedDistribution(std::shared_ptr<const Distribution> base,
                         std::int64_t layers);

  /// Final resting owner of tile (i, j): the replica of the base owner on
  /// the tile's home layer.  This is where the finalized tile lives after
  /// the factorization (used by result gathering).
  [[nodiscard]] NodeId owner(std::int64_t i, std::int64_t j) const override;
  [[nodiscard]] std::int64_t num_nodes() const override {
    return base_->num_nodes() * layers_;
  }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const Distribution& base() const { return *base_; }
  [[nodiscard]] std::int64_t layers() const { return layers_; }
  [[nodiscard]] std::int64_t base_nodes() const { return base_->num_nodes(); }

  /// Node id of base node `b`'s replica on layer `q`.
  [[nodiscard]] NodeId replica(NodeId b, std::int64_t q) const {
    return static_cast<NodeId>(q * base_->num_nodes() + b);
  }

  /// Layer that runs every task of elimination iteration l (and owns the
  /// finalized tiles of that iteration): l mod c.
  [[nodiscard]] std::int64_t home_layer(std::int64_t l) const {
    return l % layers_;
  }

  /// Node that computes iteration l's work on tile (i, j) — the base
  /// owner's replica on the iteration's compute layer.
  [[nodiscard]] NodeId compute_node(std::int64_t l, std::int64_t i,
                                    std::int64_t j) const {
    return replica(base_->owner(i, j), home_layer(l));
  }

  /// Number of layers holding a partial sum for a tile finalized at
  /// iteration m: min(m, c - 1).  Iteration m accumulated updates on layers
  /// 0 .. min(m, c) - 1; one of those is the home layer itself.
  [[nodiscard]] std::int64_t remote_layer_count(std::int64_t m) const {
    return m < layers_ - 1 ? m : layers_ - 1;
  }

  /// The s-th remote layer (0 <= s < remote_layer_count(m)) flushing into a
  /// tile finalized at iteration m, in ascending layer order.
  [[nodiscard]] std::int64_t remote_layer(std::int64_t m,
                                          std::int64_t s) const {
    if (m < layers_) return s;  // layers 0..m-1 touched, home m%c == m not
    const std::int64_t home = m % layers_;
    return s < home ? s : s + 1;
  }

  /// Inverse of remote_layer: the flush slot of layer q for a tile
  /// finalized at iteration m.  q must be a remote layer of m.
  [[nodiscard]] std::int64_t remote_slot(std::int64_t m,
                                         std::int64_t q) const {
    if (m < layers_) return q;
    const std::int64_t home = m % layers_;
    return q < home ? q : q - 1;
  }

 private:
  std::shared_ptr<const Distribution> base_;
  std::int64_t layers_;
};

}  // namespace anyblock::core
