#include "core/analysis.hpp"

#include <algorithm>
#include <stdexcept>

namespace anyblock::core {
namespace {

/// Distinct-receiver counter mirroring the one in cost.cpp, but reporting
/// the count to a per-sender/per-iteration accumulator.
class ProfiledCounter {
 public:
  explicit ProfiledCounter(std::int64_t num_nodes)
      : mark_(static_cast<std::size_t>(num_nodes), 0) {}

  void begin(NodeId sender) {
    ++epoch_;
    sender_ = sender;
    count_ = 0;
  }

  void add(NodeId n) {
    if (n == sender_) return;
    auto& m = mark_[static_cast<std::size_t>(n)];
    if (m != epoch_) {
      m = epoch_;
      ++count_;
    }
  }

  void commit(CommProfile& profile, std::int64_t iteration) {
    profile.per_iteration[static_cast<std::size_t>(iteration)] += count_;
    profile.per_node_sent[static_cast<std::size_t>(sender_)] += count_;
  }

 private:
  std::vector<std::uint64_t> mark_;
  std::uint64_t epoch_ = 0;
  NodeId sender_ = Pattern::kFree;
  std::int64_t count_ = 0;
};

}  // namespace

std::int64_t CommProfile::total() const {
  std::int64_t sum = 0;
  for (const auto v : per_iteration) sum += v;
  return sum;
}

double CommProfile::sender_imbalance() const {
  if (per_node_sent.empty()) return 0.0;
  std::int64_t max = 0;
  std::int64_t sum = 0;
  for (const auto v : per_node_sent) {
    max = std::max(max, v);
    sum += v;
  }
  if (sum == 0) return 0.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(per_node_sent.size());
  return static_cast<double>(max) / mean;
}

CommProfile lu_comm_profile(const Pattern& pattern, std::int64_t t) {
  if (!pattern.is_complete())
    throw std::invalid_argument("lu_comm_profile requires a complete pattern");
  const std::int64_t r = pattern.rows();
  const std::int64_t c = pattern.cols();
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return pattern.at(i % r, j % c);
  };
  CommProfile profile;
  profile.per_iteration.assign(static_cast<std::size_t>(t), 0);
  profile.per_node_sent.assign(static_cast<std::size_t>(pattern.num_nodes()),
                               0);
  ProfiledCounter counter(pattern.num_nodes());

  for (std::int64_t l = 0; l + 1 < t; ++l) {
    counter.begin(owner(l, l));
    for (std::int64_t j = l + 1; j < t && j <= l + c; ++j)
      counter.add(owner(l, j));
    for (std::int64_t i = l + 1; i < t && i <= l + r; ++i)
      counter.add(owner(i, l));
    counter.commit(profile, l);

    for (std::int64_t i = l + 1; i < t; ++i) {
      counter.begin(owner(i, l));
      for (std::int64_t j = l + 1; j < t && j <= l + c; ++j)
        counter.add(owner(i, j));
      counter.commit(profile, l);
    }
    for (std::int64_t j = l + 1; j < t; ++j) {
      counter.begin(owner(l, j));
      for (std::int64_t i = l + 1; i < t && i <= l + r; ++i)
        counter.add(owner(i, j));
      counter.commit(profile, l);
    }
  }
  return profile;
}

CommProfile cholesky_comm_profile(const Pattern& pattern, std::int64_t t) {
  if (!pattern.is_square())
    throw std::invalid_argument(
        "cholesky_comm_profile requires a square pattern");
  const PatternDistribution dist(pattern, t, /*symmetric=*/true);
  CommProfile profile;
  profile.per_iteration.assign(static_cast<std::size_t>(t), 0);
  profile.per_node_sent.assign(static_cast<std::size_t>(pattern.num_nodes()),
                               0);
  ProfiledCounter counter(pattern.num_nodes());

  for (std::int64_t l = 0; l + 1 < t; ++l) {
    counter.begin(dist.owner(l, l));
    for (std::int64_t i = l + 1; i < t; ++i) counter.add(dist.owner(i, l));
    counter.commit(profile, l);

    for (std::int64_t i = l + 1; i < t; ++i) {
      counter.begin(dist.owner(i, l));
      for (std::int64_t j = l + 1; j <= i; ++j) counter.add(dist.owner(i, j));
      for (std::int64_t m = i; m < t; ++m) counter.add(dist.owner(m, i));
      counter.commit(profile, l);
    }
  }
  return profile;
}

LoadStats tile_load_stats(const Distribution& distribution, std::int64_t t,
                          bool symmetric) {
  std::vector<std::int64_t> loads(
      static_cast<std::size_t>(distribution.num_nodes()), 0);
  std::int64_t tiles = 0;
  for (std::int64_t i = 0; i < t; ++i) {
    const std::int64_t j_end = symmetric ? i + 1 : t;
    for (std::int64_t j = 0; j < j_end; ++j) {
      ++loads[static_cast<std::size_t>(distribution.owner(i, j))];
      ++tiles;
    }
  }
  LoadStats stats;
  const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
  stats.min_tiles = *lo;
  stats.max_tiles = *hi;
  stats.mean_tiles =
      static_cast<double>(tiles) / static_cast<double>(loads.size());
  stats.imbalance =
      stats.mean_tiles > 0 ? static_cast<double>(*hi) / stats.mean_tiles : 0.0;
  return stats;
}

}  // namespace anyblock::core
