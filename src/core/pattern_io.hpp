// Pattern rendering, serialization, and the pattern database.
//
// The paper's conclusion suggests shipping "a database containing, for each
// possible value of P, a very efficient pattern".  PatternDatabase is that
// database: a text file mapping node counts to precomputed patterns, so the
// (seconds-long) GCR&M search runs once per P, offline.
//
// Parsing is hardened against hostile or damaged input: a truncated,
// corrupt, or absurdly-sized record raises PatternIoError (naming the
// offending path and what went wrong) through the strict entry points, and
// the legacy optional/bool entry points report failure without ever
// crashing or silently misparsing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/pattern.hpp"

namespace anyblock::core {

/// Typed failure of a pattern parse or file load: `path()` names the file
/// ("<string>" for in-memory parses) and `detail()` says what was wrong.
class PatternIoError : public std::runtime_error {
 public:
  PatternIoError(std::string path, std::string detail);
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] const std::string& detail() const { return detail_; }

 private:
  std::string path_;
  std::string detail_;
};

/// Hard ceilings on a parsed pattern's geometry.  Real patterns are tiny
/// (r <= 6*sqrt(P)); the caps exist so a malformed header like
/// "pattern 99999999999 9 9" fails cleanly instead of attempting a
/// multi-terabyte allocation or overflowing rows*cols.
inline constexpr std::int64_t kMaxPatternSide = 1 << 20;
inline constexpr std::int64_t kMaxPatternCells = std::int64_t{1} << 26;

/// Renders the pattern as an aligned grid of node ids; free cells print as
/// '.'.  Matches the style of the paper's Fig. 3 illustration.
std::string render_pattern(const Pattern& pattern);

/// Compact single-record text form:
///   pattern <rows> <cols> <num_nodes>
///   <cells, row-major, -1 for free>
std::string serialize_pattern(const Pattern& pattern);

/// Parses the serialize_pattern() form; returns nullopt on malformed input.
/// The `error` overload additionally reports what was malformed.
std::optional<Pattern> parse_pattern(std::istream& in);
std::optional<Pattern> parse_pattern(std::istream& in, std::string* error);
std::optional<Pattern> parse_pattern_string(const std::string& text);

/// Strict file load of one serialized pattern; throws PatternIoError (with
/// the offending path) on a missing, truncated, or corrupt file.
Pattern load_pattern_file(const std::string& path);

/// Keyed store of the best known pattern per (P, kind) pair.
class PatternDatabase {
 public:
  enum class Kind { kNonSymmetric, kSymmetric };

  void put(std::int64_t P, Kind kind, Pattern pattern);
  [[nodiscard]] std::optional<Pattern> get(std::int64_t P, Kind kind) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Text round-trip: `save` writes every entry, `load` replaces the
  /// contents; load returns false (leaving the database empty) on parse
  /// errors.
  void save(std::ostream& out) const;
  bool load(std::istream& in);

  bool save_file(const std::string& path) const;
  bool load_file(const std::string& path);

  /// Like load_file, but failures throw PatternIoError naming the path and
  /// the first malformed record instead of returning false.
  void load_file_strict(const std::string& path);

 private:
  /// Shared load body; on failure clears the database and returns the
  /// detail message of the first problem (empty string = success).
  std::string load_detail(std::istream& in);

  std::map<std::pair<std::int64_t, int>, Pattern> entries_;
};

}  // namespace anyblock::core
