// Pattern rendering, serialization, and the pattern database.
//
// The paper's conclusion suggests shipping "a database containing, for each
// possible value of P, a very efficient pattern".  PatternDatabase is that
// database: a text file mapping node counts to precomputed patterns, so the
// (seconds-long) GCR&M search runs once per P, offline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>

#include "core/pattern.hpp"

namespace anyblock::core {

/// Renders the pattern as an aligned grid of node ids; free cells print as
/// '.'.  Matches the style of the paper's Fig. 3 illustration.
std::string render_pattern(const Pattern& pattern);

/// Compact single-record text form:
///   pattern <rows> <cols> <num_nodes>
///   <cells, row-major, -1 for free>
std::string serialize_pattern(const Pattern& pattern);

/// Parses the serialize_pattern() form; returns nullopt on malformed input.
std::optional<Pattern> parse_pattern(std::istream& in);
std::optional<Pattern> parse_pattern_string(const std::string& text);

/// Keyed store of the best known pattern per (P, kind) pair.
class PatternDatabase {
 public:
  enum class Kind { kNonSymmetric, kSymmetric };

  void put(std::int64_t P, Kind kind, Pattern pattern);
  [[nodiscard]] std::optional<Pattern> get(std::int64_t P, Kind kind) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Text round-trip: `save` writes every entry, `load` replaces the
  /// contents; load returns false (leaving the database empty) on parse
  /// errors.
  void save(std::ostream& out) const;
  bool load(std::istream& in);

  bool save_file(const std::string& path) const;
  bool load_file(const std::string& path);

 private:
  std::map<std::pair<std::int64_t, int>, Pattern> entries_;
};

}  // namespace anyblock::core
