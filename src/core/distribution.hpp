// Tile-to-node mapping used by the distributed factorizations and the
// cluster simulator.
//
// A Distribution answers "which node owns tile (i, j)" for a concrete tile
// grid.  PatternDistribution implements the paper's cyclic replication and,
// for incomplete square patterns (SBC extended, GCR&M), performs the lazy
// *balanced diagonal assignment* of Section V: every matrix replica of a
// free diagonal cell is bound, in deterministic order, to the least-loaded
// node among the nodes of its pattern colrow.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pattern.hpp"

namespace anyblock::core {

class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Owner of tile (i, j); tile coordinates are 0-based.
  [[nodiscard]] virtual NodeId owner(std::int64_t i, std::int64_t j) const = 0;
  [[nodiscard]] virtual std::int64_t num_nodes() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class PatternDistribution final : public Distribution {
 public:
  /// `t` is the tile-grid side of the matrix this distribution serves; it is
  /// required up front so free diagonal cells can be bound deterministically.
  /// `symmetric` selects whether loads are counted over the lower triangle
  /// (Cholesky) or the full square (LU) when binding free cells.
  PatternDistribution(Pattern pattern, std::int64_t t, bool symmetric,
                      std::string name = "pattern");

  [[nodiscard]] NodeId owner(std::int64_t i, std::int64_t j) const override;
  [[nodiscard]] std::int64_t num_nodes() const override {
    return pattern_.num_nodes();
  }
  [[nodiscard]] std::string name() const override { return name_; }

  [[nodiscard]] const Pattern& pattern() const { return pattern_; }
  [[nodiscard]] std::int64_t tile_grid() const { return t_; }

  /// Tiles owned by each node over the served triangle/square; the lazy
  /// diagonal binding guarantees a spread of at most the pattern imbalance
  /// plus one.
  [[nodiscard]] std::vector<std::int64_t> tile_loads() const;

 private:
  void bind_free_cells();

  Pattern pattern_;
  std::int64_t t_;
  bool symmetric_;
  std::string name_;
  /// Bound owners of tiles that map to free diagonal cells, keyed by i*t+j.
  std::unordered_map<std::int64_t, NodeId> bound_;
  std::vector<std::int64_t> loads_;
};

/// Arbitrary explicit mapping; handy in tests and for hand-crafted layouts.
class ExplicitDistribution final : public Distribution {
 public:
  /// `owners` is a row-major t x t table of node ids.
  ExplicitDistribution(std::vector<NodeId> owners, std::int64_t t,
                       std::int64_t num_nodes, std::string name = "explicit");

  [[nodiscard]] NodeId owner(std::int64_t i, std::int64_t j) const override;
  [[nodiscard]] std::int64_t num_nodes() const override { return num_nodes_; }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::vector<NodeId> owners_;
  std::int64_t t_;
  std::int64_t num_nodes_;
  std::string name_;
};

}  // namespace anyblock::core
