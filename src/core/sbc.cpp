#include "core/sbc.hpp"

#include <stdexcept>

#include "util/math.hpp"

namespace anyblock::core {
namespace {

/// Id of the pair node {i, j}, i < j, in the triangular enumeration.
NodeId pair_node(std::int64_t i, std::int64_t j) {
  return static_cast<NodeId>(j * (j - 1) / 2 + i);
}

}  // namespace

std::optional<SbcParams> sbc_params(std::int64_t P) {
  if (P <= 0) return std::nullopt;
  // Triangular: P = a(a-1)/2  <=>  a = (1 + sqrt(1+8P)) / 2.
  {
    const std::int64_t disc = 1 + 8 * P;
    if (is_square(disc)) {
      const std::int64_t root = isqrt_floor(disc);
      if ((1 + root) % 2 == 0) {
        const std::int64_t a = (1 + root) / 2;
        if (a >= 2) return SbcParams{P, a, SbcKind::kTriangular};
      }
    }
  }
  // Half-square: P = a^2/2 with a even  <=>  2P is an even perfect square.
  {
    if (is_square(2 * P)) {
      const std::int64_t a = isqrt_floor(2 * P);
      if (a % 2 == 0) return SbcParams{P, a, SbcKind::kHalfSquare};
    }
  }
  return std::nullopt;
}

bool sbc_feasible(std::int64_t P) { return sbc_params(P).has_value(); }

Pattern make_sbc(std::int64_t P) {
  const auto params = sbc_params(P);
  if (!params)
    throw std::invalid_argument(
        "P is not of the form a(a-1)/2 or a^2/2 (a even)");
  return make_sbc(*params);
}

Pattern make_sbc(const SbcParams& params) {
  const std::int64_t a = params.a;
  Pattern pattern(a, a, params.P);
  for (std::int64_t j = 1; j < a; ++j) {
    for (std::int64_t i = 0; i < j; ++i) {
      const NodeId n = pair_node(i, j);
      pattern.set(i, j, n);
      pattern.set(j, i, n);
    }
  }
  if (params.kind == SbcKind::kHalfSquare) {
    // Dedicated diagonal nodes: node a(a-1)/2 + k owns (2k,2k) and
    // (2k+1,2k+1); every node, pair or diagonal, appears exactly twice.
    const NodeId base = static_cast<NodeId>(a * (a - 1) / 2);
    for (std::int64_t k = 0; k < a / 2; ++k) {
      pattern.set(2 * k, 2 * k, base + static_cast<NodeId>(k));
      pattern.set(2 * k + 1, 2 * k + 1, base + static_cast<NodeId>(k));
    }
  }
  // Triangular form: diagonal stays free, bound lazily by the distribution.
  return pattern;
}

SbcParams best_sbc_at_most(std::int64_t P) {
  for (std::int64_t candidate = P; candidate >= 1; --candidate) {
    if (const auto params = sbc_params(candidate)) return *params;
  }
  throw std::invalid_argument("no feasible SBC node count at or below P");
}

std::vector<std::int64_t> sbc_feasible_values(std::int64_t max_p) {
  std::vector<std::int64_t> values;
  for (std::int64_t P = 1; P <= max_p; ++P) {
    if (sbc_feasible(P)) values.push_back(P);
  }
  return values;
}

}  // namespace anyblock::core
