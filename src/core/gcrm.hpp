// Greedy ColRow & Matching — GCR&M (paper, Section V-A, Algorithm 1).
//
// Builds a square r x r symmetric-friendly pattern for *any* node count P:
//
//  Phase 1 (greedy colrow assignment): colrows are handed to nodes one at a
//  time — always to the least-loaded node, choosing the colrow that covers
//  the most still-uncovered cells (ties: least-used colrow, then random) —
//  until every off-diagonal cell is covered by some node (a node covers
//  cell (i,j) when it holds both colrows i and j).
//
//  Phase 2 (matching): cells are assigned to covering nodes through two
//  maximum bipartite matchings — first against k = floor(r(r-1)/P)
//  duplicates per node (guaranteeing no node exceeds k), then unassigned
//  cells against one extra duplicate per node.  Cells still left are
//  assigned greedily to the least-loaded node that can cover them by
//  adding a single colrow.
//
// The diagonal is left free (bound lazily per matrix replica by
// PatternDistribution), which is what makes pattern sizes with r^2 not a
// multiple of P usable; feasibility requires Eq. 3:
//      ceil(r(r-1)/P) <= r^2/P,
// and r(r-1) >= P so that every node can receive at least one cell.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pattern.hpp"

namespace anyblock::core {

/// Feasibility of pattern size r for P nodes: Eq. 3 plus r(r-1) >= P.
[[nodiscard]] bool gcrm_feasible(std::int64_t P, std::int64_t r);

struct GcrmResult {
  Pattern pattern;  ///< square r x r, diagonal free
  bool valid = false;
  double cost = 0.0;  ///< z-bar of the pattern; meaningless when !valid

  // Construction statistics (useful for tests and the Fig. 8 illustration).
  std::int64_t cells_matched_round1 = 0;
  std::int64_t cells_matched_round2 = 0;
  std::int64_t cells_fallback = 0;
  /// A[p]: colrows assigned to each node at the end of the run.
  std::vector<std::vector<std::int32_t>> colrows_per_node;
};

/// One run of Algorithm 1 for a given pattern size and random seed.
GcrmResult gcrm_build(std::int64_t P, std::int64_t r, std::uint64_t seed);

}  // namespace anyblock::core
