// Greedy ColRow & Matching — GCR&M (paper, Section V-A, Algorithm 1).
//
// Builds a square r x r symmetric-friendly pattern for *any* node count P:
//
//  Phase 1 (greedy colrow assignment): colrows are handed to nodes one at a
//  time — always to the least-loaded node, choosing the colrow that covers
//  the most still-uncovered cells (ties: least-used colrow, then random) —
//  until every off-diagonal cell is covered by some node (a node covers
//  cell (i,j) when it holds both colrows i and j).
//
//  Phase 2 (matching): cells are assigned to covering nodes through two
//  maximum bipartite matchings — first against k = floor(r(r-1)/P)
//  duplicates per node (guaranteeing no node exceeds k), then unassigned
//  cells against one extra duplicate per node.  Cells still left are
//  assigned greedily to the least-loaded node that can cover them by
//  adding a single colrow.
//
// The diagonal is left free (bound lazily per matrix replica by
// PatternDistribution), which is what makes pattern sizes with r^2 not a
// multiple of P usable; feasibility requires Eq. 3:
//      ceil(r(r-1)/P) <= r^2/P,
// and r(r-1) >= P so that every node can receive at least one cell.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/pattern.hpp"

namespace anyblock::core {

/// Largest pattern side gcrm_build accepts.  The matching phase indexes the
/// r(r-1) off-diagonal cells and the node duplicates through 32-bit vertex
/// ids (graph::BipartiteGraph stores uint32 adjacency, graph::Matching holds
/// int32 matches), so r(r-1) must fit in int32.  gcrm_build throws loudly —
/// never wraps silently — past this bound.
inline constexpr std::int64_t kGcrmMaxSide = 46'340;

/// Feasibility of pattern size r for P nodes: Eq. 3 plus r(r-1) >= P.
/// Overflow-safe: sizes so large that r(r-1) would not fit in int64 are
/// reported infeasible rather than computed with wrapped arithmetic.
[[nodiscard]] bool gcrm_feasible(std::int64_t P, std::int64_t r);

struct GcrmResult {
  Pattern pattern;  ///< square r x r, diagonal free
  bool valid = false;
  double cost = 0.0;  ///< z-bar of the pattern; meaningless when !valid
  /// True when the construction was cut short by GcrmBuildControls::
  /// abandon_above: the running incidence bound proved the finished pattern
  /// could not beat the incumbent.  `pattern` is empty and `valid` false.
  bool abandoned = false;

  // Construction statistics (useful for tests and the Fig. 8 illustration).
  std::int64_t cells_matched_round1 = 0;
  std::int64_t cells_matched_round2 = 0;
  std::int64_t cells_fallback = 0;
  /// A[p]: colrows assigned to each node at the end of the run.
  std::vector<std::vector<std::int32_t>> colrows_per_node;
};

/// Per-phase wall-clock breakdown of gcrm_build, accumulated (+=) across
/// attempts so a sweep can report where its time went (obs `sweep_*` rows).
struct GcrmBuildTimings {
  double phase1_seconds = 0.0;    ///< greedy colrow assignment (Alg. 1, 1-10)
  double covers_seconds = 0.0;    ///< cell -> covering-nodes enumeration
  double match_seconds = 0.0;     ///< both Hopcroft-Karp rounds
  double fallback_seconds = 0.0;  ///< greedy leftover assignment (13-14)
  double finalize_seconds = 0.0;  ///< materialize + validate + cost
};

/// Optional knobs threaded through a sweep into individual constructions.
struct GcrmBuildControls {
  /// Abandon the attempt as soon as the committed-incidence lower bound on
  /// the final z-bar strictly exceeds this threshold.  Cell assignments are
  /// never revoked, so once a cell is matched its owner provably appears on
  /// both of the cell's colrows in the finished pattern; the bound
  /// (committed incidences / r) therefore only grows, and an attempt whose
  /// bound strictly exceeds the incumbent best can never win a strict-<
  /// winner selection.  +inf (the default) never abandons.
  double abandon_above = std::numeric_limits<double>::infinity();
  /// When non-null, per-phase wall-clock seconds are accumulated here.
  GcrmBuildTimings* timings = nullptr;
};

/// One run of Algorithm 1 for a given pattern size and random seed.
GcrmResult gcrm_build(std::int64_t P, std::int64_t r, std::uint64_t seed);

/// Instrumented overload: identical construction (bit-for-bit, same RNG
/// draws) with early-abandon and per-phase timing hooks for sweeps.
GcrmResult gcrm_build(std::int64_t P, std::int64_t r, std::uint64_t seed,
                      const GcrmBuildControls& controls);

}  // namespace anyblock::core
