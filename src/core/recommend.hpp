// The front door: given a node count and a kernel, pick the right scheme.
//
// Encodes the paper's decision procedure — G-2DBC for non-symmetric
// factorizations (collapsing to plain 2DBC when P factors nicely), and for
// symmetric kernels SBC when P is one of its feasible values, otherwise
// the GCR&M search — so downstream code asks one question instead of
// knowing four constructions.
#pragma once

#include <cstdint>
#include <string>

#include "core/pattern.hpp"
#include "core/pattern_search.hpp"

namespace anyblock::core {

enum class Kernel { kLu, kCholesky, kSyrk };

struct RecommendOptions {
  /// Search effort for the GCR&M fallback (symmetric kernels only).
  GcrmSearchOptions search;
};

struct Recommendation {
  Pattern pattern;
  /// "2DBC", "G-2DBC", "SBC", or "GCR&M".
  std::string scheme;
  /// T(G) under the requested kernel's metric.
  double cost = 0.0;
  /// One-line human-readable justification.
  std::string rationale;
};

/// Best known pattern for P homogeneous nodes running `kernel`.
/// Throws std::runtime_error only if the GCR&M search finds nothing
/// (does not happen for P >= 2 with default options).
Recommendation recommend_pattern(std::int64_t P, Kernel kernel,
                                 const RecommendOptions& options = {});

/// True when `kernel` uses the symmetric (z-bar) decision path — the one
/// whose GCR&M sweep is worth caching; the LU path is closed-form.
[[nodiscard]] bool kernel_is_symmetric(Kernel kernel);

/// Canonical lowercase kernel names ("lu" | "cholesky" | "syrk"), used by
/// the CLI and as part of the pattern store's digest key.
[[nodiscard]] std::string kernel_name(Kernel kernel);

/// The non-symmetric branch of recommend_pattern: G-2DBC, collapsing to
/// plain 2DBC when P factors nicely.  Closed-form; never searches.
Recommendation recommend_lu(std::int64_t P);

/// The symmetric branch of recommend_pattern, with the GCR&M sweep result
/// supplied by the caller — the seam the serving layer uses to plug in a
/// parallel sweep or a cache hit.  Applies the identical SBC-vs-GCR&M
/// comparison, so feeding it gcrm_search(P, options.search) reproduces
/// recommend_pattern bit for bit.
Recommendation recommend_symmetric_from_search(std::int64_t P,
                                               const GcrmSearchResult& search,
                                               const RecommendOptions& options);

}  // namespace anyblock::core
