// The front door: given a node count and a kernel, pick the right scheme.
//
// Encodes the paper's decision procedure — G-2DBC for non-symmetric
// factorizations (collapsing to plain 2DBC when P factors nicely), and for
// symmetric kernels SBC when P is one of its feasible values, otherwise
// the GCR&M search — so downstream code asks one question instead of
// knowing four constructions.
#pragma once

#include <cstdint>
#include <string>

#include "core/pattern.hpp"
#include "core/pattern_search.hpp"

namespace anyblock::core {

enum class Kernel { kLu, kCholesky, kSyrk };

struct RecommendOptions {
  /// Search effort for the GCR&M fallback (symmetric kernels only).
  GcrmSearchOptions search;
};

struct Recommendation {
  Pattern pattern;
  /// "2DBC", "G-2DBC", "SBC", or "GCR&M".
  std::string scheme;
  /// T(G) under the requested kernel's metric.
  double cost = 0.0;
  /// One-line human-readable justification.
  std::string rationale;
};

/// Best known pattern for P homogeneous nodes running `kernel`.
/// Throws std::runtime_error only if the GCR&M search finds nothing
/// (does not happen for P >= 2 with default options).
Recommendation recommend_pattern(std::int64_t P, Kernel kernel,
                                 const RecommendOptions& options = {});

}  // namespace anyblock::core
