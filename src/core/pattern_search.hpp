// Search driver for symmetric patterns (paper, Section V-B).
//
// GCR&M depends on the pattern size r and on random tie-breaking, so the
// paper's protocol runs Algorithm 1 for every feasible r <= 6*sqrt(P) with
// 100 seeds and keeps the cheapest balanced pattern.  Patterns depend only
// on P, never on the matrix, so this search runs once per node count (and
// its results can be stored in a PatternDatabase).
//
// The sweep dominates `anyblock precompute` at large P, so it supports a
// provably result-identical pruned mode (GcrmSearchOptions::prune): pattern
// sizes whose balanced-cost floor already exceeds the best cost built so
// far are skipped whole, and individual constructions abandon as soon as
// their committed incidences bound them above the incumbent.  Both cuts
// only remove attempts that lose the strict-< winner selection, so the
// pruned sweep returns the bit-identical (r, seed, cost) winner
// (DESIGN.md "Pruned sweep invariants").
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/gcrm.hpp"
#include "core/pattern.hpp"

namespace anyblock::core {

struct GcrmSearchOptions {
  /// Sweep r over feasible sizes up to max_r_factor * sqrt(P).
  double max_r_factor = 6.0;
  /// Random restarts per pattern size.
  std::int64_t seeds = 100;
  /// Base seed; run s of size r uses gcrm_attempt_seed(base_seed, r, s).
  std::uint64_t base_seed = 42;
  /// Keep only patterns whose node loads differ by at most this much
  /// (the lazy diagonal assignment can absorb a +/-1 spread).
  std::int64_t balance_slack = 1;
  /// Skip pattern sizes and abandon constructions that provably cannot beat
  /// the incumbent (bit-identical winners — pinned by the golden
  /// pruned-vs-unpruned equivalence tests, so it defaults on).  Ignored
  /// when samples are requested: samples record every attempt in full.
  bool prune = true;

  /// Identity of the swept grid and selection rule.  `prune` is excluded
  /// deliberately: pruning is result-identical, so winners tables and store
  /// entries produced with and without it are interchangeable (and the
  /// on-disk formats never record it).
  friend bool operator==(const GcrmSearchOptions& a,
                         const GcrmSearchOptions& b) {
    return a.max_r_factor == b.max_r_factor && a.seeds == b.seeds &&
           a.base_seed == b.base_seed && a.balance_slack == b.balance_slack;
  }
};

/// Seed of restart s at pattern size r: an independent splitmix64-derived
/// stream per (r, s), via util::rng::split_seed.  A pure function of its
/// three arguments — never of sweep order — so any partition of the (r, s)
/// grid across tasks (serve::parallel_gcrm_search) draws exactly the
/// constructions the sequential sweep draws.
[[nodiscard]] std::uint64_t gcrm_attempt_seed(std::uint64_t base_seed,
                                              std::int64_t r, std::int64_t s);

/// Largest pattern size the sweep considers: the biggest r with
/// r^2 <= max_r_factor^2 * P, computed through exact integer square root so
/// boundary sizes are never lost to floating-point truncation (sqrt
/// returning k - epsilon used to drop the exact boundary r = k).
[[nodiscard]] std::int64_t gcrm_sweep_max_r(std::int64_t P,
                                            const GcrmSearchOptions& options);

/// Lower bound on the z-bar of ANY balanced valid pattern of size r for P
/// nodes — the floor the pruned sweep compares against the incumbent.
/// Derivation (all integer, see DESIGN.md): validity forces every node to
/// own >= 1 cell and balancedness forces >= ceil(r(r-1)/P) - slack, so each
/// node owns c >= c_min cells; a node owning c cells appears on v colrows
/// with v(v-1) >= c; hence cost = (sum v_p)/r >= P * v_min(c_min) / r.
/// Not monotone in r (v_min jumps), so the sweep evaluates it per size.
[[nodiscard]] double gcrm_balanced_cost_floor(std::int64_t P, std::int64_t r,
                                              std::int64_t balance_slack);

/// One sampled construction, recorded for Fig. 9-style analyses.
struct GcrmSample {
  std::int64_t r = 0;
  std::uint64_t seed = 0;
  double cost = 0.0;
  bool valid = false;
  bool balanced = false;
};

/// Where a sweep's work went: counters for the pruning cuts plus the
/// per-phase gcrm_build timing breakdown.  Accumulates across sweeps via
/// merge(); metric_rows() emits the obs-convention `sweep_*` rows for
/// MetricsOptions.extra / `--metrics` CSVs.
struct GcrmSweepProfile {
  std::int64_t searches = 0;        ///< sweeps accumulated into this profile
  std::int64_t sizes_feasible = 0;  ///< pattern sizes passing Eq. 3
  std::int64_t sizes_pruned = 0;    ///< sizes skipped by the cost floor
  std::int64_t attempts_built = 0;  ///< constructions run to completion
  std::int64_t attempts_abandoned = 0;  ///< cut short by the incidence bound
  std::int64_t attempts_skipped = 0;    ///< never started (size pruned)
  GcrmBuildTimings timings;             ///< per-phase seconds, built attempts
  double total_seconds = 0.0;           ///< wall clock of the whole sweep

  void merge(const GcrmSweepProfile& other);
  [[nodiscard]] std::vector<std::pair<std::string, double>> metric_rows()
      const;
};

struct GcrmSearchResult {
  Pattern best;       ///< cheapest valid (preferring balanced) pattern
  double best_cost = 0.0;
  bool found = false;
  /// Winning construction coordinates: gcrm_build(P, best_r, best_seed)
  /// reproduces `best` exactly — what the precomputed winners table ships
  /// instead of full patterns.
  std::int64_t best_r = 0;
  std::uint64_t best_seed = 0;
  std::vector<GcrmSample> samples;  ///< every construction attempted
};

/// Feasible pattern sizes for P up to `max_r` (Eq. 3 and r(r-1) >= P).
std::vector<std::int64_t> gcrm_feasible_sizes(std::int64_t P,
                                              std::int64_t max_r);

/// Full sweep; `keep_samples` controls whether every attempt is recorded
/// (Fig. 9) or only the winner retained (fast path for large sweeps).
/// When `profile` is non-null the sweep's counters and per-phase timings
/// are accumulated into it (+=, so one profile can span many sweeps).
GcrmSearchResult gcrm_search(std::int64_t P, const GcrmSearchOptions& options,
                             bool keep_samples = false,
                             GcrmSweepProfile* profile = nullptr);

/// Convenience: the best GCR&M pattern for P with default options; throws
/// if the search finds nothing (does not happen for P >= 2 in practice).
Pattern best_gcrm_pattern(std::int64_t P);

}  // namespace anyblock::core