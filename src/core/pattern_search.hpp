// Search driver for symmetric patterns (paper, Section V-B).
//
// GCR&M depends on the pattern size r and on random tie-breaking, so the
// paper's protocol runs Algorithm 1 for every feasible r <= 6*sqrt(P) with
// 100 seeds and keeps the cheapest balanced pattern.  Patterns depend only
// on P, never on the matrix, so this search runs once per node count (and
// its results can be stored in a PatternDatabase).
#pragma once

#include <cstdint>
#include <vector>

#include "core/gcrm.hpp"
#include "core/pattern.hpp"

namespace anyblock::core {

struct GcrmSearchOptions {
  /// Sweep r over feasible sizes up to max_r_factor * sqrt(P).
  double max_r_factor = 6.0;
  /// Random restarts per pattern size.
  std::int64_t seeds = 100;
  /// Base seed; run s of size r uses gcrm_attempt_seed(base_seed, r, s).
  std::uint64_t base_seed = 42;
  /// Keep only patterns whose node loads differ by at most this much
  /// (the lazy diagonal assignment can absorb a +/-1 spread).
  std::int64_t balance_slack = 1;

  bool operator==(const GcrmSearchOptions&) const = default;
};

/// Seed of restart s at pattern size r: an independent splitmix64-derived
/// stream per (r, s), via util::rng::split_seed.  A pure function of its
/// three arguments — never of sweep order — so any partition of the (r, s)
/// grid across tasks (serve::parallel_gcrm_search) draws exactly the
/// constructions the sequential sweep draws.
[[nodiscard]] std::uint64_t gcrm_attempt_seed(std::uint64_t base_seed,
                                              std::int64_t r, std::int64_t s);

/// Largest pattern size the sweep considers: max_r_factor * sqrt(P).
[[nodiscard]] std::int64_t gcrm_sweep_max_r(std::int64_t P,
                                            const GcrmSearchOptions& options);

/// One sampled construction, recorded for Fig. 9-style analyses.
struct GcrmSample {
  std::int64_t r = 0;
  std::uint64_t seed = 0;
  double cost = 0.0;
  bool valid = false;
  bool balanced = false;
};

struct GcrmSearchResult {
  Pattern best;       ///< cheapest valid (preferring balanced) pattern
  double best_cost = 0.0;
  bool found = false;
  /// Winning construction coordinates: gcrm_build(P, best_r, best_seed)
  /// reproduces `best` exactly — what the precomputed winners table ships
  /// instead of full patterns.
  std::int64_t best_r = 0;
  std::uint64_t best_seed = 0;
  std::vector<GcrmSample> samples;  ///< every construction attempted
};

/// Feasible pattern sizes for P up to `max_r` (Eq. 3 and r(r-1) >= P).
std::vector<std::int64_t> gcrm_feasible_sizes(std::int64_t P,
                                              std::int64_t max_r);

/// Full sweep; `keep_samples` controls whether every attempt is recorded
/// (Fig. 9) or only the winner retained (fast path for large sweeps).
GcrmSearchResult gcrm_search(std::int64_t P, const GcrmSearchOptions& options,
                             bool keep_samples = false);

/// Convenience: the best GCR&M pattern for P with default options; throws
/// if the search finds nothing (does not happen for P >= 2 in practice).
Pattern best_gcrm_pattern(std::int64_t P);

}  // namespace anyblock::core
