// Reference curves from the paper's lower-bound survey (Section II-A) and
// from the Section V-B analysis, used by the Fig. 4 and Fig. 10 benches.
#pragma once

#include <cstdint>

namespace anyblock::core {

/// 2 sqrt(P): the cost of a perfect square 2DBC grid; no pattern on P nodes
/// can have fewer than ceil(sqrt(P)) distinct nodes per row and per column.
double lu_cost_reference(std::int64_t P);

/// Lemma 2 upper bound on the G-2DBC cost: 2 sqrt(P) + 2 / sqrt(P).
double g2dbc_cost_bound(std::int64_t P);

/// sqrt(2P): cost of basic SBC (v = 2 colrows per node, l = 2 cells).
double sbc_cost_reference(std::int64_t P);

/// sqrt(2P) - 0.5: cost of extended SBC.
double sbc_extended_cost_reference(std::int64_t P);

/// sqrt(3P/2): the empirical GCR&M limit — a regular pattern with v = 3
/// colrows per node and l = v(v-1) = 6 cells would reach v/sqrt(l) * sqrt(P)
/// (paper, Section V-B).
double gcrm_cost_limit(std::int64_t P);

/// Per-node communication lower bound for LU of an m x m matrix on P nodes
/// under fair data distribution (Kwasniewski et al. [2]): m^2 / sqrt(P)
/// elements per node.
double lu_comm_lower_bound_per_node(double m, std::int64_t P);

/// Memory-dependent parallel-I/O lower bound in the Irony–Toledo–Tiskin /
/// COnfLUX form `Q >= F / (P sqrt(8 M)) - M` per node, in *tiles*: any
/// parallel schedule of `flops_tiles` tile-multiply operations where each
/// node holds at most `memory_tiles` tiles of fast memory must move at
/// least this many tiles into some node.  Clamped at zero (the -M slack
/// makes the bound vacuous once replication covers the whole working set);
/// every measured 2.5D volume must sit on or above it — a property the
/// tests enforce for random (P, c, t).
double io_lower_bound_per_node_tiles(double flops_tiles, std::int64_t P,
                                     double memory_tiles);

/// The bound above instantiated for a t x t tile LU (t^3/3 multiplies) /
/// Cholesky (t^3/6) with memory factor `layers`: each of the P nodes
/// stores its replicated share M = layers * t^2 / P tiles.  Returns the
/// *total* across nodes (P times the per-node bound), in tiles — directly
/// comparable to exact_*_volume_25d.
double lu_io_lower_bound_tiles(std::int64_t t, std::int64_t P,
                               std::int64_t layers);
double cholesky_io_lower_bound_tiles(std::int64_t t, std::int64_t P,
                                     std::int64_t layers);

}  // namespace anyblock::core
