#include "core/distribution.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace anyblock::core {

PatternDistribution::PatternDistribution(Pattern pattern, std::int64_t t,
                                         bool symmetric, std::string name)
    : pattern_(std::move(pattern)),
      t_(t),
      symmetric_(symmetric),
      name_(std::move(name)) {
  if (t <= 0) throw std::invalid_argument("tile grid must be positive");
  if (const std::string err = pattern_.validate(); !err.empty())
    throw std::invalid_argument("invalid pattern: " + err);
  if (!pattern_.is_complete() && !pattern_.is_square())
    throw std::invalid_argument("incomplete patterns must be square");
  bind_free_cells();
}

NodeId PatternDistribution::owner(std::int64_t i, std::int64_t j) const {
  const NodeId cell = pattern_.at(i % pattern_.rows(), j % pattern_.cols());
  if (cell != Pattern::kFree) return cell;
  const auto it = bound_.find(i * t_ + j);
  if (it == bound_.end())
    throw std::out_of_range("tile outside the served grid maps to a free cell");
  return it->second;
}

std::vector<std::int64_t> PatternDistribution::tile_loads() const {
  return loads_;
}

void PatternDistribution::bind_free_cells() {
  const std::int64_t r = pattern_.rows();
  loads_.assign(static_cast<std::size_t>(pattern_.num_nodes()), 0);

  // Base loads from assigned cells over the served region.
  for (std::int64_t i = 0; i < t_; ++i) {
    const std::int64_t j_end = symmetric_ ? i + 1 : t_;
    for (std::int64_t j = 0; j < j_end; ++j) {
      const NodeId n = pattern_.at(i % r, j % pattern_.cols());
      if (n != Pattern::kFree) ++loads_[static_cast<std::size_t>(n)];
    }
  }

  if (pattern_.is_complete()) return;

  // Candidate nodes per free diagonal cell: all nodes of its colrow.
  std::vector<std::vector<NodeId>> colrow_nodes(static_cast<std::size_t>(r));
  for (std::int64_t d = 0; d < r; ++d) {
    if (pattern_.at(d, d) != Pattern::kFree) continue;
    std::vector<NodeId> nodes;
    for (std::int64_t k = 0; k < r; ++k) {
      if (const NodeId n = pattern_.at(d, k); n != Pattern::kFree)
        nodes.push_back(n);
      if (const NodeId n = pattern_.at(k, d); n != Pattern::kFree)
        nodes.push_back(n);
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    if (nodes.empty())
      throw std::invalid_argument("free diagonal cell with an empty colrow");
    colrow_nodes[static_cast<std::size_t>(d)] = std::move(nodes);
  }

  // Greedy balanced binding, replica by replica, in row-major tile order
  // (paper, Section V: "successively assigning undefined tiles to the least
  // loaded node among those present in the colrow").
  for (std::int64_t i = 0; i < t_; ++i) {
    const std::int64_t j_end = symmetric_ ? i + 1 : t_;
    for (std::int64_t j = 0; j < j_end; ++j) {
      if (i % r != j % r) continue;
      const std::int64_t d = i % r;
      if (pattern_.at(d, d) != Pattern::kFree) continue;
      const auto& candidates = colrow_nodes[static_cast<std::size_t>(d)];
      NodeId best = candidates.front();
      std::int64_t best_load = std::numeric_limits<std::int64_t>::max();
      for (const NodeId n : candidates) {
        const std::int64_t load = loads_[static_cast<std::size_t>(n)];
        if (load < best_load) {
          best = n;
          best_load = load;
        }
      }
      bound_.emplace(i * t_ + j, best);
      ++loads_[static_cast<std::size_t>(best)];
    }
  }
}

ExplicitDistribution::ExplicitDistribution(std::vector<NodeId> owners,
                                           std::int64_t t,
                                           std::int64_t num_nodes,
                                           std::string name)
    : owners_(std::move(owners)),
      t_(t),
      num_nodes_(num_nodes),
      name_(std::move(name)) {
  if (owners_.size() != static_cast<std::size_t>(t * t))
    throw std::invalid_argument("owners table must be t*t entries");
}

NodeId ExplicitDistribution::owner(std::int64_t i, std::int64_t j) const {
  return owners_[static_cast<std::size_t>(i * t_ + j)];
}

}  // namespace anyblock::core
