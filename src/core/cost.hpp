// Communication cost metric T(G) and the per-factorization volume
// predictions of Equations 1 and 2 (paper, Section III).
//
// All volumes are expressed in *tiles sent*; multiply by the tile byte size
// to obtain bytes.  `t` below is the number of tiles per matrix side.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/config.hpp"
#include "core/distribution.hpp"
#include "core/pattern.hpp"
#include "core/replicated.hpp"

namespace anyblock::core {

/// T(G) = x-bar + y-bar: mean distinct nodes per pattern row plus per
/// pattern column.  Drives LU communications (paper, Section III-C).
double lu_cost(const Pattern& pattern);

/// T(G) = z-bar: mean distinct nodes per pattern colrow.  Drives Cholesky
/// communications; requires a square pattern.
double cholesky_cost(const Pattern& pattern);

/// Symmetric cost of a (possibly rectangular) pattern used for comparison
/// plots (paper, Section V-B): for 2DBC-style patterns the number of nodes
/// in a colrow is #row-nodes + #col-nodes - 1 (one shared at the
/// intersection), hence T_sym = T_LU - 1.  For square patterns, the exact
/// colrow count is used instead.
double symmetric_cost(const Pattern& pattern);

/// Eq. 1: Q_LU(G) = t(t+1)/2 * (x-bar + y-bar - 2), in tiles, for an
/// m x m matrix of t x t tiles.  Exact up to edge effects (domain shrinking
/// in the last r or c iterations and partial replication at matrix borders).
double predicted_lu_volume(const Pattern& pattern, std::int64_t t);

/// Eq. 2: Q_Chol(G) = t(t+1)/2 * (z-bar - 1), in tiles.
double predicted_cholesky_volume(const Pattern& pattern, std::int64_t t);

/// Exact communication volume (tiles sent) of a right-looking tile LU
/// factorization of a t x t tile matrix under the owner-computes rule:
/// counts distinct (tile, destination) pairs over all iterations, including
/// the edge effects Eq. 1 neglects.  O(t^2 * (r + c)) time.
std::int64_t exact_lu_volume(const Pattern& pattern, std::int64_t t);

/// Exact communication volume of a right-looking tile Cholesky (lower
/// triangle) under owner-computes; requires a square pattern.  Free diagonal
/// cells are bound with the balanced lazy assignment of Distribution.
std::int64_t exact_cholesky_volume(const Pattern& pattern, std::int64_t t);

/// Generic-distribution overloads: same counting as the Pattern versions
/// but driven through an arbitrary owner map, with no cyclic-periodicity
/// shortcut.  The pattern and generic counters validate each other in the
/// tests (they must agree exactly on PatternDistribution).
std::int64_t exact_lu_volume(const Distribution& distribution, std::int64_t t);
std::int64_t exact_cholesky_volume(const Distribution& distribution,
                                   std::int64_t t);

/// SYRK C := C - A*A^T with C of t x t tiles (lower) and A of t x k tiles:
/// every panel tile A(i, l) travels along colrow i of C (no domain
/// shrinking), so Q = k * t * (z-bar - 1) when the pattern side divides t.
double predicted_syrk_volume(const Pattern& pattern, std::int64_t t,
                             std::int64_t k);

/// Exact owner-computes volume of the SYRK update.  C follows the pattern
/// with symmetric lazy diagonal binding; A follows the same pattern
/// replicated cyclically (column l of A uses pattern column l mod r) with
/// non-symmetric binding.
std::int64_t exact_syrk_volume(const Pattern& pattern, std::int64_t t,
                               std::int64_t k);

/// GEMM C := C + A*B with C of t x t tiles, A of t x k and B of k x t:
/// A(i, l) travels along row i of C and B(l, j) down column j, so
/// Q = k * t * (x-bar - 1 + y-bar - 1) = k * t * (T_LU - 2) when the
/// pattern tiles the grid evenly.  For a square 2DBC grid this is the
/// asymptotically optimal 2 t^2 / sqrt(P) tiles per node of Irony, Toledo
/// and Tiskin (paper, Section II-A).
double predicted_gemm_volume(const Pattern& pattern, std::int64_t t,
                             std::int64_t k);

/// Exact owner-computes volume of the GEMM update; C follows the pattern
/// (non-symmetric binding), A inherits columns mod t, B inherits rows mod t.
std::int64_t exact_gemm_volume(const Pattern& pattern, std::int64_t t,
                               std::int64_t k);

/// Closed-form message-count predictions per collective algorithm.
///
/// Each published tile with d distinct remote consumers costs
/// comm::multicast_messages(d, config) messages:
///   p2p   d              (Eq. 1/2 territory: messages == volume)
///   tree  d              (same count, critical path ceil(log2(d+1)))
///   chain d * chunks     (every chain link carries every chunk)
/// These are the numbers the vmpi-measured counters of dist::distributed_*
/// and the simulator's per-run totals must match *exactly* — the
/// three-layer cross-check the comm subsystem is built around.
std::int64_t exact_lu_messages(const Distribution& distribution,
                               std::int64_t t,
                               const comm::CollectiveConfig& config);
std::int64_t exact_cholesky_messages(const Distribution& distribution,
                                     std::int64_t t,
                                     const comm::CollectiveConfig& config);

/// Per-iteration breakdown of the exact message counts above (entry l =
/// messages for tiles published at iteration l); sums to exact_*_messages.
std::vector<std::int64_t> lu_message_profile(
    const Distribution& distribution, std::int64_t t,
    const comm::CollectiveConfig& config);
std::vector<std::int64_t> cholesky_message_profile(
    const Distribution& distribution, std::int64_t t,
    const comm::CollectiveConfig& config);

/// ---- 2.5D closed forms (core/replicated.hpp) -------------------------
///
/// Under the layer-rotation schedule, iteration l's panel broadcasts stay
/// inside compute layer l mod c and are node-for-node isomorphic to the 2D
/// broadcasts of the base distribution, so the *only* extra traffic is the
/// inter-layer reduction: every tile finalized at iteration m receives
/// min(m, c-1) partial sums, one tile each.  Hence
///   volume_25d  = exact_*_volume(base)  + reduce_count_*(t, c)
///   messages_25d = exact_*_messages(base) + reduce_count_* * msgs(1 dest)
/// and both are pinned against simulator / vmpi measurements by the tests.

/// Number of inter-layer partial-sum transfers in a t x t LU with memory
/// factor `layers`: sum over l of (2(t-1-l) + 1) * min(l, layers - 1).
std::int64_t reduce_count_lu(std::int64_t t, std::int64_t layers);

/// Same for Cholesky (t - l tiles finalize at iteration l):
/// sum over l of (t - l) * min(l, layers - 1).
std::int64_t reduce_count_cholesky(std::int64_t t, std::int64_t layers);

/// Exact communication volume (tiles sent) of the 2.5D factorizations.
std::int64_t exact_lu_volume_25d(const ReplicatedDistribution& distribution,
                                 std::int64_t t);
std::int64_t exact_cholesky_volume_25d(
    const ReplicatedDistribution& distribution, std::int64_t t);

/// Exact message counts per collective algorithm; each reduction is a
/// single-destination multicast (p2p/tree: 1 message, chain: chunk count).
std::int64_t exact_lu_messages_25d(const ReplicatedDistribution& distribution,
                                   std::int64_t t,
                                   const comm::CollectiveConfig& config);
std::int64_t exact_cholesky_messages_25d(
    const ReplicatedDistribution& distribution, std::int64_t t,
    const comm::CollectiveConfig& config);

/// Per-rank *sent-tile* counts under eager p2p (entry n = tiles rank n
/// produces and sends): broadcasts are credited to the producing replica on
/// the iteration's compute layer, reductions to the flushing remote
/// replica.  Sums to exact_*_volume_25d; the simulator's per-node
/// messages_sent must match entry for entry under kEagerP2P.
std::vector<std::int64_t> lu_send_profile_25d(
    const ReplicatedDistribution& distribution, std::int64_t t);
std::vector<std::int64_t> cholesky_send_profile_25d(
    const ReplicatedDistribution& distribution, std::int64_t t);

}  // namespace anyblock::core
