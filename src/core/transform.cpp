#include "core/transform.hpp"

#include <stdexcept>
#include <vector>

namespace anyblock::core {

Pattern transposed(const Pattern& pattern) {
  Pattern result(pattern.cols(), pattern.rows(), pattern.num_nodes());
  for (std::int64_t i = 0; i < pattern.rows(); ++i)
    for (std::int64_t j = 0; j < pattern.cols(); ++j)
      result.set(j, i, pattern.at(i, j));
  return result;
}

Pattern canonical_relabel(const Pattern& pattern) {
  std::vector<NodeId> rename(static_cast<std::size_t>(pattern.num_nodes()),
                             Pattern::kFree);
  NodeId next = 0;
  Pattern result(pattern.rows(), pattern.cols(), pattern.num_nodes());
  for (std::int64_t i = 0; i < pattern.rows(); ++i) {
    for (std::int64_t j = 0; j < pattern.cols(); ++j) {
      const NodeId n = pattern.at(i, j);
      if (n == Pattern::kFree) continue;
      auto& mapped = rename[static_cast<std::size_t>(n)];
      if (mapped == Pattern::kFree) mapped = next++;
      result.set(i, j, mapped);
    }
  }
  return result;
}

bool equivalent_up_to_relabel(const Pattern& a, const Pattern& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols() ||
      a.num_nodes() != b.num_nodes())
    return false;
  return canonical_relabel(a) == canonical_relabel(b);
}

Pattern layer_pattern(const Pattern& base, std::int64_t layer,
                      std::int64_t layers) {
  if (layers < 1)
    throw std::invalid_argument("layer_pattern: layers must be >= 1");
  if (layer < 0 || layer >= layers)
    throw std::invalid_argument("layer_pattern: layer out of range");
  Pattern result(base.rows(), base.cols(), base.num_nodes() * layers);
  for (std::int64_t i = 0; i < base.rows(); ++i) {
    for (std::int64_t j = 0; j < base.cols(); ++j) {
      const NodeId n = base.at(i, j);
      if (n == Pattern::kFree) continue;
      result.set(i, j, static_cast<NodeId>(layer * base.num_nodes() + n));
    }
  }
  return result;
}

Pattern project_to_base(const Pattern& layered, std::int64_t base_nodes) {
  if (base_nodes < 1)
    throw std::invalid_argument("project_to_base: base_nodes must be >= 1");
  Pattern result(layered.rows(), layered.cols(), base_nodes);
  for (std::int64_t i = 0; i < layered.rows(); ++i) {
    for (std::int64_t j = 0; j < layered.cols(); ++j) {
      const NodeId n = layered.at(i, j);
      if (n == Pattern::kFree) continue;
      result.set(i, j, static_cast<NodeId>(n % base_nodes));
    }
  }
  return result;
}

}  // namespace anyblock::core
