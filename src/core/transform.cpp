#include "core/transform.hpp"

#include <vector>

namespace anyblock::core {

Pattern transposed(const Pattern& pattern) {
  Pattern result(pattern.cols(), pattern.rows(), pattern.num_nodes());
  for (std::int64_t i = 0; i < pattern.rows(); ++i)
    for (std::int64_t j = 0; j < pattern.cols(); ++j)
      result.set(j, i, pattern.at(i, j));
  return result;
}

Pattern canonical_relabel(const Pattern& pattern) {
  std::vector<NodeId> rename(static_cast<std::size_t>(pattern.num_nodes()),
                             Pattern::kFree);
  NodeId next = 0;
  Pattern result(pattern.rows(), pattern.cols(), pattern.num_nodes());
  for (std::int64_t i = 0; i < pattern.rows(); ++i) {
    for (std::int64_t j = 0; j < pattern.cols(); ++j) {
      const NodeId n = pattern.at(i, j);
      if (n == Pattern::kFree) continue;
      auto& mapped = rename[static_cast<std::size_t>(n)];
      if (mapped == Pattern::kFree) mapped = next++;
      result.set(i, j, mapped);
    }
  }
  return result;
}

bool equivalent_up_to_relabel(const Pattern& a, const Pattern& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols() ||
      a.num_nodes() != b.num_nodes())
    return false;
  return canonical_relabel(a) == canonical_relabel(b);
}

}  // namespace anyblock::core
