// Classical 2D Block-Cyclic patterns (paper, Sections I and IV-C).
//
// A 2DBC pattern of shape r x c places node  i*c + j  in cell (i, j): every
// node appears exactly once, each row holds c distinct nodes and each column
// r, so T_LU = r + c.  The quality of the distribution therefore depends
// entirely on how close to square P = r*c can be factored — the limitation
// G-2DBC removes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/pattern.hpp"

namespace anyblock::core {

/// Builds the r x c block-cyclic pattern over P = r*c nodes.
Pattern make_2dbc(std::int64_t grid_rows, std::int64_t grid_cols);

/// All ways to write P = r*c with r >= c >= 1, ordered by decreasing r
/// (i.e., from the tallest grid to the squarest).
std::vector<std::pair<std::int64_t, std::int64_t>> grid_shapes(std::int64_t P);

/// The factorization P = r*c minimizing T = r + c (the squarest grid),
/// with r >= c.
std::pair<std::int64_t, std::int64_t> best_grid(std::int64_t P);

/// Best 2DBC pattern using *exactly* P nodes.
Pattern best_2dbc(std::int64_t P);

/// Best 2DBC pattern using *at most* P nodes: for every P' <= P, consider
/// the squarest grid and keep the one with the largest P' among those
/// minimizing T; this is the "reserve fewer nodes" strategy of the paper's
/// introduction.  Returns the chosen pattern (its num_nodes() tells P').
Pattern best_2dbc_at_most(std::int64_t P);

}  // namespace anyblock::core
