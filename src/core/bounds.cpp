#include "core/bounds.hpp"

#include <cmath>

namespace anyblock::core {

double lu_cost_reference(std::int64_t P) {
  return 2.0 * std::sqrt(static_cast<double>(P));
}

double g2dbc_cost_bound(std::int64_t P) {
  const double root = std::sqrt(static_cast<double>(P));
  return 2.0 * root + 2.0 / root;
}

double sbc_cost_reference(std::int64_t P) {
  return std::sqrt(2.0 * static_cast<double>(P));
}

double sbc_extended_cost_reference(std::int64_t P) {
  return std::sqrt(2.0 * static_cast<double>(P)) - 0.5;
}

double gcrm_cost_limit(std::int64_t P) {
  return std::sqrt(1.5 * static_cast<double>(P));
}

double lu_comm_lower_bound_per_node(double m, std::int64_t P) {
  return m * m / std::sqrt(static_cast<double>(P));
}

double io_lower_bound_per_node_tiles(double flops_tiles, std::int64_t P,
                                     double memory_tiles) {
  if (memory_tiles <= 0.0) return 0.0;
  const double bound =
      flops_tiles / (static_cast<double>(P) * std::sqrt(8.0 * memory_tiles)) -
      memory_tiles;
  return bound > 0.0 ? bound : 0.0;
}

double lu_io_lower_bound_tiles(std::int64_t t, std::int64_t P,
                               std::int64_t layers) {
  const double td = static_cast<double>(t);
  const double memory =
      static_cast<double>(layers) * td * td / static_cast<double>(P);
  return static_cast<double>(P) *
         io_lower_bound_per_node_tiles(td * td * td / 3.0, P, memory);
}

double cholesky_io_lower_bound_tiles(std::int64_t t, std::int64_t P,
                                     std::int64_t layers) {
  const double td = static_cast<double>(t);
  const double memory =
      static_cast<double>(layers) * td * td / static_cast<double>(P);
  return static_cast<double>(P) *
         io_lower_bound_per_node_tiles(td * td * td / 6.0, P, memory);
}

}  // namespace anyblock::core
