#include "core/bounds.hpp"

#include <cmath>

namespace anyblock::core {

double lu_cost_reference(std::int64_t P) {
  return 2.0 * std::sqrt(static_cast<double>(P));
}

double g2dbc_cost_bound(std::int64_t P) {
  const double root = std::sqrt(static_cast<double>(P));
  return 2.0 * root + 2.0 / root;
}

double sbc_cost_reference(std::int64_t P) {
  return std::sqrt(2.0 * static_cast<double>(P));
}

double sbc_extended_cost_reference(std::int64_t P) {
  return std::sqrt(2.0 * static_cast<double>(P)) - 0.5;
}

double gcrm_cost_limit(std::int64_t P) {
  return std::sqrt(1.5 * static_cast<double>(P));
}

double lu_comm_lower_bound_per_node(double m, std::int64_t P) {
  return m * m / std::sqrt(static_cast<double>(P));
}

}  // namespace anyblock::core
