#include "core/g2dbc.hpp"

#include <stdexcept>

#include "core/block_cyclic.hpp"
#include "util/math.hpp"

namespace anyblock::core {

std::int64_t G2dbcParams::pattern_rows() const {
  return degenerate() ? b : b * (b - 1);
}

std::int64_t G2dbcParams::pattern_cols() const {
  return degenerate() ? a : P;
}

G2dbcParams g2dbc_params(std::int64_t P) {
  if (P <= 0) throw std::invalid_argument("P must be positive");
  G2dbcParams params;
  params.P = P;
  params.a = isqrt_ceil(P);
  params.b = ceil_div(P, params.a);
  params.c = params.a * params.b - P;
  return params;
}

Pattern g2dbc_incomplete_pattern(const G2dbcParams& params) {
  // IP is b x a with nodes enumerated row-major; the last c cells of the
  // last row stay free.  Free cells off the diagonal are intentional here —
  // IP is a construction intermediate, never used as a distribution.
  Pattern ip(params.b, params.a, params.P);
  NodeId next = 0;
  for (std::int64_t u = 0; u < params.b; ++u) {
    for (std::int64_t v = 0; v < params.a; ++v) {
      const bool undefined = (u == params.b - 1) && (v >= params.a - params.c);
      if (!undefined) ip.set(u, v, next++);
    }
  }
  return ip;
}

Pattern g2dbc_sub_pattern(const G2dbcParams& params, std::int64_t i) {
  if (i < 1 || i > params.b - 1)
    throw std::out_of_range("sub-pattern index must be in [1, b-1]");
  const Pattern ip = g2dbc_incomplete_pattern(params);
  Pattern sub(params.b, params.a, params.P);
  for (std::int64_t u = 0; u < params.b; ++u) {
    for (std::int64_t v = 0; v < params.a; ++v) {
      const NodeId n = ip.at(u, v);
      // Undefined cells of IP's last row take the last c elements of IP's
      // row i (1-based), column-aligned, so the duplicate lands in the same
      // pattern column as its original — this is what keeps those columns
      // at b-1 distinct nodes (Section IV-B).
      sub.set(u, v, n != Pattern::kFree ? n : ip.at(i - 1, v));
    }
  }
  return sub;
}

Pattern make_g2dbc(std::int64_t P) {
  const G2dbcParams params = g2dbc_params(P);
  if (params.degenerate()) return make_2dbc(params.b, params.a);

  const std::int64_t a = params.a;
  const std::int64_t b = params.b;
  const std::int64_t c = params.c;
  const Pattern ip = g2dbc_incomplete_pattern(params);
  Pattern full(b * (b - 1), P, P);

  for (std::int64_t block = 1; block <= b - 1; ++block) {
    const Pattern sub = g2dbc_sub_pattern(params, block);
    const std::int64_t row0 = (block - 1) * b;
    for (std::int64_t u = 0; u < b; ++u) {
      // b-1 copies of P_block ...
      for (std::int64_t copy = 0; copy < b - 1; ++copy)
        for (std::int64_t v = 0; v < a; ++v)
          full.set(row0 + u, copy * a + v, sub.at(u, v));
      // ... followed by one copy of LP (the first a-c columns of IP).
      for (std::int64_t v = 0; v < a - c; ++v)
        full.set(row0 + u, (b - 1) * a + v, ip.at(u, v));
    }
  }
  return full;
}

double g2dbc_cost_formula(std::int64_t P) {
  const G2dbcParams p = g2dbc_params(P);
  const double ybar =
      (static_cast<double>(p.b * p.b) * static_cast<double>(p.a - p.c) +
       static_cast<double>((p.b - 1) * (p.b - 1)) * static_cast<double>(p.c)) /
      static_cast<double>(P);
  return static_cast<double>(p.a) + ybar;
}

}  // namespace anyblock::core
