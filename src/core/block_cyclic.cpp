#include "core/block_cyclic.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace anyblock::core {

Pattern make_2dbc(std::int64_t grid_rows, std::int64_t grid_cols) {
  if (grid_rows <= 0 || grid_cols <= 0)
    throw std::invalid_argument("2DBC grid dimensions must be positive");
  Pattern pattern(grid_rows, grid_cols, grid_rows * grid_cols);
  for (std::int64_t i = 0; i < grid_rows; ++i)
    for (std::int64_t j = 0; j < grid_cols; ++j)
      pattern.set(i, j, static_cast<NodeId>(i * grid_cols + j));
  return pattern;
}

std::vector<std::pair<std::int64_t, std::int64_t>> grid_shapes(
    std::int64_t P) {
  if (P <= 0) throw std::invalid_argument("P must be positive");
  std::vector<std::pair<std::int64_t, std::int64_t>> shapes;
  for (std::int64_t c = 1; c <= isqrt_floor(P); ++c) {
    if (P % c == 0) shapes.emplace_back(P / c, c);
  }
  return shapes;  // c ascending <=> r descending: tallest first
}

std::pair<std::int64_t, std::int64_t> best_grid(std::int64_t P) {
  return grid_shapes(P).back();
}

Pattern best_2dbc(std::int64_t P) {
  const auto [r, c] = best_grid(P);
  return make_2dbc(r, c);
}

Pattern best_2dbc_at_most(std::int64_t P) {
  if (P <= 0) throw std::invalid_argument("P must be positive");
  std::int64_t best_P = 1;
  std::int64_t best_r = 1;
  std::int64_t best_c = 1;
  double best_score = 2.0;  // T = r + c of the 1x1 grid
  for (std::int64_t candidate = 1; candidate <= P; ++candidate) {
    const auto [r, c] = best_grid(candidate);
    // Prefer higher total throughput: more nodes at equal per-node comm
    // cost.  Score grids by T/sqrt(P'), lower is better; ties go to the
    // larger node count.
    const double score = static_cast<double>(r + c) /
                         std::sqrt(static_cast<double>(candidate));
    if (score < best_score ||
        (score == best_score && candidate > best_P)) {
      best_score = score;
      best_P = candidate;
      best_r = r;
      best_c = c;
    }
  }
  (void)best_P;
  return make_2dbc(best_r, best_c);
}

}  // namespace anyblock::core
