#include "core/pattern.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace anyblock::core {

Pattern::Pattern(std::int64_t rows, std::int64_t cols, std::int64_t num_nodes)
    : rows_(rows), cols_(cols), num_nodes_(num_nodes) {
  if (rows <= 0 || cols <= 0 || num_nodes <= 0)
    throw std::invalid_argument("Pattern dimensions and node count must be positive");
  cells_.assign(static_cast<std::size_t>(rows * cols), kFree);
}

void Pattern::set(std::int64_t row, std::int64_t col, NodeId node) {
  if (row < 0 || row >= rows_ || col < 0 || col >= cols_)
    throw std::out_of_range("Pattern::set: cell out of range");
  if (node != kFree && (node < 0 || node >= num_nodes_))
    throw std::out_of_range("Pattern::set: node id out of range");
  cells_[static_cast<std::size_t>(row * cols_ + col)] = node;
}

bool Pattern::is_complete() const {
  return std::none_of(cells_.begin(), cells_.end(),
                      [](NodeId n) { return n == kFree; });
}

std::int64_t Pattern::free_cell_count() const {
  return std::count(cells_.begin(), cells_.end(), kFree);
}

std::vector<std::int64_t> Pattern::node_loads() const {
  std::vector<std::int64_t> loads(static_cast<std::size_t>(num_nodes_), 0);
  for (const NodeId n : cells_) {
    if (n != kFree) ++loads[static_cast<std::size_t>(n)];
  }
  return loads;
}

bool Pattern::is_balanced(std::int64_t slack) const {
  const auto loads = node_loads();
  const auto [lo, hi] = std::minmax_element(loads.begin(), loads.end());
  return *hi - *lo <= slack;
}

namespace {

/// Counts distinct non-free values among cells selected by `get(k)` for
/// k in [0, count).  Uses a sorted scratch buffer: rows/colrows are short
/// (at most r + c entries), so this beats hashing.
template <typename Get>
std::int64_t count_distinct(std::int64_t count, Get get) {
  std::vector<NodeId> seen;
  seen.reserve(static_cast<std::size_t>(count));
  for (std::int64_t k = 0; k < count; ++k) {
    const NodeId n = get(k);
    if (n != Pattern::kFree) seen.push_back(n);
  }
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return static_cast<std::int64_t>(seen.size());
}

}  // namespace

std::int64_t Pattern::distinct_in_row(std::int64_t i) const {
  return count_distinct(cols_, [&](std::int64_t j) { return at(i, j); });
}

std::int64_t Pattern::distinct_in_col(std::int64_t j) const {
  return count_distinct(rows_, [&](std::int64_t i) { return at(i, j); });
}

std::int64_t Pattern::distinct_in_colrow(std::int64_t i) const {
  if (!is_square())
    throw std::logic_error("distinct_in_colrow requires a square pattern");
  // colrow i = row i followed by column i (2r cells, diagonal counted twice;
  // duplicates are removed by count_distinct).
  return count_distinct(2 * rows_, [&](std::int64_t k) {
    return k < cols_ ? at(i, k) : at(k - cols_, i);
  });
}

double Pattern::mean_row_distinct() const {
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < rows_; ++i) total += distinct_in_row(i);
  return static_cast<double>(total) / static_cast<double>(rows_);
}

double Pattern::mean_col_distinct() const {
  std::int64_t total = 0;
  for (std::int64_t j = 0; j < cols_; ++j) total += distinct_in_col(j);
  return static_cast<double>(total) / static_cast<double>(cols_);
}

double Pattern::mean_colrow_distinct() const {
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < rows_; ++i) total += distinct_in_colrow(i);
  return static_cast<double>(total) / static_cast<double>(rows_);
}

std::string Pattern::validate() const {
  std::vector<bool> present(static_cast<std::size_t>(num_nodes_), false);
  for (std::int64_t i = 0; i < rows_; ++i) {
    for (std::int64_t j = 0; j < cols_; ++j) {
      const NodeId n = at(i, j);
      if (n == kFree) {
        if (!is_square() || i != j) {
          std::ostringstream oss;
          oss << "free cell (" << i << "," << j
              << ") off the diagonal of a square pattern";
          return oss.str();
        }
        continue;
      }
      if (n < 0 || n >= num_nodes_) {
        std::ostringstream oss;
        oss << "cell (" << i << "," << j << ") holds invalid node " << n;
        return oss.str();
      }
      present[static_cast<std::size_t>(n)] = true;
    }
  }
  for (std::int64_t n = 0; n < num_nodes_; ++n) {
    if (!present[static_cast<std::size_t>(n)]) {
      std::ostringstream oss;
      oss << "node " << n << " never appears in the pattern";
      return oss.str();
    }
  }
  return {};
}

}  // namespace anyblock::core
