// Symmetric Block Cyclic distribution (Beaumont et al., SC'22; paper,
// Sections I, II-A and V).
//
// SBC exploits the symmetry of Cholesky/SYRK: a node is placed on exactly
// two colrows of a square a x a pattern, so every colrow holds about
// sqrt(2P) distinct nodes instead of the ~2 sqrt(P) of 2DBC.  It exists for
// two families of node counts:
//
//  * kTriangular, P = a(a-1)/2: node {i, j} (i < j) occupies cells (i, j)
//    and (j, i); the diagonal is left free and bound lazily per replica
//    (the *extended* version, Section III-C of [8]).  Cost T = a - 1,
//    i.e. ~ sqrt(2P) - 0.5.
//  * kHalfSquare, P = a^2/2 with a even: pair nodes as above plus a/2
//    dedicated diagonal nodes, node k owning cells (2k, 2k) and (2k+1,
//    2k+1) (the *basic* version).  Cost T = a = sqrt(2P).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/pattern.hpp"

namespace anyblock::core {

enum class SbcKind { kTriangular, kHalfSquare };

struct SbcParams {
  std::int64_t P = 0;
  std::int64_t a = 0;  ///< pattern side
  SbcKind kind = SbcKind::kTriangular;

  /// Exact cost T of the pattern: a-1 (triangular) or a (half-square).
  [[nodiscard]] double cost() const {
    return static_cast<double>(kind == SbcKind::kTriangular ? a - 1 : a);
  }
};

/// Parameters if P belongs to one of the SBC families (preferring the
/// cheaper triangular form when P fits both), nullopt otherwise.
std::optional<SbcParams> sbc_params(std::int64_t P);

[[nodiscard]] bool sbc_feasible(std::int64_t P);

/// Builds the SBC pattern; throws std::invalid_argument when infeasible.
Pattern make_sbc(std::int64_t P);
Pattern make_sbc(const SbcParams& params);

/// The largest feasible P' <= P with its parameters — the "use fewer nodes"
/// fallback the paper's experimental section compares against (Table Ib).
SbcParams best_sbc_at_most(std::int64_t P);

/// All feasible node counts up to `max_p`, ascending.
std::vector<std::int64_t> sbc_feasible_values(std::int64_t max_p);

}  // namespace anyblock::core
