// Tile kernels: the task bodies of the tiled LU and Cholesky factorizations.
//
// All kernels operate on row-major nb x nb tiles passed as spans; each call
// corresponds to exactly one task in the task-based execution model
// (GETRF/TRSM/GEMM for LU; POTRF/TRSM/SYRK/GEMM for Cholesky).  These are
// straightforward loop nests — the library's results depend on the task and
// communication structure, not on BLAS micro-optimization (the paper uses
// MKL; see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <span>

namespace anyblock::linalg {

/// C := alpha * op(A) * op(B) + beta * C, all nb x nb row-major.
void gemm(double alpha, std::span<const double> a, bool trans_a,
          std::span<const double> b, bool trans_b, double beta,
          std::span<double> c, std::int64_t nb);

/// C := C - A * B (the LU trailing update).
void gemm_update(std::span<const double> a, std::span<const double> b,
                 std::span<double> c, std::int64_t nb);

/// C := C - A * B^T (the Cholesky trailing update).
void gemm_update_trans_b(std::span<const double> a, std::span<const double> b,
                         std::span<double> c, std::int64_t nb);

/// C := C - A * A^T on the lower triangle only (SYRK, Cholesky diagonal
/// update).  The strict upper triangle of C is left untouched.
void syrk_update_lower(std::span<const double> a, std::span<double> c,
                       std::int64_t nb);

/// In-place LU without pivoting: A -> L\U (unit lower below the diagonal,
/// upper including the diagonal).  Returns false on a (near-)zero pivot.
bool getrf_nopiv(std::span<double> a, std::int64_t nb);

/// In-place lower Cholesky: the lower triangle of A becomes L.  The strict
/// upper triangle is left untouched.  Returns false if A is not positive
/// definite.
bool potrf_lower(std::span<double> a, std::int64_t nb);

/// B := B * U^{-1} with U the non-unit upper factor of a GETRF'd tile
/// (LU column-panel solve).
void trsm_right_upper(std::span<const double> u, std::span<double> b,
                      std::int64_t nb);

/// B := L^{-1} * B with L the unit lower factor of a GETRF'd tile
/// (LU row-panel solve).
void trsm_left_lower_unit(std::span<const double> l, std::span<double> b,
                          std::int64_t nb);

/// B := B * L^{-T} with L a non-unit lower Cholesky factor
/// (Cholesky panel solve).
void trsm_right_lower_trans(std::span<const double> l, std::span<double> b,
                            std::int64_t nb);

/// Vector kernels for the tiled triangular solves (one tile x one segment).
/// y := y - A * x (A nb x nb, x/y length nb).
void gemv_update(std::span<const double> a, std::span<const double> x,
                 std::span<double> y, std::int64_t nb);
/// y := y - A^T * x.
void gemv_update_trans(std::span<const double> a, std::span<const double> x,
                       std::span<double> y, std::int64_t nb);
/// x := L^{-1} x with L the unit lower part of a packed LU tile.
void trsv_lower_unit(std::span<const double> a, std::span<double> x,
                     std::int64_t nb);
/// x := U^{-1} x with U the upper part of a packed LU tile.
void trsv_upper(std::span<const double> a, std::span<double> x,
                std::int64_t nb);
/// x := L^{-1} x with L a non-unit lower (Cholesky) tile.
void trsv_lower(std::span<const double> a, std::span<double> x,
                std::int64_t nb);
/// x := L^{-T} x with L a non-unit lower (Cholesky) tile.
void trsv_lower_trans(std::span<const double> a, std::span<double> x,
                      std::int64_t nb);

/// Flop counts used for GFlop/s reporting (LAPACK conventions).
double gemm_flops(std::int64_t nb);
double syrk_flops(std::int64_t nb);
double trsm_flops(std::int64_t nb);
double getrf_flops(std::int64_t nb);
double potrf_flops(std::int64_t nb);
/// Whole-factorization flop counts for an n x n matrix.
double lu_total_flops(std::int64_t n);
double cholesky_total_flops(std::int64_t n);

}  // namespace anyblock::linalg
