#include "linalg/dense_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace anyblock::linalg {

DenseMatrix::DenseMatrix(std::int64_t rows, std::int64_t cols, double fill)
    : rows_(rows), cols_(cols) {
  if (rows < 0 || cols < 0)
    throw std::invalid_argument("matrix dimensions must be non-negative");
  data_.assign(static_cast<std::size_t>(rows * cols), fill);
}

double DenseMatrix::norm() const {
  double sum = 0.0;
  for (const double v : data_) sum += v * v;
  return std::sqrt(sum);
}

void DenseMatrix::subtract(const DenseMatrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("subtract: dimension mismatch");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.cols_ != b.rows_)
    throw std::invalid_argument("multiply: dimension mismatch");
  DenseMatrix c(a.rows_, b.cols_);
  for (std::int64_t i = 0; i < a.rows_; ++i) {
    for (std::int64_t k = 0; k < a.cols_; ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::int64_t j = 0; j < b.cols_; ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (std::int64_t i = 0; i < rows_; ++i)
    for (std::int64_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

}  // namespace anyblock::linalg
