#include "linalg/factorizations.hpp"

#include <stdexcept>

#include "linalg/kernels.hpp"

namespace anyblock::linalg {

bool tiled_lu_nopiv(TiledMatrix& a) {
  const std::int64_t t = a.tiles();
  const std::int64_t nb = a.tile_size();
  for (std::int64_t l = 0; l < t; ++l) {
    if (!getrf_nopiv(a.tile(l, l), nb)) return false;
    for (std::int64_t i = l + 1; i < t; ++i)
      trsm_right_upper(a.tile(l, l), a.tile(i, l), nb);
    for (std::int64_t j = l + 1; j < t; ++j)
      trsm_left_lower_unit(a.tile(l, l), a.tile(l, j), nb);
    for (std::int64_t i = l + 1; i < t; ++i)
      for (std::int64_t j = l + 1; j < t; ++j)
        gemm_update(a.tile(i, l), a.tile(l, j), a.tile(i, j), nb);
  }
  return true;
}

bool tiled_cholesky(TiledMatrix& a) {
  const std::int64_t t = a.tiles();
  const std::int64_t nb = a.tile_size();
  for (std::int64_t l = 0; l < t; ++l) {
    if (!potrf_lower(a.tile(l, l), nb)) return false;
    for (std::int64_t i = l + 1; i < t; ++i)
      trsm_right_lower_trans(a.tile(l, l), a.tile(i, l), nb);
    for (std::int64_t i = l + 1; i < t; ++i) {
      syrk_update_lower(a.tile(i, l), a.tile(i, i), nb);
      for (std::int64_t j = l + 1; j < i; ++j)
        gemm_update_trans_b(a.tile(i, l), a.tile(j, l), a.tile(i, j), nb);
    }
  }
  return true;
}

void tiled_gemm(const TiledPanel& a, const TiledPanel& b, TiledMatrix& c) {
  if (a.tile_rows() != c.tiles() || b.tile_cols() != c.tiles() ||
      a.tile_cols() != b.tile_rows() || a.tile_size() != c.tile_size() ||
      b.tile_size() != c.tile_size())
    throw std::invalid_argument("tiled_gemm: shape mismatch");
  const std::int64_t t = c.tiles();
  const std::int64_t k = a.tile_cols();
  const std::int64_t nb = c.tile_size();
  for (std::int64_t l = 0; l < k; ++l)
    for (std::int64_t i = 0; i < t; ++i)
      for (std::int64_t j = 0; j < t; ++j)
        gemm(1.0, a.tile(i, l), false, b.tile(l, j), false, 1.0,
             c.tile(i, j), nb);
}

void tiled_syrk(const TiledPanel& a, TiledMatrix& c) {
  if (a.tile_rows() != c.tiles() || a.tile_size() != c.tile_size())
    throw std::invalid_argument("tiled_syrk: panel/matrix shape mismatch");
  const std::int64_t t = c.tiles();
  const std::int64_t k = a.tile_cols();
  const std::int64_t nb = c.tile_size();
  for (std::int64_t l = 0; l < k; ++l) {
    for (std::int64_t i = 0; i < t; ++i) {
      syrk_update_lower(a.tile(i, l), c.tile(i, i), nb);
      for (std::int64_t j = 0; j < i; ++j)
        gemm_update_trans_b(a.tile(i, l), a.tile(j, l), c.tile(i, j), nb);
    }
  }
}

}  // namespace anyblock::linalg
