// Sequential right-looking tiled factorizations.
//
// These are the single-node references the distributed (vmpi) and simulated
// executions are validated against; their loop structure is exactly the
// task DAG described in Section III of the paper.
#pragma once

#include "linalg/tiled_matrix.hpp"
#include "linalg/tiled_panel.hpp"

namespace anyblock::linalg {

/// In-place tiled LU without pivoting: A -> L\U across the tile grid.
/// Returns false on a failed tile factorization (near-singular pivot).
bool tiled_lu_nopiv(TiledMatrix& a);

/// In-place tiled lower Cholesky on the lower triangle of A; tiles strictly
/// above the diagonal are not referenced.  Returns false if not positive
/// definite.
bool tiled_cholesky(TiledMatrix& a);

/// Tiled SYRK: C := C - A * A^T on the lower triangle of C, with A a
/// rectangular t x k tile panel (C is t x t).  The symmetric update at the
/// heart of the SBC/GCR&M communication analysis.
void tiled_syrk(const TiledPanel& a, TiledMatrix& c);

/// Tiled GEMM: C := C + A * B with A of t x k tiles and B of k x t (C is
/// t x t) — the non-symmetric counterpart, whose communication bound the
/// paper's Section II-A survey builds on.
void tiled_gemm(const TiledPanel& a, const TiledPanel& b, TiledMatrix& c);

}  // namespace anyblock::linalg
