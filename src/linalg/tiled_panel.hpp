// Rectangular tiled matrix: tr x tc tiles of nb x nb doubles.
//
// Used as the input panel A of the SYRK kernel C := C - A*A^T (paper,
// Sections II-A and V: SYRK is the second symmetric operation SBC — and
// hence GCR&M — was designed for).  TiledMatrix stays square because the
// factorizations only ever see square grids.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace anyblock::linalg {

class TiledPanel {
 public:
  TiledPanel() = default;
  TiledPanel(std::int64_t tile_rows, std::int64_t tile_cols,
             std::int64_t tile_size);

  [[nodiscard]] std::int64_t tile_rows() const { return tile_rows_; }
  [[nodiscard]] std::int64_t tile_cols() const { return tile_cols_; }
  [[nodiscard]] std::int64_t tile_size() const { return nb_; }
  [[nodiscard]] std::int64_t rows() const { return tile_rows_ * nb_; }
  [[nodiscard]] std::int64_t cols() const { return tile_cols_ * nb_; }
  [[nodiscard]] std::int64_t tile_elems() const { return nb_ * nb_; }

  [[nodiscard]] std::span<double> tile(std::int64_t i, std::int64_t j) {
    return {data_.data() + offset(i, j),
            static_cast<std::size_t>(tile_elems())};
  }
  [[nodiscard]] std::span<const double> tile(std::int64_t i,
                                             std::int64_t j) const {
    return {data_.data() + offset(i, j),
            static_cast<std::size_t>(tile_elems())};
  }

  [[nodiscard]] double& at(std::int64_t row, std::int64_t col);
  [[nodiscard]] double at(std::int64_t row, std::int64_t col) const;

  [[nodiscard]] DenseMatrix to_dense() const;
  static TiledPanel from_dense(const DenseMatrix& dense,
                               std::int64_t tile_size);

 private:
  [[nodiscard]] std::size_t offset(std::int64_t i, std::int64_t j) const {
    return static_cast<std::size_t>((i * tile_cols_ + j) * tile_elems());
  }

  std::int64_t tile_rows_ = 0;
  std::int64_t tile_cols_ = 0;
  std::int64_t nb_ = 0;
  std::vector<double> data_;
};

}  // namespace anyblock::linalg
