// Dense row-major matrix used for test references and residual checks.
//
// The production data structure is TiledMatrix; DenseMatrix exists so the
// distributed and task-based paths can be validated against straightforward
// triple-loop linear algebra.
#pragma once

#include <cstdint>
#include <vector>

namespace anyblock::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::int64_t rows, std::int64_t cols, double fill = 0.0);

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }

  [[nodiscard]] double& operator()(std::int64_t i, std::int64_t j) {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  [[nodiscard]] double operator()(std::int64_t i, std::int64_t j) const {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  [[nodiscard]] std::vector<double>& data() { return data_; }

  /// Frobenius norm.
  [[nodiscard]] double norm() const;

  /// this := this - other (dimensions must agree).
  void subtract(const DenseMatrix& other);

  /// Naive O(n^3) product (reference only).
  [[nodiscard]] static DenseMatrix multiply(const DenseMatrix& a,
                                            const DenseMatrix& b);

  [[nodiscard]] DenseMatrix transposed() const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace anyblock::linalg
