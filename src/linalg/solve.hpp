// Tiled triangular solves: turn the factorizations into actual solvers.
//
// After LU (A = L*U, packed) or Cholesky (A = L*L^T), these routines solve
// A x = b by forward/backward substitution over the tile grid — the
// operation end users run the factorization *for*, and the natural
// end-to-end check (||Ax - b|| / ||b||) used by the examples and tests.
#pragma once

#include <vector>

#include "linalg/tiled_matrix.hpp"

namespace anyblock::linalg {

/// x := L^{-1} x with L the *unit* lower factor of a packed LU matrix.
void forward_substitute_unit(const TiledMatrix& packed_lu,
                             std::vector<double>& x);

/// x := U^{-1} x with U the upper factor of a packed LU matrix.
void backward_substitute(const TiledMatrix& packed_lu, std::vector<double>& x);

/// x := L^{-1} x with L a non-unit lower Cholesky factor.
void forward_substitute(const TiledMatrix& cholesky_l, std::vector<double>& x);

/// x := L^{-T} x with L a non-unit lower Cholesky factor.
void backward_substitute_trans(const TiledMatrix& cholesky_l,
                               std::vector<double>& x);

/// Solves A x = b given the packed LU factors; returns x.
std::vector<double> lu_solve(const TiledMatrix& packed_lu,
                             std::vector<double> b);

/// Solves A x = b given the lower Cholesky factor; returns x.
std::vector<double> cholesky_solve(const TiledMatrix& cholesky_l,
                                   std::vector<double> b);

/// ||A x - b||_2 / ||b||_2 for a dense A (end-to-end solver check).
double solve_residual(const DenseMatrix& a, const std::vector<double>& x,
                      const std::vector<double>& b);

}  // namespace anyblock::linalg
