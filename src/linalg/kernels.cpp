#include "linalg/kernels.hpp"

#include <cmath>

namespace anyblock::linalg {
namespace {

constexpr double kPivotTolerance = 1e-300;

inline double elem(std::span<const double> m, std::int64_t nb, std::int64_t i,
                   std::int64_t j, bool trans) {
  return trans ? m[static_cast<std::size_t>(j * nb + i)]
               : m[static_cast<std::size_t>(i * nb + j)];
}

}  // namespace

void gemm(double alpha, std::span<const double> a, bool trans_a,
          std::span<const double> b, bool trans_b, double beta,
          std::span<double> c, std::int64_t nb) {
  for (std::int64_t i = 0; i < nb; ++i) {
    double* crow = c.data() + i * nb;
    if (beta != 1.0) {
      for (std::int64_t j = 0; j < nb; ++j) crow[j] *= beta;
    }
    for (std::int64_t k = 0; k < nb; ++k) {
      const double aik = alpha * elem(a, nb, i, k, trans_a);
      if (aik == 0.0) continue;
      if (!trans_b) {
        const double* brow = b.data() + k * nb;
        for (std::int64_t j = 0; j < nb; ++j) crow[j] += aik * brow[j];
      } else {
        const double* bcol = b.data() + k;  // B^T row k = B column k
        for (std::int64_t j = 0; j < nb; ++j) crow[j] += aik * bcol[j * nb];
      }
    }
  }
}

void gemm_update(std::span<const double> a, std::span<const double> b,
                 std::span<double> c, std::int64_t nb) {
  // C -= A*B with the ikj loop order (stride-1 inner loop everywhere).
  for (std::int64_t i = 0; i < nb; ++i) {
    double* crow = c.data() + i * nb;
    const double* arow = a.data() + i * nb;
    for (std::int64_t k = 0; k < nb; ++k) {
      const double aik = arow[k];
      const double* brow = b.data() + k * nb;
      for (std::int64_t j = 0; j < nb; ++j) crow[j] -= aik * brow[j];
    }
  }
}

void gemm_update_trans_b(std::span<const double> a, std::span<const double> b,
                         std::span<double> c, std::int64_t nb) {
  // C -= A*B^T: dot products of rows of A with rows of B.
  for (std::int64_t i = 0; i < nb; ++i) {
    const double* arow = a.data() + i * nb;
    double* crow = c.data() + i * nb;
    for (std::int64_t j = 0; j < nb; ++j) {
      const double* brow = b.data() + j * nb;
      double dot = 0.0;
      for (std::int64_t k = 0; k < nb; ++k) dot += arow[k] * brow[k];
      crow[j] -= dot;
    }
  }
}

void syrk_update_lower(std::span<const double> a, std::span<double> c,
                       std::int64_t nb) {
  for (std::int64_t i = 0; i < nb; ++i) {
    const double* arow_i = a.data() + i * nb;
    double* crow = c.data() + i * nb;
    for (std::int64_t j = 0; j <= i; ++j) {
      const double* arow_j = a.data() + j * nb;
      double dot = 0.0;
      for (std::int64_t k = 0; k < nb; ++k) dot += arow_i[k] * arow_j[k];
      crow[j] -= dot;
    }
  }
}

bool getrf_nopiv(std::span<double> a, std::int64_t nb) {
  for (std::int64_t k = 0; k < nb; ++k) {
    const double pivot = a[static_cast<std::size_t>(k * nb + k)];
    if (std::abs(pivot) < kPivotTolerance) return false;
    const double inv = 1.0 / pivot;
    for (std::int64_t i = k + 1; i < nb; ++i) {
      double* row_i = a.data() + i * nb;
      const double lik = row_i[k] * inv;
      row_i[k] = lik;
      const double* row_k = a.data() + k * nb;
      for (std::int64_t j = k + 1; j < nb; ++j) row_i[j] -= lik * row_k[j];
    }
  }
  return true;
}

bool potrf_lower(std::span<double> a, std::int64_t nb) {
  for (std::int64_t j = 0; j < nb; ++j) {
    double* row_j = a.data() + j * nb;
    double djj = row_j[j];
    for (std::int64_t k = 0; k < j; ++k) djj -= row_j[k] * row_j[k];
    if (djj <= 0.0) return false;
    const double ljj = std::sqrt(djj);
    row_j[j] = ljj;
    const double inv = 1.0 / ljj;
    for (std::int64_t i = j + 1; i < nb; ++i) {
      double* row_i = a.data() + i * nb;
      double lij = row_i[j];
      for (std::int64_t k = 0; k < j; ++k) lij -= row_i[k] * row_j[k];
      row_i[j] = lij * inv;
    }
  }
  return true;
}

void trsm_right_upper(std::span<const double> u, std::span<double> b,
                      std::int64_t nb) {
  // Solve X * U = B row by row: x_j = (b_j - sum_{k<j} x_k u_kj) / u_jj.
  for (std::int64_t i = 0; i < nb; ++i) {
    double* brow = b.data() + i * nb;
    for (std::int64_t j = 0; j < nb; ++j) {
      double x = brow[j];
      for (std::int64_t k = 0; k < j; ++k)
        x -= brow[k] * u[static_cast<std::size_t>(k * nb + j)];
      brow[j] = x / u[static_cast<std::size_t>(j * nb + j)];
    }
  }
}

void trsm_left_lower_unit(std::span<const double> l, std::span<double> b,
                          std::int64_t nb) {
  // Solve L * X = B with unit diagonal: x_i = b_i - sum_{k<i} l_ik x_k,
  // processed by rows so the inner loop is stride-1 over columns.
  for (std::int64_t i = 0; i < nb; ++i) {
    double* brow_i = b.data() + i * nb;
    const double* lrow = l.data() + i * nb;
    for (std::int64_t k = 0; k < i; ++k) {
      const double lik = lrow[k];
      if (lik == 0.0) continue;
      const double* brow_k = b.data() + k * nb;
      for (std::int64_t j = 0; j < nb; ++j) brow_i[j] -= lik * brow_k[j];
    }
  }
}

void trsm_right_lower_trans(std::span<const double> l, std::span<double> b,
                            std::int64_t nb) {
  // Solve X * L^T = B: x_j = (b_j - sum_{k<j} x_k l_jk) / l_jj.
  for (std::int64_t i = 0; i < nb; ++i) {
    double* brow = b.data() + i * nb;
    for (std::int64_t j = 0; j < nb; ++j) {
      double x = brow[j];
      const double* lrow_j = l.data() + j * nb;
      for (std::int64_t k = 0; k < j; ++k) x -= brow[k] * lrow_j[k];
      brow[j] = x / lrow_j[j];
    }
  }
}

void gemv_update(std::span<const double> a, std::span<const double> x,
                 std::span<double> y, std::int64_t nb) {
  for (std::int64_t i = 0; i < nb; ++i) {
    const double* row = a.data() + i * nb;
    double dot = 0.0;
    for (std::int64_t j = 0; j < nb; ++j) dot += row[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] -= dot;
  }
}

void gemv_update_trans(std::span<const double> a, std::span<const double> x,
                       std::span<double> y, std::int64_t nb) {
  for (std::int64_t j = 0; j < nb; ++j) {
    const double xj = x[static_cast<std::size_t>(j)];
    if (xj == 0.0) continue;
    const double* row = a.data() + j * nb;  // A^T column j = A row j
    for (std::int64_t i = 0; i < nb; ++i)
      y[static_cast<std::size_t>(i)] -= row[i] * xj;
  }
}

void trsv_lower_unit(std::span<const double> a, std::span<double> x,
                     std::int64_t nb) {
  for (std::int64_t i = 0; i < nb; ++i) {
    const double* row = a.data() + i * nb;
    double v = x[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < i; ++j) v -= row[j] * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = v;
  }
}

void trsv_upper(std::span<const double> a, std::span<double> x,
                std::int64_t nb) {
  for (std::int64_t i = nb - 1; i >= 0; --i) {
    const double* row = a.data() + i * nb;
    double v = x[static_cast<std::size_t>(i)];
    for (std::int64_t j = i + 1; j < nb; ++j)
      v -= row[j] * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = v / row[i];
  }
}

void trsv_lower(std::span<const double> a, std::span<double> x,
                std::int64_t nb) {
  for (std::int64_t i = 0; i < nb; ++i) {
    const double* row = a.data() + i * nb;
    double v = x[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < i; ++j) v -= row[j] * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = v / row[i];
  }
}

void trsv_lower_trans(std::span<const double> a, std::span<double> x,
                      std::int64_t nb) {
  // Solve L^T x = b: L^T(i, j) = L(j, i), upper triangular.
  for (std::int64_t i = nb - 1; i >= 0; --i) {
    double v = x[static_cast<std::size_t>(i)];
    for (std::int64_t j = i + 1; j < nb; ++j)
      v -= a[static_cast<std::size_t>(j * nb + i)] *
           x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = v / a[static_cast<std::size_t>(i * nb + i)];
  }
}

double gemm_flops(std::int64_t nb) {
  const double n = static_cast<double>(nb);
  return 2.0 * n * n * n;
}

double syrk_flops(std::int64_t nb) {
  const double n = static_cast<double>(nb);
  return n * n * (n + 1.0);
}

double trsm_flops(std::int64_t nb) {
  const double n = static_cast<double>(nb);
  return n * n * n;
}

double getrf_flops(std::int64_t nb) {
  const double n = static_cast<double>(nb);
  return 2.0 / 3.0 * n * n * n;
}

double potrf_flops(std::int64_t nb) {
  const double n = static_cast<double>(nb);
  return n * n * n / 3.0;
}

double lu_total_flops(std::int64_t n) {
  const double m = static_cast<double>(n);
  return 2.0 / 3.0 * m * m * m;
}

double cholesky_total_flops(std::int64_t n) {
  const double m = static_cast<double>(n);
  return m * m * m / 3.0;
}

}  // namespace anyblock::linalg
