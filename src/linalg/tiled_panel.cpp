#include "linalg/tiled_panel.hpp"

#include <stdexcept>

namespace anyblock::linalg {

TiledPanel::TiledPanel(std::int64_t tile_rows, std::int64_t tile_cols,
                       std::int64_t tile_size)
    : tile_rows_(tile_rows), tile_cols_(tile_cols), nb_(tile_size) {
  if (tile_rows <= 0 || tile_cols <= 0 || tile_size <= 0)
    throw std::invalid_argument("panel dimensions must be positive");
  data_.assign(
      static_cast<std::size_t>(tile_rows * tile_cols * tile_size * tile_size),
      0.0);
}

double& TiledPanel::at(std::int64_t row, std::int64_t col) {
  return data_[offset(row / nb_, col / nb_) +
               static_cast<std::size_t>((row % nb_) * nb_ + (col % nb_))];
}

double TiledPanel::at(std::int64_t row, std::int64_t col) const {
  return data_[offset(row / nb_, col / nb_) +
               static_cast<std::size_t>((row % nb_) * nb_ + (col % nb_))];
}

DenseMatrix TiledPanel::to_dense() const {
  DenseMatrix dense(rows(), cols());
  for (std::int64_t i = 0; i < rows(); ++i)
    for (std::int64_t j = 0; j < cols(); ++j) dense(i, j) = at(i, j);
  return dense;
}

TiledPanel TiledPanel::from_dense(const DenseMatrix& dense,
                                  std::int64_t tile_size) {
  if (dense.rows() % tile_size != 0 || dense.cols() % tile_size != 0)
    throw std::invalid_argument("from_dense: dimensions not tile-divisible");
  TiledPanel panel(dense.rows() / tile_size, dense.cols() / tile_size,
                   tile_size);
  for (std::int64_t i = 0; i < dense.rows(); ++i)
    for (std::int64_t j = 0; j < dense.cols(); ++j)
      panel.at(i, j) = dense(i, j);
  return panel;
}

}  // namespace anyblock::linalg
