#include "linalg/tiled_matrix.hpp"

#include <stdexcept>

namespace anyblock::linalg {

TiledMatrix::TiledMatrix(std::int64_t tiles, std::int64_t tile_size)
    : tiles_(tiles), nb_(tile_size) {
  if (tiles <= 0 || tile_size <= 0)
    throw std::invalid_argument("tile grid and tile size must be positive");
  data_.assign(static_cast<std::size_t>(tiles * tiles * tile_size * tile_size),
               0.0);
}

double& TiledMatrix::at(std::int64_t row, std::int64_t col) {
  const std::int64_t ti = row / nb_;
  const std::int64_t tj = col / nb_;
  return data_[tile_offset(ti, tj) +
               static_cast<std::size_t>((row % nb_) * nb_ + (col % nb_))];
}

double TiledMatrix::at(std::int64_t row, std::int64_t col) const {
  const std::int64_t ti = row / nb_;
  const std::int64_t tj = col / nb_;
  return data_[tile_offset(ti, tj) +
               static_cast<std::size_t>((row % nb_) * nb_ + (col % nb_))];
}

DenseMatrix TiledMatrix::to_dense() const {
  DenseMatrix dense(dim(), dim());
  for (std::int64_t i = 0; i < dim(); ++i)
    for (std::int64_t j = 0; j < dim(); ++j) dense(i, j) = at(i, j);
  return dense;
}

TiledMatrix TiledMatrix::from_dense(const DenseMatrix& dense,
                                    std::int64_t tile_size) {
  if (dense.rows() != dense.cols())
    throw std::invalid_argument("from_dense: matrix must be square");
  if (dense.rows() % tile_size != 0)
    throw std::invalid_argument("from_dense: dimension not tile-divisible");
  TiledMatrix tiled(dense.rows() / tile_size, tile_size);
  for (std::int64_t i = 0; i < dense.rows(); ++i)
    for (std::int64_t j = 0; j < dense.cols(); ++j)
      tiled.at(i, j) = dense(i, j);
  return tiled;
}

}  // namespace anyblock::linalg
