#include "linalg/verify.hpp"

namespace anyblock::linalg {

DenseMatrix extract_unit_lower(const TiledMatrix& factored) {
  const std::int64_t n = factored.dim();
  DenseMatrix l(n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    l(i, i) = 1.0;
    for (std::int64_t j = 0; j < i; ++j) l(i, j) = factored.at(i, j);
  }
  return l;
}

DenseMatrix extract_upper(const TiledMatrix& factored) {
  const std::int64_t n = factored.dim();
  DenseMatrix u(n, n);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = i; j < n; ++j) u(i, j) = factored.at(i, j);
  return u;
}

DenseMatrix extract_lower(const TiledMatrix& factored) {
  const std::int64_t n = factored.dim();
  DenseMatrix l(n, n);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j <= i; ++j) l(i, j) = factored.at(i, j);
  return l;
}

double lu_residual(const DenseMatrix& original, const TiledMatrix& factored) {
  DenseMatrix product =
      DenseMatrix::multiply(extract_unit_lower(factored),
                            extract_upper(factored));
  product.subtract(original);
  return product.norm() / original.norm();
}

double cholesky_residual(const DenseMatrix& original,
                         const TiledMatrix& factored) {
  const DenseMatrix l = extract_lower(factored);
  DenseMatrix product = DenseMatrix::multiply(l, l.transposed());
  product.subtract(original);
  return product.norm() / original.norm();
}

}  // namespace anyblock::linalg
