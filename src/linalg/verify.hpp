// Residual checks for the factorization outputs.
#pragma once

#include "linalg/dense_matrix.hpp"
#include "linalg/tiled_matrix.hpp"

namespace anyblock::linalg {

/// ||A - L*U||_F / ||A||_F where `factored` holds the packed L\U output of
/// an (un-pivoted) LU factorization.
double lu_residual(const DenseMatrix& original, const TiledMatrix& factored);

/// ||A - L*L^T||_F / ||A||_F where the lower triangle of `factored` holds
/// the Cholesky factor (the strict upper triangle is ignored).
double cholesky_residual(const DenseMatrix& original,
                         const TiledMatrix& factored);

/// Extracts the unit-lower / upper factors from a packed L\U matrix.
DenseMatrix extract_unit_lower(const TiledMatrix& factored);
DenseMatrix extract_upper(const TiledMatrix& factored);
DenseMatrix extract_lower(const TiledMatrix& factored);

}  // namespace anyblock::linalg
