#include "linalg/solve.hpp"

#include <cmath>
#include <stdexcept>

namespace anyblock::linalg {
namespace {

void check_size(const TiledMatrix& m, const std::vector<double>& x) {
  if (static_cast<std::int64_t>(x.size()) != m.dim())
    throw std::invalid_argument("vector length must equal the matrix dim");
}

}  // namespace

void forward_substitute_unit(const TiledMatrix& packed_lu,
                             std::vector<double>& x) {
  check_size(packed_lu, x);
  const std::int64_t n = packed_lu.dim();
  for (std::int64_t i = 0; i < n; ++i) {
    double v = x[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < i; ++j)
      v -= packed_lu.at(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = v;  // unit diagonal
  }
}

void backward_substitute(const TiledMatrix& packed_lu,
                         std::vector<double>& x) {
  check_size(packed_lu, x);
  const std::int64_t n = packed_lu.dim();
  for (std::int64_t i = n - 1; i >= 0; --i) {
    double v = x[static_cast<std::size_t>(i)];
    for (std::int64_t j = i + 1; j < n; ++j)
      v -= packed_lu.at(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = v / packed_lu.at(i, i);
  }
}

void forward_substitute(const TiledMatrix& cholesky_l,
                        std::vector<double>& x) {
  check_size(cholesky_l, x);
  const std::int64_t n = cholesky_l.dim();
  for (std::int64_t i = 0; i < n; ++i) {
    double v = x[static_cast<std::size_t>(i)];
    for (std::int64_t j = 0; j < i; ++j)
      v -= cholesky_l.at(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = v / cholesky_l.at(i, i);
  }
}

void backward_substitute_trans(const TiledMatrix& cholesky_l,
                               std::vector<double>& x) {
  check_size(cholesky_l, x);
  const std::int64_t n = cholesky_l.dim();
  // Solve L^T y = x: L^T(i, j) = L(j, i), upper triangular.
  for (std::int64_t i = n - 1; i >= 0; --i) {
    double v = x[static_cast<std::size_t>(i)];
    for (std::int64_t j = i + 1; j < n; ++j)
      v -= cholesky_l.at(j, i) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = v / cholesky_l.at(i, i);
  }
}

std::vector<double> lu_solve(const TiledMatrix& packed_lu,
                             std::vector<double> b) {
  forward_substitute_unit(packed_lu, b);
  backward_substitute(packed_lu, b);
  return b;
}

std::vector<double> cholesky_solve(const TiledMatrix& cholesky_l,
                                   std::vector<double> b) {
  forward_substitute(cholesky_l, b);
  backward_substitute_trans(cholesky_l, b);
  return b;
}

double solve_residual(const DenseMatrix& a, const std::vector<double>& x,
                      const std::vector<double>& b) {
  if (a.rows() != a.cols() ||
      static_cast<std::int64_t>(x.size()) != a.cols() ||
      x.size() != b.size())
    throw std::invalid_argument("solve_residual: dimension mismatch");
  double num = 0.0;
  double den = 0.0;
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    double axi = 0.0;
    for (std::int64_t j = 0; j < a.cols(); ++j)
      axi += a(i, j) * x[static_cast<std::size_t>(j)];
    const double r = axi - b[static_cast<std::size_t>(i)];
    num += r * r;
    den += b[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
  }
  return std::sqrt(num) / std::sqrt(den);
}

}  // namespace anyblock::linalg
