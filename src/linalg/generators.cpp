#include "linalg/generators.hpp"

namespace anyblock::linalg {

DenseMatrix random_matrix(std::int64_t n, Rng& rng) {
  DenseMatrix m(n, n);
  for (double& v : m.data()) v = 2.0 * rng.uniform() - 1.0;
  return m;
}

DenseMatrix diag_dominant_matrix(std::int64_t n, Rng& rng) {
  DenseMatrix m = random_matrix(n, rng);
  for (std::int64_t i = 0; i < n; ++i) m(i, i) += static_cast<double>(n);
  return m;
}

DenseMatrix spd_matrix(std::int64_t n, Rng& rng) {
  DenseMatrix m(n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j <= i; ++j) {
      const double v = 2.0 * rng.uniform() - 1.0;
      m(i, j) = v;
      m(j, i) = v;
    }
    m(i, i) += static_cast<double>(n);
  }
  return m;
}

TiledMatrix tiled_diag_dominant(std::int64_t tiles, std::int64_t tile_size,
                                Rng& rng) {
  return TiledMatrix::from_dense(diag_dominant_matrix(tiles * tile_size, rng),
                                 tile_size);
}

TiledMatrix tiled_spd(std::int64_t tiles, std::int64_t tile_size, Rng& rng) {
  return TiledMatrix::from_dense(spd_matrix(tiles * tile_size, rng),
                                 tile_size);
}

}  // namespace anyblock::linalg
