// Deterministic test-matrix generators.
//
// The paper experiments on randomly generated matrices; LU here runs
// without pivoting (as in Chameleon's getrf_nopiv path), so generators
// produce diagonally dominant matrices to keep the factorizations
// well-posed (see DESIGN.md substitutions).
#pragma once

#include <cstdint>

#include "linalg/dense_matrix.hpp"
#include "linalg/tiled_matrix.hpp"
#include "util/rng.hpp"

namespace anyblock::linalg {

/// Uniform entries in [-1, 1].
DenseMatrix random_matrix(std::int64_t n, Rng& rng);

/// Random entries with the diagonal shifted by +n: strictly diagonally
/// dominant, safe for LU without pivoting.
DenseMatrix diag_dominant_matrix(std::int64_t n, Rng& rng);

/// Symmetric random entries with the diagonal shifted by +n: symmetric
/// positive definite (dominance implies PD for symmetric matrices).
DenseMatrix spd_matrix(std::int64_t n, Rng& rng);

/// Tiled variants (dimension = tiles * tile_size).
TiledMatrix tiled_diag_dominant(std::int64_t tiles, std::int64_t tile_size,
                                Rng& rng);
TiledMatrix tiled_spd(std::int64_t tiles, std::int64_t tile_size, Rng& rng);

}  // namespace anyblock::linalg
