// Square tiled matrix: t x t tiles of nb x nb doubles, tile-contiguous.
//
// This mirrors the storage Chameleon operates on: each tile is a contiguous
// nb*nb block (row-major inside the tile), so a tile is exactly the unit of
// computation (one kernel call) and of communication (one message).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/dense_matrix.hpp"

namespace anyblock::linalg {

class TiledMatrix {
 public:
  TiledMatrix() = default;

  /// A (t*nb) x (t*nb) matrix of t x t tiles, zero-initialized.
  TiledMatrix(std::int64_t tiles, std::int64_t tile_size);

  [[nodiscard]] std::int64_t tiles() const { return tiles_; }
  [[nodiscard]] std::int64_t tile_size() const { return nb_; }
  [[nodiscard]] std::int64_t dim() const { return tiles_ * nb_; }
  [[nodiscard]] std::int64_t tile_elems() const { return nb_ * nb_; }

  [[nodiscard]] std::span<double> tile(std::int64_t i, std::int64_t j) {
    return {data_.data() + tile_offset(i, j),
            static_cast<std::size_t>(tile_elems())};
  }
  [[nodiscard]] std::span<const double> tile(std::int64_t i,
                                             std::int64_t j) const {
    return {data_.data() + tile_offset(i, j),
            static_cast<std::size_t>(tile_elems())};
  }

  /// Scalar element access through the tiled layout (reference/test use).
  [[nodiscard]] double& at(std::int64_t row, std::int64_t col);
  [[nodiscard]] double at(std::int64_t row, std::int64_t col) const;

  [[nodiscard]] DenseMatrix to_dense() const;
  static TiledMatrix from_dense(const DenseMatrix& dense,
                                std::int64_t tile_size);

 private:
  [[nodiscard]] std::size_t tile_offset(std::int64_t i, std::int64_t j) const {
    return static_cast<std::size_t>((i * tiles_ + j) * tile_elems());
  }

  std::int64_t tiles_ = 0;
  std::int64_t nb_ = 0;
  std::vector<double> data_;
};

}  // namespace anyblock::linalg
