// Latency histogram for query-shaped subsystems (src/serve).
//
// The factorization paths report durations through full traces; a serving
// hot path answering thousands of lookups per second cannot afford one
// trace event per query.  LatencyHistogram is the cheap aggregate: fixed
// power-of-two microsecond buckets, thread-safe recording, and percentile
// summaries that drop straight into obs::MetricsOptions.extra rows — the
// cold-vs-warm split the pattern-recommendation service reports.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace anyblock::obs {

class LatencyHistogram {
 public:
  /// Buckets cover [2^b, 2^{b+1}) microseconds for b in [0, kBuckets-2];
  /// the first bucket also absorbs sub-microsecond samples and the last is
  /// open-ended (~ >= 2.3 hours), so no sample is ever dropped.
  static constexpr int kBuckets = 44;

  void record_seconds(double seconds);

  [[nodiscard]] std::int64_t count() const;
  [[nodiscard]] double min_seconds() const;
  [[nodiscard]] double max_seconds() const;
  [[nodiscard]] double mean_seconds() const;
  /// Upper edge of the bucket holding quantile q (0 < q <= 1); exact to
  /// within one power-of-two bucket.  0 when empty.
  [[nodiscard]] double quantile_seconds(double q) const;

  /// Summary rows ("<prefix>_count", "<prefix>_mean_us", "<prefix>_p50_us",
  /// "<prefix>_p99_us", "<prefix>_max_us") for MetricsOptions.extra.
  [[nodiscard]] std::vector<std::pair<std::string, double>> metric_rows(
      const std::string& prefix) const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::int64_t> buckets_ = std::vector<std::int64_t>(kBuckets, 0);
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace anyblock::obs
