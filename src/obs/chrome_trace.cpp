#include "obs/chrome_trace.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <string>

namespace anyblock::obs {
namespace {

/// JSON string escaping for the small set of characters task names can
/// realistically contain (quotes, backslashes, control bytes).
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* category(EventKind kind) {
  switch (kind) {
    case EventKind::kTask: return "task";
    case EventKind::kSend: return "vmpi.send";
    case EventKind::kRecv: return "vmpi.recv";
    case EventKind::kSimTask: return "sim.task";
    case EventKind::kSimTransfer: return "sim.transfer";
    case EventKind::kFault: return "fault";
  }
  return "task";
}

/// Display name: the recorded name, or a synthesized one for comm events.
std::string display_name(const Event& event) {
  if (!event.name.empty()) return escape(event.name);
  char buf[64];
  const char* verb = "event";
  switch (event.kind) {
    case EventKind::kSend: verb = "send"; break;
    case EventKind::kRecv: verb = "recv"; break;
    case EventKind::kSimTransfer: verb = "xfer"; break;
    default: break;
  }
  std::snprintf(buf, sizeof(buf), "%s %d->%d", verb, event.source, event.dest);
  return buf;
}

double micros(double seconds) { return seconds * 1e6; }

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void object(const std::string& body) {
    if (!first_) out_ << ",\n";
    first_ = false;
    out_ << "{" << body << "}";
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void write_chrome_trace(std::ostream& out, const Trace& trace) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  Writer writer(out);
  char buf[256];

  // One metadata event names each track; tid is the 1-based track index so
  // Perfetto renders tracks in registration order.
  for (std::size_t k = 0; k < trace.tracks.size(); ++k) {
    std::snprintf(buf, sizeof(buf),
                  "\"ph\":\"M\",\"cat\":\"meta\",\"name\":\"thread_name\","
                  "\"pid\":0,\"tid\":%zu,\"args\":{\"name\":\"%s\"}",
                  k + 1, escape(trace.tracks[k].name).c_str());
    writer.object(buf);
  }

  for (std::size_t k = 0; k < trace.tracks.size(); ++k) {
    const std::size_t tid = k + 1;
    for (const Event& event : trace.tracks[k].events) {
      const double ts = micros(event.start_seconds);
      const double dur = micros(event.end_seconds - event.start_seconds);
      std::string args;
      switch (event.kind) {
        case EventKind::kTask:
        case EventKind::kSimTask:
          std::snprintf(buf, sizeof(buf), "\"priority\":%d%s", event.priority,
                        event.failed ? ",\"failed\":true" : "");
          args = buf;
          break;
        case EventKind::kSend:
        case EventKind::kRecv:
        case EventKind::kSimTransfer:
        case EventKind::kFault:
          std::snprintf(buf, sizeof(buf),
                        "\"source\":%d,\"dest\":%d,\"tag\":%lld,"
                        "\"bytes\":%lld",
                        event.source, event.dest,
                        static_cast<long long>(event.tag),
                        static_cast<long long>(event.bytes));
          args = buf;
          break;
      }
      std::snprintf(buf, sizeof(buf),
                    "\"ph\":\"X\",\"cat\":\"%s\",\"name\":\"%s\",\"pid\":0,"
                    "\"tid\":%zu,\"ts\":%.3f,\"dur\":%.3f,\"args\":{%s}",
                    category(event.kind), display_name(event).c_str(), tid,
                    ts, dur < 0.0 ? 0.0 : dur, args.c_str());
      writer.object(buf);

      // Flow arrows: the send starts the flow, every recv of the same flow
      // id finishes (binds to) it — Perfetto draws the arrow between the
      // enclosing slices, which is why the X events above come first.
      if (event.flow != 0 && event.kind == EventKind::kSend) {
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"s\",\"cat\":\"flow\",\"name\":\"msg\","
                      "\"id\":%llu,\"pid\":0,\"tid\":%zu,\"ts\":%.3f",
                      static_cast<unsigned long long>(event.flow), tid, ts);
        writer.object(buf);
      } else if (event.flow != 0 && event.kind == EventKind::kRecv) {
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"flow\","
                      "\"name\":\"msg\",\"id\":%llu,\"pid\":0,\"tid\":%zu,"
                      "\"ts\":%.3f",
                      static_cast<unsigned long long>(event.flow), tid, ts);
        writer.object(buf);
      }
    }
  }
  out << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, trace);
  return static_cast<bool>(out);
}

}  // namespace anyblock::obs
