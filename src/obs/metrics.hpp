// CSV metrics summary of a Trace — the measured side of the paper's
// measured-vs-modeled comparison (Section VI).
//
// One long-format CSV (section,track,metric,value) holding:
//   * per-track busy/span/idle fractions and task/message totals,
//   * a histogram of message payload sizes (power-of-four byte buckets),
//   * run totals, including measured vs predicted message counts when the
//     caller supplies the core/cost closed-form prediction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace anyblock::obs {

struct MetricsOptions {
  /// Closed-form message-count prediction (core::exact_*_messages); -1
  /// omits the measured-vs-predicted summary rows.
  std::int64_t predicted_messages = -1;
  /// Tag values below this bound count as factorization-proper messages in
  /// the "measured_messages" total (the dist layer keeps gather traffic in
  /// a higher tag band); < 0 counts every message.
  std::int64_t message_tag_bound = -1;
  /// Caller-supplied scalar rows, emitted last as "summary,run,<name>,<v>"
  /// — how the simulator's engine metrics (events processed, build/run
  /// wall seconds, frontier peak) reach the same CSV as the trace-derived
  /// rows.
  std::vector<std::pair<std::string, double>> extra;
};

/// Writes the long-format metrics CSV for the trace.
void write_metrics_csv(std::ostream& out, const Trace& trace,
                       const MetricsOptions& options = {});

/// Convenience: writes to `path`; returns false on IO failure.
bool write_metrics_csv_file(const std::string& path, const Trace& trace,
                            const MetricsOptions& options = {});

}  // namespace anyblock::obs
