#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace anyblock::obs {
namespace {

bool is_task(EventKind kind) {
  return kind == EventKind::kTask || kind == EventKind::kSimTask;
}

/// Power-of-four byte buckets: "<256B", "<1KiB", "<4KiB", ...
std::string bucket_label(std::int64_t bytes) {
  std::int64_t bound = 256;
  while (bound <= bytes && bound < (std::int64_t{1} << 62)) bound *= 4;
  std::ostringstream label;
  if (bound < 1024) {
    label << "<" << bound << "B";
  } else if (bound < 1024 * 1024) {
    label << "<" << bound / 1024 << "KiB";
  } else {
    label << "<" << bound / (1024 * 1024) << "MiB";
  }
  return label.str();
}

void row(std::ostream& out, const char* section, const std::string& track,
         const char* metric, double value) {
  out << section << "," << track << "," << metric << "," << value << "\n";
}

void row(std::ostream& out, const char* section, const std::string& track,
         const char* metric, std::int64_t value) {
  out << section << "," << track << "," << metric << "," << value << "\n";
}

/// Total time covered by at least one interval.  Simulator tracks hold one
/// track per *node* with many workers, so task intervals overlap; summing
/// durations would report busy fractions above 1.
double interval_union(std::vector<std::pair<double, double>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  double covered = 0.0;
  double open_begin = 0.0;
  double open_end = -1.0;
  for (const auto& [begin, end] : intervals) {
    if (end <= open_end) continue;
    if (begin > open_end) {
      if (open_end > open_begin) covered += open_end - open_begin;
      open_begin = begin;
    }
    open_end = end;
  }
  if (open_end > open_begin) covered += open_end - open_begin;
  return covered;
}

}  // namespace

void write_metrics_csv(std::ostream& out, const Trace& trace,
                       const MetricsOptions& options) {
  out << "section,track,metric,value\n";

  // The run span: earliest start to latest end over every track, so busy
  // fractions are comparable across tracks (idle time at the start or end
  // of the run counts as idle — the exact effect the paper's trace
  // inspection of Fig. 5/6 looks for).
  double span_begin = 0.0;
  double span_end = 0.0;
  bool any = false;
  for (const Track& track : trace.tracks) {
    for (const Event& event : track.events) {
      if (!any) {
        span_begin = event.start_seconds;
        span_end = event.end_seconds;
        any = true;
      } else {
        span_begin = std::min(span_begin, event.start_seconds);
        span_end = std::max(span_end, event.end_seconds);
      }
    }
  }
  const double span = any ? span_end - span_begin : 0.0;

  std::map<std::string, std::int64_t> histogram;
  std::int64_t total_sends = 0;
  std::int64_t measured_messages = 0;
  // Fault/recovery totals keyed by the kFault event name; the per-metric
  // rows only appear when any fault event was recorded, so fault-free runs
  // keep their exact CSV schema.
  std::map<std::string, std::int64_t> fault_totals;

  for (const Track& track : trace.tracks) {
    std::vector<std::pair<double, double>> busy_intervals;
    std::int64_t tasks = 0;
    std::int64_t failed = 0;
    std::int64_t sends = 0;
    std::int64_t recvs = 0;
    std::int64_t bytes_sent = 0;
    std::int64_t bytes_received = 0;
    std::map<std::string, std::int64_t> track_faults;
    for (const Event& event : track.events) {
      if (is_task(event.kind)) {
        busy_intervals.emplace_back(event.start_seconds, event.end_seconds);
        ++tasks;
        if (event.failed) ++failed;
      } else if (event.kind == EventKind::kSend ||
                 event.kind == EventKind::kSimTransfer) {
        ++sends;
        bytes_sent += event.bytes;
        ++histogram[bucket_label(event.bytes)];
        ++total_sends;
        if (options.message_tag_bound < 0 ||
            event.tag < options.message_tag_bound)
          ++measured_messages;
      } else if (event.kind == EventKind::kRecv) {
        ++recvs;
        bytes_received += event.bytes;
      } else if (event.kind == EventKind::kFault) {
        ++track_faults[event.name];
        ++fault_totals[event.name];
      }
    }
    const double busy = interval_union(std::move(busy_intervals));
    row(out, "track", track.name, "tasks", tasks);
    if (failed > 0) row(out, "track", track.name, "tasks_failed", failed);
    row(out, "track", track.name, "busy_seconds", busy);
    row(out, "track", track.name, "span_seconds", span);
    const double busy_fraction = span > 0.0 ? busy / span : 0.0;
    row(out, "track", track.name, "busy_fraction", busy_fraction);
    row(out, "track", track.name, "idle_fraction", 1.0 - busy_fraction);
    row(out, "track", track.name, "messages_sent", sends);
    row(out, "track", track.name, "messages_received", recvs);
    row(out, "track", track.name, "bytes_sent", bytes_sent);
    row(out, "track", track.name, "bytes_received", bytes_received);
    for (const auto& [name, count] : track_faults)
      row(out, "track", track.name, ("fault_" + name).c_str(), count);
  }

  for (const auto& [label, count] : histogram)
    row(out, "histogram", label, "messages", count);

  row(out, "summary", "total", "tracks",
      static_cast<std::int64_t>(trace.tracks.size()));
  row(out, "summary", "total", "messages_sent", total_sends);
  for (const auto& [name, count] : fault_totals)
    row(out, "summary", "total", ("fault_" + name).c_str(), count);
  if (options.predicted_messages >= 0) {
    row(out, "summary", "total", "measured_messages", measured_messages);
    row(out, "summary", "total", "predicted_messages",
        options.predicted_messages);
    const double ratio =
        options.predicted_messages > 0
            ? static_cast<double>(measured_messages) /
                  static_cast<double>(options.predicted_messages)
            : 0.0;
    row(out, "summary", "total", "measured_over_predicted", ratio);
  }
  for (const auto& [name, value] : options.extra)
    row(out, "summary", "run", name.c_str(), value);
}

bool write_metrics_csv_file(const std::string& path, const Trace& trace,
                            const MetricsOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_csv(out, trace, options);
  return static_cast<bool>(out);
}

}  // namespace anyblock::obs
