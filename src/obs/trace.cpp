#include "obs/trace.hpp"

namespace anyblock::obs {

std::int64_t Trace::count(EventKind kind) const {
  std::int64_t total = 0;
  for (const Track& track : tracks) {
    for (const Event& event : track.events) {
      if (event.kind == kind) ++total;
    }
  }
  return total;
}

bool Trace::empty() const {
  for (const Track& track : tracks) {
    if (!track.events.empty()) return false;
  }
  return true;
}

TrackSink* Recorder::track(std::string name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  tracks_.push_back(TrackSink(std::move(name)));
  return &tracks_.back();
}

Trace Recorder::take() {
  const std::lock_guard<std::mutex> lock(mutex_);
  Trace trace;
  trace.tracks.reserve(tracks_.size());
  for (TrackSink& sink : tracks_) {
    Track track;
    track.name = sink.name_;
    track.events.swap(sink.events_);
    trace.tracks.push_back(std::move(track));
  }
  return trace;
}

}  // namespace anyblock::obs
