// Chrome trace_event JSON exporter.
//
// The output loads in chrome://tracing and https://ui.perfetto.dev: one
// thread per Track (worker / rank / node), "X" complete events for task
// execution and link occupancy, and flow arrows ("s"/"f") connecting each
// vmpi send to the matching recv — the picture StarPU users get from
// FxT/Paje traces (paper, Section VI), reproduced for our three layers.
//
// Format notes (stable, relied on by the tests and the CI validator):
//   * the file is {"displayTimeUnit":"ms","traceEvents":[...]} with one
//     event object per line;
//   * every event carries "cat": "task", "vmpi.send", "vmpi.recv",
//     "sim.task" or "sim.transfer" (plus "meta" for thread names);
//   * comm events put source/dest/tag/bytes in "args".
#pragma once

#include <iosfwd>
#include <string>

#include "obs/trace.hpp"

namespace anyblock::obs {

/// Writes the whole trace as Chrome trace-event JSON.
void write_chrome_trace(std::ostream& out, const Trace& trace);

/// Convenience: writes to `path`; returns false when the file cannot be
/// opened or the stream fails.
bool write_chrome_trace_file(const std::string& path, const Trace& trace);

}  // namespace anyblock::obs
