// Unified tracing across the three execution layers (runtime, vmpi, sim).
//
// The paper validates its distributions by comparing measured runs against
// the Eq. 1 / Eq. 2 predictions and by inspecting StarPU execution traces
// to explain idle time (Section VI).  This subsystem is our counterpart:
// every layer can record events — task begin/end on a worker, tagged
// send/recv on a rank, simulated task execution and link transfer on a
// node — into one Recorder, and the exporters (chrome_trace.hpp,
// metrics.hpp) turn the recording into a Perfetto-loadable timeline and a
// CSV metrics summary.
//
// Concurrency model: recording must be lock-cheap because it sits on the
// factorization hot path.  Each recording thread registers its own
// TrackSink once (one brief Recorder lock) and then appends to a private
// vector with no synchronization at all; the Recorder only touches the
// sinks again in take(), which the caller must invoke after the recording
// threads have quiesced (joined or passed a barrier).  Sinks stay valid
// across take() calls, so a reused engine keeps its tracks.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace anyblock::obs {

/// What one event describes.  Task kinds carry a [start, end] interval;
/// comm kinds are instantaneous on their track but connected to the
/// matching event on the peer track through `flow`.
enum class EventKind : std::uint8_t {
  kTask,         ///< runtime::TaskEngine task execution (wall time)
  kSend,         ///< vmpi message leaving a rank
  kRecv,         ///< vmpi message delivered to a rank
  kSimTask,      ///< simulated kernel execution (virtual time)
  kSimTransfer,  ///< simulated link occupancy of one message
  kFault,        ///< injected fault or recovery action (name says which)
};

struct Event {
  EventKind kind = EventKind::kTask;
  std::string name;            ///< task name; empty for comm events
  double start_seconds = 0.0;  ///< relative to the Recorder epoch
  double end_seconds = 0.0;    ///< == start for instantaneous events
  int source = -1;             ///< sending rank/node (comm kinds)
  int dest = -1;               ///< receiving rank/node (comm kinds)
  std::int64_t tag = 0;        ///< vmpi tag / sim instance id
  std::int64_t bytes = 0;      ///< payload size (comm kinds)
  std::uint64_t flow = 0;      ///< nonzero: links a send to its recv(s)
  int priority = 0;            ///< task priority (kTask)
  bool failed = false;         ///< task body threw (kTask)
};

/// Append-only per-thread event buffer.  Only the owning thread may call
/// record(); the Recorder harvests it in take().
class TrackSink {
 public:
  void record(Event event) { events_.push_back(std::move(event)); }

 private:
  friend class Recorder;
  explicit TrackSink(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::vector<Event> events_;
};

/// One named timeline (a worker, a rank, a node) with its events.
struct Track {
  std::string name;
  std::vector<Event> events;
};

/// A harvested recording, ready for export.
struct Trace {
  std::vector<Track> tracks;

  /// Total events of one kind across all tracks.
  [[nodiscard]] std::int64_t count(EventKind kind) const;
  /// True when no track holds any event.
  [[nodiscard]] bool empty() const;
};

/// Owns the tracks and the epoch.  Thread-safe for track() and next_flow();
/// take() requires the recording threads to have quiesced.
class Recorder {
 public:
  Recorder() : epoch_(std::chrono::steady_clock::now()) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Registers a new track and returns its sink, valid for the Recorder's
  /// lifetime (take() empties it but never invalidates it).
  TrackSink* track(std::string name);

  /// Seconds elapsed since the Recorder was constructed.
  [[nodiscard]] double now() const {
    return seconds(std::chrono::steady_clock::now());
  }
  /// Converts an absolute steady_clock instant to epoch-relative seconds.
  [[nodiscard]] double seconds(
      std::chrono::steady_clock::time_point when) const {
    return std::chrono::duration<double>(when - epoch_).count();
  }

  /// A fresh nonzero id tying a send event to its recv event(s).
  std::uint64_t next_flow() {
    return flow_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Moves every track's events out (tracks keep their registration so
  /// sinks stay valid).  Call only when no thread is recording.
  Trace take();

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mutex_;
  std::deque<TrackSink> tracks_;  // deque: sink pointers stay stable
  std::atomic<std::uint64_t> flow_{0};
};

}  // namespace anyblock::obs
