#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

namespace anyblock::obs {

namespace {

int bucket_of(double seconds) {
  const double us = seconds * 1e6;
  if (us < 2.0) return 0;
  const int b = static_cast<int>(std::log2(us));
  return std::min(b, LatencyHistogram::kBuckets - 1);
}

}  // namespace

void LatencyHistogram::record_seconds(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  const std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[static_cast<std::size_t>(bucket_of(seconds))];
  if (count_ == 0 || seconds < min_) min_ = seconds;
  if (count_ == 0 || seconds > max_) max_ = seconds;
  ++count_;
  sum_ += seconds;
}

std::int64_t LatencyHistogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double LatencyHistogram::min_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double LatencyHistogram::max_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double LatencyHistogram::mean_seconds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::quantile_seconds(double q) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= target)
      return std::ldexp(1.0, b + 1) * 1e-6;  // bucket upper edge, in seconds
  }
  return max_;
}

std::vector<std::pair<std::string, double>> LatencyHistogram::metric_rows(
    const std::string& prefix) const {
  return {
      {prefix + "_count", static_cast<double>(count())},
      {prefix + "_mean_us", mean_seconds() * 1e6},
      {prefix + "_p50_us", quantile_seconds(0.5) * 1e6},
      {prefix + "_p99_us", quantile_seconds(0.99) * 1e6},
      {prefix + "_max_us", max_seconds() * 1e6},
  };
}

}  // namespace anyblock::obs
