#include "store/pattern_store.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/pattern_io.hpp"
#include "util/hash.hpp"

namespace anyblock::store {

namespace {

/// Hard cap on one record's payload: real entries are a few KiB (a pattern
/// is at most ~(6*sqrt(P))^2 small integers); a corrupt length field must
/// not trigger a giant allocation.
constexpr std::int64_t kMaxPayloadBytes = std::int64_t{1} << 26;

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);  // exact round-trip
  return buffer;
}

std::string render_payload(const StoreKey& key, const StoreEntry& entry) {
  std::ostringstream oss;
  oss << "key " << canonical_key_text(key) << '\n'
      << "scheme " << entry.scheme << '\n'
      << "cost " << format_double(entry.cost) << '\n'
      << "rationale " << entry.rationale << '\n'
      << core::serialize_pattern(entry.pattern);
  return oss.str();
}

/// Reads "<label> <rest-of-line>" from `in`; false on tag mismatch or EOF.
bool read_tagged_line(std::istream& in, const std::string& label,
                      std::string* rest) {
  std::string line;
  if (!std::getline(in, line)) return false;
  if (line.rfind(label + ' ', 0) != 0) return false;
  *rest = line.substr(label.size() + 1);
  return true;
}

bool parse_payload(const std::string& payload, const StoreKey& expected_key,
                   StoreEntry* entry) {
  std::istringstream in(payload);
  std::string key_text;
  std::string cost_text;
  if (!read_tagged_line(in, "key", &key_text) ||
      key_text != canonical_key_text(expected_key))
    return false;  // digest collision or foreign record
  if (!read_tagged_line(in, "scheme", &entry->scheme)) return false;
  if (!read_tagged_line(in, "cost", &cost_text)) return false;
  char* end = nullptr;
  entry->cost = std::strtod(cost_text.c_str(), &end);
  if (end == cost_text.c_str()) return false;
  if (!read_tagged_line(in, "rationale", &entry->rationale)) return false;
  auto pattern = core::parse_pattern(in);
  if (!pattern) return false;
  entry->pattern = std::move(*pattern);
  return true;
}

/// Recovers the StoreKey from its canonical text (needed because records
/// are self-describing: the manifest stores no separate key table).
std::optional<StoreKey> parse_key_text(const std::string& text) {
  std::istringstream in(text);
  std::string version_tag;
  StoreKey key;
  if (!(in >> version_tag >> key.metric >> key.P)) return std::nullopt;
  if (version_tag != "v1" || key.P <= 0 || key.metric.empty())
    return std::nullopt;
  std::string max_r;
  char* end = nullptr;
  if (!(in >> max_r >> key.search.seeds >> key.search.base_seed >>
        key.search.balance_slack))
    return std::nullopt;
  key.search.max_r_factor = std::strtod(max_r.c_str(), &end);
  if (end == max_r.c_str()) return std::nullopt;
  return key;
}

}  // namespace

std::string canonical_key_text(const StoreKey& key) {
  std::ostringstream oss;
  oss << "v1 " << key.metric << ' ' << key.P << ' '
      << format_double(key.search.max_r_factor) << ' ' << key.search.seeds
      << ' ' << key.search.base_seed << ' ' << key.search.balance_slack;
  return oss.str();
}

std::uint64_t store_digest(const StoreKey& key) {
  return fnv1a64(canonical_key_text(key));
}

std::vector<std::pair<std::string, double>> StoreStats::metric_rows() const {
  return {
      {"store_hits", static_cast<double>(hits)},
      {"store_misses", static_cast<double>(misses)},
      {"store_inserts", static_cast<double>(inserts)},
      {"store_evicted_corrupt", static_cast<double>(evicted_corrupt)},
      {"store_evicted_version", static_cast<double>(evicted_version)},
      {"store_flushes", static_cast<double>(flushes)},
  };
}

PatternStore::PatternStore(std::string path) : path_(std::move(path)) {
  if (!path_.empty()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    load_locked();
  }
}

PatternStore::~PatternStore() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (dirty_) flush_locked();
}

bool PatternStore::load_locked() {
  entries_.clear();
  std::ifstream in(path_, std::ios::binary);
  if (!in) return true;  // absent file = empty store

  std::string header;
  if (!std::getline(in, header)) {
    ++stats_.evicted_corrupt;
    return false;
  }
  {
    std::istringstream hs(header);
    std::string magic;
    int version = -1;
    if (!(hs >> magic >> version) || magic != "anyblock-pattern-store") {
      ++stats_.evicted_corrupt;
      return false;
    }
    if (version != kFormatVersion) {
      // A foreign version is not corruption — but nothing in it may be
      // served.  The whole manifest is dropped (and overwritten on the
      // next flush).
      ++stats_.evicted_version;
      return false;
    }
  }

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::uint64_t digest = 0;
    std::int64_t payload_bytes = -1;
    std::uint32_t crc = 0;
    if (std::sscanf(line.c_str(), "entry %" SCNx64 " %" SCNd64 " %" SCNx32,
                    &digest, &payload_bytes, &crc) != 3 ||
        payload_bytes < 0 || payload_bytes > kMaxPayloadBytes) {
      // A mangled record header desynchronizes the stream: everything from
      // here on is unrecoverable and dropped.
      ++stats_.evicted_corrupt;
      return false;
    }
    std::string payload(static_cast<std::size_t>(payload_bytes), '\0');
    if (!in.read(payload.data(), payload_bytes)) {
      ++stats_.evicted_corrupt;  // truncated mid-payload
      return false;
    }
    in.get();  // the separator newline after the payload
    if (crc32(payload) != crc) {
      ++stats_.evicted_corrupt;  // bit rot inside one record: skip just it
      continue;
    }
    std::string key_text;
    {
      std::istringstream ps(payload);
      if (!read_tagged_line(ps, "key", &key_text)) {
        ++stats_.evicted_corrupt;
        continue;
      }
    }
    const auto key = parse_key_text(key_text);
    if (!key || store_digest(*key) != digest ||
        fnv1a64(key_text) != digest) {
      ++stats_.evicted_corrupt;
      continue;
    }
    StoreEntry entry;
    if (!parse_payload(payload, *key, &entry) ||
        !entry.pattern.validate().empty()) {
      ++stats_.evicted_corrupt;
      continue;
    }
    entries_.insert_or_assign(digest, std::make_pair(*key, std::move(entry)));
  }
  return true;
}

bool PatternStore::flush_locked() {
  if (path_.empty()) {
    dirty_ = false;
    return true;
  }
  std::ostringstream out;
  out << "anyblock-pattern-store " << kFormatVersion << '\n';
  for (const auto& [digest, kv] : entries_) {
    const std::string payload = render_payload(kv.first, kv.second);
    char header[80];
    std::snprintf(header, sizeof(header), "entry %016" PRIx64 " %zu %08x\n",
                  digest, payload.size(), crc32(payload));
    out << header << payload << '\n';
  }
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file || !(file << out.str())) return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  ++stats_.flushes;
  dirty_ = false;
  return true;
}

std::optional<StoreEntry> PatternStore::get(const StoreKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(store_digest(key));
  if (it == entries_.end() || it->second.first != key) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second.second;
}

bool PatternStore::put(const StoreKey& key, StoreEntry entry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.insert_or_assign(store_digest(key),
                            std::make_pair(key, std::move(entry)));
  ++stats_.inserts;
  dirty_ = true;
  if (path_.empty()) return true;
  return flush_locked();
}

bool PatternStore::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!dirty_) return true;
  return flush_locked();
}

bool PatternStore::reload() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (path_.empty()) return true;
  return load_locked();
}

std::size_t PatternStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

StoreStats PatternStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<StoreKey> PatternStore::keys() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<StoreKey> keys;
  keys.reserve(entries_.size());
  for (const auto& [digest, kv] : entries_) keys.push_back(kv.first);
  return keys;
}

}  // namespace anyblock::store
