// Persistent, content-addressed cache of recommendation results.
//
// Patterns depend only on (P, metric, search budget) — never on the matrix
// (paper, Section V-B) — so the GCR&M sweep is memoize-once-serve-forever
// work.  PatternStore is the on-disk memo: each entry is keyed by a
// canonical digest of its StoreKey, serialized into a versioned manifest of
// CRC-checked, length-prefixed records.  The durability contract follows
// dist-clang's file_cache idiom:
//
//  * records that fail their CRC, carry a mismatched digest, or belong to
//    another format version are EVICTED on load, never trusted;
//  * updates go through write-to-temp-then-rename, so a concurrent reader
//    of the manifest path always sees a complete former or current state,
//    never a torn one;
//  * hit/miss/insert/eviction counters are exposed for obs metrics rows.
//
// Thread-safety: every public method is safe to call concurrently; the
// store serializes internally.  Cross-process, the atomic rename gives
// single-writer/multi-reader safety on POSIX filesystems.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/pattern.hpp"
#include "core/pattern_search.hpp"

namespace anyblock::store {

/// What a cached result is the answer to.  `metric` is the pattern class
/// ("lu" for the non-symmetric x-bar+y-bar metric, "symmetric" for z-bar);
/// the search options only shape symmetric sweeps but are digested for
/// both, so a budget change can never serve a stale entry.
struct StoreKey {
  std::int64_t P = 0;
  std::string metric;
  core::GcrmSearchOptions search;

  bool operator==(const StoreKey&) const = default;
};

/// Canonical single-line text form of the key — the digest pre-image, and
/// stored inside every record so a digest collision is caught by equality.
[[nodiscard]] std::string canonical_key_text(const StoreKey& key);

/// Content address: FNV-1a 64 over canonical_key_text(key).
[[nodiscard]] std::uint64_t store_digest(const StoreKey& key);

/// One cached recommendation.
struct StoreEntry {
  core::Pattern pattern;
  std::string scheme;     ///< "2DBC" | "G-2DBC" | "SBC" | "GCR&M"
  double cost = 0.0;      ///< stored as hexfloat: exact round-trip
  std::string rationale;  ///< single line, as produced by core/recommend
};

struct StoreStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t inserts = 0;
  std::int64_t evicted_corrupt = 0;  ///< CRC/digest/parse failures dropped
  std::int64_t evicted_version = 0;  ///< whole manifests of a foreign version
  std::int64_t flushes = 0;          ///< manifest rewrites (tmp+rename)

  /// Rows for obs::MetricsOptions.extra, prefixed "store_".
  [[nodiscard]] std::vector<std::pair<std::string, double>> metric_rows()
      const;
};

class PatternStore {
 public:
  /// Opens (and immediately loads) the manifest at `path`; a missing file
  /// is an empty store.  An empty path is a purely in-memory store.
  explicit PatternStore(std::string path = {});

  /// Flushes pending inserts best-effort (failures are swallowed — callers
  /// that care must flush() explicitly and check).
  ~PatternStore();

  PatternStore(const PatternStore&) = delete;
  PatternStore& operator=(const PatternStore&) = delete;

  /// Cached entry for `key`, counting a hit or miss.
  [[nodiscard]] std::optional<StoreEntry> get(const StoreKey& key);

  /// Inserts (or overwrites) the entry and, for a file-backed store,
  /// rewrites the manifest atomically.  Returns false when persisting
  /// failed (the in-memory entry is kept either way).
  bool put(const StoreKey& key, StoreEntry entry);

  /// Rewrites the manifest (tmp + rename) if there are unpersisted
  /// changes.  No-op (true) for in-memory stores.
  bool flush();

  /// Replaces the in-memory contents with the manifest's current on-disk
  /// state (what a fresh reader would see).  Counters accumulate.
  bool reload();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] StoreStats stats() const;
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Every cached key, in unspecified order (tooling/introspection).
  [[nodiscard]] std::vector<StoreKey> keys() const;

  /// On-disk format version; bumped whenever the record layout changes so
  /// old binaries never misread new manifests (and vice versa).
  static constexpr int kFormatVersion = 1;

 private:
  bool load_locked();
  bool flush_locked();

  mutable std::mutex mutex_;
  std::string path_;
  std::unordered_map<std::uint64_t, std::pair<StoreKey, StoreEntry>> entries_;
  StoreStats stats_;
  bool dirty_ = false;
};

}  // namespace anyblock::store
