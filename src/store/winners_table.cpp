#include "store/winners_table.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/hash.hpp"

namespace anyblock::store {

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

bool parse_double(const std::string& token, double* value) {
  char* end = nullptr;
  *value = std::strtod(token.c_str(), &end);
  return end != token.c_str() && *end == '\0';
}

}  // namespace

std::optional<WinnerRow> WinnersTable::find(std::int64_t P) const {
  const auto it = rows_.find(P);
  if (it == rows_.end()) return std::nullopt;
  return it->second;
}

void WinnersTable::add(const WinnerRow& row) {
  rows_.insert_or_assign(row.P, row);
}

bool WinnersTable::save_file(const std::string& path) const {
  std::ostringstream out;
  out << "anyblock-gcrm-winners " << kFormatVersion << '\n'
      << "options " << format_double(options_.max_r_factor) << ' '
      << options_.seeds << ' ' << options_.base_seed << ' '
      << options_.balance_slack << '\n';
  for (const auto& [P, row] : rows_) {
    out << P << '\t' << row.r << '\t' << row.seed << '\t'
        << format_double(row.cost) << '\n';
  }
  const std::string body = out.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08x\n", crc32(body));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file || !(file << body << crc_line)) return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool WinnersTable::load_file(const std::string& path) {
  rows_.clear();
  error_.clear();
  const auto reject = [&](const std::string& why) {
    rows_.clear();
    error_ = path + ": " + why;
    return false;
  };

  std::ifstream in(path, std::ios::binary);
  if (!in) return reject("cannot open file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Split off and verify the trailing CRC line first.
  const std::size_t crc_at = text.rfind("crc ");
  if (crc_at == std::string::npos ||
      (crc_at != 0 && text[crc_at - 1] != '\n'))
    return reject("missing trailing crc line");
  std::uint32_t recorded = 0;
  if (std::sscanf(text.c_str() + crc_at, "crc %" SCNx32, &recorded) != 1)
    return reject("malformed crc line");
  const std::string body = text.substr(0, crc_at);
  if (crc32(body) != recorded)
    return reject("crc mismatch: file is corrupt or was hand-edited");

  std::istringstream is(body);
  std::string line;
  if (!std::getline(is, line)) return reject("empty file");
  {
    std::istringstream hs(line);
    std::string magic;
    int version = -1;
    if (!(hs >> magic >> version) || magic != "anyblock-gcrm-winners")
      return reject("bad magic");
    if (version != kFormatVersion)
      return reject("unsupported version " + std::to_string(version));
  }
  if (!std::getline(is, line)) return reject("missing options line");
  {
    std::istringstream os(line);
    std::string tag;
    std::string max_r;
    if (!(os >> tag >> max_r >> options_.seeds >> options_.base_seed >>
          options_.balance_slack) ||
        tag != "options" || !parse_double(max_r, &options_.max_r_factor))
      return reject("malformed options line");
  }
  std::int64_t line_no = 2;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream rs(line);
    WinnerRow row;
    std::string cost;
    if (!(rs >> row.P >> row.r >> row.seed >> cost) ||
        !parse_double(cost, &row.cost) || row.P <= 0 || row.r < 2)
      return reject("malformed row at line " + std::to_string(line_no));
    rows_.insert_or_assign(row.P, row);
  }
  return true;
}

}  // namespace anyblock::store
