// Shipped table of GCR&M sweep winners (data/gcrm_winners.tsv).
//
// A full pattern for P = 10'000 is ~360k cells, so shipping patterns for
// every P is gigabytes.  The sweep winner, however, is fully determined by
// its construction coordinates: gcrm_build(P, r, seed) deterministically
// reproduces the winning pattern in milliseconds.  The table therefore
// stores one (P, r, seed, cost) row per node count — about 40 bytes — and
// the serving layer rebuilds on demand, cross-checking the rebuilt cost
// against the recorded one (a mismatching row is ignored, never served).
//
// The header pins the exact GcrmSearchOptions the table was swept with:
// rows only answer queries whose options match, so a different search
// budget transparently falls back to a live sweep.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "core/pattern_search.hpp"

namespace anyblock::store {

struct WinnerRow {
  std::int64_t P = 0;
  std::int64_t r = 0;        ///< winning pattern size
  std::uint64_t seed = 0;    ///< winning construction seed
  double cost = 0.0;         ///< z-bar of the winner, for cross-checking
};

class WinnersTable {
 public:
  /// The options every row was swept under.
  [[nodiscard]] const core::GcrmSearchOptions& options() const {
    return options_;
  }
  void set_options(const core::GcrmSearchOptions& options) {
    options_ = options;
  }

  [[nodiscard]] std::optional<WinnerRow> find(std::int64_t P) const;
  void add(const WinnerRow& row);
  [[nodiscard]] std::size_t size() const { return rows_.size(); }
  [[nodiscard]] std::int64_t max_p() const {
    return rows_.empty() ? 0 : rows_.rbegin()->first;
  }

  /// Atomic save (tmp + rename).  Plain TSV with a version/options header
  /// and a trailing whole-file CRC line.
  [[nodiscard]] bool save_file(const std::string& path) const;

  /// Loads `path`, replacing the contents; returns false (leaving the
  /// table empty, with `error()` describing why) on a missing file, a
  /// version/CRC mismatch, or a malformed row.  A shipped artifact is
  /// all-or-nothing: unlike the store, a damaged table is rejected whole.
  [[nodiscard]] bool load_file(const std::string& path);
  [[nodiscard]] const std::string& error() const { return error_; }

  static constexpr int kFormatVersion = 1;

 private:
  core::GcrmSearchOptions options_;
  std::map<std::int64_t, WinnerRow> rows_;
  std::string error_;
};

}  // namespace anyblock::store
