#include "fault/fault.hpp"

#include <charconv>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace anyblock::fault {
namespace {

double to_unit(std::uint64_t bits) {
  // Same 53-bit mapping as Rng::uniform, applied to a finalized hash.
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

std::uint64_t chain(std::uint64_t seed,
                    std::initializer_list<std::uint64_t> words) {
  std::uint64_t s = seed;
  for (std::uint64_t word : words) s = split_seed(s, word);
  return s;
}

void require_probability(double value, const char* name) {
  if (!(value >= 0.0 && value <= 1.0))
    throw std::invalid_argument(std::string("fault plan: ") + name +
                                " must be in [0, 1]");
}

double parse_double(std::string_view text, std::string_view key) {
  double value = 0.0;
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(text.data(), end, value);
  if (result.ec != std::errc{} || result.ptr != end)
    throw std::invalid_argument("fault spec: bad value '" + std::string(text) +
                                "' for key '" + std::string(key) + "'");
  return value;
}

std::int64_t parse_int(std::string_view text, std::string_view key) {
  std::int64_t value = 0;
  const auto* end = text.data() + text.size();
  const auto result = std::from_chars(text.data(), end, value);
  if (result.ec != std::errc{} || result.ptr != end)
    throw std::invalid_argument("fault spec: bad value '" + std::string(text) +
                                "' for key '" + std::string(key) + "'");
  return value;
}

StallWindow parse_stall(std::string_view text) {
  // rank:first:last:ms
  StallWindow window;
  std::size_t field = 0;
  std::size_t begin = 0;
  while (field < 4) {
    const std::size_t colon = text.find(':', begin);
    const bool last_field = field == 3;
    if (last_field != (colon == std::string_view::npos))
      throw std::invalid_argument(
          "fault spec: stall wants rank:first:last:ms, got '" +
          std::string(text) + "'");
    const std::string_view part =
        text.substr(begin, last_field ? std::string_view::npos : colon - begin);
    switch (field) {
      case 0: window.rank = static_cast<int>(parse_int(part, "stall")); break;
      case 1:
        window.first_seq = static_cast<std::uint64_t>(parse_int(part, "stall"));
        break;
      case 2:
        window.last_seq = static_cast<std::uint64_t>(parse_int(part, "stall"));
        break;
      case 3: window.extra_delay_ms = parse_double(part, "stall"); break;
    }
    begin = colon + 1;
    ++field;
  }
  return window;
}

}  // namespace

bool FaultPlan::message_faults() const {
  return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || !stalls.empty();
}

bool FaultPlan::enabled() const {
  return message_faults() || link_jitter > 0.0 || slow_node_fraction > 0.0;
}

void FaultPlan::validate() const {
  require_probability(drop, "drop");
  require_probability(duplicate, "duplicate");
  require_probability(delay, "delay");
  if (drop + duplicate + delay > 1.0)
    throw std::invalid_argument(
        "fault plan: drop + duplicate + delay must not exceed 1");
  if (delay_ms < 0.0)
    throw std::invalid_argument("fault plan: delay_ms must be >= 0");
  if (recv_timeout_ms <= 0.0)
    throw std::invalid_argument("fault plan: recv_timeout_ms must be > 0");
  if (max_retries < 0)
    throw std::invalid_argument("fault plan: max_retries must be >= 0");
  if (!(link_jitter >= 0.0 && link_jitter < 1.0))
    throw std::invalid_argument("fault plan: link_jitter must be in [0, 1)");
  require_probability(slow_node_fraction, "slow_node_fraction");
  if (slow_node_speed <= 0.0)
    throw std::invalid_argument("fault plan: slow_node_speed must be > 0");
  for (const StallWindow& window : stalls) {
    if (window.rank < 0 || window.extra_delay_ms < 0.0 ||
        window.last_seq < window.first_seq)
      throw std::invalid_argument("fault plan: malformed stall window");
  }
}

double unit_draw(std::uint64_t seed,
                 std::initializer_list<std::uint64_t> words) {
  return to_unit(chain(seed, words));
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
  message_faults_ = plan_.message_faults();
}

Fate FaultInjector::fate_of(int source, int dest, std::int64_t tag,
                            std::uint64_t seq, int attempt) const {
  Fate fate;
  const std::uint64_t words[] = {
      kStreamFate,
      static_cast<std::uint64_t>(static_cast<std::int64_t>(source)),
      static_cast<std::uint64_t>(static_cast<std::int64_t>(dest)),
      static_cast<std::uint64_t>(tag),
      seq,
      static_cast<std::uint64_t>(static_cast<std::int64_t>(attempt)),
  };
  const double u = unit_draw(
      plan_.seed, {words[0], words[1], words[2], words[3], words[4], words[5]});
  if (u < plan_.drop) {
    const bool capped = plan_.max_drops_per_message >= 0 &&
                        attempt >= plan_.max_drops_per_message;
    if (!capped) {
      fate.dropped = true;
      return fate;  // A dropped transmission has no other fate.
    }
  } else if (u < plan_.drop + plan_.duplicate) {
    fate.duplicated = true;
  } else if (u < plan_.drop + plan_.duplicate + plan_.delay) {
    const double jitter =
        unit_draw(plan_.seed, {kStreamDelayJitter, words[1], words[2], words[3],
                               words[4], words[5]});
    fate.delay_seconds = plan_.delay_ms * 1e-3 * (0.5 + jitter);
  }
  for (const StallWindow& window : plan_.stalls) {
    if (window.rank == source && seq >= window.first_seq &&
        seq <= window.last_seq)
      fate.delay_seconds += window.extra_delay_ms * 1e-3;
  }
  return fate;
}

FaultStats FaultInjector::stats() const {
  FaultStats stats;
  stats.drops = drops_.load(std::memory_order_relaxed);
  stats.duplicates = duplicates_.load(std::memory_order_relaxed);
  stats.delays = delays_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.timeout_waits = timeout_waits_.load(std::memory_order_relaxed);
  stats.dedup_discards = dedup_discards_.load(std::memory_order_relaxed);
  return stats;
}

FaultPlan parse_fault_spec(std::string_view spec) {
  FaultPlan plan;
  bool saw_delay_probability = false;
  bool saw_delay_ms = false;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    const std::size_t comma = spec.find(',', begin);
    const std::string_view item =
        spec.substr(begin, comma == std::string_view::npos ? std::string_view::npos
                                                           : comma - begin);
    begin = comma == std::string_view::npos ? spec.size() + 1 : comma + 1;
    if (item.empty()) continue;
    const std::size_t equals = item.find('=');
    if (equals == std::string_view::npos)
      throw std::invalid_argument("fault spec: expected key=value, got '" +
                                  std::string(item) + "'");
    const std::string_view key = item.substr(0, equals);
    const std::string_view value = item.substr(equals + 1);
    if (key == "drop") {
      plan.drop = parse_double(value, key);
    } else if (key == "dup") {
      plan.duplicate = parse_double(value, key);
    } else if (key == "delay") {
      plan.delay = parse_double(value, key);
      saw_delay_probability = true;
    } else if (key == "delay-ms") {
      plan.delay_ms = parse_double(value, key);
      saw_delay_ms = true;
    } else if (key == "timeout-ms") {
      plan.recv_timeout_ms = parse_double(value, key);
    } else if (key == "retries") {
      plan.max_retries = static_cast<int>(parse_int(value, key));
    } else if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_int(value, key));
    } else if (key == "jitter") {
      plan.link_jitter = parse_double(value, key);
    } else if (key == "slow-frac") {
      plan.slow_node_fraction = parse_double(value, key);
    } else if (key == "slow-speed") {
      plan.slow_node_speed = parse_double(value, key);
    } else if (key == "stall") {
      plan.stalls.push_back(parse_stall(value));
    } else {
      throw std::invalid_argument("fault spec: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  // "delay-ms=5" without an explicit "delay=" probability means: delay every
  // message not already claimed by the drop/duplicate bands.
  if (saw_delay_ms && !saw_delay_probability)
    plan.delay = 1.0 - plan.drop - plan.duplicate;
  plan.validate();
  return plan;
}

}  // namespace anyblock::fault
