// Deterministic fault injection for the message layer and the simulator.
//
// The paper's cost model (Eq. 1/2) and the PlaFRIM experiments assume a
// perfectly reliable network.  A production deployment does not get one, so
// this module defines a *seeded, fully deterministic* perturbation model:
// every per-message fate (drop / duplicate / delay) is a pure function of
// (seed, source, dest, tag, stream sequence number, attempt).  Two runs with
// the same seed therefore inject exactly the same faults regardless of
// thread interleaving — the determinism contract that makes chaos tests
// reproducible and lets the discrete-event simulator replay the identical
// schedule in virtual time.
//
// The injector only *decides* fates and counts outcomes; the transports
// (vmpi::World for real thread-ranks, sim::Simulator for virtual time) apply
// them and implement recovery: sequence-numbered at-least-once delivery with
// receiver-side dedup and receiver-driven retransmission under bounded
// exponential backoff.  See DESIGN.md, "Fault model".
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace anyblock::fault {

/// Extra delay applied to messages a given rank sends while its per-stream
/// sequence number lies in [first_seq, last_seq] — models a node that goes
/// unresponsive for a window of its communication schedule.
struct StallWindow {
  int rank = -1;
  std::uint64_t first_seq = 0;
  std::uint64_t last_seq = 0;
  double extra_delay_ms = 0.0;
};

/// Declarative description of what to inject.  Default-constructed plans are
/// fully disabled; transports take a fast path that never touches the
/// injector when `message_faults()` is false.
struct FaultPlan {
  std::uint64_t seed = 42;

  // Per-message fault probabilities (mutually exclusive bands, evaluated in
  // this order from a single uniform draw).
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;

  /// Mean extra latency of a delayed message; actual delays jitter
  /// deterministically in [0.5, 1.5] times this value.
  double delay_ms = 5.0;

  /// When >= 0, transmissions with attempt >= this bound are never dropped,
  /// so a retry is guaranteed to eventually succeed — used by tests that
  /// need an exact drop/retry count.  -1 leaves dropping unbounded.
  std::int64_t max_drops_per_message = -1;

  // Recovery parameters used by fault-aware receives: the first timeout
  // fires after recv_timeout_ms, each retry doubles the wait, and after
  // max_retries retransmissions a typed RecvTimeoutError escapes.
  double recv_timeout_ms = 200.0;
  int max_retries = 12;

  std::vector<StallWindow> stalls;

  // Simulator-only perturbations (ignored by the vmpi transport).
  /// Fractional link-bandwidth jitter: each transfer's wire time is scaled
  /// by a deterministic factor in [1 - link_jitter, 1 + link_jitter].
  double link_jitter = 0.0;
  /// Fraction of nodes (chosen by seeded draw) running at slow_node_speed
  /// times their configured speed — heterogeneous-platform ablations.
  double slow_node_fraction = 0.0;
  double slow_node_speed = 1.0;

  /// True when any message-level fault or recovery deviation is configured.
  [[nodiscard]] bool message_faults() const;
  /// True when the plan perturbs anything at all (messages, links or nodes).
  [[nodiscard]] bool enabled() const;
  /// Throws std::invalid_argument on out-of-range probabilities or rates.
  void validate() const;
};

/// Outcome decided for one transmission attempt of one message.
struct Fate {
  bool dropped = false;
  bool duplicated = false;
  double delay_seconds = 0.0;
};

/// Counters reported by transports after a perturbed run.  Retransmissions
/// and duplicates never touch the regular traffic counters — those keep
/// counting application-level messages so Eq. 1/2 cross-checks still hold —
/// everything fault-related lands here instead.
struct FaultStats {
  std::int64_t drops = 0;
  std::int64_t duplicates = 0;
  std::int64_t delays = 0;
  std::int64_t retries = 0;
  std::int64_t timeout_waits = 0;
  std::int64_t dedup_discards = 0;
};

/// Deterministic uniform draw in [0, 1) from a chain of split_seed words —
/// a pure function of its arguments.  Exposed so the simulator can derive
/// link jitter and slow-node assignments from the same seed space.
[[nodiscard]] double unit_draw(std::uint64_t seed,
                               std::initializer_list<std::uint64_t> words);

// Top-level stream labels keeping independent uses of one seed decorrelated.
inline constexpr std::uint64_t kStreamFate = 0xfa7e;
inline constexpr std::uint64_t kStreamDelayJitter = 0xde1a;
inline constexpr std::uint64_t kStreamLinkJitter = 0x117e;
inline constexpr std::uint64_t kStreamSlowNode = 0x510e;

/// Decides fates and accumulates outcome counters.  fate_of() is const and
/// pure; the note_*() counters are atomic so any transport thread may report
/// outcomes concurrently.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] bool message_faults() const { return message_faults_; }

  /// Fate of transmission `attempt` (0 = original send) of the message with
  /// per-(source, dest, tag) stream sequence number `seq`.
  [[nodiscard]] Fate fate_of(int source, int dest, std::int64_t tag,
                             std::uint64_t seq, int attempt) const;

  void note_drop() { drops_.fetch_add(1, std::memory_order_relaxed); }
  void note_duplicate() { duplicates_.fetch_add(1, std::memory_order_relaxed); }
  void note_delay() { delays_.fetch_add(1, std::memory_order_relaxed); }
  void note_retry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void note_timeout_wait() {
    timeout_waits_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_dedup_discard() {
    dedup_discards_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] FaultStats stats() const;

 private:
  FaultPlan plan_;
  bool message_faults_ = false;
  std::atomic<std::int64_t> drops_{0};
  std::atomic<std::int64_t> duplicates_{0};
  std::atomic<std::int64_t> delays_{0};
  std::atomic<std::int64_t> retries_{0};
  std::atomic<std::int64_t> timeout_waits_{0};
  std::atomic<std::int64_t> dedup_discards_{0};
};

/// Parses the CLI fault spec: comma-separated key=value pairs.
///
///   drop=0.01,delay-ms=5,dup=0.001,seed=42
///
/// Keys: drop, dup, delay, delay-ms, timeout-ms, retries, seed, jitter,
/// slow-frac, slow-speed, stall=rank:first:last:ms (repeatable).  Throws
/// std::invalid_argument on unknown keys or malformed values; the returned
/// plan is validate()d.
[[nodiscard]] FaultPlan parse_fault_spec(std::string_view spec);

}  // namespace anyblock::fault
