#include "runtime/stf_factorizations.hpp"

#include <atomic>
#include <stdexcept>
#include <vector>

#include "linalg/kernels.hpp"

namespace anyblock::runtime {
namespace {

/// One engine handle per tile, registered up front.
std::vector<HandleId> register_tiles(TaskEngine& engine, std::int64_t t) {
  std::vector<HandleId> handles(static_cast<std::size_t>(t * t));
  for (auto& h : handles) h = engine.register_data();
  return handles;
}

}  // namespace

bool stf_lu_nopiv(TaskEngine& engine, linalg::TiledMatrix& a) {
  const std::int64_t t = a.tiles();
  const std::int64_t nb = a.tile_size();
  const auto handles = register_tiles(engine, t);
  const auto h = [&](std::int64_t i, std::int64_t j) {
    return handles[static_cast<std::size_t>(i * t + j)];
  };
  std::atomic<bool> ok{true};

  for (std::int64_t l = 0; l < t; ++l) {
    // Panel tasks outrank every update of the same and later iterations.
    const int panel_prio = static_cast<int>(2 * (t - l));
    engine.submit(
        [&a, &ok, l, nb] {
          if (!linalg::getrf_nopiv(a.tile(l, l), nb)) ok.store(false);
        },
        {{h(l, l), AccessMode::kReadWrite}}, panel_prio + 1, "getrf");
    for (std::int64_t i = l + 1; i < t; ++i) {
      engine.submit(
          [&a, l, i, nb] {
            linalg::trsm_right_upper(a.tile(l, l), a.tile(i, l), nb);
          },
          {{h(l, l), AccessMode::kRead}, {h(i, l), AccessMode::kReadWrite}},
          panel_prio, "trsm_col");
    }
    for (std::int64_t j = l + 1; j < t; ++j) {
      engine.submit(
          [&a, l, j, nb] {
            linalg::trsm_left_lower_unit(a.tile(l, l), a.tile(l, j), nb);
          },
          {{h(l, l), AccessMode::kRead}, {h(l, j), AccessMode::kReadWrite}},
          panel_prio, "trsm_row");
    }
    for (std::int64_t i = l + 1; i < t; ++i) {
      for (std::int64_t j = l + 1; j < t; ++j) {
        engine.submit(
            [&a, l, i, j, nb] {
              linalg::gemm_update(a.tile(i, l), a.tile(l, j), a.tile(i, j),
                                  nb);
            },
            {{h(i, l), AccessMode::kRead},
             {h(l, j), AccessMode::kRead},
             {h(i, j), AccessMode::kReadWrite}},
            0, "gemm");
      }
    }
  }
  engine.wait_all();
  return ok.load();
}

bool stf_cholesky(TaskEngine& engine, linalg::TiledMatrix& a) {
  const std::int64_t t = a.tiles();
  const std::int64_t nb = a.tile_size();
  const auto handles = register_tiles(engine, t);
  const auto h = [&](std::int64_t i, std::int64_t j) {
    return handles[static_cast<std::size_t>(i * t + j)];
  };
  std::atomic<bool> ok{true};

  for (std::int64_t l = 0; l < t; ++l) {
    const int panel_prio = static_cast<int>(2 * (t - l));
    engine.submit(
        [&a, &ok, l, nb] {
          if (!linalg::potrf_lower(a.tile(l, l), nb)) ok.store(false);
        },
        {{h(l, l), AccessMode::kReadWrite}}, panel_prio + 1, "potrf");
    for (std::int64_t i = l + 1; i < t; ++i) {
      engine.submit(
          [&a, l, i, nb] {
            linalg::trsm_right_lower_trans(a.tile(l, l), a.tile(i, l), nb);
          },
          {{h(l, l), AccessMode::kRead}, {h(i, l), AccessMode::kReadWrite}},
          panel_prio, "trsm");
    }
    for (std::int64_t i = l + 1; i < t; ++i) {
      engine.submit(
          [&a, l, i, nb] {
            linalg::syrk_update_lower(a.tile(i, l), a.tile(i, i), nb);
          },
          {{h(i, l), AccessMode::kRead}, {h(i, i), AccessMode::kReadWrite}},
          0, "syrk");
      for (std::int64_t j = l + 1; j < i; ++j) {
        engine.submit(
            [&a, l, i, j, nb] {
              linalg::gemm_update_trans_b(a.tile(i, l), a.tile(j, l),
                                          a.tile(i, j), nb);
            },
            {{h(i, l), AccessMode::kRead},
             {h(j, l), AccessMode::kRead},
             {h(i, j), AccessMode::kReadWrite}},
            0, "gemm");
      }
    }
  }
  engine.wait_all();
  return ok.load();
}

void stf_syrk(TaskEngine& engine, const linalg::TiledPanel& a,
              linalg::TiledMatrix& c) {
  const std::int64_t t = c.tiles();
  const std::int64_t k = a.tile_cols();
  const std::int64_t nb = c.tile_size();
  if (a.tile_rows() != t || a.tile_size() != nb)
    throw std::invalid_argument("stf_syrk: panel shape mismatch");
  const auto handles = register_tiles(engine, t);
  const auto h = [&](std::int64_t i, std::int64_t j) {
    return handles[static_cast<std::size_t>(i * t + j)];
  };

  // A is read-only: updates on distinct C tiles are independent across l
  // too, so each task only serializes on its own output tile.
  for (std::int64_t l = 0; l < k; ++l) {
    for (std::int64_t i = 0; i < t; ++i) {
      engine.submit(
          [&a, &c, l, i, nb] {
            linalg::syrk_update_lower(a.tile(i, l), c.tile(i, i), nb);
          },
          {{h(i, i), AccessMode::kReadWrite}}, 0, "syrk");
      for (std::int64_t j = 0; j < i; ++j) {
        engine.submit(
            [&a, &c, l, i, j, nb] {
              linalg::gemm_update_trans_b(a.tile(i, l), a.tile(j, l),
                                          c.tile(i, j), nb);
            },
            {{h(i, j), AccessMode::kReadWrite}}, 0, "gemm");
      }
    }
  }
  engine.wait_all();
}

}  // namespace anyblock::runtime
