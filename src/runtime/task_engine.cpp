#include "runtime/task_engine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace anyblock::runtime {

TaskEngine::TaskEngine(int workers) {
  if (workers < 1) throw std::invalid_argument("need at least one worker");
  sinks_.assign(static_cast<std::size_t>(workers), nullptr);
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

TaskEngine::~TaskEngine() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (pending_ > 0) {
      // Destroying an engine with live tasks would drop submitted work on
      // the floor (and race the teardown); mirror std::thread's stance on
      // destroying a joinable thread: fail loudly, don't limp on.
      std::fprintf(stderr,
                   "anyblock::runtime::TaskEngine destroyed with %lld "
                   "unfinished task(s); call wait_all() first\n",
                   static_cast<long long>(pending_));
      std::terminate();
    }
    if (first_error_) {
      std::fprintf(stderr,
                   "anyblock::runtime::TaskEngine destroyed with an "
                   "unobserved task failure; wait_all() would have "
                   "rethrown it\n");
    }
    shutdown_ = true;
  }
  ready_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

HandleId TaskEngine::register_data() {
  const std::lock_guard<std::mutex> lock(mutex_);
  handles_.emplace_back();
  return static_cast<HandleId>(handles_.size()) - 1;
}

void TaskEngine::add_edge_locked(std::int64_t pred, std::int64_t succ) {
  if (pred < 0 || done_[static_cast<std::size_t>(pred)]) return;
  tasks_[static_cast<std::size_t>(pred)].successors.push_back(succ);
  ++tasks_[static_cast<std::size_t>(succ)].deps_remaining;
  ++stats_.dependency_edges;
}

void TaskEngine::submit(std::function<void()> body,
                        std::vector<Access> accesses, int priority,
                        std::string name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Validate before touching any engine state so a bad handle leaves the
  // engine usable (and its destructor callable) after the throw.
  for (const Access& access : accesses) {
    if (access.handle < 0 ||
        access.handle >= static_cast<HandleId>(handles_.size()))
      throw std::out_of_range("unknown data handle");
  }
  const auto task_id = static_cast<std::int64_t>(tasks_.size());
  Task task;
  task.body = std::move(body);
  task.name = std::move(name);
  task.priority = priority;
  task.sequence = task_id;
  tasks_.push_back(std::move(task));
  done_.push_back(false);
  ++pending_;

  for (const Access& access : accesses) {
    HandleState& state = handles_[static_cast<std::size_t>(access.handle)];
    if (access.mode == AccessMode::kRead) {
      // RAW: run after the last writer.
      add_edge_locked(state.last_writer, task_id);
      state.readers_since_write.push_back(task_id);
    } else {
      // WAW on the last writer, WAR on every reader since then.
      add_edge_locked(state.last_writer, task_id);
      for (const std::int64_t reader : state.readers_since_write) {
        if (reader != task_id) add_edge_locked(reader, task_id);
      }
      state.readers_since_write.clear();
      state.last_writer = task_id;
    }
  }

  if (tasks_[static_cast<std::size_t>(task_id)].deps_remaining == 0)
    make_ready_locked(task_id);
}

void TaskEngine::make_ready_locked(std::int64_t task_id) {
  ready_.push_back(task_id);
  std::push_heap(ready_.begin(), ready_.end(),
                 [this](std::int64_t a, std::int64_t b) {
                   const Task& ta = tasks_[static_cast<std::size_t>(a)];
                   const Task& tb = tasks_[static_cast<std::size_t>(b)];
                   if (ta.priority != tb.priority)
                     return ta.priority < tb.priority;
                   return ta.sequence > tb.sequence;  // FIFO within priority
                 });
  ready_cv_.notify_one();
}

void TaskEngine::worker_loop(int worker_index) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto heap_less = [this](std::int64_t a, std::int64_t b) {
    const Task& ta = tasks_[static_cast<std::size_t>(a)];
    const Task& tb = tasks_[static_cast<std::size_t>(b)];
    if (ta.priority != tb.priority) return ta.priority < tb.priority;
    return ta.sequence > tb.sequence;
  };
  while (true) {
    ready_cv_.wait(lock, [this] { return shutdown_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::pop_heap(ready_.begin(), ready_.end(), heap_less);
    const std::int64_t task_id = ready_.back();
    ready_.pop_back();

    ++running_;
    stats_.peak_concurrency = std::max(stats_.peak_concurrency, running_);
    // Move the body out so the task's captures die with this execution.
    std::function<void()> body =
        std::move(tasks_[static_cast<std::size_t>(task_id)].body);
    lock.unlock();
    const auto started = std::chrono::steady_clock::now();
    std::exception_ptr error;
    try {
      body();
    } catch (...) {
      // A throwing body must not escape the worker thread (std::terminate)
      // nor leave pending_ stuck (wait_all deadlock): record the failure
      // and retire the task normally below.
      error = std::current_exception();
    }
    const auto finished = std::chrono::steady_clock::now();
    lock.lock();

    if (recorder_ != nullptr) {
      auto*& sink = sinks_[static_cast<std::size_t>(worker_index)];
      if (sink == nullptr)
        sink = recorder_->track("worker " + std::to_string(worker_index));
      const Task& task = tasks_[static_cast<std::size_t>(task_id)];
      obs::Event event;
      event.kind = obs::EventKind::kTask;
      event.name = task.name;
      event.priority = task.priority;
      event.failed = error != nullptr;
      event.start_seconds = recorder_->seconds(started);
      event.end_seconds = recorder_->seconds(finished);
      sink->record(std::move(event));
    }
    if (error) {
      ++stats_.tasks_failed;
      if (!first_error_) first_error_ = error;
    }
    --running_;
    ++stats_.tasks_executed;
    done_[static_cast<std::size_t>(task_id)] = true;
    for (const std::int64_t succ :
         tasks_[static_cast<std::size_t>(task_id)].successors) {
      if (--tasks_[static_cast<std::size_t>(succ)].deps_remaining == 0)
        make_ready_locked(succ);
    }
    tasks_[static_cast<std::size_t>(task_id)].successors.clear();
    if (--pending_ == 0) idle_cv_.notify_all();
  }
}

void TaskEngine::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    // First failure wins, mirroring vmpi::run_ranks; clearing it keeps the
    // engine reusable after the caller handles the exception.
    std::exception_ptr error;
    std::swap(error, first_error_);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

EngineStats TaskEngine::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void TaskEngine::enable_tracing() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!owned_recorder_) owned_recorder_ = std::make_unique<obs::Recorder>();
  if (recorder_ != owned_recorder_.get()) {
    recorder_ = owned_recorder_.get();
    std::fill(sinks_.begin(), sinks_.end(), nullptr);
  }
}

void TaskEngine::set_recorder(obs::Recorder* recorder) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (recorder_ == recorder) return;
  recorder_ = recorder;
  std::fill(sinks_.begin(), sinks_.end(), nullptr);
}

std::vector<TraceEvent> TaskEngine::take_trace() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!owned_recorder_) return {};
  const obs::Trace trace = owned_recorder_->take();
  lock.unlock();
  std::vector<TraceEvent> out;
  for (const obs::Track& track : trace.tracks) {
    // Track names are "worker N" by construction.
    const int worker = std::atoi(track.name.c_str() + 7);
    for (const obs::Event& event : track.events) {
      if (event.kind != obs::EventKind::kTask) continue;
      out.push_back(
          {event.name, worker, event.start_seconds, event.end_seconds});
    }
  }
  return out;
}

}  // namespace anyblock::runtime
