#include "runtime/task_engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace anyblock::runtime {

TaskEngine::TaskEngine(int workers) {
  if (workers < 1) throw std::invalid_argument("need at least one worker");
  epoch_ = std::chrono::steady_clock::now();
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

TaskEngine::~TaskEngine() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

HandleId TaskEngine::register_data() {
  const std::lock_guard<std::mutex> lock(mutex_);
  handles_.emplace_back();
  return static_cast<HandleId>(handles_.size()) - 1;
}

void TaskEngine::add_edge_locked(std::int64_t pred, std::int64_t succ) {
  if (pred < 0 || done_[static_cast<std::size_t>(pred)]) return;
  tasks_[static_cast<std::size_t>(pred)].successors.push_back(succ);
  ++tasks_[static_cast<std::size_t>(succ)].deps_remaining;
  ++stats_.dependency_edges;
}

void TaskEngine::submit(std::function<void()> body,
                        std::vector<Access> accesses, int priority,
                        std::string name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto task_id = static_cast<std::int64_t>(tasks_.size());
  Task task;
  task.body = std::move(body);
  task.name = std::move(name);
  task.priority = priority;
  task.sequence = task_id;
  tasks_.push_back(std::move(task));
  done_.push_back(false);
  ++pending_;

  for (const Access& access : accesses) {
    if (access.handle < 0 ||
        access.handle >= static_cast<HandleId>(handles_.size()))
      throw std::out_of_range("unknown data handle");
    HandleState& state = handles_[static_cast<std::size_t>(access.handle)];
    if (access.mode == AccessMode::kRead) {
      // RAW: run after the last writer.
      add_edge_locked(state.last_writer, task_id);
      state.readers_since_write.push_back(task_id);
    } else {
      // WAW on the last writer, WAR on every reader since then.
      add_edge_locked(state.last_writer, task_id);
      for (const std::int64_t reader : state.readers_since_write) {
        if (reader != task_id) add_edge_locked(reader, task_id);
      }
      state.readers_since_write.clear();
      state.last_writer = task_id;
    }
  }

  if (tasks_[static_cast<std::size_t>(task_id)].deps_remaining == 0)
    make_ready_locked(task_id);
}

void TaskEngine::make_ready_locked(std::int64_t task_id) {
  ready_.push_back(task_id);
  std::push_heap(ready_.begin(), ready_.end(),
                 [this](std::int64_t a, std::int64_t b) {
                   const Task& ta = tasks_[static_cast<std::size_t>(a)];
                   const Task& tb = tasks_[static_cast<std::size_t>(b)];
                   if (ta.priority != tb.priority)
                     return ta.priority < tb.priority;
                   return ta.sequence > tb.sequence;  // FIFO within priority
                 });
  ready_cv_.notify_one();
}

void TaskEngine::worker_loop(int worker_index) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto heap_less = [this](std::int64_t a, std::int64_t b) {
    const Task& ta = tasks_[static_cast<std::size_t>(a)];
    const Task& tb = tasks_[static_cast<std::size_t>(b)];
    if (ta.priority != tb.priority) return ta.priority < tb.priority;
    return ta.sequence > tb.sequence;
  };
  while (true) {
    ready_cv_.wait(lock, [this] { return shutdown_ || !ready_.empty(); });
    if (ready_.empty()) {
      if (shutdown_) return;
      continue;
    }
    std::pop_heap(ready_.begin(), ready_.end(), heap_less);
    const std::int64_t task_id = ready_.back();
    ready_.pop_back();

    ++running_;
    stats_.peak_concurrency = std::max(stats_.peak_concurrency, running_);
    // Move the body out so the task's captures die with this execution.
    std::function<void()> body =
        std::move(tasks_[static_cast<std::size_t>(task_id)].body);
    const bool tracing = tracing_;
    lock.unlock();
    const auto started = std::chrono::steady_clock::now();
    body();
    const auto finished = std::chrono::steady_clock::now();
    lock.lock();

    if (tracing) {
      trace_.push_back(
          {tasks_[static_cast<std::size_t>(task_id)].name, worker_index,
           std::chrono::duration<double>(started - epoch_).count(),
           std::chrono::duration<double>(finished - epoch_).count()});
    }
    --running_;
    ++stats_.tasks_executed;
    done_[static_cast<std::size_t>(task_id)] = true;
    for (const std::int64_t succ :
         tasks_[static_cast<std::size_t>(task_id)].successors) {
      if (--tasks_[static_cast<std::size_t>(succ)].deps_remaining == 0)
        make_ready_locked(succ);
    }
    tasks_[static_cast<std::size_t>(task_id)].successors.clear();
    if (--pending_ == 0) idle_cv_.notify_all();
  }
}

void TaskEngine::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

EngineStats TaskEngine::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void TaskEngine::enable_tracing() {
  const std::lock_guard<std::mutex> lock(mutex_);
  tracing_ = true;
}

std::vector<TraceEvent> TaskEngine::take_trace() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.swap(trace_);
  return out;
}

}  // namespace anyblock::runtime
