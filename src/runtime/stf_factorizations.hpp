// Task-based tiled factorizations on the STF engine (single node,
// multi-worker) — the Chameleon-style algorithm layer.
//
// The submission loops below are, line for line, the right-looking
// algorithms of Section III; the engine extracts the parallelism from the
// declared accesses.  Panel tasks get higher priorities so workers keep the
// critical path moving ahead of trailing updates.
#pragma once

#include "linalg/tiled_matrix.hpp"
#include "linalg/tiled_panel.hpp"
#include "runtime/task_engine.hpp"

namespace anyblock::runtime {

/// Task-parallel LU without pivoting.  Returns false if any GETRF tile
/// failed (result is then unspecified).
bool stf_lu_nopiv(TaskEngine& engine, linalg::TiledMatrix& a);

/// Task-parallel lower Cholesky.  Returns false if not positive definite.
bool stf_cholesky(TaskEngine& engine, linalg::TiledMatrix& a);

/// Task-parallel SYRK: C := C - A*A^T (lower), A a t x k tile panel.
void stf_syrk(TaskEngine& engine, const linalg::TiledPanel& a,
              linalg::TiledMatrix& c);

}  // namespace anyblock::runtime
