// Sequential-task-flow (STF) engine — the StarPU-like substrate
// (paper, Section II-C).
//
// The application submits tasks in sequential order, each declaring which
// data handles it reads and/or writes; the engine infers dependencies
// (read-after-write, write-after-write, write-after-read) exactly as a
// sequential execution would impose them, and runs independent tasks
// concurrently on a worker thread pool.  This is the execution model under
// which the paper's distributions are deployed: the distribution only
// decides *where* a task runs; correctness never depends on it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace anyblock::runtime {

using HandleId = std::int64_t;

enum class AccessMode { kRead, kWrite, kReadWrite };

struct Access {
  HandleId handle;
  AccessMode mode;
};

struct EngineStats {
  std::int64_t tasks_executed = 0;
  /// Of those, tasks whose body threw (their successors still ran).
  std::int64_t tasks_failed = 0;
  std::int64_t dependency_edges = 0;
  /// Largest number of tasks simultaneously running.
  std::int64_t peak_concurrency = 0;
};

/// One executed task, for offline schedule inspection (StarPU ships the
/// same idea as FxT/Paje traces).  Derived from the obs recording — see
/// enable_tracing() / take_trace().
struct TraceEvent {
  std::string name;
  int worker = 0;
  double start_seconds = 0.0;  ///< relative to tracing start
  double end_seconds = 0.0;
};

/// Task-parallel executor with automatic dependency inference.
///
/// Thread-safety: submit() and wait_all() must be called from the single
/// submitting thread (STF semantics); task bodies run on worker threads and
/// must only touch the data they declared.
///
/// Failure semantics mirror vmpi::run_ranks: a task body that throws is
/// marked failed, its successors still run (they must tolerate the
/// predecessor's output being incomplete, as StarPU codelets must), and
/// wait_all() rethrows the first stored exception once the DAG drained.
class TaskEngine {
 public:
  /// Spawns `workers` threads (>= 1).
  explicit TaskEngine(int workers);

  /// Terminates (loudly) when tasks are still pending — destroying a live
  /// engine would silently drop submitted work; call wait_all() first.
  ~TaskEngine();

  TaskEngine(const TaskEngine&) = delete;
  TaskEngine& operator=(const TaskEngine&) = delete;

  /// Registers a fresh data handle.  Handles are engine-scoped tokens; the
  /// application keeps the association with actual buffers.
  HandleId register_data();

  /// Submits a task accessing the given handles.  `priority` breaks ties in
  /// the ready queue (higher runs first) — factorizations boost panel tasks
  /// to keep the critical path moving.
  void submit(std::function<void()> body, std::vector<Access> accesses,
              int priority = 0, std::string name = {});

  /// Blocks until every submitted task has executed, then rethrows the
  /// first exception any task body raised (clearing it, so the engine
  /// stays usable afterwards).
  void wait_all();

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] int workers() const {
    return static_cast<int>(threads_.size());
  }

  /// Starts recording one obs event per executed task into an internal
  /// recorder (off by default; call before submitting).  take_trace()
  /// returns and clears the recording.
  void enable_tracing();
  [[nodiscard]] std::vector<TraceEvent> take_trace();

  /// Routes task events into an external recorder instead (one "worker N"
  /// track per worker) so engine activity lines up with vmpi/sim tracks in
  /// the exported timeline.  Call before submitting; the recorder must
  /// outlive the engine or a subsequent set_recorder(nullptr).
  void set_recorder(obs::Recorder* recorder);

 private:
  struct Task {
    std::function<void()> body;
    std::string name;
    int priority = 0;
    std::int64_t sequence = 0;  // submission order, for FIFO tie-breaking
    std::int64_t deps_remaining = 0;
    std::vector<std::int64_t> successors;
  };

  /// Per-handle bookkeeping for dependency inference.
  struct HandleState {
    std::int64_t last_writer = -1;
    std::vector<std::int64_t> readers_since_write;
  };

  void worker_loop(int worker_index);
  void make_ready_locked(std::int64_t task_id);
  /// Adds an edge pred -> succ unless pred already retired.
  void add_edge_locked(std::int64_t pred, std::int64_t succ);

  mutable std::mutex mutex_;
  std::condition_variable ready_cv_;
  std::condition_variable idle_cv_;

  std::vector<Task> tasks_;
  std::vector<bool> done_;
  std::vector<HandleState> handles_;
  /// Ready heap entries: (priority, -sequence) max-heap via vector + pushes.
  std::vector<std::int64_t> ready_;

  std::int64_t pending_ = 0;  // submitted but not yet finished
  std::int64_t running_ = 0;
  EngineStats stats_;
  bool shutdown_ = false;
  /// First exception a task body threw; rethrown by wait_all().
  std::exception_ptr first_error_;

  /// Tracing sinks, one per worker, lazily registered (guarded by mutex_).
  obs::Recorder* recorder_ = nullptr;
  std::unique_ptr<obs::Recorder> owned_recorder_;
  std::vector<obs::TrackSink*> sinks_;

  std::vector<std::thread> threads_;
};

}  // namespace anyblock::runtime
