// Small self-contained hashes for on-disk integrity and content addressing.
//
// The pattern store (src/store) names every record by a digest of its
// canonical key text and guards every payload with a CRC — a record that
// does not check out is evicted, never trusted.  Both functions are pure,
// platform-independent, and stable across releases: the digests are part
// of the on-disk format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace anyblock {

/// FNV-1a 64-bit over a byte string.  Used as the content-address digest of
/// canonical key text; stability across platforms matters more than
/// collision resistance (a collision only costs a wrong-key check, caught
/// by the key text stored inside the record).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes) noexcept;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte string.
/// Guards store payloads against torn writes and bit rot.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes) noexcept;

}  // namespace anyblock
