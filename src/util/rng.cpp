#include "util/rng.hpp"

namespace anyblock {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t split_seed(std::uint64_t root, std::uint64_t stream) noexcept {
  // Decorrelate the stream index with the golden-ratio constant before
  // folding it into the root, then finalize; plain root ^ stream would make
  // nearby (root, stream) pairs collide trivially.
  std::uint64_t x = root ^ (stream * 0x9e3779b97f4a7c15ULL);
  return splitmix64(x);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro must not be seeded with the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() noexcept {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

}  // namespace anyblock
