#include "util/hash.hpp"

#include <array>

namespace anyblock {

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : bytes)
    crc = table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace anyblock
