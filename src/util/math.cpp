#include "util/math.hpp"

#include <cmath>

namespace anyblock {

std::int64_t isqrt_floor(std::int64_t n) noexcept {
  if (n <= 0) return 0;
  // Start from the floating-point estimate and correct the boundary cases.
  auto r = static_cast<std::int64_t>(std::sqrt(static_cast<double>(n)));
  // Correct the float estimate exactly; 128-bit products avoid overflow for
  // n near INT64_MAX.
  while (r > 0 && static_cast<__int128>(r) * r > n) --r;
  while (static_cast<__int128>(r + 1) * (r + 1) <= n) ++r;
  return r;
}

std::int64_t isqrt_ceil(std::int64_t n) noexcept {
  const std::int64_t f = isqrt_floor(n);
  return (f * f == n) ? f : f + 1;
}

bool is_square(std::int64_t n) noexcept {
  if (n < 0) return false;
  const std::int64_t f = isqrt_floor(n);
  return f * f == n;
}

}  // namespace anyblock
