#include "util/args.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace anyblock {

namespace {

/// Reports a malformed option value and exits: callers are command-line
/// front ends, and a silently-zero --t would poison a whole bench run.
[[noreturn]] void fail_value(const std::string& program,
                             std::string_view name, const std::string& value,
                             const char* expected) {
  std::fprintf(stderr, "%s: option --%.*s expects %s, got '%s'\n",
               program.c_str(), static_cast<int>(name.size()), name.data(),
               expected, value.c_str());
  std::exit(1);
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add(std::string_view name, std::string_view default_value,
                    std::string_view help) {
  Option opt;
  opt.default_value = std::string(default_value);
  opt.help = std::string(help);
  if (!options_.emplace(std::string(name), std::move(opt)).second)
    throw std::logic_error("ArgParser: option --" + std::string(name) +
                           " registered twice");
  order_.emplace_back(name);
}

void ArgParser::add_flag(std::string_view name, std::string_view help) {
  Option opt;
  opt.help = std::string(help);
  opt.is_flag = true;
  if (!options_.emplace(std::string(name), std::move(opt)).second)
    throw std::logic_error("ArgParser: option --" + std::string(name) +
                           " registered twice");
  order_.emplace_back(name);
}

bool ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return false;
    }
    if (arg.substr(0, 2) != "--") {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      inline_value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "%s: unknown option --%s\n", program_.c_str(),
                   name.c_str());
      print_help();
      return false;
    }
    if (it->second.is_flag) {
      it->second.value = "1";
    } else if (inline_value) {
      it->second.value = std::move(inline_value);
    } else if (i + 1 < argc) {
      it->second.value = std::string(argv[++i]);
    } else {
      std::fprintf(stderr, "%s: option --%s requires a value\n",
                   program_.c_str(), name.c_str());
      return false;
    }
  }
  return true;
}

std::string ArgParser::get(std::string_view name) const {
  const auto it = options_.find(name);
  if (it == options_.end())
    throw std::invalid_argument("undeclared option: " + std::string(name));
  return it->second.value.value_or(it->second.default_value);
}

std::int64_t ArgParser::parse_int(std::string_view name,
                                  const std::string& token) const {
  // strtoll with a null endptr turns '--t banana' into a silent 0; insist
  // on a non-empty token, full consumption, and no range overflow.
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (token.empty() || end != token.c_str() + token.size())
    fail_value(program_, name, token, "an integer");
  if (errno == ERANGE)
    fail_value(program_, name, token, "an integer in range");
  return static_cast<std::int64_t>(value);
}

std::int64_t ArgParser::get_int(std::string_view name) const {
  return parse_int(name, get(name));
}

double ArgParser::get_double(std::string_view name) const {
  const std::string token = get(name);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size())
    fail_value(program_, name, token, "a number");
  if (errno == ERANGE) fail_value(program_, name, token, "a number in range");
  return value;
}

bool ArgParser::get_flag(std::string_view name) const {
  const auto it = options_.find(name);
  if (it == options_.end())
    throw std::invalid_argument("undeclared flag: " + std::string(name));
  return it->second.value.has_value();
}

std::vector<std::int64_t> ArgParser::get_int_list(std::string_view name) const {
  std::vector<std::int64_t> values;
  const std::string raw = get(name);
  std::size_t pos = 0;
  while (pos < raw.size()) {
    std::size_t next = raw.find(',', pos);
    if (next == std::string::npos) next = raw.size();
    if (next > pos)
      values.push_back(parse_int(name, raw.substr(pos, next - pos)));
    pos = next + 1;
  }
  return values;
}

void ArgParser::print_help() const {
  std::printf("%s — %s\n\noptions:\n", program_.c_str(), description_.c_str());
  for (const auto& name : order_) {
    const auto& opt = options_.at(name);
    if (opt.is_flag) {
      std::printf("  --%-20s %s\n", name.c_str(), opt.help.c_str());
    } else {
      std::printf("  --%-20s %s (default: %s)\n", name.c_str(),
                  opt.help.c_str(), opt.default_value.c_str());
    }
  }
}

}  // namespace anyblock
