// Tiny command-line option parser for examples and bench binaries.
//
// Supports --name value, --name=value, and --flag forms, with typed getters
// and an automatically generated --help text.  Deliberately minimal: every
// bench in bench/ shares the same option style.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace anyblock {

class ArgParser {
 public:
  /// `description` is printed at the top of --help.
  ArgParser(std::string program, std::string description);

  /// Declares an option with a default value (shown in --help).  Declaring
  /// the same name twice throws std::logic_error.
  void add(std::string_view name, std::string_view default_value,
           std::string_view help);
  /// Declares a boolean flag (false unless present).  Declaring the same
  /// name twice throws std::logic_error.
  void add_flag(std::string_view name, std::string_view help);

  /// Parses argv.  Returns false (after printing usage) on unknown options
  /// or when --help was requested; callers should then exit.
  bool parse(int argc, char** argv);

  [[nodiscard]] std::string get(std::string_view name) const;
  /// Typed getters validate the whole token (and its range) and exit(1)
  /// with a message naming the option on malformed input — a mistyped
  /// `--t banana` must not silently become 0.
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_flag(std::string_view name) const;

  /// Comma-separated integer list, e.g. --sizes 50000,100000,200000.
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      std::string_view name) const;

  /// Positional arguments (anything not starting with --).
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  void print_help() const;

 private:
  std::int64_t parse_int(std::string_view name, const std::string& token) const;

  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
    std::optional<std::string> value;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option, std::less<>> options_;
  std::vector<std::string> order_;  // help in declaration order
  std::vector<std::string> positional_;
};

}  // namespace anyblock
