// Deterministic pseudo-random number generation for pattern search.
//
// GCR&M (paper, Algorithm 1) breaks ties randomly, and its evaluation
// protocol (paper, Section V-B) re-runs the construction with 100 different
// seeds per pattern size.  Reproducibility of the published tables therefore
// requires a self-contained, platform-independent generator; we use
// xoshiro256** (Blackman & Vigna), seeded through splitmix64.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace anyblock {

/// Derives an independent sub-stream seed from a root seed.
///
/// The pair (root, stream) is folded through the splitmix64 finalizer, so
/// distinct stream indices yield statistically independent generators.  This
/// is how per-rank RNGs (and the fault injector's per-message fate draws)
/// are forked from a single experiment seed without sharing any state: the
/// result depends only on the two arguments, never on call order or thread
/// interleaving.
[[nodiscard]] std::uint64_t split_seed(std::uint64_t root,
                                       std::uint64_t stream) noexcept;

/// xoshiro256** pseudo-random generator.
///
/// Satisfies std::uniform_random_bit_generator, so it can be used with the
/// standard <random> distributions, but the helpers below are preferred in
/// library code because their results are identical across platforms and
/// standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Generator for sub-stream `stream` of the root seed: shorthand for
  /// `Rng(split_seed(root, stream))`.  Use one stream per rank/thread so
  /// every rank owns an independent deterministic sequence.
  [[nodiscard]] static Rng for_stream(std::uint64_t root,
                                      std::uint64_t stream) noexcept {
    return Rng(split_seed(root, stream));
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 raw bits.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound).  bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Fisher-Yates shuffle of a random-access range.
  template <typename RandomIt>
  void shuffle(RandomIt first, RandomIt last) noexcept {
    const auto n = static_cast<std::uint64_t>(last - first);
    for (std::uint64_t i = n; i > 1; --i) {
      const auto j = static_cast<std::ptrdiff_t>(below(i));
      using std::swap;
      swap(first[static_cast<std::ptrdiff_t>(i - 1)], first[j]);
    }
  }

  /// Picks a uniformly random element index among `count` candidates.
  /// Convenience wrapper making tie-breaking call sites self-describing.
  std::size_t pick(std::size_t count) noexcept {
    return static_cast<std::size_t>(below(count));
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace anyblock
