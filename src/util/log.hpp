// Leveled logging to stderr.
//
// Library code logs sparingly (warnings for fallback paths, debug for
// search progress); bench binaries keep stdout clean for CSV.
#pragma once

#include <sstream>
#include <string>

namespace anyblock {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that is emitted (default: kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a single line `[level] message` to stderr (thread-safe).
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Ts>
void log_fmt(LogLevel level, const Ts&... parts) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << parts);
  log_message(level, oss.str());
}
}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... parts) {
  detail::log_fmt(LogLevel::kDebug, parts...);
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  detail::log_fmt(LogLevel::kInfo, parts...);
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  detail::log_fmt(LogLevel::kWarn, parts...);
}
template <typename... Ts>
void log_error(const Ts&... parts) {
  detail::log_fmt(LogLevel::kError, parts...);
}

}  // namespace anyblock
