// Process resource introspection for bench and CLI reporting.
#pragma once

#include <cstdint>

namespace anyblock {

/// Peak resident set size of this process in bytes — the high-water mark
/// since process start, so order phases carefully when attributing memory
/// (measure the lean configuration first).  Returns 0 when the platform
/// offers no reading.
[[nodiscard]] std::int64_t peak_rss_bytes();

}  // namespace anyblock
