#include "util/csv.hpp"

namespace anyblock {

void CsvWriter::header(std::initializer_list<std::string_view> names) {
  bool first = true;
  for (const auto name : names) {
    if (!first) out_ << ',';
    out_ << escape(name);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row_fields(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& field : fields) {
    if (!first) out_ << ',';
    out_ << escape(field);
    first = false;
  }
  out_ << '\n';
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string quoted;
  quoted.reserve(field.size() + 2);
  quoted.push_back('"');
  for (const char c : field) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

}  // namespace anyblock
