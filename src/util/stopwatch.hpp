// Wall-clock stopwatch used by examples and the real (vmpi) execution path.
#pragma once

#include <chrono>

namespace anyblock {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace anyblock
