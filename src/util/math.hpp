// Small exact integer helpers shared across the pattern library.
//
// The constructions in the paper are defined with ceilings of integer
// ratios and of square roots (a = ceil(sqrt(P)), b = ceil(P/a), ...).
// Floating-point sqrt/ceil are unreliable near perfect squares, so these
// helpers are exact-integer throughout.
#pragma once

#include <cstdint>

namespace anyblock {

/// Exact ceil(n / d) for non-negative n, positive d.
constexpr std::int64_t ceil_div(std::int64_t n, std::int64_t d) noexcept {
  return (n + d - 1) / d;
}

/// Exact floor(sqrt(n)) for n >= 0.
std::int64_t isqrt_floor(std::int64_t n) noexcept;

/// Exact ceil(sqrt(n)) for n >= 0.
std::int64_t isqrt_ceil(std::int64_t n) noexcept;

/// True if n is a perfect square.
bool is_square(std::int64_t n) noexcept;

/// Greatest common divisor (non-negative inputs).
constexpr std::int64_t gcd64(std::int64_t a, std::int64_t b) noexcept {
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace anyblock
