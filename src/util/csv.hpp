// Minimal CSV emission for bench harnesses.
//
// Every bench binary regenerating a paper table or figure prints its series
// as CSV on stdout so results can be diffed/plotted without extra tooling.
#pragma once

#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace anyblock {

/// Streams rows of comma-separated values with RFC-4180-style quoting.
///
/// Usage:
///   CsvWriter csv(std::cout);
///   csv.header({"P", "pattern", "T"});
///   csv.row(23, "20x23", 9.652);
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void header(std::initializer_list<std::string_view> names);

  /// Writes one row; each argument is formatted with operator<<.
  template <typename... Ts>
  void row(const Ts&... values) {
    bool first = true;
    ((write_field(values, first), first = false), ...);
    out_ << '\n';
  }

  /// Writes a row from a pre-built vector of fields.
  void row_fields(const std::vector<std::string>& fields);

  /// Quotes a field if it contains a separator, quote, or newline.
  static std::string escape(std::string_view field);

 private:
  template <typename T>
  void write_field(const T& value, bool first) {
    if (!first) out_ << ',';
    if constexpr (std::is_convertible_v<T, std::string_view>) {
      out_ << escape(std::string_view(value));
    } else {
      std::ostringstream tmp;
      tmp << value;
      out_ << escape(tmp.str());
    }
  }

  std::ostream& out_;
};

}  // namespace anyblock
