#include "serve/recommend_service.hpp"

#include <chrono>

#include "core/gcrm.hpp"
#include "serve/parallel_search.hpp"

namespace anyblock::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

const char* source_name(Source source) {
  switch (source) {
    case Source::kStore: return "store";
    case Source::kTable: return "table";
    case Source::kSearch: return "search";
  }
  return "unknown";
}

RecommendService::RecommendService(ServiceOptions options)
    : options_(std::move(options)), store_(options_.store_path) {
  if (!options_.table_path.empty() && table_.load_file(options_.table_path))
    table_usable_ = table_.options() == options_.recommend.search;
}

store::StoreKey RecommendService::key_for(std::int64_t P,
                                          core::Kernel kernel) const {
  store::StoreKey key;
  key.P = P;
  key.metric = core::kernel_is_symmetric(kernel) ? "symmetric" : "lu";
  key.search = options_.recommend.search;
  return key;
}

ServedRecommendation RecommendService::answer_symmetric(std::int64_t P) {
  // Table: rebuild the recorded winner with one deterministic construction
  // and cross-check its cost; a row that does not reproduce is ignored.
  if (table_usable_) {
    if (const auto row = table_.find(P)) {
      core::GcrmResult rebuilt = core::gcrm_build(P, row->r, row->seed);
      if (rebuilt.valid && rebuilt.cost == row->cost) {
        core::GcrmSearchResult search;
        search.best = std::move(rebuilt.pattern);
        search.best_cost = rebuilt.cost;
        search.best_r = row->r;
        search.best_seed = row->seed;
        search.found = true;
        ServedRecommendation served;
        served.rec = core::recommend_symmetric_from_search(
            P, search, options_.recommend);
        served.source = Source::kTable;
        return served;
      }
    }
  }
  // Sweep, in parallel across the engine; bit-identical to gcrm_search.
  if (!engine_) {
    engine_ = std::make_unique<runtime::TaskEngine>(
        options_.workers > 0 ? options_.workers : 1);
  }
  const core::GcrmSearchResult search =
      parallel_gcrm_search(P, options_.recommend.search, *engine_,
                           /*keep_samples=*/false, &sweep_profile_);
  ServedRecommendation served;
  served.rec =
      core::recommend_symmetric_from_search(P, search, options_.recommend);
  served.source = Source::kSearch;
  return served;
}

ServedRecommendation RecommendService::recommend(std::int64_t P,
                                                 core::Kernel kernel) {
  const auto start = std::chrono::steady_clock::now();
  const store::StoreKey key = key_for(P, kernel);

  if (auto cached = store_.get(key)) {
    ServedRecommendation served;
    served.rec.pattern = std::move(cached->pattern);
    served.rec.scheme = std::move(cached->scheme);
    served.rec.cost = cached->cost;
    served.rec.rationale = std::move(cached->rationale);
    served.source = Source::kStore;
    served.seconds = seconds_since(start);
    warm_latency_.record_seconds(served.seconds);
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.queries;
    ++stats_.store_hits;
    return served;
  }

  ServedRecommendation served;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.queries;
    if (core::kernel_is_symmetric(kernel)) {
      served = answer_symmetric(P);
      if (served.source == Source::kTable) {
        ++stats_.table_hits;
      } else {
        ++stats_.sweeps;
      }
    } else {
      served.rec = core::recommend_lu(P);
      served.source = Source::kSearch;
      ++stats_.lu_builds;
    }
  }

  store::StoreEntry entry;
  entry.pattern = served.rec.pattern;
  entry.scheme = served.rec.scheme;
  entry.cost = served.rec.cost;
  entry.rationale = served.rec.rationale;
  store_.put(key, std::move(entry));

  served.seconds = seconds_since(start);
  cold_latency_.record_seconds(served.seconds);
  return served;
}

std::vector<ServedRecommendation> RecommendService::recommend_batch(
    const std::vector<std::int64_t>& nodes, core::Kernel kernel) {
  std::vector<ServedRecommendation> results;
  results.reserve(nodes.size());
  for (const std::int64_t P : nodes) results.push_back(recommend(P, kernel));
  return results;
}

ServiceStats RecommendService::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

core::GcrmSweepProfile RecommendService::sweep_profile() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sweep_profile_;
}

std::vector<std::pair<std::string, double>> RecommendService::metric_rows()
    const {
  const ServiceStats snapshot = stats();
  std::vector<std::pair<std::string, double>> rows = {
      {"serve_queries", static_cast<double>(snapshot.queries)},
      {"serve_store_hits", static_cast<double>(snapshot.store_hits)},
      {"serve_table_hits", static_cast<double>(snapshot.table_hits)},
      {"serve_sweeps", static_cast<double>(snapshot.sweeps)},
      {"serve_lu_builds", static_cast<double>(snapshot.lu_builds)},
  };
  for (auto& row : warm_latency_.metric_rows("serve_warm"))
    rows.push_back(std::move(row));
  for (auto& row : cold_latency_.metric_rows("serve_cold"))
    rows.push_back(std::move(row));
  for (auto& row : store_.stats().metric_rows()) rows.push_back(std::move(row));
  for (auto& row : sweep_profile().metric_rows())
    rows.push_back(std::move(row));
  return rows;
}

}  // namespace anyblock::serve
