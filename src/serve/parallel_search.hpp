// Deterministic parallel GCR&M sweep over runtime::TaskEngine.
//
// The sequential sweep (core::gcrm_search) is embarrassingly parallel:
// every (r, s) attempt's seed is a pure function of (base_seed, r, s)
// (core::gcrm_attempt_seed, built on util::rng::split_seed), so attempts
// can run in any order on any worker and still draw the constructions the
// sequential sweep draws.  The only order-sensitive part is the winner
// selection — strict `<` comparisons make the earliest attempt win ties —
// so each task reduces its contiguous slice of the (r, s) grid locally and
// the slices are merged in canonical sweep order.  The result is bit-
// identical to gcrm_search: same pattern, same cost, same samples.
//
// Pruning (GcrmSearchOptions::prune) carries over: slices share the
// cheapest balanced cost built so far through one atomic, each slice
// re-checks its size's balanced-cost floor against it before building
// anything, and individual attempts abandon against a snapshot of it.
// Stale snapshots only prune less, never more, so the winner stays
// bit-identical to the sequential search (pruned or not).
#pragma once

#include <cstdint>

#include "core/pattern_search.hpp"
#include "runtime/task_engine.hpp"

namespace anyblock::serve {

/// Parallel drop-in for core::gcrm_search.  `engine` supplies the workers;
/// submissions happen on the calling thread (STF semantics), so do not call
/// this concurrently on one engine.  When `profile` is non-null the sweep's
/// counters and per-phase timings are accumulated into it after the merge
/// (single-threaded, like the sequential search's profile).
core::GcrmSearchResult parallel_gcrm_search(
    std::int64_t P, const core::GcrmSearchOptions& options,
    runtime::TaskEngine& engine, bool keep_samples = false,
    core::GcrmSweepProfile* profile = nullptr);

}  // namespace anyblock::serve
