// Deterministic parallel GCR&M sweep over runtime::TaskEngine.
//
// The sequential sweep (core::gcrm_search) is embarrassingly parallel:
// every (r, s) attempt's seed is a pure function of (base_seed, r, s)
// (core::gcrm_attempt_seed, built on util::rng::split_seed), so attempts
// can run in any order on any worker and still draw the constructions the
// sequential sweep draws.  The only order-sensitive part is the winner
// selection — strict `<` comparisons make the earliest attempt win ties —
// so each task reduces its contiguous slice of the (r, s) grid locally and
// the slices are merged in canonical sweep order.  The result is bit-
// identical to gcrm_search: same pattern, same cost, same samples.
#pragma once

#include <cstdint>

#include "core/pattern_search.hpp"
#include "runtime/task_engine.hpp"

namespace anyblock::serve {

/// Parallel drop-in for core::gcrm_search.  `engine` supplies the workers;
/// submissions happen on the calling thread (STF semantics), so do not call
/// this concurrently on one engine.
core::GcrmSearchResult parallel_gcrm_search(
    std::int64_t P, const core::GcrmSearchOptions& options,
    runtime::TaskEngine& engine, bool keep_samples = false);

}  // namespace anyblock::serve
