#include "serve/precompute.hpp"

#include <filesystem>
#include <memory>
#include <utility>

#include "core/recommend.hpp"
#include "serve/parallel_search.hpp"
#include "store/pattern_store.hpp"

namespace anyblock::serve {

namespace {

void save_or_throw(const store::WinnersTable& table, const std::string& path) {
  if (!table.save_file(path))
    throw std::runtime_error("precompute: cannot write winners table: " +
                             path);
}

}  // namespace

PrecomputeReport precompute_winners(const PrecomputeOptions& options,
                                    runtime::TaskEngine& engine,
                                    const PrecomputeProgress& progress) {
  if (options.min_p < 2 || options.max_p < options.min_p)
    throw std::invalid_argument("precompute: need 2 <= min_p <= max_p");

  PrecomputeReport report;
  store::WinnersTable table;
  if (options.resume && std::filesystem::exists(options.table_path)) {
    if (!table.load_file(options.table_path))
      throw PrecomputeError(
          "precompute --resume: existing table is damaged (" + table.error() +
          "); refusing to overwrite — delete " + options.table_path +
          " to start over");
    if (!(table.options() == options.search))
      throw PrecomputeError(
          "precompute --resume: existing table was swept with different "
          "search options; refusing to mix — delete " + options.table_path +
          " or rerun with the table's options");
    report.resumed = static_cast<std::int64_t>(table.size());
  }
  table.set_options(options.search);

  std::unique_ptr<store::PatternStore> memo;
  if (!options.store_path.empty())
    memo = std::make_unique<store::PatternStore>(options.store_path);

  std::int64_t since_checkpoint = 0;
  for (std::int64_t P = options.min_p; P <= options.max_p; ++P) {
    if (table.find(P)) continue;  // resume: row already present
    const core::GcrmSearchResult search =
        parallel_gcrm_search(P, options.search, engine,
                             /*keep_samples=*/false, &report.profile);
    if (!search.found) {
      ++report.infeasible;
      continue;
    }
    const store::WinnerRow row{P, search.best_r, search.best_seed,
                               search.best_cost};
    table.add(row);
    ++report.swept;
    if (memo) {
      core::RecommendOptions rec_options;
      rec_options.search = options.search;
      const core::Recommendation rec =
          core::recommend_symmetric_from_search(P, search, rec_options);
      store::StoreKey key;
      key.P = P;
      key.metric = "symmetric";
      key.search = options.search;
      memo->put(key, {rec.pattern, rec.scheme, rec.cost, rec.rationale});
    }
    if (progress) progress(row);
    // Checkpoint: an interrupted multi-hour sweep resumes from here.
    if (options.checkpoint_every > 0 &&
        ++since_checkpoint >= options.checkpoint_every) {
      save_or_throw(table, options.table_path);
      since_checkpoint = 0;
      ++report.checkpoints;
    }
  }
  save_or_throw(table, options.table_path);
  report.table_rows = table.size();
  return report;
}

}  // namespace anyblock::serve