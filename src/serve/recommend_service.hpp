// Batch-capable pattern-recommendation service — the first subsystem whose
// hot path is a query, not a factorization.
//
// Answer path, fastest first:
//   1. store  — PatternStore hit on the digest of (P, metric, options):
//               sub-millisecond, the memoized final recommendation;
//   2. table  — shipped winners table (data/gcrm_winners.tsv) hit: one
//               deterministic gcrm_build of the recorded (r, seed) winner,
//               milliseconds, then memoized into the store;
//   3. sweep  — the full GCR&M sweep, parallelized across the task engine
//               (bit-identical to core::gcrm_search), then memoized.
// LU queries take the closed-form path (no sweep) but are memoized the
// same way, so every metric goes through one digest scheme.
//
// Latency is recorded into cold/warm obs::LatencyHistograms; counters and
// percentiles surface through metric_rows() in the obs CSV convention.
//
// Thread-safety: recommend()/recommend_batch() may be called from any
// number of threads; cold sweeps serialize on an internal mutex (the task
// engine is single-submitter), warm lookups only take the store's lock.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/pattern_search.hpp"
#include "core/recommend.hpp"
#include "obs/histogram.hpp"
#include "runtime/task_engine.hpp"
#include "store/pattern_store.hpp"
#include "store/winners_table.hpp"

namespace anyblock::serve {

struct ServiceOptions {
  /// Manifest path for the persistent store; empty = in-memory memo only.
  std::string store_path;
  /// Shipped winners table; empty = none.  A table whose recorded search
  /// options differ from `recommend.search` is loaded but never consulted.
  std::string table_path;
  /// Worker threads for the parallel sweep (cold path).
  int workers = 1;
  /// Search budget; part of every cache digest.
  core::RecommendOptions recommend;
};

/// Where an answer came from (cost order: store < table < search).
enum class Source { kStore, kTable, kSearch };

[[nodiscard]] const char* source_name(Source source);

struct ServedRecommendation {
  core::Recommendation rec;
  Source source = Source::kSearch;
  double seconds = 0.0;  ///< service-side latency of this query
};

struct ServiceStats {
  std::int64_t queries = 0;
  std::int64_t store_hits = 0;
  std::int64_t table_hits = 0;
  std::int64_t sweeps = 0;      ///< full GCR&M sweeps run (symmetric cold)
  std::int64_t lu_builds = 0;   ///< closed-form LU constructions (cold)
};

class RecommendService {
 public:
  explicit RecommendService(ServiceOptions options);

  /// recommend_pattern, served: bit-identical result, amortized cost.
  ServedRecommendation recommend(std::int64_t P, core::Kernel kernel);

  /// Batch mode: answers in input order.  Cold entries parallelize their
  /// sweeps internally; duplicates within a batch hit the store.
  std::vector<ServedRecommendation> recommend_batch(
      const std::vector<std::int64_t>& nodes, core::Kernel kernel);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] store::PatternStore& pattern_store() { return store_; }
  [[nodiscard]] const store::WinnersTable& table() const { return table_; }
  [[nodiscard]] bool table_usable() const { return table_usable_; }

  /// Cold (miss → rebuild/sweep) and warm (store hit) latency summaries
  /// plus service, store, and sweep-profile counters, in the obs extra-row
  /// convention ("serve_*" / "store_*" / "sweep_*").
  [[nodiscard]] std::vector<std::pair<std::string, double>> metric_rows()
      const;

  /// Accumulated profile of every sweep this service ran (cold path).
  [[nodiscard]] core::GcrmSweepProfile sweep_profile() const;

 private:
  store::StoreKey key_for(std::int64_t P, core::Kernel kernel) const;
  ServedRecommendation answer_symmetric(std::int64_t P);

  ServiceOptions options_;
  store::PatternStore store_;
  store::WinnersTable table_;
  bool table_usable_ = false;

  /// Guards the cold path (engine submission is single-threaded) and the
  /// counters; the engine is lazily constructed so warm-only services
  /// never spawn sweep workers.
  mutable std::mutex mutex_;
  std::unique_ptr<runtime::TaskEngine> engine_;
  ServiceStats stats_;
  core::GcrmSweepProfile sweep_profile_;  ///< guarded by mutex_ (cold path)

  obs::LatencyHistogram cold_latency_;
  obs::LatencyHistogram warm_latency_;
};

}  // namespace anyblock::serve
