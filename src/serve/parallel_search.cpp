#include "serve/parallel_search.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/gcrm.hpp"

namespace anyblock::serve {

namespace {

/// One task's contiguous slice of the sweep: all of pattern size `r`'s
/// restarts in [s_begin, s_end).
struct Slice {
  std::int64_t r = 0;
  std::int64_t s_begin = 0;
  std::int64_t s_end = 0;
};

/// A slice's local reduction, holding exactly what the sequential sweep
/// would keep had it only seen this slice: the cheapest balanced and the
/// cheapest valid attempt (strict `<`, so the earliest attempt of equal
/// cost survives — matching sequential tie-breaking when slices are merged
/// in canonical order).
struct SliceBest {
  bool have_balanced = false;
  double balanced_cost = 0.0;
  core::Pattern balanced;
  std::int64_t balanced_r = 0;
  std::uint64_t balanced_seed = 0;

  bool have_valid = false;
  double valid_cost = 0.0;
  core::Pattern valid;
  std::int64_t valid_r = 0;
  std::uint64_t valid_seed = 0;

  std::vector<core::GcrmSample> samples;

  /// Slice-local profile slice, merged deterministically after wait_all.
  core::GcrmSweepProfile profile;
  bool skipped = false;  ///< whole slice fell to the balanced-cost floor
};

/// Lowers `target` to `value` if smaller.  The threshold is a standalone
/// monotone hint — no other data is published through it — so relaxed
/// ordering suffices; a stale read only prunes less, never wrongly.
void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

SliceBest reduce_slice(std::int64_t P, const core::GcrmSearchOptions& options,
                       const Slice& slice, bool keep_samples,
                       std::atomic<double>* threshold) {
  SliceBest best;
  if (threshold &&
      core::gcrm_balanced_cost_floor(P, slice.r, options.balance_slack) >
          threshold->load(std::memory_order_relaxed)) {
    best.skipped = true;
    best.profile.attempts_skipped += slice.s_end - slice.s_begin;
    return best;
  }
  core::GcrmBuildControls controls;
  controls.timings = &best.profile.timings;
  for (std::int64_t s = slice.s_begin; s < slice.s_end; ++s) {
    const std::uint64_t seed =
        core::gcrm_attempt_seed(options.base_seed, slice.r, s);
    if (threshold)
      controls.abandon_above = threshold->load(std::memory_order_relaxed);
    core::GcrmResult attempt = core::gcrm_build(P, slice.r, seed, controls);
    if (attempt.abandoned) {
      ++best.profile.attempts_abandoned;
      continue;
    }
    ++best.profile.attempts_built;
    const bool balanced =
        attempt.valid && attempt.pattern.is_balanced(options.balance_slack);
    if (keep_samples)
      best.samples.push_back(
          {slice.r, seed, attempt.cost, attempt.valid, balanced});
    if (!attempt.valid) continue;
    if (balanced) {
      if (!best.have_balanced || attempt.cost < best.balanced_cost) {
        best.have_balanced = true;
        best.balanced_cost = attempt.cost;
        best.balanced = attempt.pattern;
        best.balanced_r = slice.r;
        best.balanced_seed = seed;
      }
      if (threshold) atomic_min(*threshold, attempt.cost);
    }
    if (!best.have_valid || attempt.cost < best.valid_cost) {
      best.have_valid = true;
      best.valid_cost = attempt.cost;
      best.valid = std::move(attempt.pattern);
      best.valid_r = slice.r;
      best.valid_seed = seed;
    }
  }
  return best;
}

}  // namespace

core::GcrmSearchResult parallel_gcrm_search(
    std::int64_t P, const core::GcrmSearchOptions& options,
    runtime::TaskEngine& engine, bool keep_samples,
    core::GcrmSweepProfile* profile) {
  if (P <= 0) throw std::invalid_argument("P must be positive");
  const auto sweep_start = std::chrono::steady_clock::now();

  // Slice the (r, s) grid in canonical sweep order.  Several slices per
  // pattern size keep all workers busy even when few sizes are feasible;
  // the exact slicing never affects the result, only load balance.
  const std::vector<std::int64_t> sizes =
      core::gcrm_feasible_sizes(P, core::gcrm_sweep_max_r(P, options));
  const std::int64_t slices_per_size = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(engine.workers()), 1, options.seeds);
  const std::int64_t chunk =
      (options.seeds + slices_per_size - 1) / slices_per_size;
  std::vector<Slice> slices;
  for (const std::int64_t r : sizes)
    for (std::int64_t s = 0; s < options.seeds; s += chunk)
      slices.push_back({r, s, std::min(s + chunk, options.seeds)});

  // Samples must record every attempt, so pruning turns off with them.
  const bool prune = options.prune && !keep_samples;
  std::atomic<double> threshold{std::numeric_limits<double>::infinity()};

  std::vector<SliceBest> locals(slices.size());
  // Pruned sweeps submit in descending-r order: winners empirically sit
  // near max_r, so the shared incumbent tightens in the first slices and
  // low-r slices fall to the cost floor.  locals stays indexed in
  // canonical order either way.
  for (std::size_t n = 0; n < slices.size(); ++n) {
    const std::size_t i = prune ? slices.size() - 1 - n : n;
    const runtime::HandleId slot = engine.register_data();
    engine.submit(
        [P, &options, &slices, &locals, &threshold, i, keep_samples, prune] {
          locals[i] = reduce_slice(P, options, slices[i], keep_samples,
                                   prune ? &threshold : nullptr);
        },
        {{slot, runtime::AccessMode::kWrite}}, /*priority=*/0,
        "gcrm r=" + std::to_string(slices[i].r));
  }
  engine.wait_all();

  // Canonical-order merge: replay the sequential selection over the slice
  // reductions.  Balanced winners dominate; among equals the earlier slice
  // (hence earlier attempt) wins because comparisons stay strict.
  core::GcrmSearchResult result;
  bool have_balanced = false;
  double best_balanced_cost = 0.0;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    SliceBest& local = locals[i];
    if (keep_samples)
      result.samples.insert(result.samples.end(),
                            std::make_move_iterator(local.samples.begin()),
                            std::make_move_iterator(local.samples.end()));
    if (local.have_balanced &&
        (!have_balanced || local.balanced_cost < best_balanced_cost)) {
      have_balanced = true;
      best_balanced_cost = local.balanced_cost;
      result.best = std::move(local.balanced);
      result.best_cost = local.balanced_cost;
      result.best_r = local.balanced_r;
      result.best_seed = local.balanced_seed;
      result.found = true;
    }
    if (!have_balanced && local.have_valid &&
        (!result.found || local.valid_cost < result.best_cost)) {
      result.best = std::move(local.valid);
      result.best_cost = local.valid_cost;
      result.best_r = local.valid_r;
      result.best_seed = local.valid_seed;
      result.found = true;
    }
  }

  if (profile) {
    ++profile->searches;
    profile->sizes_feasible += static_cast<std::int64_t>(sizes.size());
    for (const SliceBest& local : locals) profile->merge(local.profile);
    // A size counts as pruned when every one of its slices was skipped.
    for (std::size_t i = 0; i < slices.size();) {
      const std::int64_t r = slices[i].r;
      bool all_skipped = true;
      for (; i < slices.size() && slices[i].r == r; ++i)
        all_skipped = all_skipped && locals[i].skipped;
      if (all_skipped) ++profile->sizes_pruned;
    }
    profile->total_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
  }
  return result;
}

}  // namespace anyblock::serve