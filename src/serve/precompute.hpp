// Checkpointed winners-table precompute — the engine behind
// `anyblock precompute`.
//
// Sweeping GCR&M winners for P up to 10'000 is a multi-hour job, so the
// loop checkpoints the table to disk (atomic tmp + rename) every few rows:
// an interrupted run loses at most `checkpoint_every` sweeps and `--resume`
// picks up from the last checkpoint.
//
// Resume is strict about what it extends.  A table that fails to load
// (truncated mid-row, CRC mismatch) or that was swept under different
// GcrmSearchOptions is REFUSED with a PrecomputeError — silently mixing
// rows from different sweeps would poison the shipped artifact, whose
// header pins one option set for every row.  A larger --max-p against a
// healthy table is the intended use: present rows are kept, missing ones
// swept.  (GcrmSearchOptions::prune is excluded from options identity —
// pruning is result-identical, so pruned and unpruned runs may extend each
// other's tables.)
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "core/pattern_search.hpp"
#include "runtime/task_engine.hpp"
#include "store/winners_table.hpp"

namespace anyblock::serve {

struct PrecomputeOptions {
  std::int64_t min_p = 2;
  std::int64_t max_p = 64;
  core::GcrmSearchOptions search;
  /// Winners table to write (and to extend under `resume`).
  std::string table_path;
  /// Optional pattern store: every swept winner is also memoized as a full
  /// recommendation, exactly like a cold serve would.
  std::string store_path;
  /// Load `table_path` first and keep its rows.  Refuses (throws) when the
  /// existing table is damaged or was swept with different options.
  bool resume = false;
  /// Save the table after this many newly swept rows (and always at the
  /// end).  1 = checkpoint every row; <= 0 disables intermediate saves.
  std::int64_t checkpoint_every = 1;
};

/// A resume precondition failed; nothing was swept or written.
class PrecomputeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct PrecomputeReport {
  std::int64_t swept = 0;        ///< rows newly swept this run
  std::int64_t resumed = 0;      ///< rows kept from the loaded table
  std::int64_t infeasible = 0;   ///< P values with no feasible pattern
  std::int64_t checkpoints = 0;  ///< intermediate table saves
  std::size_t table_rows = 0;    ///< final table size
  core::GcrmSweepProfile profile;
};

/// Called after each newly swept row (before its checkpoint).
using PrecomputeProgress =
    std::function<void(const store::WinnerRow& row)>;

/// Runs the sweep loop over P in [min_p, max_p].  Throws PrecomputeError on
/// a refused resume and std::runtime_error when the table cannot be saved.
PrecomputeReport precompute_winners(const PrecomputeOptions& options,
                                    runtime::TaskEngine& engine,
                                    const PrecomputeProgress& progress = {});

}  // namespace anyblock::serve