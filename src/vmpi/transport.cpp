#include "vmpi/transport.hpp"

namespace anyblock::vmpi {

Transport::~Transport() = default;

namespace {
// Thread-local rather than process-global: a process launched into a mesh
// sets it once on the main thread and every run_ranks() call site sees it,
// while tests that host several mesh endpoints inside one process scope a
// different transport on each endpoint's driver thread without racing.
thread_local Transport* t_ambient = nullptr;
}  // namespace

void set_ambient_transport(Transport* transport) { t_ambient = transport; }

Transport* ambient_transport() { return t_ambient; }

ScopedTransport::ScopedTransport(Transport* transport)
    : previous_(ambient_transport()) {
  set_ambient_transport(transport);
}

ScopedTransport::~ScopedTransport() { set_ambient_transport(previous_); }

}  // namespace anyblock::vmpi
