// The transport seam under vmpi: where message envelopes cross a process
// boundary.
//
// vmpi::World implements everything that gives the message layer its
// semantics — mailbox matching, per-(source, tag) stream ordering, the
// at-least-once/dedup reliability protocol, fault injection, traffic
// counters, obs events.  All of that sits *above* this seam.  A Transport
// only answers two questions: which ranks live in this OS process, and how
// does a framed envelope reach a rank that does not.
//
// Two backends exist:
//   * in-process (the default, `transport == nullptr`): every rank is a
//     thread of this process and the seam is never crossed — World runs the
//     exact mailbox fast path it always has, bit for bit.
//   * net::SocketTransport (src/net): ranks are spread over OS processes
//     connected by a full mesh of length-prefixed TCP streams driven by an
//     epoll event loop; see DESIGN.md §10.
//
// The conformance suite (tests/net/transport_conformance_test.cpp) pins the
// semantics both backends must share; registering a third backend there is
// a one-line change.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace anyblock::vmpi {

using Payload = std::vector<double>;

/// One message crossing the seam.  `flow` is the obs trace flow id, already
/// namespaced by the sending process so send→recv arrows link across
/// process boundaries.  `seq` is reserved on the wire: the reliability
/// protocol stamps stream sequence numbers at the *destination* process
/// (arrival order equals send order per (source, dest, tag) stream because
/// every stream rides one FIFO connection), so transports never carry
/// protocol state between runs.
struct WireMessage {
  int source = -1;
  int dest = -1;
  std::int64_t tag = 0;
  std::uint64_t flow = 0;
  std::uint64_t seq = 0;
  Payload data;
};

/// Backend interface.  All methods except send() and the sink are called
/// from rank threads; send() may be called from any rank thread
/// concurrently and must preserve per (source, dest, tag) send order.
class Transport {
 public:
  virtual ~Transport();

  /// Total ranks across every process of the mesh.
  [[nodiscard]] virtual int world_size() const = 0;
  /// This process's index in [0, process_count()).
  [[nodiscard]] virtual int process_index() const = 0;
  [[nodiscard]] virtual int process_count() const = 0;
  /// The ranks hosted by this process, ascending.
  [[nodiscard]] virtual const std::vector<int>& local_ranks() const = 0;
  [[nodiscard]] virtual bool is_local(int rank) const = 0;

  /// Ships an envelope to the process hosting `message.dest`.  Blocks only
  /// for backpressure (the destination connection's write queue is full).
  virtual void send(WireMessage message) = 0;

  /// Inbound delivery callback, invoked on the transport's event thread.
  /// While no sink is attached the transport queues arrivals and flushes
  /// them on attach, so back-to-back run_ranks() calls on one transport
  /// never lose the follow-up run's early messages.  detach() blocks until
  /// any in-flight sink invocation has returned.
  using Sink = std::function<void(WireMessage&&)>;
  virtual void attach(Sink sink) = 0;
  virtual void detach() = 0;

  /// Process-level barrier, one call per process per generation.  On
  /// return, every message any process sent before entering the barrier
  /// has been handed to its destination sink — the delivery-visibility
  /// guarantee the in-process backend gets for free from its synchronous
  /// mailbox push.
  virtual void barrier() = 0;

  /// Allgather of one opaque blob per process (index = process index).
  /// Synchronizes like barrier(); used to merge per-rank traffic and fault
  /// counters into a global RunReport.
  virtual std::vector<std::string> gather_blobs(const std::string& local) = 0;
};

/// The ambient transport run_ranks() uses when its options carry none: set
/// by the CLI / bench bootstrap so every dist:: factorization and solve
/// runs unmodified over whichever backend the process was launched with.
/// Null (the default) means in-process thread ranks.  Thread-local, so a
/// test may drive several mesh endpoints from one process by scoping a
/// different transport on each endpoint's driver thread.
void set_ambient_transport(Transport* transport);
[[nodiscard]] Transport* ambient_transport();

/// RAII ambient-transport scope, restoring the previous value on exit.
class ScopedTransport {
 public:
  explicit ScopedTransport(Transport* transport);
  ~ScopedTransport();
  ScopedTransport(const ScopedTransport&) = delete;
  ScopedTransport& operator=(const ScopedTransport&) = delete;

 private:
  Transport* previous_;
};

}  // namespace anyblock::vmpi
