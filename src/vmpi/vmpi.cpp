#include "vmpi/vmpi.hpp"

#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/trace.hpp"

namespace anyblock::vmpi {

namespace {

/// Messages reference their payload through a shared pointer so a
/// multisend can fan one buffer out to many mailboxes without copying.
/// `exclusive` records at delivery time whether this mailbox owns the
/// buffer alone (plain send) or shares it with other receivers
/// (multisend); a use_count() check at extraction would race with the
/// other receivers' reference drops.
struct Message {
  int source;
  std::int64_t tag;
  std::shared_ptr<Payload> data;
  bool exclusive;
  /// Trace flow id tying this message's recv event to its send event
  /// (0 when tracing is off).
  std::uint64_t flow = 0;
};

/// One mailbox per destination rank.
struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> messages;
};

/// Extracts the payload from a delivered message: moves when this mailbox
/// owned the buffer exclusively, copies when it came from a multisend.
Payload extract(Message&& message) {
  if (message.exclusive) return std::move(*message.data);
  return *message.data;
}

}  // namespace

class World {
 public:
  explicit World(int ranks, obs::Recorder* recorder = nullptr)
      : size_(ranks),
        mailboxes_(static_cast<std::size_t>(ranks)),
        traffic_(static_cast<std::size_t>(ranks)),
        traffic_mutexes_(static_cast<std::size_t>(ranks)),
        recorder_(recorder) {
    // Sinks are registered up front, before the rank threads start, so
    // each thread only ever appends to its own pre-existing track.
    if (recorder_ != nullptr) {
      sinks_.reserve(static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r)
        sinks_.push_back(recorder_->track("rank " + std::to_string(r)));
    }
  }

  [[nodiscard]] int size() const { return size_; }

  void send(int source, int dest, std::int64_t tag, Payload data) {
    check_dest(dest);
    count_sent(source, 1, static_cast<std::int64_t>(data.size()));
    const std::uint64_t flow =
        record_send(source, dest, tag, static_cast<std::int64_t>(data.size()),
                    /*flow=*/0);
    deliver(dest, {source, tag, std::make_shared<Payload>(std::move(data)),
                   /*exclusive=*/true, flow});
  }

  void multisend(int source, const std::vector<int>& dests, std::int64_t tag,
                 const Payload& data) {
    for (const int dest : dests) check_dest(dest);
    count_sent(source, static_cast<std::int64_t>(dests.size()),
               static_cast<std::int64_t>(dests.size()) *
                   static_cast<std::int64_t>(data.size()));
    // One flow id for the whole fan-out: the exporter draws one arrow per
    // destination from the shared send instant.
    std::uint64_t flow = 0;
    for (const int dest : dests)
      flow = record_send(source, dest, tag,
                         static_cast<std::int64_t>(data.size()), flow);
    const auto shared = std::make_shared<Payload>(data);
    for (const int dest : dests)
      deliver(dest, {source, tag, shared, /*exclusive=*/false, flow});
  }

  Payload recv(int self, int source, std::int64_t tag) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    std::unique_lock<std::mutex> lock(box.mutex);
    while (true) {
      for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
        if (it->tag != tag) continue;
        if (source != kAnySource && it->source != source) continue;
        Message message = std::move(*it);
        box.messages.erase(it);
        lock.unlock();
        return receive_payload(self, std::move(message));
      }
      box.cv.wait(lock);
    }
  }

  std::optional<Envelope> probe(int self) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    const std::lock_guard<std::mutex> lock(box.mutex);
    if (box.messages.empty()) return std::nullopt;
    return Envelope{box.messages.front().source, box.messages.front().tag};
  }

  std::pair<Envelope, Payload> recv_any(int self) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    std::unique_lock<std::mutex> lock(box.mutex);
    box.cv.wait(lock, [&] { return !box.messages.empty(); });
    Message message = std::move(box.messages.front());
    box.messages.pop_front();
    lock.unlock();
    const Envelope envelope{message.source, message.tag};
    return {envelope, receive_payload(self, std::move(message))};
  }

  void barrier() {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    const std::int64_t generation = barrier_generation_;
    if (++barrier_arrived_ == size_) {
      barrier_arrived_ = 0;
      ++barrier_generation_;
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lock, [&] { return barrier_generation_ != generation; });
    }
  }

  TrafficStats traffic(int rank) {
    const std::lock_guard<std::mutex> lock(
        traffic_mutexes_[static_cast<std::size_t>(rank)]);
    return traffic_[static_cast<std::size_t>(rank)];
  }

 private:
  void check_dest(int dest) const {
    if (dest < 0 || dest >= size_)
      throw std::out_of_range("vmpi send: bad destination rank");
  }

  void deliver(int dest, Message message) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    {
      const std::lock_guard<std::mutex> lock(box.mutex);
      box.messages.push_back(std::move(message));
    }
    box.cv.notify_all();
  }

  void count_sent(int source, std::int64_t messages, std::int64_t doubles) {
    const std::lock_guard<std::mutex> lock(
        traffic_mutexes_[static_cast<std::size_t>(source)]);
    auto& t = traffic_[static_cast<std::size_t>(source)];
    t.messages_sent += messages;
    t.doubles_sent += doubles;
  }

  /// Records one send event on the source rank's track; returns the flow
  /// id to stamp on the message (reuses `flow` when nonzero, for the
  /// shared-flow multisend fan-out).
  std::uint64_t record_send(int source, int dest, std::int64_t tag,
                            std::int64_t doubles, std::uint64_t flow) {
    if (recorder_ == nullptr) return 0;
    if (flow == 0) flow = recorder_->next_flow();
    obs::Event event;
    event.kind = obs::EventKind::kSend;
    event.start_seconds = event.end_seconds = recorder_->now();
    event.source = source;
    event.dest = dest;
    event.tag = tag;
    event.bytes = doubles * static_cast<std::int64_t>(sizeof(double));
    event.flow = flow;
    sinks_[static_cast<std::size_t>(source)]->record(std::move(event));
    return flow;
  }

  /// Books the receive-side counters and extracts the payload.
  Payload receive_payload(int self, Message&& message) {
    if (recorder_ != nullptr) {
      obs::Event event;
      event.kind = obs::EventKind::kRecv;
      event.start_seconds = event.end_seconds = recorder_->now();
      event.source = message.source;
      event.dest = self;
      event.tag = message.tag;
      event.bytes = static_cast<std::int64_t>(message.data->size()) *
                    static_cast<std::int64_t>(sizeof(double));
      event.flow = message.flow;
      sinks_[static_cast<std::size_t>(self)]->record(std::move(event));
    }
    Payload data = extract(std::move(message));
    const std::lock_guard<std::mutex> lock(
        traffic_mutexes_[static_cast<std::size_t>(self)]);
    auto& t = traffic_[static_cast<std::size_t>(self)];
    ++t.messages_received;
    t.doubles_received += static_cast<std::int64_t>(data.size());
    return data;
  }

  int size_;
  std::vector<Mailbox> mailboxes_;
  std::vector<TrafficStats> traffic_;
  std::vector<std::mutex> traffic_mutexes_;
  obs::Recorder* recorder_;
  std::vector<obs::TrackSink*> sinks_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::int64_t barrier_generation_ = 0;
};

int RankContext::size() const { return world_.size(); }

void RankContext::send(int dest, std::int64_t tag, const Payload& data) {
  world_.send(rank_, dest, tag, data);
}

void RankContext::send(int dest, std::int64_t tag, Payload&& data) {
  world_.send(rank_, dest, tag, std::move(data));
}

void RankContext::multisend(const std::vector<int>& dests, std::int64_t tag,
                            const Payload& data) {
  world_.multisend(rank_, dests, tag, data);
}

Payload RankContext::recv(int source, std::int64_t tag) {
  return world_.recv(rank_, source, tag);
}

std::optional<Envelope> RankContext::probe() { return world_.probe(rank_); }

std::pair<Envelope, Payload> RankContext::recv_any() {
  return world_.recv_any(rank_);
}

void RankContext::barrier() { world_.barrier(); }

Payload RankContext::broadcast(int root, Payload data) {
  // Internal tags live in a reserved negative band so they never collide
  // with application tags (tile ids are non-negative).
  constexpr std::int64_t kBcastTag = -1000;
  if (rank_ == root) {
    std::vector<int> dests;
    dests.reserve(static_cast<std::size_t>(size()) - 1);
    for (int dest = 0; dest < size(); ++dest) {
      if (dest != root) dests.push_back(dest);
    }
    multisend(dests, kBcastTag, data);
    return data;
  }
  return recv(root, kBcastTag);
}

Payload RankContext::allreduce_sum(Payload data) {
  constexpr std::int64_t kGatherTag = -2000;
  constexpr std::int64_t kResultTag = -3000;
  if (rank_ == 0) {
    for (int source = 1; source < size(); ++source) {
      const Payload part = recv(source, kGatherTag);
      if (part.size() != data.size())
        throw std::invalid_argument("allreduce_sum: size mismatch");
      for (std::size_t k = 0; k < data.size(); ++k) data[k] += part[k];
    }
    for (int dest = 1; dest < size(); ++dest) send(dest, kResultTag, data);
    return data;
  }
  send(0, kGatherTag, std::move(data));
  return recv(0, kResultTag);
}

TrafficStats RankContext::traffic() const { return world_.traffic(rank_); }

std::int64_t RunReport::total_messages() const {
  std::int64_t total = 0;
  for (const auto& stats : per_rank) total += stats.messages_sent;
  return total;
}

std::int64_t RunReport::total_doubles() const {
  std::int64_t total = 0;
  for (const auto& stats : per_rank) total += stats.doubles_sent;
  return total;
}

std::int64_t RunReport::total_messages_received() const {
  std::int64_t total = 0;
  for (const auto& stats : per_rank) total += stats.messages_received;
  return total;
}

std::int64_t RunReport::total_doubles_received() const {
  std::int64_t total = 0;
  for (const auto& stats : per_rank) total += stats.doubles_received;
  return total;
}

RunReport run_ranks(int ranks, const std::function<void(RankContext&)>& body,
                    obs::Recorder* recorder) {
  if (ranks < 1) throw std::invalid_argument("need at least one rank");
  World world(ranks, recorder);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&world, &body, &errors, r] {
      try {
        RankContext ctx(world, r);
        body(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  RunReport report;
  report.per_rank.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) report.per_rank.push_back(world.traffic(r));
  return report;
}

}  // namespace anyblock::vmpi
