#include "vmpi/vmpi.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

#include "obs/trace.hpp"

namespace anyblock::vmpi {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

/// Messages reference their payload through a shared pointer so a
/// multisend can fan one buffer out to many mailboxes without copying.
/// `exclusive` records at delivery time whether this mailbox owns the
/// buffer alone (plain send) or shares it with other receivers
/// (multisend); a use_count() check at extraction would race with the
/// other receivers' reference drops.  Fault runs always share: the
/// sender-side retention buffer keeps a reference for retransmission.
struct Message {
  int source;
  std::int64_t tag;
  std::shared_ptr<Payload> data;
  bool exclusive;
  /// Trace flow id tying this message's recv event to its send event
  /// (0 when tracing is off).
  std::uint64_t flow = 0;
  /// Per-(source, dest, tag) stream sequence number (fault runs only).
  std::uint64_t seq = 0;
};

/// Identifies one ordered message stream into a mailbox.  The destination
/// is implicit (the mailbox), so (source, tag) is the key.
struct StreamKey {
  int source;
  std::int64_t tag;
  bool operator==(const StreamKey&) const = default;
};

struct StreamKeyHash {
  std::size_t operator()(const StreamKey& key) const noexcept {
    const auto source = static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(static_cast<unsigned>(key.source)));
    const auto tag = static_cast<std::uint64_t>(key.tag);
    return static_cast<std::size_t>(
        (source << 32 | (source >> 32)) ^ tag * 0x9e3779b97f4a7c15ULL);
  }
};

template <typename Value>
using StreamMap = std::unordered_map<StreamKey, Value, StreamKeyHash>;

/// One mailbox per destination rank.  The stream maps below are only
/// touched while a fault injector is active; fault-free runs never allocate
/// them.
struct Mailbox {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Message> messages;
  /// Next sequence number to stamp on a send of each stream.
  StreamMap<std::uint64_t> next_send_seq;
  /// Sequence number the receiver consumes next per stream; anything below
  /// is a duplicate, anything above waits for the gap to fill.
  StreamMap<std::uint64_t> next_recv_seq;
  /// Sent-but-not-yet-consumed messages per stream, for receiver-driven
  /// retransmission.  Pruned as soon as a message is consumed, so the
  /// buffer never outgrows the in-flight window.
  StreamMap<std::deque<Message>> retention;
};

/// Extracts the payload from a delivered message: moves when this mailbox
/// owned the buffer exclusively, copies when it came from a multisend or a
/// fault-mode send (the retention buffer may still reference it).
Payload extract(Message&& message) {
  if (message.exclusive) return std::move(*message.data);
  return *message.data;
}

/// A message parked by the delay thread until its due time.
struct DelayedMessage {
  Clock::time_point due;
  std::uint64_t order;  ///< FIFO tie-break for equal due times
  int dest;
  Message message;
};

bool delayed_after(const DelayedMessage& a, const DelayedMessage& b) {
  if (a.due != b.due) return a.due > b.due;
  return a.order > b.order;
}

}  // namespace

class World {
 public:
  explicit World(int ranks, obs::Recorder* recorder = nullptr,
                 fault::FaultInjector* injector = nullptr,
                 Transport* transport = nullptr)
      : size_(ranks),
        mailboxes_(static_cast<std::size_t>(ranks)),
        traffic_(static_cast<std::size_t>(ranks)),
        traffic_mutexes_(static_cast<std::size_t>(ranks)),
        recorder_(recorder),
        faults_(injector != nullptr && injector->message_faults() ? injector
                                                                  : nullptr),
        transport_(transport) {
    if (transport_ != nullptr) {
      if (transport_->world_size() != ranks)
        throw std::invalid_argument(
            "vmpi: transport spans " +
            std::to_string(transport_->world_size()) + " ranks but the run " +
            "needs " + std::to_string(ranks));
      local_.assign(static_cast<std::size_t>(ranks), 0);
      for (const int r : transport_->local_ranks())
        local_[static_cast<std::size_t>(r)] = 1;
      local_rank_count_ = static_cast<int>(transport_->local_ranks().size());
      // Namespace trace flow ids by process so the per-process trace files
      // of one mesh merge with their send→recv arrows intact.
      if (transport_->process_count() > 1)
        flow_namespace_ =
            (static_cast<std::uint64_t>(transport_->process_index()) + 1)
            << 48;
    } else {
      local_rank_count_ = ranks;
    }
    // Sinks are registered up front, before the rank threads start, so
    // each thread only ever appends to its own pre-existing track.
    if (recorder_ != nullptr) {
      sinks_.reserve(static_cast<std::size_t>(ranks));
      for (int r = 0; r < ranks; ++r)
        sinks_.push_back(recorder_->track("rank " + std::to_string(r)));
    }
    if (faults_ != nullptr) {
      default_recv_options_.timeout_seconds =
          faults_->plan().recv_timeout_ms * 1e-3;
      default_recv_options_.max_retries = faults_->plan().max_retries;
    }
    if (transport_ != nullptr)
      transport_->attach(
          [this](WireMessage&& message) { on_remote(std::move(message)); });
  }

  ~World() {
    // Stop inbound remote deliveries before the mailboxes die; detach()
    // blocks until any in-flight sink call has returned.
    if (transport_ != nullptr) transport_->detach();
    {
      const std::lock_guard<std::mutex> lock(delay_mutex_);
      delay_shutdown_ = true;
    }
    delay_cv_.notify_all();
    if (delay_thread_.joinable()) delay_thread_.join();
  }

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] Transport* transport() const { return transport_; }

  [[nodiscard]] bool is_local(int rank) const {
    return transport_ == nullptr || local_[static_cast<std::size_t>(rank)];
  }

  void send(int source, int dest, std::int64_t tag, Payload data) {
    check_dest(dest);
    count_sent(source, 1, static_cast<std::int64_t>(data.size()));
    const std::uint64_t flow =
        record_send(source, dest, tag, static_cast<std::int64_t>(data.size()),
                    /*flow=*/0);
    if (!is_local(dest)) {
      transport_->send({source, dest, tag, flow, /*seq=*/0, std::move(data)});
      return;
    }
    Message message{source, tag, std::make_shared<Payload>(std::move(data)),
                    /*exclusive=*/faults_ == nullptr, flow};
    if (faults_ == nullptr) {
      deliver(dest, std::move(message));
      return;
    }
    inject(dest, std::move(message));
  }

  void multisend(int source, const std::vector<int>& dests, std::int64_t tag,
                 const Payload& data) {
    for (const int dest : dests) check_dest(dest);
    count_sent(source, static_cast<std::int64_t>(dests.size()),
               static_cast<std::int64_t>(dests.size()) *
                   static_cast<std::int64_t>(data.size()));
    // One flow id for the whole fan-out: the exporter draws one arrow per
    // destination from the shared send instant.
    std::uint64_t flow = 0;
    for (const int dest : dests)
      flow = record_send(source, dest, tag,
                         static_cast<std::int64_t>(data.size()), flow);
    std::shared_ptr<Payload> shared;  // allocated only if a local dest needs it
    for (const int dest : dests) {
      if (!is_local(dest)) {
        // Remote destinations get their own serialized copy; the shared
        // buffer cannot span processes.
        transport_->send({source, dest, tag, flow, /*seq=*/0, data});
        continue;
      }
      if (shared == nullptr) shared = std::make_shared<Payload>(data);
      Message message{source, tag, shared, /*exclusive=*/false, flow};
      if (faults_ == nullptr)
        deliver(dest, std::move(message));
      else
        inject(dest, std::move(message));
    }
  }

  Payload recv(int self, int source, std::int64_t tag) {
    // Under a fault injector every receive is transparently timeout-aware,
    // otherwise the original block-forever fast path runs.
    if (faults_ != nullptr)
      return recv(self, source, tag, default_recv_options_);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    std::unique_lock<std::mutex> lock(box.mutex);
    while (true) {
      if (std::optional<Message> message = match(box, self, source, tag)) {
        lock.unlock();
        return receive_payload(self, std::move(*message));
      }
      box.cv.wait(lock);
    }
  }

  Payload recv(int self, int source, std::int64_t tag,
               const RecvOptions& options) {
    check_options(options);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    std::unique_lock<std::mutex> lock(box.mutex);
    int attempt = 0;
    double wait_seconds = options.timeout_seconds;
    Clock::time_point deadline = Clock::now() + to_duration(wait_seconds);
    while (true) {
      if (std::optional<Message> message = match(box, self, source, tag)) {
        lock.unlock();
        return receive_payload(self, std::move(*message));
      }
      if (box.cv.wait_until(lock, deadline) != std::cv_status::timeout)
        continue;
      if (std::optional<Message> message = match(box, self, source, tag)) {
        // The message raced the timeout; take it.
        lock.unlock();
        return receive_payload(self, std::move(*message));
      }
      if (faults_ != nullptr) faults_->note_timeout_wait();
      record_fault(self, "timeout", source, self, tag);
      if (attempt >= options.max_retries)
        throw RecvTimeoutError(source, tag, attempt + 1);
      ++attempt;
      retransmit(box, lock, self, source, tag, /*any_tag=*/false, attempt);
      wait_seconds *= 2.0;
      deadline = Clock::now() + to_duration(wait_seconds);
    }
  }

  std::optional<Envelope> probe(int self) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    const std::lock_guard<std::mutex> lock(box.mutex);
    if (faults_ == nullptr) {
      if (box.messages.empty()) return std::nullopt;
      return Envelope{box.messages.front().source, box.messages.front().tag};
    }
    for (auto it = box.messages.begin(); it != box.messages.end();) {
      const StreamKey key{it->source, it->tag};
      const std::uint64_t expected = box.next_recv_seq[key];
      if (it->seq < expected) {
        discard_duplicate(box, it, self);
        continue;
      }
      if (it->seq != expected) {
        ++it;  // out of order: not consumable yet
        continue;
      }
      return Envelope{it->source, it->tag};
    }
    return std::nullopt;
  }

  std::pair<Envelope, Payload> recv_any(int self) {
    if (faults_ != nullptr) return recv_any(self, default_recv_options_);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    std::unique_lock<std::mutex> lock(box.mutex);
    box.cv.wait(lock, [&] { return !box.messages.empty(); });
    Message message = std::move(box.messages.front());
    box.messages.pop_front();
    lock.unlock();
    const Envelope envelope{message.source, message.tag};
    return {envelope, receive_payload(self, std::move(message))};
  }

  std::pair<Envelope, Payload> recv_any(int self, const RecvOptions& options) {
    check_options(options);
    Mailbox& box = mailboxes_[static_cast<std::size_t>(self)];
    std::unique_lock<std::mutex> lock(box.mutex);
    int attempt = 0;
    double wait_seconds = options.timeout_seconds;
    Clock::time_point deadline = Clock::now() + to_duration(wait_seconds);
    while (true) {
      if (std::optional<Message> message = match_any(box, self)) {
        lock.unlock();
        const Envelope envelope{message->source, message->tag};
        return {envelope, receive_payload(self, std::move(*message))};
      }
      if (box.cv.wait_until(lock, deadline) != std::cv_status::timeout)
        continue;
      if (std::optional<Message> message = match_any(box, self)) {
        lock.unlock();
        const Envelope envelope{message->source, message->tag};
        return {envelope, receive_payload(self, std::move(*message))};
      }
      if (faults_ != nullptr) faults_->note_timeout_wait();
      record_fault(self, "timeout", kAnySource, self, /*tag=*/0);
      if (attempt >= options.max_retries)
        throw RecvTimeoutError(kAnySource, /*tag=*/0, attempt + 1);
      ++attempt;
      retransmit(box, lock, self, kAnySource, /*tag=*/0, /*any_tag=*/true,
                 attempt);
      wait_seconds *= 2.0;
      deadline = Clock::now() + to_duration(wait_seconds);
    }
  }

  void barrier() {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    const std::int64_t generation = barrier_generation_;
    if (++barrier_arrived_ == local_rank_count_) {
      barrier_arrived_ = 0;
      if (transport_ != nullptr && transport_->process_count() > 1) {
        // The last local arriver performs the cross-process rendezvous.
        // Every other local rank is parked waiting for the generation
        // bump, so nothing races the released lock.
        lock.unlock();
        transport_->barrier();
        lock.lock();
      }
      ++barrier_generation_;
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lock, [&] { return barrier_generation_ != generation; });
    }
  }

  TrafficStats traffic(int rank) {
    const std::lock_guard<std::mutex> lock(
        traffic_mutexes_[static_cast<std::size_t>(rank)]);
    return traffic_[static_cast<std::size_t>(rank)];
  }

 private:
  /// Inbound envelope from a remote process, invoked on the transport's
  /// event thread.  Re-enters the exact local delivery path: under a fault
  /// injector the message passes through inject(), which stamps its stream
  /// sequence number (arrival order equals send order per stream — the
  /// transport contract), retains it for receiver-driven retransmission and
  /// applies the seeded fate — so drop/duplicate/delay chaos behaves
  /// identically whether the sender was a local thread or another process.
  void on_remote(WireMessage&& wire) {
    const int dest = wire.dest;
    Message message{wire.source, wire.tag,
                    std::make_shared<Payload>(std::move(wire.data)),
                    /*exclusive=*/faults_ == nullptr, wire.flow};
    if (faults_ == nullptr) {
      deliver(dest, std::move(message));
      return;
    }
    inject(dest, std::move(message));
  }

  void check_dest(int dest) const {
    if (dest < 0 || dest >= size_)
      throw std::out_of_range("vmpi send: bad destination rank");
  }

  static void check_options(const RecvOptions& options) {
    if (options.timeout_seconds <= 0.0)
      throw std::invalid_argument("vmpi recv: timeout must be > 0");
    if (options.max_retries < 0)
      throw std::invalid_argument("vmpi recv: max_retries must be >= 0");
  }

  void deliver(int dest, Message message) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    {
      const std::lock_guard<std::mutex> lock(box.mutex);
      box.messages.push_back(std::move(message));
    }
    box.cv.notify_all();
  }

  /// Fault-mode send path: stamps the stream sequence number, retains the
  /// message for possible retransmission, then applies the injector's fate
  /// for the original transmission (attempt 0).
  void inject(int dest, Message message) {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dest)];
    {
      const std::lock_guard<std::mutex> lock(box.mutex);
      const StreamKey key{message.source, message.tag};
      message.seq = box.next_send_seq[key]++;
      box.retention[key].push_back(message);
    }
    const fault::Fate fate = faults_->fate_of(message.source, dest, message.tag,
                                              message.seq, /*attempt=*/0);
    apply_fate(dest, std::move(message), fate, /*record=*/true);
  }

  /// Applies one transmission fate: swallow, duplicate, park at the delay
  /// thread, or deliver.  `record` is true only on the original send path,
  /// where the calling thread owns the source rank's trace track; the
  /// retransmit and delay paths pass false (counters still tick).
  void apply_fate(int dest, Message message, const fault::Fate& fate,
                  bool record) {
    if (fate.dropped) {
      faults_->note_drop();
      if (record)
        record_fault(message.source, "drop", message.source, dest,
                     message.tag);
      return;
    }
    if (fate.duplicated) {
      faults_->note_duplicate();
      if (record)
        record_fault(message.source, "duplicate", message.source, dest,
                     message.tag);
    }
    if (fate.delay_seconds > 0.0) {
      faults_->note_delay();
      if (record)
        record_fault(message.source, "delay", message.source, dest,
                     message.tag);
    }
    const int copies = fate.duplicated ? 2 : 1;
    for (int copy = 0; copy < copies; ++copy) {
      Message instance = copy + 1 < copies ? message : std::move(message);
      if (fate.delay_seconds > 0.0)
        schedule_delayed(dest, std::move(instance), fate.delay_seconds);
      else
        deliver(dest, std::move(instance));
    }
  }

  /// Removes a stale (already-consumed seq) message from the queue,
  /// counting and tracing the dedup.  Must run on rank `self`'s thread with
  /// the mailbox lock held; advances the iterator past the erased element.
  void discard_duplicate(Mailbox& box, std::deque<Message>::iterator& it,
                         int self) {
    faults_->note_dedup_discard();
    record_fault(self, "dedup", it->source, self, it->tag);
    it = box.messages.erase(it);
  }

  /// Finds the next consumable message matching (source, tag).  In fault
  /// mode a message is consumable only when its sequence number is exactly
  /// the next expected one for its stream — earlier numbers are duplicates
  /// (discarded here), later ones wait for the gap to be retransmitted.
  /// Caller holds the mailbox lock and runs on rank `self`'s thread.
  std::optional<Message> match(Mailbox& box, int self, int source,
                               std::int64_t tag) {
    if (faults_ == nullptr) {
      for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
        if (it->tag != tag) continue;
        if (source != kAnySource && it->source != source) continue;
        Message message = std::move(*it);
        box.messages.erase(it);
        return message;
      }
      return std::nullopt;
    }
    for (auto it = box.messages.begin(); it != box.messages.end();) {
      if (it->tag != tag || (source != kAnySource && it->source != source)) {
        ++it;
        continue;
      }
      const StreamKey key{it->source, it->tag};
      const std::uint64_t expected = box.next_recv_seq[key];
      if (it->seq < expected) {
        discard_duplicate(box, it, self);
        continue;
      }
      if (it->seq != expected) {
        ++it;
        continue;
      }
      Message message = std::move(*it);
      box.messages.erase(it);
      consume(box, key, expected);
      return message;
    }
    return std::nullopt;
  }

  /// match() without a (source, tag) filter: the oldest consumable message
  /// of any stream.
  std::optional<Message> match_any(Mailbox& box, int self) {
    if (faults_ == nullptr) {
      if (box.messages.empty()) return std::nullopt;
      Message message = std::move(box.messages.front());
      box.messages.pop_front();
      return message;
    }
    for (auto it = box.messages.begin(); it != box.messages.end();) {
      const StreamKey key{it->source, it->tag};
      const std::uint64_t expected = box.next_recv_seq[key];
      if (it->seq < expected) {
        discard_duplicate(box, it, self);
        continue;
      }
      if (it->seq != expected) {
        ++it;
        continue;
      }
      Message message = std::move(*it);
      box.messages.erase(it);
      consume(box, key, expected);
      return message;
    }
    return std::nullopt;
  }

  /// Advances the stream past `seq` and prunes its retention entries —
  /// exactly-once consumption is sealed here, under the mailbox lock.
  static void consume(Mailbox& box, const StreamKey& key, std::uint64_t seq) {
    box.next_recv_seq[key] = seq + 1;
    const auto it = box.retention.find(key);
    if (it == box.retention.end()) return;
    auto& retained = it->second;
    while (!retained.empty() && retained.front().seq <= seq)
      retained.pop_front();
    if (retained.empty()) box.retention.erase(it);
  }

  /// Receiver-driven recovery: redelivers the earliest unconsumed retained
  /// message of every stream the waiting receive could match.  Each
  /// retransmission passes through the injector again with the bumped
  /// attempt number, so it can itself be dropped or delayed — which is what
  /// the caller's exponential backoff is for.  Temporarily releases the
  /// mailbox lock (delivery re-acquires it).
  void retransmit(Mailbox& box, std::unique_lock<std::mutex>& lock, int self,
                  int source, std::int64_t tag, bool any_tag, int attempt) {
    if (faults_ == nullptr) return;
    std::vector<Message> pending;
    for (auto& [key, retained] : box.retention) {
      if (!any_tag && key.tag != tag) continue;
      if (source != kAnySource && key.source != source) continue;
      if (retained.empty()) continue;
      if (retained.front().seq == box.next_recv_seq[key])
        pending.push_back(retained.front());
    }
    if (pending.empty()) return;  // nothing sent yet, or already in flight
    lock.unlock();
    for (Message& message : pending) {
      faults_->note_retry();
      record_fault(self, "retry", message.source, self, message.tag);
      const fault::Fate fate = faults_->fate_of(
          message.source, self, message.tag, message.seq, attempt);
      apply_fate(self, std::move(message), fate, /*record=*/false);
    }
    lock.lock();
  }

  /// Parks a message at the delay thread until `seconds` from now.  The
  /// thread is created lazily on the first delayed message and joined in
  /// the destructor (after the rank threads, so nothing races it).
  void schedule_delayed(int dest, Message message, double seconds) {
    {
      const std::lock_guard<std::mutex> lock(delay_mutex_);
      if (!delay_thread_.joinable())
        delay_thread_ = std::thread([this] { delay_loop(); });
      delayed_.push_back({Clock::now() + to_duration(seconds), delay_order_++,
                          dest, std::move(message)});
      std::push_heap(delayed_.begin(), delayed_.end(), delayed_after);
    }
    delay_cv_.notify_one();
  }

  void delay_loop() {
    std::unique_lock<std::mutex> lock(delay_mutex_);
    while (true) {
      if (delay_shutdown_) return;  // undelivered stragglers die with us
      if (delayed_.empty()) {
        delay_cv_.wait(lock);
        continue;
      }
      const Clock::time_point due = delayed_.front().due;
      if (Clock::now() < due) {
        delay_cv_.wait_until(lock, due);
        continue;  // re-check: an earlier message or shutdown may have won
      }
      std::pop_heap(delayed_.begin(), delayed_.end(), delayed_after);
      DelayedMessage item = std::move(delayed_.back());
      delayed_.pop_back();
      lock.unlock();
      deliver(item.dest, std::move(item.message));
      lock.lock();
    }
  }

  void count_sent(int source, std::int64_t messages, std::int64_t doubles) {
    const std::lock_guard<std::mutex> lock(
        traffic_mutexes_[static_cast<std::size_t>(source)]);
    auto& t = traffic_[static_cast<std::size_t>(source)];
    t.messages_sent += messages;
    t.doubles_sent += doubles;
  }

  /// Records one send event on the source rank's track; returns the flow
  /// id to stamp on the message (reuses `flow` when nonzero, for the
  /// shared-flow multisend fan-out).
  std::uint64_t record_send(int source, int dest, std::int64_t tag,
                            std::int64_t doubles, std::uint64_t flow) {
    if (recorder_ == nullptr) return 0;
    if (flow == 0) flow = recorder_->next_flow() | flow_namespace_;
    obs::Event event;
    event.kind = obs::EventKind::kSend;
    event.start_seconds = event.end_seconds = recorder_->now();
    event.source = source;
    event.dest = dest;
    event.tag = tag;
    event.bytes = doubles * static_cast<std::int64_t>(sizeof(double));
    event.flow = flow;
    sinks_[static_cast<std::size_t>(source)]->record(std::move(event));
    return flow;
  }

  /// Records a fault/recovery event on `track`'s trace track.  The caller
  /// must be the thread owning that track (rank `track`'s body thread) —
  /// the retransmit and delay paths therefore never record.
  void record_fault(int track, const char* what, int source, int dest,
                    std::int64_t tag) {
    if (recorder_ == nullptr) return;
    obs::Event event;
    event.kind = obs::EventKind::kFault;
    event.name = what;
    event.start_seconds = event.end_seconds = recorder_->now();
    event.source = source;
    event.dest = dest;
    event.tag = tag;
    sinks_[static_cast<std::size_t>(track)]->record(std::move(event));
  }

  /// Books the receive-side counters and extracts the payload.
  Payload receive_payload(int self, Message&& message) {
    if (recorder_ != nullptr) {
      obs::Event event;
      event.kind = obs::EventKind::kRecv;
      event.start_seconds = event.end_seconds = recorder_->now();
      event.source = message.source;
      event.dest = self;
      event.tag = message.tag;
      event.bytes = static_cast<std::int64_t>(message.data->size()) *
                    static_cast<std::int64_t>(sizeof(double));
      event.flow = message.flow;
      sinks_[static_cast<std::size_t>(self)]->record(std::move(event));
    }
    Payload data = extract(std::move(message));
    const std::lock_guard<std::mutex> lock(
        traffic_mutexes_[static_cast<std::size_t>(self)]);
    auto& t = traffic_[static_cast<std::size_t>(self)];
    ++t.messages_received;
    t.doubles_received += static_cast<std::int64_t>(data.size());
    return data;
  }

  int size_;
  std::vector<Mailbox> mailboxes_;
  std::vector<TrafficStats> traffic_;
  std::vector<std::mutex> traffic_mutexes_;
  obs::Recorder* recorder_;
  std::vector<obs::TrackSink*> sinks_;
  fault::FaultInjector* faults_;
  Transport* transport_;
  std::vector<char> local_;  ///< per-rank locality (empty when no transport)
  int local_rank_count_ = 0;
  std::uint64_t flow_namespace_ = 0;  ///< high bits stamped onto flow ids
  RecvOptions default_recv_options_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::int64_t barrier_generation_ = 0;

  std::mutex delay_mutex_;
  std::condition_variable delay_cv_;
  std::vector<DelayedMessage> delayed_;  // min-heap by (due, order)
  std::uint64_t delay_order_ = 0;
  bool delay_shutdown_ = false;
  std::thread delay_thread_;
};

int RankContext::size() const { return world_.size(); }

void RankContext::send(int dest, std::int64_t tag, const Payload& data) {
  world_.send(rank_, dest, tag, data);
}

void RankContext::send(int dest, std::int64_t tag, Payload&& data) {
  world_.send(rank_, dest, tag, std::move(data));
}

void RankContext::multisend(const std::vector<int>& dests, std::int64_t tag,
                            const Payload& data) {
  world_.multisend(rank_, dests, tag, data);
}

Payload RankContext::recv(int source, std::int64_t tag) {
  return world_.recv(rank_, source, tag);
}

Payload RankContext::recv(int source, std::int64_t tag,
                          const RecvOptions& options) {
  return world_.recv(rank_, source, tag, options);
}

std::optional<Envelope> RankContext::probe() { return world_.probe(rank_); }

std::pair<Envelope, Payload> RankContext::recv_any() {
  return world_.recv_any(rank_);
}

std::pair<Envelope, Payload> RankContext::recv_any(const RecvOptions& options) {
  return world_.recv_any(rank_, options);
}

void RankContext::barrier() { world_.barrier(); }

Payload RankContext::broadcast(int root, Payload data) {
  // Internal tags live in a reserved negative band so they never collide
  // with application tags (tile ids are non-negative).
  constexpr std::int64_t kBcastTag = -1000;
  if (rank_ == root) {
    std::vector<int> dests;
    dests.reserve(static_cast<std::size_t>(size()) - 1);
    for (int dest = 0; dest < size(); ++dest) {
      if (dest != root) dests.push_back(dest);
    }
    multisend(dests, kBcastTag, data);
    return data;
  }
  return recv(root, kBcastTag);
}

Payload RankContext::allreduce_sum(Payload data) {
  constexpr std::int64_t kGatherTag = -2000;
  constexpr std::int64_t kResultTag = -3000;
  if (rank_ == 0) {
    for (int source = 1; source < size(); ++source) {
      const Payload part = recv(source, kGatherTag);
      if (part.size() != data.size())
        throw std::invalid_argument("allreduce_sum: size mismatch");
      for (std::size_t k = 0; k < data.size(); ++k) data[k] += part[k];
    }
    for (int dest = 1; dest < size(); ++dest) send(dest, kResultTag, data);
    return data;
  }
  send(0, kGatherTag, std::move(data));
  return recv(0, kResultTag);
}

TrafficStats RankContext::traffic() const { return world_.traffic(rank_); }

std::int64_t RunReport::total_messages() const {
  std::int64_t total = 0;
  for (const auto& stats : per_rank) total += stats.messages_sent;
  return total;
}

std::int64_t RunReport::total_doubles() const {
  std::int64_t total = 0;
  for (const auto& stats : per_rank) total += stats.doubles_sent;
  return total;
}

std::int64_t RunReport::total_messages_received() const {
  std::int64_t total = 0;
  for (const auto& stats : per_rank) total += stats.messages_received;
  return total;
}

std::int64_t RunReport::total_doubles_received() const {
  std::int64_t total = 0;
  for (const auto& stats : per_rank) total += stats.doubles_received;
  return total;
}

namespace {

void append_i64(std::string& out, std::int64_t value) {
  char bytes[sizeof value];
  std::memcpy(bytes, &value, sizeof value);
  out.append(bytes, sizeof value);
}

std::int64_t take_i64(const std::string& in, std::size_t& offset) {
  std::int64_t value = 0;
  if (offset + sizeof value > in.size())
    throw std::runtime_error("vmpi: truncated stats blob");
  std::memcpy(&value, in.data() + offset, sizeof value);
  offset += sizeof value;
  return value;
}

/// Serializes this process's contribution to the global RunReport: each
/// local rank's traffic counters plus the process-local fault counters.
std::string encode_stats(const std::vector<int>& ranks, World& world,
                         const fault::FaultStats& faults) {
  std::string blob;
  append_i64(blob, static_cast<std::int64_t>(ranks.size()));
  for (const int r : ranks) {
    const TrafficStats stats = world.traffic(r);
    append_i64(blob, r);
    append_i64(blob, stats.messages_sent);
    append_i64(blob, stats.doubles_sent);
    append_i64(blob, stats.messages_received);
    append_i64(blob, stats.doubles_received);
  }
  append_i64(blob, faults.drops);
  append_i64(blob, faults.duplicates);
  append_i64(blob, faults.delays);
  append_i64(blob, faults.retries);
  append_i64(blob, faults.timeout_waits);
  append_i64(blob, faults.dedup_discards);
  return blob;
}

void merge_stats(const std::string& blob, RunReport& report) {
  std::size_t offset = 0;
  const std::int64_t count = take_i64(blob, offset);
  for (std::int64_t k = 0; k < count; ++k) {
    const auto rank = static_cast<std::size_t>(take_i64(blob, offset));
    if (rank >= report.per_rank.size())
      throw std::runtime_error("vmpi: stats blob names an unknown rank");
    TrafficStats& stats = report.per_rank[rank];
    stats.messages_sent = take_i64(blob, offset);
    stats.doubles_sent = take_i64(blob, offset);
    stats.messages_received = take_i64(blob, offset);
    stats.doubles_received = take_i64(blob, offset);
  }
  report.faults.drops += take_i64(blob, offset);
  report.faults.duplicates += take_i64(blob, offset);
  report.faults.delays += take_i64(blob, offset);
  report.faults.retries += take_i64(blob, offset);
  report.faults.timeout_waits += take_i64(blob, offset);
  report.faults.dedup_discards += take_i64(blob, offset);
}

}  // namespace

RunReport run_ranks(int ranks, const std::function<void(RankContext&)>& body,
                    const RunOptions& options) {
  if (ranks < 1) throw std::invalid_argument("need at least one rank");
  Transport* transport =
      options.transport != nullptr ? options.transport : ambient_transport();
  World world(ranks, options.recorder, options.injector, transport);

  std::vector<int> local_ranks;
  if (transport != nullptr) {
    local_ranks = transport->local_ranks();
  } else {
    local_ranks.resize(static_cast<std::size_t>(ranks));
    for (int r = 0; r < ranks; ++r) local_ranks[static_cast<std::size_t>(r)] = r;
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(local_ranks.size());
  threads.reserve(local_ranks.size());
  for (std::size_t k = 0; k < local_ranks.size(); ++k) {
    const int r = local_ranks[k];
    threads.emplace_back([&world, &body, &errors, k, r] {
      try {
        RankContext ctx(world, r);
        body(ctx);
      } catch (...) {
        errors[k] = std::current_exception();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  RunReport report;
  report.per_rank.resize(static_cast<std::size_t>(ranks));
  for (const int r : local_ranks)
    report.per_rank[static_cast<std::size_t>(r)] = world.traffic(r);
  const fault::FaultStats local_faults =
      options.injector != nullptr ? options.injector->stats()
                                  : fault::FaultStats{};
  report.faults = local_faults;

  // Merge the other processes' counters so the report is global everywhere.
  // The gather doubles as the end-of-run rendezvous: it runs even when a
  // local body threw, so a symmetric failure (e.g. every rank timing out)
  // cannot leave the surviving processes stuck in the exchange.
  if (transport != nullptr && transport->process_count() > 1) {
    const std::string local_blob =
        encode_stats(local_ranks, world, local_faults);
    const std::vector<std::string> blobs = transport->gather_blobs(local_blob);
    for (std::size_t p = 0; p < blobs.size(); ++p) {
      if (p == static_cast<std::size_t>(transport->process_index())) continue;
      merge_stats(blobs[p], report);
    }
  }

  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return report;
}

RunReport run_ranks(int ranks, const std::function<void(RankContext&)>& body,
                    obs::Recorder* recorder, fault::FaultInjector* injector) {
  RunOptions options;
  options.recorder = recorder;
  options.injector = injector;
  return run_ranks(ranks, body, options);
}

}  // namespace anyblock::vmpi
