// vmpi: an MPI-style message-passing layer with threads as ranks.
//
// The paper's runs use one MPI process per node with point-to-point tile
// messages (Section II-C).  vmpi reproduces that model inside one process:
// run_ranks() spawns R threads, each receiving a RankContext with the
// familiar primitives — tagged send/recv, any-source probe/recv, barrier,
// broadcast, reduce — plus per-rank traffic counters on both the send and
// the receive side.  Sends are asynchronous (they enqueue and return, like
// MPI_Isend with an eager protocol) so the owner-computes factorizations
// cannot deadlock on send ordering; recv blocks until a matching message
// arrives.  multisend() fans one payload out to many destinations through a
// single shared buffer (no per-destination copy at send time) — the
// primitive the comm::Multicast algorithms and broadcast() build on.
//
// This is how the library validates distributions end to end: the *actual*
// message counts of a factorization run are compared against the paper's
// Eq. 1 / Eq. 2 predictions, and the numerical result against a sequential
// reference.
// Fault tolerance: run_ranks() optionally takes a fault::FaultInjector that
// perturbs every delivery (drop / duplicate / delay, per the seeded plan).
// Under an injector the transport switches to sequence-numbered at-least-once
// delivery: every (source, dest, tag) stream is numbered, receivers consume
// strictly in order (duplicates are discarded, reordered messages wait for
// the gap), and a receive that times out retransmits the missing message
// from the sender-side retention buffer under bounded exponential backoff.
// Application code is unchanged — plain recv() transparently becomes
// fault-aware — and traffic counters keep counting application-level
// messages only, so the Eq. 1/2 cross-checks hold verbatim under faults.
// Without an injector the original zero-overhead blocking paths run (one
// null-pointer check per operation).
//
// Transport seam: World is backend-agnostic.  By default every rank is a
// thread of this process (the in-process backend — the original mailbox
// fast path, bit for bit).  With a vmpi::Transport (see transport.hpp) the
// world may span OS processes: run_ranks() spawns threads only for the
// transport's local ranks, sends to remote ranks ship a framed envelope
// through the transport, and inbound envelopes re-enter the very same
// delivery path (including fault injection and dedup) at the destination
// process.  The RunReport is global either way: per-rank counters of
// remote processes are merged through the transport after the bodies join.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "vmpi/transport.hpp"

namespace anyblock::obs {
class Recorder;
}

namespace anyblock::vmpi {

/// Matches any source rank in recv().
inline constexpr int kAnySource = -1;

struct TrafficStats {
  std::int64_t messages_sent = 0;
  std::int64_t doubles_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t doubles_received = 0;
};

/// The (source, tag) header of a queued message, as returned by probe()
/// and recv_any().
struct Envelope {
  int source;
  std::int64_t tag;
};

/// Controls the timeout-aware receive variants.  The first wait lasts
/// `timeout_seconds`; every retry doubles it (bounded exponential backoff)
/// until `max_retries` retransmissions have been spent, after which
/// RecvTimeoutError escapes.
struct RecvOptions {
  double timeout_seconds = 0.2;
  int max_retries = 12;
};

/// A timeout-aware receive exhausted its retries: names the (source, tag)
/// it was waiting for and how many transmissions were attempted.
class RecvTimeoutError : public std::runtime_error {
 public:
  RecvTimeoutError(int source, std::int64_t tag, int attempts)
      : std::runtime_error("vmpi recv timed out waiting for source " +
                           std::to_string(source) + " tag " +
                           std::to_string(tag) + " after " +
                           std::to_string(attempts) + " attempt(s)"),
        source_(source),
        tag_(tag),
        attempts_(attempts) {}

  [[nodiscard]] int source() const { return source_; }
  [[nodiscard]] std::int64_t tag() const { return tag_; }
  [[nodiscard]] int attempts() const { return attempts_; }

 private:
  int source_;
  std::int64_t tag_;
  int attempts_;
};

class World;

/// Handed to each rank's body; valid only during run_ranks().
class RankContext {
 public:
  RankContext(World& world, int rank) : world_(world), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Asynchronous tagged send (copies the payload; never blocks).
  void send(int dest, std::int64_t tag, const Payload& data);
  void send(int dest, std::int64_t tag, Payload&& data);

  /// Sends the same payload to every destination, sharing one underlying
  /// buffer across all messages (the payload is copied once, not once per
  /// destination).  Counts one message per destination, like send().
  void multisend(const std::vector<int>& dests, std::int64_t tag,
                 const Payload& data);

  /// Blocks until a message with this (source, tag) arrives.  Messages from
  /// one source with equal tags are delivered in send order.  Under a fault
  /// injector this transparently becomes the timeout-aware variant with the
  /// plan's recovery parameters.
  Payload recv(int source, std::int64_t tag);

  /// Timeout-aware receive: waits up to options.timeout_seconds, then
  /// retransmits the missing message (fault runs) and doubles the wait;
  /// throws RecvTimeoutError naming (source, tag) once options.max_retries
  /// retransmissions are exhausted.
  Payload recv(int source, std::int64_t tag, const RecvOptions& options);

  /// Non-blocking: the envelope of the oldest queued message, if any.
  [[nodiscard]] std::optional<Envelope> probe();

  /// Blocks until any message arrives and delivers the oldest queued one,
  /// returning its (source, tag) alongside the payload.
  std::pair<Envelope, Payload> recv_any();

  /// Timeout-aware recv_any(); same recovery semantics as timed recv(),
  /// retransmitting across every pending stream on timeout.
  std::pair<Envelope, Payload> recv_any(const RecvOptions& options);

  /// Blocks until all ranks reach the barrier.
  void barrier();

  /// Root's payload is distributed to everyone (returns it on all ranks).
  /// Implemented over multisend: one shared buffer, not one copy per rank.
  Payload broadcast(int root, Payload data);

  /// Element-wise sum across ranks; every rank gets the total.
  Payload allreduce_sum(Payload data);

  [[nodiscard]] TrafficStats traffic() const;

 private:
  World& world_;
  int rank_;
};

/// Per-rank aggregate traffic after a run.
struct RunReport {
  std::vector<TrafficStats> per_rank;
  /// Injected-fault and recovery counters (all zero without an injector).
  fault::FaultStats faults;
  [[nodiscard]] std::int64_t total_messages() const;
  [[nodiscard]] std::int64_t total_doubles() const;
  [[nodiscard]] std::int64_t total_messages_received() const;
  [[nodiscard]] std::int64_t total_doubles_received() const;
};

/// Options for run_ranks().  `transport` selects the backend: null falls
/// back to the ambient transport (see transport.hpp), and a null ambient
/// means the in-process backend (all ranks are threads of this process).
/// With a multi-process transport, `injector` must be constructed from the
/// same FaultPlan in every process — fates are pure functions of the seed,
/// so the processes jointly replay one deterministic fault schedule.
struct RunOptions {
  obs::Recorder* recorder = nullptr;
  fault::FaultInjector* injector = nullptr;
  Transport* transport = nullptr;
};

/// Spawns one thread per *local* rank running `body` and joins them; under
/// the in-process backend every rank is local.  Exceptions thrown by a
/// local rank body are rethrown (first one wins) after all threads joined.
///
/// With a non-null `recorder`, every send/multisend/recv is recorded as an
/// obs event on a per-rank track ("rank N"), carrying source/dest/tag/byte
/// metadata plus a flow id linking each send to its matching recv — the
/// event counts equal the TrafficStats counters exactly.  Flow ids are
/// namespaced by process index, so traces from the processes of one mesh
/// merge with their send→recv arrows intact.  Injected faults and recovery
/// actions appear as separate kFault events and never add kSend/kRecv
/// events or flows.
///
/// With a non-null `injector`, deliveries run through the seeded fault plan
/// and the reliability protocol described above; the report's `faults`
/// field carries the injector's counters after the run (summed across
/// processes under a multi-process transport, like the per-rank traffic).
RunReport run_ranks(int ranks, const std::function<void(RankContext&)>& body,
                    const RunOptions& options);

/// Convenience overload preserved from the thread-ranks-only era; runs over
/// the ambient transport.
RunReport run_ranks(int ranks, const std::function<void(RankContext&)>& body,
                    obs::Recorder* recorder = nullptr,
                    fault::FaultInjector* injector = nullptr);

}  // namespace anyblock::vmpi
