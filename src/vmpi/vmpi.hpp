// vmpi: an MPI-style message-passing layer with threads as ranks.
//
// The paper's runs use one MPI process per node with point-to-point tile
// messages (Section II-C).  vmpi reproduces that model inside one process:
// run_ranks() spawns R threads, each receiving a RankContext with the
// familiar primitives — tagged send/recv, any-source probe/recv, barrier,
// broadcast, reduce — plus per-rank traffic counters on both the send and
// the receive side.  Sends are asynchronous (they enqueue and return, like
// MPI_Isend with an eager protocol) so the owner-computes factorizations
// cannot deadlock on send ordering; recv blocks until a matching message
// arrives.  multisend() fans one payload out to many destinations through a
// single shared buffer (no per-destination copy at send time) — the
// primitive the comm::Multicast algorithms and broadcast() build on.
//
// This is how the library validates distributions end to end: the *actual*
// message counts of a factorization run are compared against the paper's
// Eq. 1 / Eq. 2 predictions, and the numerical result against a sequential
// reference.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace anyblock::obs {
class Recorder;
}

namespace anyblock::vmpi {

using Payload = std::vector<double>;

/// Matches any source rank in recv().
inline constexpr int kAnySource = -1;

struct TrafficStats {
  std::int64_t messages_sent = 0;
  std::int64_t doubles_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t doubles_received = 0;
};

/// The (source, tag) header of a queued message, as returned by probe()
/// and recv_any().
struct Envelope {
  int source;
  std::int64_t tag;
};

class World;

/// Handed to each rank's body; valid only during run_ranks().
class RankContext {
 public:
  RankContext(World& world, int rank) : world_(world), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Asynchronous tagged send (copies the payload; never blocks).
  void send(int dest, std::int64_t tag, const Payload& data);
  void send(int dest, std::int64_t tag, Payload&& data);

  /// Sends the same payload to every destination, sharing one underlying
  /// buffer across all messages (the payload is copied once, not once per
  /// destination).  Counts one message per destination, like send().
  void multisend(const std::vector<int>& dests, std::int64_t tag,
                 const Payload& data);

  /// Blocks until a message with this (source, tag) arrives.  Messages from
  /// one source with equal tags are delivered in send order.
  Payload recv(int source, std::int64_t tag);

  /// Non-blocking: the envelope of the oldest queued message, if any.
  [[nodiscard]] std::optional<Envelope> probe();

  /// Blocks until any message arrives and delivers the oldest queued one,
  /// returning its (source, tag) alongside the payload.
  std::pair<Envelope, Payload> recv_any();

  /// Blocks until all ranks reach the barrier.
  void barrier();

  /// Root's payload is distributed to everyone (returns it on all ranks).
  /// Implemented over multisend: one shared buffer, not one copy per rank.
  Payload broadcast(int root, Payload data);

  /// Element-wise sum across ranks; every rank gets the total.
  Payload allreduce_sum(Payload data);

  [[nodiscard]] TrafficStats traffic() const;

 private:
  World& world_;
  int rank_;
};

/// Per-rank aggregate traffic after a run.
struct RunReport {
  std::vector<TrafficStats> per_rank;
  [[nodiscard]] std::int64_t total_messages() const;
  [[nodiscard]] std::int64_t total_doubles() const;
  [[nodiscard]] std::int64_t total_messages_received() const;
  [[nodiscard]] std::int64_t total_doubles_received() const;
};

/// Spawns `ranks` threads running `body` and joins them.  Exceptions thrown
/// by a rank body are rethrown (first one wins) after all threads joined.
///
/// With a non-null `recorder`, every send/multisend/recv is recorded as an
/// obs event on a per-rank track ("rank N"), carrying source/dest/tag/byte
/// metadata plus a flow id linking each send to its matching recv — the
/// event counts equal the TrafficStats counters exactly.
RunReport run_ranks(int ranks, const std::function<void(RankContext&)>& body,
                    obs::Recorder* recorder = nullptr);

}  // namespace anyblock::vmpi
