// One connected peer socket: frame reassembly on the read side, a bounded
// write queue with backpressure on the write side (the counterpart of
// dist-clang's connection_impl).
//
// Threading: enqueue() is called by any rank thread and blocks while the
// queue holds more than `max_queued_bytes` — that blocking IS the
// transport's backpressure, the only place a send may stall.  flush(),
// read_frames() and wants_write() run on the event-loop thread only.  The
// loop thread never blocks: it drains reads unconditionally, which is what
// makes the mutual-backpressure deadlock (two processes both stuck
// sending) impossible.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>

namespace anyblock::net {

class Connection {
 public:
  /// Takes ownership of `fd` (must already be non-blocking).
  Connection(int fd, std::size_t max_queued_bytes);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  [[nodiscard]] int fd() const { return fd_; }

  /// Queues one encoded frame for the loop thread to write.  Blocks while
  /// the queue is over its byte budget; throws std::runtime_error if the
  /// connection failed (peer gone) — a send into a dead mesh must surface,
  /// not hang.
  void enqueue(std::string frame);

  /// Writes queued bytes until EAGAIN or empty.  Returns true while bytes
  /// remain queued (caller keeps EPOLLOUT armed).
  bool flush();

  /// Reads and reassembles frames, invoking `on_frame` with each complete
  /// frame body (length prefix stripped).  Returns false on EOF or error.
  /// Throws std::runtime_error on a malformed stream.
  bool read_frames(const std::function<void(std::string_view)>& on_frame);

  [[nodiscard]] bool wants_write();

  /// True once every queued byte reached the kernel (or the connection
  /// failed).  The transport's shutdown drain polls this so a process never
  /// exits with a peer's frame still sitting in user space.
  [[nodiscard]] bool drained();

  /// Marks the connection broken and unblocks every waiting sender.
  void fail(const std::string& reason);
  [[nodiscard]] bool failed();

 private:
  int fd_;
  std::size_t max_queued_bytes_;

  std::mutex mutex_;
  std::condition_variable space_cv_;
  std::deque<std::string> write_queue_;
  std::size_t queued_bytes_ = 0;
  std::size_t front_offset_ = 0;  ///< bytes of the front frame already written
  bool failed_ = false;
  std::string fail_reason_;

  std::string read_buffer_;  ///< loop thread only
};

}  // namespace anyblock::net
