#include "net/bootstrap.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "net/socket_transport.hpp"

namespace anyblock::net {

namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

std::string env_string(const char* name) {
  const char* value = std::getenv(name);
  return value == nullptr ? std::string() : std::string(value);
}

}  // namespace

TransportSpec spec_from_env() {
  TransportSpec spec;
  const std::string backend = env_string(kEnvTransport);
  if (!backend.empty()) spec.backend = backend;
  spec.rendezvous_dir = env_string(kEnvRendezvous);
  spec.process_index = env_int(kEnvProcess, 0);
  spec.process_count = env_int(kEnvProcesses, 1);
  return spec;
}

std::string make_rendezvous_dir() {
  std::string base = env_string("TMPDIR");
  if (base.empty()) base = "/tmp";
  while (base.size() > 1 && base.back() == '/') base.pop_back();
  std::string pattern = base + "/anyblock-rdv-XXXXXX";
  if (mkdtemp(pattern.data()) == nullptr)
    throw std::runtime_error("launch: mkdtemp failed under " + base);
  return pattern;
}

std::unique_ptr<vmpi::Transport> make_transport(const TransportSpec& spec,
                                                int world_size) {
  if (spec.backend == "inproc") return nullptr;
  if (spec.backend != "socket")
    throw std::invalid_argument("unknown transport '" + spec.backend +
                                "' (expected inproc or socket)");
  if (spec.process_count > 1 && spec.rendezvous_dir.empty())
    throw std::invalid_argument(
        "socket transport needs a rendezvous directory: run under "
        "'anyblock launch', or set --rendezvous/" +
        std::string(kEnvRendezvous));
  SocketTransportConfig config;
  config.world_size = world_size;
  config.process_index = spec.process_index;
  config.process_count = spec.process_count;
  config.rendezvous_dir = spec.rendezvous_dir;
  return std::make_unique<SocketTransport>(config);
}

int launch_processes(int process_count,
                     const std::vector<std::string>& child_args,
                     std::string rendezvous_dir) {
  if (process_count < 1)
    throw std::invalid_argument("launch: process count must be positive");
  if (rendezvous_dir.empty()) rendezvous_dir = make_rendezvous_dir();

  std::vector<pid_t> children;
  children.reserve(static_cast<std::size_t>(process_count));
  for (int p = 0; p < process_count; ++p) {
    const pid_t pid = fork();
    if (pid < 0) {
      for (const pid_t child : children) kill(child, SIGTERM);
      throw std::runtime_error("launch: fork failed");
    }
    if (pid == 0) {
      setenv(kEnvTransport, "socket", 1);
      setenv(kEnvRendezvous, rendezvous_dir.c_str(), 1);
      setenv(kEnvProcess, std::to_string(p).c_str(), 1);
      setenv(kEnvProcesses, std::to_string(process_count).c_str(), 1);
      std::vector<char*> argv;
      argv.reserve(child_args.size() + 2);
      static const char* kSelf = "/proc/self/exe";
      argv.push_back(const_cast<char*>(kSelf));
      for (const std::string& arg : child_args)
        argv.push_back(const_cast<char*>(arg.c_str()));
      argv.push_back(nullptr);
      execv(kSelf, argv.data());
      perror("launch: execv");
      _exit(127);
    }
    children.push_back(pid);
  }

  int worst = 0;
  for (const pid_t child : children) {
    int status = 0;
    if (waitpid(child, &status, 0) < 0) {
      if (worst == 0) worst = 1;
      continue;
    }
    int code = 0;
    if (WIFEXITED(status))
      code = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
      code = 128 + WTERMSIG(status);
    if (code != 0 && worst == 0) worst = code;
  }
  return worst;
}

}  // namespace anyblock::net
