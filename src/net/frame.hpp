// Wire format of the socket transport: length-prefixed frames.
//
// Every frame is  [u32 length][u8 type][type-specific body] , all integers
// little-endian, `length` counting the bytes after itself.  Frame types:
//
//   kHello        u32 protocol version, i32 sending process index — first
//                 frame on every connection; the acceptor learns who dialed.
//   kData         the vmpi::WireMessage envelope: i32 source, i32 dest,
//                 i64 tag, u64 flow, u64 seq, u64 count, count doubles.
//   kBarrier      u64 generation — full-mesh barrier marker.
//   kBlob         i32 process, u64 size, bytes — gather contribution.
//   kBlobAll      u64 count, then per process u64 size + bytes — the
//                 assembled allgather result, broadcast by process 0.
//
// Encoding returns the full frame (prefix included); decode_frame takes the
// body (prefix already consumed by the connection's reassembly buffer) and
// throws std::runtime_error on malformed input — a protocol error, never a
// recoverable condition.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "vmpi/transport.hpp"

namespace anyblock::net {

inline constexpr std::uint32_t kProtocolVersion = 1;

/// Hard cap on one frame's body; a length above this is treated as stream
/// corruption.  Generous: a 128 MiB tile payload is ~4096x4096 doubles.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 27;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kData = 2,
  kBarrier = 3,
  kBlob = 4,
  kBlobAll = 5,
};

std::string encode_hello(int process);
std::string encode_data(const vmpi::WireMessage& message);
std::string encode_barrier(std::uint64_t generation);
std::string encode_blob(int process, std::string_view bytes);
std::string encode_blob_all(const std::vector<std::string>& blobs);

/// One decoded frame; the fields populated depend on `type`.
struct Frame {
  FrameType type = FrameType::kHello;
  int process = -1;                ///< kHello, kBlob
  std::uint64_t generation = 0;    ///< kBarrier
  vmpi::WireMessage message;       ///< kData
  std::string blob;                ///< kBlob
  std::vector<std::string> blobs;  ///< kBlobAll
};

/// Decodes a frame body (without the u32 length prefix).
Frame decode_frame(std::string_view body);

}  // namespace anyblock::net
