// vmpi::Transport over a full mesh of TCP connections — the real-sockets
// backend (DESIGN.md §10).
//
// Mesh bring-up: every process binds an ephemeral port and publishes it via
// net::rendezvous, then dials every lower-indexed process and accepts one
// connection from every higher-indexed one; the first frame on each
// connection is a kHello naming the dialer.  After the handshake all
// sockets go non-blocking and a single epoll loop thread owns them.
//
// Data path: rank threads encode kData frames and enqueue them on the
// destination process's connection (blocking only on that connection's
// byte budget — backpressure), then poke the loop thread, which writes.
// Inbound frames are decoded on the loop thread and handed to the attached
// sink; per (source, dest, tag) order is preserved because each ordered
// pair of processes shares exactly one FIFO stream.
//
// Collectives: barrier() sends a generation-stamped marker to every peer
// and waits for everyone's marker — connection FIFO then guarantees all
// pre-barrier sends have reached their sinks.  gather_blobs() funnels
// through process 0 (kBlob up, kBlobAll down).
//
// A vanished peer fails its connection, records a reason, and wakes every
// blocked collective; the error surfaces as std::runtime_error from the
// next send/barrier/gather instead of a hang.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "vmpi/transport.hpp"

namespace anyblock::net {

struct SocketTransportConfig {
  int world_size = 0;     ///< total ranks across the mesh
  int process_index = 0;  ///< this process, in [0, process_count)
  int process_count = 1;
  std::string rendezvous_dir;  ///< required when process_count > 1
  std::string host = "127.0.0.1";
  double connect_timeout_seconds = 30.0;
  std::size_t max_queued_bytes = std::size_t{8} << 20;  ///< per connection
};

/// The contiguous block of ranks process `process` hosts: base = W/P ranks
/// each, the first W%P processes taking one extra.  Shared with the
/// launcher so every process derives the same placement independently.
std::vector<int> ranks_of_process(int world_size, int process_count,
                                  int process);

class SocketTransport final : public vmpi::Transport {
 public:
  /// Performs the full rendezvous + mesh handshake; blocks until every
  /// peer is connected or the timeout expires (std::runtime_error).
  explicit SocketTransport(const SocketTransportConfig& config);
  ~SocketTransport() override;

  [[nodiscard]] int world_size() const override { return config_.world_size; }
  [[nodiscard]] int process_index() const override {
    return config_.process_index;
  }
  [[nodiscard]] int process_count() const override {
    return config_.process_count;
  }
  [[nodiscard]] const std::vector<int>& local_ranks() const override {
    return local_ranks_;
  }
  [[nodiscard]] bool is_local(int rank) const override {
    return local_[static_cast<std::size_t>(rank)] != 0;
  }

  void send(vmpi::WireMessage message) override;
  void attach(Sink sink) override;
  void detach() override;
  void barrier() override;
  std::vector<std::string> gather_blobs(const std::string& local) override;

 private:
  struct Peer {
    std::unique_ptr<Connection> connection;  ///< null for self
    bool write_armed = false;                ///< loop thread only
  };

  [[nodiscard]] int rank_to_process(int rank) const;
  void adopt_connection(int process, int fd);
  void post(int process, std::string frame);

  // Loop-thread handlers.
  void on_event(int process, std::uint32_t events);
  void on_wake();
  void dispatch(Frame&& frame);
  void deliver(vmpi::WireMessage&& message);
  void peer_lost(int process, const std::string& reason);

  SocketTransportConfig config_;
  std::vector<int> local_ranks_;
  std::vector<char> local_;

  EventLoop loop_;
  std::thread loop_thread_;
  std::vector<Peer> peers_;

  std::mutex sink_mutex_;
  Sink sink_;
  std::deque<vmpi::WireMessage> pending_;  ///< arrivals while detached

  std::uint64_t barrier_generation_ = 0;  ///< callers are serialized

  std::mutex mutex_;  ///< collective state below
  std::condition_variable cv_;
  std::map<std::uint64_t, int> barrier_arrivals_;
  std::vector<std::deque<std::string>> blob_queues_;   ///< process 0 only
  std::deque<std::vector<std::string>> blob_results_;  ///< processes != 0
  std::string dead_reason_;  ///< non-empty once any peer vanished
};

}  // namespace anyblock::net
