#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "net/rendezvous.hpp"

namespace anyblock::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), "net: " + what);
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

void set_nodelay(int fd) {
  const int one = 1;
  // Barrier markers and small envelopes must not sit in Nagle's buffer.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

sockaddr_in make_address(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1)
    throw std::runtime_error("net: bad host address: " + host);
  return address;
}

void write_all(int fd, const std::string& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("handshake write");
    }
    done += static_cast<std::size_t>(n);
  }
}

void read_exact(int fd, char* out, std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    const ssize_t n = read(fd, out + done, count - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("handshake read");
    }
    if (n == 0)
      throw std::runtime_error("net: peer closed during handshake");
    done += static_cast<std::size_t>(n);
  }
}

/// Reads one blocking frame and returns the hello's process index.
int read_hello(int fd) {
  std::uint32_t length = 0;
  read_exact(fd, reinterpret_cast<char*>(&length), sizeof length);
  if (length == 0 || length > kMaxFrameBytes)
    throw std::runtime_error("net: malformed hello frame");
  std::string body(length, '\0');
  read_exact(fd, body.data(), length);
  const Frame frame = decode_frame(body);
  if (frame.type != FrameType::kHello)
    throw std::runtime_error("net: expected hello, got frame type " +
                             std::to_string(static_cast<int>(frame.type)));
  return frame.process;
}

int dial(const Endpoint& endpoint, Clock::time_point deadline) {
  const sockaddr_in address = make_address(endpoint.host, endpoint.port);
  while (true) {
    const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    if (connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof address) == 0)
      return fd;
    const int saved = errno;
    close(fd);
    // The peer published its endpoint after listen(), so a refusal is a
    // transient (stale file from a previous run, slow loopback) — retry.
    if (saved != ECONNREFUSED && saved != EINTR && saved != ETIMEDOUT) {
      errno = saved;
      throw_errno("connect");
    }
    if (Clock::now() >= deadline)
      throw std::runtime_error("net: connect timed out dialing " +
                               endpoint.host + ":" +
                               std::to_string(endpoint.port));
    struct timespec nap {0, 5 * 1000 * 1000};
    nanosleep(&nap, nullptr);
  }
}

int accept_one(int listen_fd, Clock::time_point deadline) {
  while (true) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0)
      throw std::runtime_error("net: timed out waiting for peers to connect");
    pollfd waiter{listen_fd, POLLIN, 0};
    const int ready =
        poll(&waiter, 1, static_cast<int>(std::min<long long>(
                             remaining.count(), 1000)));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll(listen)");
    }
    if (ready == 0) continue;
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept");
    }
    return fd;
  }
}

}  // namespace

std::vector<int> ranks_of_process(int world_size, int process_count,
                                  int process) {
  const int base = world_size / process_count;
  const int extra = world_size % process_count;
  const int begin = process * base + std::min(process, extra);
  const int count = base + (process < extra ? 1 : 0);
  std::vector<int> ranks;
  ranks.reserve(static_cast<std::size_t>(count));
  for (int rank = begin; rank < begin + count; ++rank) ranks.push_back(rank);
  return ranks;
}

int SocketTransport::rank_to_process(int rank) const {
  const int base = config_.world_size / config_.process_count;
  const int extra = config_.world_size % config_.process_count;
  const int split = extra * (base + 1);
  if (rank < split) return rank / (base + 1);
  return extra + (rank - split) / base;
}

SocketTransport::SocketTransport(const SocketTransportConfig& config)
    : config_(config) {
  if (config_.world_size < 1)
    throw std::invalid_argument("net: world_size must be positive");
  if (config_.process_count < 1 ||
      config_.process_count > config_.world_size)
    throw std::invalid_argument(
        "net: process_count must be in [1, world_size] — every process "
        "needs at least one rank");
  if (config_.process_index < 0 ||
      config_.process_index >= config_.process_count)
    throw std::invalid_argument("net: process_index out of range");

  local_ranks_ = ranks_of_process(config_.world_size, config_.process_count,
                                  config_.process_index);
  local_.assign(static_cast<std::size_t>(config_.world_size), 0);
  for (const int rank : local_ranks_)
    local_[static_cast<std::size_t>(rank)] = 1;
  peers_.resize(static_cast<std::size_t>(config_.process_count));
  blob_queues_.resize(static_cast<std::size_t>(config_.process_count));

  if (config_.process_count == 1) return;  // mesh of one: no sockets

  if (config_.rendezvous_dir.empty())
    throw std::invalid_argument(
        "net: socket transport needs a rendezvous directory");

  const auto deadline =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(config_.connect_timeout_seconds));

  const int listen_fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) throw_errno("socket(listen)");
  try {
    const int one = 1;
    setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in address = make_address(config_.host, 0);
    if (bind(listen_fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof address) != 0)
      throw_errno("bind");
    if (listen(listen_fd, config_.process_count) != 0) throw_errno("listen");
    socklen_t address_size = sizeof address;
    if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&address),
                    &address_size) != 0)
      throw_errno("getsockname");

    publish_endpoint(config_.rendezvous_dir, config_.process_index,
                     {config_.host, ntohs(address.sin_port)});
    const std::vector<Endpoint> endpoints =
        await_endpoints(config_.rendezvous_dir, config_.process_count,
                        config_.connect_timeout_seconds);

    // Dial every lower-indexed process and introduce ourselves...
    for (int p = 0; p < config_.process_index; ++p) {
      const int fd = dial(endpoints[static_cast<std::size_t>(p)], deadline);
      write_all(fd, encode_hello(config_.process_index));
      adopt_connection(p, fd);
    }
    // ...and accept one connection from every higher-indexed one.
    for (int n = config_.process_index + 1; n < config_.process_count; ++n) {
      const int fd = accept_one(listen_fd, deadline);
      const int who = read_hello(fd);
      if (who <= config_.process_index || who >= config_.process_count) {
        close(fd);
        throw std::runtime_error("net: unexpected hello from process " +
                                 std::to_string(who));
      }
      adopt_connection(who, fd);
    }
  } catch (...) {
    close(listen_fd);
    throw;
  }
  close(listen_fd);

  for (int p = 0; p < config_.process_count; ++p) {
    Peer& peer = peers_[static_cast<std::size_t>(p)];
    if (!peer.connection) continue;
    set_nonblocking(peer.connection->fd());
    loop_.add(peer.connection->fd(), EPOLLIN,
              [this, p](std::uint32_t events) { on_event(p, events); });
  }
  loop_.set_wake_handler([this] { on_wake(); });
  loop_thread_ = std::thread([this] { loop_.run(); });
}

SocketTransport::~SocketTransport() {
  // Drain queued frames first: gather_blobs() returns on process 0 as soon
  // as its kBlobAll broadcast is *queued*, so exiting before the loop
  // thread writes it would make a peer's blocked gather see EOF instead.
  if (loop_thread_.joinable()) {
    const auto deadline = Clock::now() + std::chrono::seconds(5);
    while (Clock::now() < deadline) {
      bool pending = false;
      for (Peer& peer : peers_)
        if (peer.connection && !peer.connection->drained()) pending = true;
      if (!pending) break;
      loop_.wake();
      struct timespec nap {0, 1 * 1000 * 1000};
      nanosleep(&nap, nullptr);
    }
  }
  // Unblock any sender stuck on backpressure before stopping the writer.
  for (Peer& peer : peers_)
    if (peer.connection) peer.connection->fail("transport shut down");
  if (loop_thread_.joinable()) {
    loop_.stop();
    loop_thread_.join();
  }
}

void SocketTransport::adopt_connection(int process, int fd) {
  Peer& peer = peers_[static_cast<std::size_t>(process)];
  if (peer.connection) {
    close(fd);
    throw std::runtime_error("net: duplicate connection from process " +
                             std::to_string(process));
  }
  set_nodelay(fd);
  peer.connection =
      std::make_unique<Connection>(fd, config_.max_queued_bytes);
}

void SocketTransport::post(int process, std::string frame) {
  Connection* connection =
      peers_[static_cast<std::size_t>(process)].connection.get();
  if (connection == nullptr)
    throw std::logic_error("net: no connection to process " +
                           std::to_string(process));
  connection->enqueue(std::move(frame));
  loop_.wake();
}

void SocketTransport::send(vmpi::WireMessage message) {
  const int dest_process = rank_to_process(message.dest);
  if (dest_process == config_.process_index) {
    deliver(std::move(message));  // defensive; World routes local sends itself
    return;
  }
  post(dest_process, encode_data(message));
}

void SocketTransport::attach(Sink sink) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = std::move(sink);
  while (!pending_.empty()) {
    sink_(std::move(pending_.front()));
    pending_.pop_front();
  }
}

void SocketTransport::detach() {
  // Taking the mutex waits out any in-flight sink call on the loop thread.
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = nullptr;
}

void SocketTransport::deliver(vmpi::WireMessage&& message) {
  const std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_)
    sink_(std::move(message));
  else
    pending_.push_back(std::move(message));
}

void SocketTransport::barrier() {
  if (config_.process_count == 1) return;
  const std::uint64_t generation = ++barrier_generation_;
  const std::string marker = encode_barrier(generation);
  for (int p = 0; p < config_.process_count; ++p)
    if (p != config_.process_index) post(p, marker);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] {
    return !dead_reason_.empty() ||
           barrier_arrivals_[generation] == config_.process_count - 1;
  });
  if (barrier_arrivals_[generation] != config_.process_count - 1)
    throw std::runtime_error("net: barrier failed: " + dead_reason_);
  barrier_arrivals_.erase(generation);
}

std::vector<std::string> SocketTransport::gather_blobs(
    const std::string& local) {
  if (config_.process_count == 1) return {local};
  if (config_.process_index == 0) {
    std::vector<std::string> all(
        static_cast<std::size_t>(config_.process_count));
    all[0] = local;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      for (int p = 1; p < config_.process_count; ++p) {
        auto& queue = blob_queues_[static_cast<std::size_t>(p)];
        cv_.wait(lock, [&] { return !dead_reason_.empty() || !queue.empty(); });
        if (queue.empty())
          throw std::runtime_error("net: gather failed: " + dead_reason_);
        all[static_cast<std::size_t>(p)] = std::move(queue.front());
        queue.pop_front();
      }
    }
    const std::string assembled = encode_blob_all(all);
    for (int p = 1; p < config_.process_count; ++p) post(p, assembled);
    return all;
  }
  post(0, encode_blob(config_.process_index, local));
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock,
           [&] { return !dead_reason_.empty() || !blob_results_.empty(); });
  if (blob_results_.empty())
    throw std::runtime_error("net: gather failed: " + dead_reason_);
  std::vector<std::string> result = std::move(blob_results_.front());
  blob_results_.pop_front();
  return result;
}

void SocketTransport::on_event(int process, std::uint32_t events) {
  Peer& peer = peers_[static_cast<std::size_t>(process)];
  if (!peer.connection || peer.connection->failed()) return;
  if (events & EPOLLOUT) {
    if (!peer.connection->flush() && peer.write_armed) {
      peer.write_armed = false;
      loop_.modify(peer.connection->fd(), EPOLLIN);
    }
    if (peer.connection->failed()) {
      peer_lost(process, "write to peer process " + std::to_string(process) +
                             " failed");
      return;
    }
  }
  if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
    bool alive = false;
    try {
      alive = peer.connection->read_frames(
          [&](std::string_view body) { dispatch(decode_frame(body)); });
    } catch (const std::exception& error) {
      peer_lost(process, error.what());
      return;
    }
    if (!alive)
      peer_lost(process, "peer process " + std::to_string(process) +
                             " disconnected");
  }
}

void SocketTransport::on_wake() {
  for (int p = 0; p < config_.process_count; ++p) {
    Peer& peer = peers_[static_cast<std::size_t>(p)];
    if (!peer.connection || peer.connection->failed()) continue;
    if (peer.connection->flush()) {
      if (!peer.write_armed) {
        peer.write_armed = true;
        loop_.modify(peer.connection->fd(), EPOLLIN | EPOLLOUT);
      }
    } else if (peer.connection->failed()) {
      peer_lost(p, "write to peer process " + std::to_string(p) + " failed");
    }
  }
}

void SocketTransport::dispatch(Frame&& frame) {
  switch (frame.type) {
    case FrameType::kData:
      deliver(std::move(frame.message));
      return;
    case FrameType::kBarrier: {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++barrier_arrivals_[frame.generation];
      break;
    }
    case FrameType::kBlob: {
      const std::lock_guard<std::mutex> lock(mutex_);
      blob_queues_[static_cast<std::size_t>(frame.process)].push_back(
          std::move(frame.blob));
      break;
    }
    case FrameType::kBlobAll: {
      const std::lock_guard<std::mutex> lock(mutex_);
      blob_results_.push_back(std::move(frame.blobs));
      break;
    }
    case FrameType::kHello:
      throw std::runtime_error("net: unexpected mid-stream hello");
  }
  cv_.notify_all();
}

void SocketTransport::peer_lost(int process, const std::string& reason) {
  Peer& peer = peers_[static_cast<std::size_t>(process)];
  if (peer.connection) {
    loop_.remove(peer.connection->fd());
    peer.connection->fail(reason);
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (dead_reason_.empty()) dead_reason_ = reason;
  }
  cv_.notify_all();
}

}  // namespace anyblock::net
