// One-host rendezvous through a shared directory.
//
// Every process of a mesh binds an ephemeral port, then publishes
// "host port\n" atomically as  <dir>/endpoint.<process>  (write to a temp
// name, rename into place).  await_all() polls the directory until all
// `processes` files exist and parse — no fixed ports, no race, no
// coordinator.  The launcher (anyblock launch) creates the directory and
// hands it to the children via ANYBLOCK_RENDEZVOUS.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace anyblock::net {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Creates `dir` if missing and publishes this process's endpoint.
void publish_endpoint(const std::string& dir, int process,
                      const Endpoint& endpoint);

/// Waits until every process's endpoint is published; throws
/// std::runtime_error after `timeout_seconds` naming the missing ones.
std::vector<Endpoint> await_endpoints(const std::string& dir, int processes,
                                      double timeout_seconds);

}  // namespace anyblock::net
