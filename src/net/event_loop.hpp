// A minimal epoll event loop, in the shape of dist-clang's
// epoll_event_loop: one dedicated thread multiplexing every connection of
// the process plus an eventfd wakeup channel for cross-thread pokes.
//
// Threading contract: add()/modify()/remove() and the registered callbacks
// run on the loop thread only (registration before run() starts is also
// allowed — nothing else is looking yet).  wake() and stop() are safe from
// any thread; a wake() invokes the wake handler on the loop thread, which
// is how rank threads ask the loop to flush freshly queued writes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>

namespace anyblock::net {

class EventLoop {
 public:
  /// `events` is the epoll readiness mask (EPOLLIN | EPOLLOUT | ...).
  using Callback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void add(int fd, std::uint32_t events, Callback callback);
  void modify(int fd, std::uint32_t events);
  void remove(int fd);

  /// Runs until stop(); call from the dedicated loop thread.
  void run();
  /// Asks run() to return; safe from any thread, idempotent.
  void stop();
  /// Pokes the loop thread; the wake handler runs once per drain.
  void wake();
  void set_wake_handler(std::function<void()> handler) {
    wake_handler_ = std::move(handler);
  }

 private:
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::function<void()> wake_handler_;
  std::unordered_map<int, Callback> callbacks_;
};

}  // namespace anyblock::net
