#include "net/frame.hpp"

#include <cstring>
#include <stdexcept>

namespace anyblock::net {

namespace {

// The hosts this targets are little-endian (x86-64, aarch64); memcpy of the
// native representation is the wire encoding.  A mixed-endian mesh would
// need byte swaps here and nowhere else.
template <typename T>
void append(std::string& out, T value) {
  char bytes[sizeof value];
  std::memcpy(bytes, &value, sizeof value);
  out.append(bytes, sizeof value);
}

template <typename T>
T take(std::string_view body, std::size_t& offset) {
  T value;
  if (offset + sizeof value > body.size())
    throw std::runtime_error("net: truncated frame");
  std::memcpy(&value, body.data() + offset, sizeof value);
  offset += sizeof value;
  return value;
}

/// Opens a frame of `type`, reserving the length prefix; seal() backpatches
/// the length once the body is complete.
std::string open_frame(FrameType type) {
  std::string frame;
  append<std::uint32_t>(frame, 0);
  append<std::uint8_t>(frame, static_cast<std::uint8_t>(type));
  return frame;
}

std::string seal(std::string frame) {
  const auto length =
      static_cast<std::uint32_t>(frame.size() - sizeof(std::uint32_t));
  std::memcpy(frame.data(), &length, sizeof length);
  return frame;
}

}  // namespace

std::string encode_hello(int process) {
  std::string frame = open_frame(FrameType::kHello);
  append<std::uint32_t>(frame, kProtocolVersion);
  append<std::int32_t>(frame, process);
  return seal(std::move(frame));
}

std::string encode_data(const vmpi::WireMessage& message) {
  std::string frame = open_frame(FrameType::kData);
  frame.reserve(frame.size() + 40 + message.data.size() * sizeof(double));
  append<std::int32_t>(frame, message.source);
  append<std::int32_t>(frame, message.dest);
  append<std::int64_t>(frame, message.tag);
  append<std::uint64_t>(frame, message.flow);
  append<std::uint64_t>(frame, message.seq);
  append<std::uint64_t>(frame, message.data.size());
  frame.append(reinterpret_cast<const char*>(message.data.data()),
               message.data.size() * sizeof(double));
  return seal(std::move(frame));
}

std::string encode_barrier(std::uint64_t generation) {
  std::string frame = open_frame(FrameType::kBarrier);
  append<std::uint64_t>(frame, generation);
  return seal(std::move(frame));
}

std::string encode_blob(int process, std::string_view bytes) {
  std::string frame = open_frame(FrameType::kBlob);
  append<std::int32_t>(frame, process);
  append<std::uint64_t>(frame, bytes.size());
  frame.append(bytes);
  return seal(std::move(frame));
}

std::string encode_blob_all(const std::vector<std::string>& blobs) {
  std::string frame = open_frame(FrameType::kBlobAll);
  append<std::uint64_t>(frame, blobs.size());
  for (const std::string& blob : blobs) {
    append<std::uint64_t>(frame, blob.size());
    frame.append(blob);
  }
  return seal(std::move(frame));
}

Frame decode_frame(std::string_view body) {
  std::size_t offset = 0;
  Frame frame;
  frame.type = static_cast<FrameType>(take<std::uint8_t>(body, offset));
  switch (frame.type) {
    case FrameType::kHello: {
      const auto version = take<std::uint32_t>(body, offset);
      if (version != kProtocolVersion)
        throw std::runtime_error("net: peer speaks protocol version " +
                                 std::to_string(version) + ", expected " +
                                 std::to_string(kProtocolVersion));
      frame.process = take<std::int32_t>(body, offset);
      return frame;
    }
    case FrameType::kData: {
      frame.message.source = take<std::int32_t>(body, offset);
      frame.message.dest = take<std::int32_t>(body, offset);
      frame.message.tag = take<std::int64_t>(body, offset);
      frame.message.flow = take<std::uint64_t>(body, offset);
      frame.message.seq = take<std::uint64_t>(body, offset);
      const auto count = take<std::uint64_t>(body, offset);
      // Divide rather than multiply: a hostile count must not overflow.
      if (count > (body.size() - offset) / sizeof(double))
        throw std::runtime_error("net: truncated data frame payload");
      frame.message.data.resize(count);
      std::memcpy(frame.message.data.data(), body.data() + offset,
                  count * sizeof(double));
      return frame;
    }
    case FrameType::kBarrier:
      frame.generation = take<std::uint64_t>(body, offset);
      return frame;
    case FrameType::kBlob: {
      frame.process = take<std::int32_t>(body, offset);
      const auto size = take<std::uint64_t>(body, offset);
      if (size > body.size() - offset)
        throw std::runtime_error("net: truncated blob frame");
      frame.blob.assign(body.data() + offset, size);
      return frame;
    }
    case FrameType::kBlobAll: {
      const auto count = take<std::uint64_t>(body, offset);
      frame.blobs.reserve(count);
      for (std::uint64_t k = 0; k < count; ++k) {
        const auto size = take<std::uint64_t>(body, offset);
        if (size > body.size() - offset)
          throw std::runtime_error("net: truncated blob-all frame");
        frame.blobs.emplace_back(body.data() + offset, size);
        offset += size;
      }
      return frame;
    }
  }
  throw std::runtime_error("net: unknown frame type " +
                           std::to_string(static_cast<int>(frame.type)));
}

}  // namespace anyblock::net
