#include "net/rendezvous.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

namespace anyblock::net {

namespace {

std::string endpoint_path(const std::string& dir, int process) {
  return dir + "/endpoint." + std::to_string(process);
}

bool try_read_endpoint(const std::string& path, Endpoint& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string host;
  unsigned port = 0;
  if (!(in >> host >> port) || host.empty() || port == 0 || port > 65535)
    return false;
  out.host = host;
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

}  // namespace

void publish_endpoint(const std::string& dir, int process,
                      const Endpoint& endpoint) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string final_path = endpoint_path(dir, process);
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out)
      throw std::runtime_error("rendezvous: cannot write " + tmp_path);
    out << endpoint.host << ' ' << endpoint.port << '\n';
  }
  // rename() is atomic within a filesystem: readers see the whole file or
  // no file, never a partial write.
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0)
    throw std::runtime_error("rendezvous: cannot publish " + final_path);
}

std::vector<Endpoint> await_endpoints(const std::string& dir, int processes,
                                      double timeout_seconds) {
  std::vector<Endpoint> endpoints(static_cast<std::size_t>(processes));
  std::vector<char> seen(static_cast<std::size_t>(processes), 0);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  int remaining = processes;
  while (true) {
    for (int p = 0; p < processes; ++p) {
      const auto idx = static_cast<std::size_t>(p);
      if (seen[idx]) continue;
      if (try_read_endpoint(endpoint_path(dir, p), endpoints[idx])) {
        seen[idx] = 1;
        --remaining;
      }
    }
    if (remaining == 0) return endpoints;
    if (std::chrono::steady_clock::now() >= deadline) {
      std::ostringstream message;
      message << "rendezvous: timed out after " << timeout_seconds
              << "s waiting for";
      for (int p = 0; p < processes; ++p)
        if (!seen[static_cast<std::size_t>(p)])
          message << ' ' << endpoint_path(dir, p);
      throw std::runtime_error(message.str());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace anyblock::net
