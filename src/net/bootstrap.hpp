// Choosing and building a transport at program start.
//
// The CLI and benches share this: a TransportSpec comes from the
// environment (`anyblock launch` sets ANYBLOCK_* for its children) with
// command-line flags layered on top, and make_transport() turns it into a
// backend — nullptr meaning the in-process default.  launch_processes() is
// the single-host launcher behind `anyblock launch --ranks N`: it forks K
// copies of this binary, wires them to one rendezvous directory, and
// reaps them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "vmpi/transport.hpp"

namespace anyblock::net {

struct TransportSpec {
  std::string backend = "inproc";  ///< "inproc" or "socket"
  std::string rendezvous_dir;
  int process_index = 0;
  int process_count = 1;
};

/// Environment variables the launcher sets for its children.
inline constexpr const char* kEnvTransport = "ANYBLOCK_TRANSPORT";
inline constexpr const char* kEnvRendezvous = "ANYBLOCK_RENDEZVOUS";
inline constexpr const char* kEnvProcess = "ANYBLOCK_PROC";
inline constexpr const char* kEnvProcesses = "ANYBLOCK_PROCS";

/// Reads the ANYBLOCK_* variables; unset ones keep the defaults above.
TransportSpec spec_from_env();

/// Creates a fresh `anyblock-rdv-XXXXXX` rendezvous directory under
/// $TMPDIR (falling back to /tmp when unset or empty) and returns its
/// path.  Throws std::runtime_error when the directory cannot be made.
std::string make_rendezvous_dir();

/// Builds the backend for `spec`.  Returns null for "inproc" (vmpi's
/// zero-overhead thread path needs no transport object).  Throws
/// std::invalid_argument for an unknown backend or for "socket" without a
/// rendezvous directory, with a hint to use `anyblock launch`.
std::unique_ptr<vmpi::Transport> make_transport(const TransportSpec& spec,
                                                int world_size);

/// Forks `process_count` copies of /proc/self/exe running `child_args`
/// (argv without the program name), each with ANYBLOCK_* set to the socket
/// backend and its slot in a fresh (or given) rendezvous directory.
/// Returns the first non-zero child exit status, else 0.
int launch_processes(int process_count, const std::vector<std::string>& child_args,
                     std::string rendezvous_dir = {});

}  // namespace anyblock::net
