#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <system_error>

namespace anyblock::net {

namespace {
[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    close(epoll_fd_);
    throw_errno("eventfd");
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) != 0) {
    close(wake_fd_);
    close(epoll_fd_);
    throw_errno("epoll_ctl(wake)");
  }
}

EventLoop::~EventLoop() {
  close(wake_fd_);
  close(epoll_fd_);
}

void EventLoop::add(int fd, std::uint32_t events, Callback callback) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0)
    throw_errno("epoll_ctl(add)");
  callbacks_[fd] = std::move(callback);
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0)
    throw_errno("epoll_ctl(mod)");
}

void EventLoop::remove(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  callbacks_.erase(fd);
}

void EventLoop::run() {
  std::array<epoll_event, 64> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n =
        epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                   /*timeout=*/-1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("epoll_wait");
    }
    bool woken = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t drained = 0;
        while (read(wake_fd_, &drained, sizeof drained) > 0) {
        }
        woken = true;
        continue;
      }
      const auto it = callbacks_.find(fd);
      // A callback earlier in this batch may have removed the fd.
      if (it == callbacks_.end()) continue;
      it->second(events[static_cast<std::size_t>(i)].events);
    }
    if (woken && wake_handler_) wake_handler_();
  }
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; ignore short writes.
  [[maybe_unused]] const ssize_t rc = write(wake_fd_, &one, sizeof one);
}

}  // namespace anyblock::net
