#include "net/connection.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "net/frame.hpp"

namespace anyblock::net {

Connection::Connection(int fd, std::size_t max_queued_bytes)
    : fd_(fd), max_queued_bytes_(max_queued_bytes) {}

Connection::~Connection() {
  if (fd_ >= 0) close(fd_);
}

void Connection::enqueue(std::string frame) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock,
                 [&] { return failed_ || queued_bytes_ < max_queued_bytes_; });
  if (failed_)
    throw std::runtime_error("net: send on failed connection: " +
                             fail_reason_);
  queued_bytes_ += frame.size();
  write_queue_.push_back(std::move(frame));
}

bool Connection::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!write_queue_.empty()) {
    const std::string& front = write_queue_.front();
    const ssize_t written = write(fd_, front.data() + front_offset_,
                                  front.size() - front_offset_);
    if (written < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      failed_ = true;
      fail_reason_ = std::strerror(errno);
      write_queue_.clear();
      queued_bytes_ = 0;
      space_cv_.notify_all();
      return false;
    }
    front_offset_ += static_cast<std::size_t>(written);
    queued_bytes_ -= static_cast<std::size_t>(written);
    if (front_offset_ == front.size()) {
      write_queue_.pop_front();
      front_offset_ = 0;
    }
  }
  space_cv_.notify_all();
  return false;
}

bool Connection::read_frames(
    const std::function<void(std::string_view)>& on_frame) {
  char chunk[64 * 1024];
  while (true) {
    const ssize_t got = read(fd_, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF
    read_buffer_.append(chunk, static_cast<std::size_t>(got));
  }
  std::size_t consumed = 0;
  while (read_buffer_.size() - consumed >= sizeof(std::uint32_t)) {
    std::uint32_t length = 0;
    std::memcpy(&length, read_buffer_.data() + consumed, sizeof length);
    if (length > kMaxFrameBytes)
      throw std::runtime_error("net: oversized frame (" +
                               std::to_string(length) + " bytes)");
    if (read_buffer_.size() - consumed < sizeof length + length) break;
    on_frame(std::string_view(read_buffer_.data() + consumed + sizeof length,
                              length));
    consumed += sizeof length + length;
  }
  if (consumed > 0) read_buffer_.erase(0, consumed);
  return true;
}

bool Connection::wants_write() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return !write_queue_.empty();
}

bool Connection::drained() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failed_ || write_queue_.empty();
}

void Connection::fail(const std::string& reason) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (failed_) return;
  failed_ = true;
  fail_reason_ = reason;
  write_queue_.clear();
  queued_bytes_ = 0;
  space_cv_.notify_all();
}

bool Connection::failed() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

}  // namespace anyblock::net
