// anyblock — command-line front end to the distribution-pattern library.
//
//   anyblock recommend  --nodes 23 --kernel lu
//   anyblock recommend  --batch 23,31,39 --kernel cholesky --format json
//   anyblock cost       --nodes 23
//   anyblock show       --kind g2dbc --nodes 10
//   anyblock simulate   --kernel cholesky --nodes 31 --size 200000
//   anyblock simulate   --kernel lu --nodes 256 --memory-factor 4
//   anyblock run        --kernel lu --nodes 23 --tiles 12
//   anyblock run        --kernel lu --nodes 16 --memory-factor 2 --tiles 12
//   anyblock launch     --procs 2 -- run --kernel lu --nodes 23
//   anyblock atlas      --min 2 --max 40 --out atlas.db
//   anyblock precompute --max-p 10000 --table data/gcrm_winners.tsv
//
// Each subcommand accepts --help.  CSV/structured output goes to stdout.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/config.hpp"
#include "core/block_cyclic.hpp"
#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/pattern_io.hpp"
#include "core/pattern_search.hpp"
#include "core/recommend.hpp"
#include "core/replicated.hpp"
#include "core/sbc.hpp"
#include "dist/dist_factorization.hpp"
#include "fault/fault.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/generators.hpp"
#include "linalg/verify.hpp"
#include "net/bootstrap.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/parallel_search.hpp"
#include "serve/precompute.hpp"
#include "serve/recommend_service.hpp"
#include "sim/engine.hpp"
#include "store/winners_table.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "vmpi/transport.hpp"

using namespace anyblock;

namespace {

core::Kernel parse_kernel(const std::string& name) {
  if (name == "lu") return core::Kernel::kLu;
  if (name == "cholesky") return core::Kernel::kCholesky;
  if (name == "syrk") return core::Kernel::kSyrk;
  throw std::invalid_argument("unknown kernel: " + name +
                              " (expected lu|cholesky|syrk)");
}

/// --memory-factor c stacks c replicas of a P/c-node base pattern into a
/// 2.5D schedule.  The layers must tile the machine exactly; anything else
/// is rejected loudly rather than silently rounded.
bool validate_memory_factor(const char* command, std::int64_t c,
                            std::int64_t P) {
  if (c >= 1 && c <= P && P % c == 0) return true;
  std::fprintf(stderr,
               "%s: --memory-factor %lld is invalid for %lld nodes "
               "(need 1 <= c <= P with c dividing P)\n",
               command, static_cast<long long>(c), static_cast<long long>(P));
  return false;
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One recommendation as a JSON object (schema documented in README.md).
std::string served_to_json(std::int64_t P, const std::string& kernel,
                           const serve::ServedRecommendation& served,
                           bool include_pattern,
                           std::int64_t memory_factor = 1) {
  const core::Recommendation& rec = served.rec;
  std::ostringstream out;
  out << "{\"nodes\":" << P;
  if (memory_factor > 1)
    out << ",\"memory_factor\":" << memory_factor
        << ",\"base_nodes\":" << P / memory_factor;
  out << ",\"kernel\":\"" << json_escape(kernel)
      << "\",\"scheme\":\"" << json_escape(rec.scheme)
      << "\",\"rows\":" << rec.pattern.rows()
      << ",\"cols\":" << rec.pattern.cols() << ",\"cost\":";
  char cost[64];
  std::snprintf(cost, sizeof cost, "%.6f", rec.cost);
  out << cost << ",\"source\":\"" << source_name(served.source)
      << "\",\"seconds\":";
  char secs[64];
  std::snprintf(secs, sizeof secs, "%.6f", served.seconds);
  out << secs << ",\"rationale\":\"" << json_escape(rec.rationale) << '"';
  if (include_pattern)
    out << ",\"pattern\":\"" << json_escape(core::serialize_pattern(rec.pattern))
        << '"';
  out << '}';
  return out.str();
}

/// Shared --store/--table wiring for every service-backed command.
/// (simulate/run already use --workers for compute workers per node, so the
/// sweep thread count is a separate argument.)
void add_service_options(ArgParser& parser) {
  parser.add("store", "",
             "persistent pattern-store manifest (created on first use)");
  parser.add("table", "", "shipped winners table, e.g. data/gcrm_winners.tsv");
}

int resolve_workers(std::int64_t requested) {
  if (requested > 0) return static_cast<int>(requested);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

serve::ServiceOptions service_options_from(const ArgParser& parser,
                                           const core::RecommendOptions& rec,
                                           int workers) {
  serve::ServiceOptions options;
  options.store_path = parser.get("store");
  options.table_path = parser.get("table");
  options.recommend = rec;
  options.workers = workers;
  return options;
}

int cmd_recommend(int argc, char** argv) {
  ArgParser parser("anyblock recommend",
                   "pick the best distribution scheme for P nodes");
  parser.add("nodes", "23", "number of nodes P");
  parser.add("batch", "", "comma-separated node counts, e.g. 23,31,39");
  parser.add("batch-file", "",
             "file with one node count per line ('#' starts a comment)");
  parser.add("kernel", "lu", "lu | cholesky | syrk");
  parser.add("memory-factor", "1",
             "2.5D replication factor c: recommend a P/c-node base pattern "
             "to stack on c layers (c must divide every P)");
  parser.add("seeds", "100", "GCR&M search restarts (symmetric kernels)");
  parser.add("format", "text", "text | json");
  add_service_options(parser);
  parser.add("workers", "0",
             "sweep worker threads (0 = hardware concurrency)");
  parser.add_flag("print-pattern", "also render the pattern");
  parser.add_flag("stats", "append service counters (hits, latency)");
  if (!parser.parse(argc, argv)) return 1;

  const std::string format = parser.get("format");
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "recommend: --format must be text or json\n");
    return 1;
  }

  // One query list: --nodes, or --batch, or --batch-file (first match wins,
  // so plain `anyblock recommend --nodes 23` behaves exactly as before).
  std::vector<std::int64_t> nodes;
  if (!parser.get("batch").empty()) {
    nodes = parser.get_int_list("batch");
  } else if (!parser.get("batch-file").empty()) {
    std::ifstream in(parser.get("batch-file"));
    if (!in) {
      std::fprintf(stderr, "recommend: cannot read %s\n",
                   parser.get("batch-file").c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream row(line);
      std::int64_t P = 0;
      if (row >> P) nodes.push_back(P);
    }
  } else {
    nodes.push_back(parser.get_int("nodes"));
  }
  if (nodes.empty()) {
    std::fprintf(stderr, "recommend: no node counts given\n");
    return 1;
  }

  const core::Kernel kernel = parse_kernel(parser.get("kernel"));
  const std::int64_t memory_factor = parser.get_int("memory-factor");
  for (const std::int64_t P : nodes)
    if (!validate_memory_factor("recommend", memory_factor, P)) return 1;
  std::vector<std::int64_t> base_nodes = nodes;
  if (memory_factor > 1)
    for (std::int64_t& P : base_nodes) P /= memory_factor;
  core::RecommendOptions options;
  options.search.seeds = parser.get_int("seeds");
  serve::RecommendService service(service_options_from(
      parser, options, resolve_workers(parser.get_int("workers"))));
  const std::vector<serve::ServedRecommendation> served =
      service.recommend_batch(base_nodes, kernel);

  const bool print_pattern = parser.get_flag("print-pattern");
  if (format == "json") {
    std::printf("{\"schema_version\":1,\"results\":[");
    for (std::size_t i = 0; i < served.size(); ++i)
      std::printf("%s%s", i == 0 ? "" : ",",
                  served_to_json(nodes[i], parser.get("kernel"), served[i],
                                 print_pattern, memory_factor)
                      .c_str());
    std::printf("]");
    if (parser.get_flag("stats")) {
      std::printf(",\"metrics\":{");
      const auto rows = service.metric_rows();
      for (std::size_t i = 0; i < rows.size(); ++i)
        std::printf("%s\"%s\":%.6f", i == 0 ? "" : ",",
                    json_escape(rows[i].first).c_str(), rows[i].second);
      std::printf("}");
    }
    std::printf("}\n");
    return 0;
  }

  for (std::size_t i = 0; i < served.size(); ++i) {
    const core::Recommendation& rec = served[i].rec;
    if (i > 0) std::printf("\n");
    std::printf("scheme:    %s\n", rec.scheme.c_str());
    std::printf("pattern:   %lldx%lld over %lld nodes\n",
                static_cast<long long>(rec.pattern.rows()),
                static_cast<long long>(rec.pattern.cols()),
                static_cast<long long>(rec.pattern.num_nodes()));
    if (memory_factor > 1)
      std::printf("stacking:  %lld layers x %lld-node base = %lld nodes "
                  "(2.5D)\n",
                  static_cast<long long>(memory_factor),
                  static_cast<long long>(base_nodes[i]),
                  static_cast<long long>(nodes[i]));
    std::printf("cost T:    %.4f\n", rec.cost);
    std::printf("source:    %s (%.3f ms)\n", source_name(served[i].source),
                served[i].seconds * 1e3);
    std::printf("rationale: %s\n", rec.rationale.c_str());
    if (print_pattern)
      std::printf("%s", core::render_pattern(rec.pattern).c_str());
  }
  if (parser.get_flag("stats"))
    for (const auto& [name, value] : service.metric_rows())
      std::fprintf(stderr, "%s %.6f\n", name.c_str(), value);
  return 0;
}

int cmd_precompute(int argc, char** argv) {
  ArgParser parser(
      "anyblock precompute",
      "sweep GCR&M winners for a range of P and ship them as a table");
  parser.add("min-p", "2", "smallest P");
  parser.add("max-p", "64", "largest P");
  parser.add("seeds", "100", "GCR&M search restarts per size");
  parser.add("table", "data/gcrm_winners.tsv", "output winners table");
  parser.add("store", "",
             "also memoize full recommendations into this pattern store");
  parser.add("workers", "0",
             "sweep worker threads (0 = hardware concurrency)");
  parser.add("checkpoint-every", "1",
             "save the table after this many new rows (0 = only at the end)");
  parser.add("metrics", "",
             "write the sweep_* profile rows as an obs metrics CSV");
  parser.add_flag("no-prune",
                  "disable the result-identical sweep pruning (reference "
                  "timing mode)");
  parser.add_flag("resume",
                  "keep rows already in the table (refuses a damaged table "
                  "or one swept with different options)");
  if (!parser.parse(argc, argv)) return 1;

  serve::PrecomputeOptions options;
  options.min_p = parser.get_int("min-p");
  options.max_p = parser.get_int("max-p");
  options.search.seeds = parser.get_int("seeds");
  options.search.prune = !parser.get_flag("no-prune");
  options.table_path = parser.get("table");
  options.store_path = parser.get("store");
  options.resume = parser.get_flag("resume");
  options.checkpoint_every = parser.get_int("checkpoint-every");
  if (options.min_p < 2 || options.max_p < options.min_p) {
    std::fprintf(stderr, "precompute: need 2 <= min-p <= max-p\n");
    return 1;
  }

  runtime::TaskEngine engine(resolve_workers(parser.get_int("workers")));
  serve::PrecomputeReport report;
  try {
    report = serve::precompute_winners(
        options, engine, [](const store::WinnerRow& row) {
          std::fprintf(stderr, "P=%lld done (r=%lld cost %.4f)\n",
                       static_cast<long long>(row.P),
                       static_cast<long long>(row.r), row.cost);
        });
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 1;
  }

  if (!parser.get("metrics").empty()) {
    obs::MetricsOptions metrics;
    metrics.extra = report.profile.metric_rows();
    if (!obs::write_metrics_csv_file(parser.get("metrics"), obs::Trace(),
                                     metrics)) {
      std::fprintf(stderr, "cannot write %s\n", parser.get("metrics").c_str());
      return 1;
    }
  }
  std::printf(
      "%zu winners (%lld new, %lld resumed, %lld infeasible) -> %s\n"
      "sweep: %lld built, %lld abandoned, %lld skipped "
      "(%lld/%lld sizes pruned) in %.1fs\n",
      report.table_rows, static_cast<long long>(report.swept),
      static_cast<long long>(report.resumed),
      static_cast<long long>(report.infeasible), options.table_path.c_str(),
      static_cast<long long>(report.profile.attempts_built),
      static_cast<long long>(report.profile.attempts_abandoned),
      static_cast<long long>(report.profile.attempts_skipped),
      static_cast<long long>(report.profile.sizes_pruned),
      static_cast<long long>(report.profile.sizes_feasible),
      report.profile.total_seconds);
  return 0;
}

int cmd_cost(int argc, char** argv) {
  ArgParser parser("anyblock cost",
                   "communication costs of every scheme for P nodes");
  parser.add("nodes", "23", "number of nodes P");
  parser.add("seeds", "100", "GCR&M search restarts");
  if (!parser.parse(argc, argv)) return 1;
  const std::int64_t P = parser.get_int("nodes");

  std::printf("P = %lld\n\nnon-symmetric (LU), T = x-bar + y-bar:\n",
              static_cast<long long>(P));
  for (const auto& [r, c] : core::grid_shapes(P))
    std::printf("  2DBC %lldx%-4lld T = %lld\n", static_cast<long long>(r),
                static_cast<long long>(c), static_cast<long long>(r + c));
  std::printf("  G-2DBC       T = %.4f   (2*sqrt(P) = %.4f)\n",
              core::g2dbc_cost_formula(P), core::lu_cost_reference(P));

  std::printf("\nsymmetric (Cholesky/SYRK), T = z-bar:\n");
  if (const auto sbc = core::sbc_params(P)) {
    std::printf("  SBC %lldx%-5lld T = %.1f\n",
                static_cast<long long>(sbc->a),
                static_cast<long long>(sbc->a), sbc->cost());
  } else {
    const core::SbcParams fallback = core::best_sbc_at_most(P);
    std::printf("  SBC: infeasible at P; nearest fallback P = %lld (T = %.1f)\n",
                static_cast<long long>(fallback.P), fallback.cost());
  }
  core::GcrmSearchOptions options;
  options.seeds = parser.get_int("seeds");
  if (const auto search = core::gcrm_search(P, options); search.found) {
    std::printf("  GCR&M %lldx%-3lld T = %.4f   (sqrt(2P) = %.4f, "
                "sqrt(3P/2) = %.4f)\n",
                static_cast<long long>(search.best.rows()),
                static_cast<long long>(search.best.cols()), search.best_cost,
                core::sbc_cost_reference(P), core::gcrm_cost_limit(P));
  }
  return 0;
}

int cmd_show(int argc, char** argv) {
  ArgParser parser("anyblock show", "build and render one pattern");
  parser.add("kind", "g2dbc", "2dbc | g2dbc | sbc | gcrm");
  parser.add("nodes", "10", "number of nodes P");
  parser.add("rows", "0", "grid rows (2dbc only; 0 = squarest)");
  parser.add("r", "0", "pattern size (gcrm only; 0 = search)");
  parser.add("seed", "0", "random seed (gcrm only)");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  const std::string kind = parser.get("kind");
  core::Pattern pattern;
  if (kind == "2dbc") {
    std::int64_t rows = parser.get_int("rows");
    if (rows <= 0) rows = core::best_grid(P).first;
    if (P % rows != 0) {
      std::fprintf(stderr, "rows must divide P\n");
      return 1;
    }
    pattern = core::make_2dbc(rows, P / rows);
  } else if (kind == "g2dbc") {
    pattern = core::make_g2dbc(P);
  } else if (kind == "sbc") {
    pattern = core::make_sbc(P);
  } else if (kind == "gcrm") {
    const std::int64_t r = parser.get_int("r");
    if (r > 0) {
      const core::GcrmResult result = core::gcrm_build(
          P, r, static_cast<std::uint64_t>(parser.get_int("seed")));
      if (!result.valid) {
        std::fprintf(stderr, "construction invalid for this (P, r, seed)\n");
        return 1;
      }
      pattern = result.pattern;
    } else {
      pattern = core::best_gcrm_pattern(P);
    }
  } else {
    std::fprintf(stderr, "unknown kind: %s\n", kind.c_str());
    return 1;
  }
  std::printf("%s %lldx%lld over %lld nodes, T_lu = %.4f%s\n", kind.c_str(),
              static_cast<long long>(pattern.rows()),
              static_cast<long long>(pattern.cols()),
              static_cast<long long>(pattern.num_nodes()),
              core::lu_cost(pattern),
              pattern.is_square()
                  ? (", T_sym = " + std::to_string(core::cholesky_cost(pattern)))
                        .c_str()
                  : "");
  std::printf("%s", core::render_pattern(pattern).c_str());
  return 0;
}

/// Pattern lookup for simulate/run: straight recommend_pattern unless a
/// store or winners table was given, in which case the service answers
/// (memoizing a cold sweep for next time) with an identical result.
core::Recommendation resolve_recommendation(
    const ArgParser& parser, std::int64_t P, core::Kernel kernel,
    const core::RecommendOptions& options) {
  if (parser.get("store").empty() && parser.get("table").empty())
    return core::recommend_pattern(P, kernel, options);
  serve::RecommendService service(
      service_options_from(parser, options, resolve_workers(0)));
  const serve::ServedRecommendation served = service.recommend(P, kernel);
  std::fprintf(stderr, "pattern served from %s in %.3f ms\n",
               source_name(served.source), served.seconds * 1e3);
  return served.rec;
}

int cmd_simulate(int argc, char** argv) {
  ArgParser parser("anyblock simulate",
                   "simulate a factorization under the recommended pattern");
  parser.add("nodes", "23", "number of nodes P");
  parser.add("kernel", "lu", "lu | cholesky");
  parser.add("memory-factor", "1",
             "2.5D replication factor c: a P/c-node base pattern stacked on "
             "c layers (c must divide P; 1 = plain 2D)");
  parser.add("size", "200000", "matrix size N");
  parser.add("tile", "1000", "tile size");
  parser.add("workers", "34", "compute workers per node");
  parser.add("gflops", "55", "per-core GFlop/s");
  parser.add("bandwidth", "12.5", "NIC bandwidth GB/s");
  parser.add("seeds", "100", "GCR&M search restarts");
  parser.add("collective", "p2p", "tile multicast: p2p | tree | chain");
  parser.add("chunks", "4", "chunks per tile (chain collective only)");
  parser.add("workload-mode", "auto",
             "task DAG: auto | materialized | implicit (auto materializes "
             "small runs, switches to the on-demand generator past ~4M tasks)");
  parser.add("queue", "calendar", "event queue: calendar | heap");
  parser.add("trace", "", "write a Chrome trace_event JSON timeline here");
  parser.add("metrics", "", "write a CSV metrics summary here");
  parser.add("faults", "",
             "fault spec, e.g. drop=0.01,delay-ms=5,dup=0.001,seed=42");
  add_service_options(parser);
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  const std::int64_t t = parser.get_int("size") / parser.get_int("tile");
  const core::Kernel kernel = parse_kernel(parser.get("kernel"));
  if (kernel == core::Kernel::kSyrk) {
    std::fprintf(stderr, "simulate supports lu|cholesky\n");
    return 1;
  }
  const std::int64_t memory_factor = parser.get_int("memory-factor");
  if (!validate_memory_factor("simulate", memory_factor, P)) return 1;
  core::RecommendOptions options;
  options.search.seeds = parser.get_int("seeds");
  const core::Recommendation rec =
      resolve_recommendation(parser, P / memory_factor, kernel, options);

  sim::MachineConfig machine;
  machine.nodes = P;
  machine.workers_per_node = static_cast<int>(parser.get_int("workers"));
  machine.core_gflops = parser.get_double("gflops");
  machine.link_bandwidth_gbps = parser.get_double("bandwidth");
  machine.tile_size = parser.get_int("tile");
  machine.collective.algorithm = comm::parse_algorithm(parser.get("collective"));
  machine.collective.chain_chunks = parser.get_int("chunks");
  const bool symmetric = kernel != core::Kernel::kLu;
  const std::int64_t estimated_tasks = sim::estimated_task_count(symmetric, t);
  machine.workload_mode =
      sim::choose_workload_mode(parser.get("workload-mode"), estimated_tasks);
  machine.event_queue = sim::parse_event_queue_mode(parser.get("queue"));
  if (machine.workload_mode == sim::WorkloadMode::kMaterialized &&
      estimated_tasks > sim::kMaterializeTaskLimit)
    std::fprintf(stderr,
                 "warning: materializing ~%lld tasks; --workload-mode "
                 "implicit keeps only the ready frontier in memory\n",
                 static_cast<long long>(estimated_tasks));
  if (!parser.get("faults").empty())
    machine.faults = fault::parse_fault_spec(parser.get("faults"));
  const std::string trace_path = parser.get("trace");
  const std::string metrics_path = parser.get("metrics");
  obs::Recorder recorder;
  if (!trace_path.empty() || !metrics_path.empty())
    machine.recorder = &recorder;
  // The c = 1 path stays on the plain 2D entry points; c > 1 stacks the
  // base pattern and routes through the 2.5D schedule.
  const auto base = std::make_shared<core::PatternDistribution>(
      rec.pattern, t, symmetric, rec.scheme);
  const core::ReplicatedDistribution dist(base, memory_factor);
  const sim::SimReport report =
      memory_factor > 1
          ? (symmetric ? sim::simulate_cholesky_25d(t, dist, machine)
                       : sim::simulate_lu_25d(t, dist, machine))
          : (symmetric ? sim::simulate_cholesky(t, *base, machine)
                       : sim::simulate_lu(t, *base, machine));
  if (machine.recorder) {
    const obs::Trace trace = recorder.take();
    if (!trace_path.empty() && !obs::write_chrome_trace_file(trace_path, trace)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    if (!metrics_path.empty()) {
      obs::MetricsOptions metrics;
      metrics.predicted_messages =
          memory_factor > 1
              ? (symmetric ? core::exact_cholesky_messages_25d(
                                 dist, t, machine.collective)
                           : core::exact_lu_messages_25d(dist, t,
                                                         machine.collective))
              : (symmetric
                     ? core::exact_cholesky_messages(*base, t,
                                                     machine.collective)
                     : core::exact_lu_messages(*base, t, machine.collective));
      const double engine_seconds = report.build_seconds + report.run_seconds;
      metrics.extra = {
          {"sim_events", static_cast<double>(report.events)},
          {"sim_build_seconds", report.build_seconds},
          {"sim_run_seconds", report.run_seconds},
          {"sim_frontier_peak", static_cast<double>(report.frontier_peak)},
          {"sim_makespan_seconds", report.makespan_seconds},
          {"sim_events_per_second",
           engine_seconds > 0.0 ? static_cast<double>(report.events) /
                                      engine_seconds
                                : 0.0},
      };
      if (memory_factor > 1) {
        metrics.extra.push_back(
            {"memory_factor", static_cast<double>(memory_factor)});
        metrics.extra.push_back(
            {"comm_volume_tiles",
             static_cast<double>(
                 symmetric ? core::exact_cholesky_volume_25d(dist, t)
                           : core::exact_lu_volume_25d(dist, t))});
        metrics.extra.push_back(
            {"comm_volume_bound",
             symmetric
                 ? core::cholesky_io_lower_bound_tiles(t, P, memory_factor)
                 : core::lu_io_lower_bound_tiles(t, P, memory_factor)});
      }
      if (!obs::write_metrics_csv_file(metrics_path, trace, metrics)) {
        std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
        return 1;
      }
    }
  }
  std::printf("%s of N=%lld on %lld nodes with %s (T = %.3f):\n",
              parser.get("kernel").c_str(),
              static_cast<long long>(parser.get_int("size")),
              static_cast<long long>(P), rec.scheme.c_str(), rec.cost);
  std::printf("  collective    %s\n",
              comm::algorithm_name(machine.collective.algorithm).c_str());
  if (memory_factor > 1)
    std::printf("  memory        c=%lld (%lld-node base on %lld layers; "
                "volume %lld tiles, I/O bound %.0f)\n",
                static_cast<long long>(memory_factor),
                static_cast<long long>(dist.base_nodes()),
                static_cast<long long>(memory_factor),
                static_cast<long long>(
                    symmetric ? core::exact_cholesky_volume_25d(dist, t)
                              : core::exact_lu_volume_25d(dist, t)),
                symmetric
                    ? core::cholesky_io_lower_bound_tiles(t, P, memory_factor)
                    : core::lu_io_lower_bound_tiles(t, P, memory_factor));
  std::printf("  workload      %s (%lld tasks, frontier peak %lld)\n",
              machine.workload_mode == sim::WorkloadMode::kImplicit
                  ? "implicit"
                  : "materialized",
              static_cast<long long>(report.tasks),
              static_cast<long long>(report.frontier_peak));
  {
    const double engine_seconds = report.build_seconds + report.run_seconds;
    std::printf("  engine        %lld events in %.2f s (%.0f events/s)\n",
                static_cast<long long>(report.events), engine_seconds,
                engine_seconds > 0.0
                    ? static_cast<double>(report.events) / engine_seconds
                    : 0.0);
  }
  std::printf("  time          %.2f s\n", report.makespan_seconds);
  std::printf("  throughput    %.0f GFlop/s (%.0f per node)\n",
              report.total_gflops(), report.per_node_gflops());
  std::printf("  messages      %lld tiles\n",
              static_cast<long long>(report.messages));
  std::printf("  efficiency    %.1f%% of machine peak\n",
              100.0 * report.total_gflops() / machine.peak_gflops());
  if (machine.faults.enabled()) {
    const fault::FaultStats& f = report.faults;
    std::printf("  faults        %lld drops, %lld dups, %lld delays -> "
                "%lld retries, %lld dedups (seed %llu)\n",
                static_cast<long long>(f.drops),
                static_cast<long long>(f.duplicates),
                static_cast<long long>(f.delays),
                static_cast<long long>(f.retries),
                static_cast<long long>(f.dedup_discards),
                static_cast<unsigned long long>(machine.faults.seed));
  }
  return 0;
}

int cmd_run(int argc, char** argv) {
  ArgParser parser("anyblock run",
                   "run a real distributed factorization over vmpi and "
                   "verify it against the paper's closed forms");
  parser.add("kernel", "lu", "lu | cholesky");
  parser.add("nodes", "23", "number of nodes P (= vmpi ranks)");
  parser.add("memory-factor", "1",
             "2.5D replication factor c: a P/c-node base pattern stacked on "
             "c layers (c must divide P; 1 = plain 2D)");
  parser.add("tiles", "12", "tile matrix dimension t");
  parser.add("tile", "4", "tile size nb");
  parser.add("seeds", "100", "GCR&M search restarts (cholesky)");
  parser.add("data-seed", "7", "matrix generator seed");
  parser.add("collective", "p2p", "tile multicast: p2p | tree | chain");
  parser.add("chunks", "4", "chunks per tile (chain collective only)");
  parser.add("faults", "",
             "fault spec, e.g. drop=0.01,timeout-ms=25,seed=42 (socket runs "
             "replay the same seeded schedule in every process)");
  parser.add("transport", "",
             "inproc | socket (default: $ANYBLOCK_TRANSPORT, else inproc)");
  parser.add("rendezvous", "",
             "socket rendezvous directory (default: $ANYBLOCK_RENDEZVOUS)");
  parser.add("trace", "",
             "write a Chrome trace here (multi-process runs append .procN; "
             "flow ids are process-namespaced so merged arrows still link)");
  parser.add_flag("crosscheck",
                  "re-run over the in-process backend and require "
                  "bit-identical factors and per-rank message counts");
  add_service_options(parser);
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  const std::int64_t t = parser.get_int("tiles");
  const std::int64_t nb = parser.get_int("tile");
  const core::Kernel kernel = parse_kernel(parser.get("kernel"));
  if (kernel == core::Kernel::kSyrk) {
    std::fprintf(stderr, "run supports lu|cholesky\n");
    return 1;
  }
  const bool symmetric = kernel == core::Kernel::kCholesky;
  const std::int64_t memory_factor = parser.get_int("memory-factor");
  if (!validate_memory_factor("run", memory_factor, P)) return 1;

  comm::CollectiveConfig config;
  config.algorithm = comm::parse_algorithm(parser.get("collective"));
  config.chain_chunks = parser.get_int("chunks");

  core::RecommendOptions options;
  options.search.seeds = parser.get_int("seeds");
  const core::Recommendation rec =
      resolve_recommendation(parser, P / memory_factor, kernel, options);
  const auto base = std::make_shared<core::PatternDistribution>(
      rec.pattern, t, symmetric, rec.scheme);
  const core::ReplicatedDistribution distribution(base, memory_factor);

  Rng rng(static_cast<std::uint64_t>(parser.get_int("data-seed")));
  const linalg::DenseMatrix original =
      symmetric ? linalg::spd_matrix(t * nb, rng)
                : linalg::diag_dominant_matrix(t * nb, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, nb);

  net::TransportSpec spec = net::spec_from_env();
  if (!parser.get("transport").empty())
    spec.backend = parser.get("transport");
  if (!parser.get("rendezvous").empty())
    spec.rendezvous_dir = parser.get("rendezvous");
  const std::unique_ptr<vmpi::Transport> transport =
      net::make_transport(spec, static_cast<int>(P));
  const vmpi::ScopedTransport ambient(transport.get());

  const std::string fault_spec = parser.get("faults");
  const auto run_once = [&](obs::Recorder* recorder) {
    std::unique_ptr<fault::FaultInjector> injector;
    if (!fault_spec.empty())
      injector = std::make_unique<fault::FaultInjector>(
          fault::parse_fault_spec(fault_spec));
    if (memory_factor > 1)
      return symmetric
                 ? dist::distributed_cholesky_25d(input, distribution, config,
                                                  recorder, injector.get())
                 : dist::distributed_lu_25d(input, distribution, config,
                                            recorder, injector.get());
    return symmetric ? dist::distributed_cholesky(input, *base, config,
                                                  recorder, injector.get())
                     : dist::distributed_lu(input, *base, config, recorder,
                                            injector.get());
  };

  obs::Recorder recorder;
  const std::string trace_path = parser.get("trace");
  const dist::DistRunResult result =
      run_once(trace_path.empty() ? nullptr : &recorder);
  if (!trace_path.empty()) {
    std::string path = trace_path;
    if (transport != nullptr && transport->process_count() > 1)
      path += ".proc" + std::to_string(transport->process_index());
    if (!obs::write_chrome_trace_file(path, recorder.take())) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
  }

  bool failed = false;
  if (!result.ok) {
    std::fprintf(stderr, "run: a tile factorization failed numerically\n");
    failed = true;
  }

  // Global count check: the report sums every process; subtracting the
  // final gather (one message per tile rank 0 does not own) must leave
  // exactly the closed-form factorization traffic of core/cost — on the
  // send side and, post-dedup, on the receive side.
  std::int64_t gather_messages = 0;
  for (std::int64_t i = 0; i < t; ++i)
    for (std::int64_t j = 0; j < (symmetric ? i + 1 : t); ++j)
      if (distribution.owner(i, j) != 0) ++gather_messages;
  const std::int64_t predicted =
      memory_factor > 1
          ? (symmetric ? core::exact_cholesky_messages_25d(distribution, t,
                                                           config)
                       : core::exact_lu_messages_25d(distribution, t, config))
          : (symmetric ? core::exact_cholesky_messages(*base, t, config)
                       : core::exact_lu_messages(*base, t, config));
  const std::int64_t sent = result.report.total_messages() - gather_messages;
  const std::int64_t consumed =
      result.report.total_messages_received() - gather_messages;
  if (sent != predicted || consumed != predicted) {
    std::fprintf(stderr,
                 "run: message counts diverge from the closed form: sent "
                 "%lld, consumed %lld, predicted %lld\n",
                 static_cast<long long>(sent),
                 static_cast<long long>(consumed),
                 static_cast<long long>(predicted));
    failed = true;
  }

  // Only the process hosting rank 0 holds the gathered factor.
  const bool root = transport == nullptr || transport->is_local(0);
  if (root && memory_factor > 1) {
    // c > 1 sums trailing updates layer by layer, so the factor is not
    // bit-comparable to the sequential reference; the residual (and
    // --crosscheck's deterministic re-run) stand in for the bit test.
    const double residual =
        symmetric ? linalg::cholesky_residual(original, result.factored)
                  : linalg::lu_residual(original, result.factored);
    if (!(residual < 1e-10)) {
      std::fprintf(stderr, "run: residual %.3e exceeds the 1e-10 gate\n",
                   residual);
      failed = true;
    }
  } else if (root) {
    linalg::TiledMatrix sequential =
        linalg::TiledMatrix::from_dense(original, nb);
    const bool sequential_ok = symmetric ? linalg::tiled_cholesky(sequential)
                                         : linalg::tiled_lu_nopiv(sequential);
    if (!sequential_ok) {
      std::fprintf(stderr, "run: sequential reference failed\n");
      failed = true;
    } else {
      for (std::int64_t i = 0; i < sequential.dim() && !failed; ++i)
        for (std::int64_t j = 0; j < (symmetric ? i + 1 : sequential.dim());
             ++j)
          if (result.factored.at(i, j) != sequential.at(i, j)) {
            std::fprintf(stderr,
                         "run: factor differs from the sequential reference "
                         "at (%lld, %lld)\n",
                         static_cast<long long>(i), static_cast<long long>(j));
            failed = true;
            break;
          }
    }
  }

  if (parser.get_flag("crosscheck") && root && !failed) {
    const vmpi::ScopedTransport inproc(nullptr);
    const dist::DistRunResult again = run_once(nullptr);
    for (std::int64_t i = 0; i < result.factored.dim() && !failed; ++i)
      for (std::int64_t j = 0;
           j < (symmetric ? i + 1 : result.factored.dim()); ++j)
        if (result.factored.at(i, j) != again.factored.at(i, j)) {
          std::fprintf(stderr,
                       "run: crosscheck factor mismatch at (%lld, %lld)\n",
                       static_cast<long long>(i), static_cast<long long>(j));
          failed = true;
          break;
        }
    for (std::size_t r = 0; r < result.report.per_rank.size(); ++r) {
      if (result.report.per_rank[r].messages_sent ==
              again.report.per_rank[r].messages_sent &&
          result.report.per_rank[r].messages_received ==
              again.report.per_rank[r].messages_received)
        continue;
      std::fprintf(stderr,
                   "run: crosscheck per-rank message counts diverge at rank "
                   "%zu\n",
                   r);
      failed = true;
    }
  }

  const int process = transport == nullptr ? 0 : transport->process_index();
  const int processes = transport == nullptr ? 1 : transport->process_count();
  std::printf("%s t=%lld nb=%lld on %lld nodes, %s via %s (process %d/%d)\n",
              parser.get("kernel").c_str(), static_cast<long long>(t),
              static_cast<long long>(nb), static_cast<long long>(P),
              rec.scheme.c_str(),
              spec.backend == "socket" ? "socket" : "inproc", process,
              processes);
  if (memory_factor > 1)
    std::printf("  memory      c=%lld (%lld-node %s base on %lld layers)\n",
                static_cast<long long>(memory_factor),
                static_cast<long long>(distribution.base_nodes()),
                rec.scheme.c_str(),
                static_cast<long long>(memory_factor));
  std::printf("  messages    %lld factorization + %lld gather "
              "(closed form %lld)\n",
              static_cast<long long>(sent),
              static_cast<long long>(gather_messages),
              static_cast<long long>(predicted));
  if (root)
    std::printf("  residual    %.3e (%s)\n",
                symmetric
                    ? linalg::cholesky_residual(original, result.factored)
                    : linalg::lu_residual(original, result.factored),
                memory_factor > 1
                    ? "layer-ordered sums; verified against the 1e-10 gate"
                    : "factor bit-identical to the sequential reference");
  if (!fault_spec.empty()) {
    const fault::FaultStats& f = result.report.faults;
    std::printf("  faults      %lld drops, %lld dups, %lld delays -> %lld "
                "retries, %lld dedups\n",
                static_cast<long long>(f.drops),
                static_cast<long long>(f.duplicates),
                static_cast<long long>(f.delays),
                static_cast<long long>(f.retries),
                static_cast<long long>(f.dedup_discards));
  }
  std::printf("  verdict     %s\n", failed ? "FAILED" : "ok");
  return failed ? 1 : 0;
}

int cmd_launch(int argc, char** argv) {
  // Everything after a literal "--" is the child command; the launcher's
  // own flags must come before it.
  std::vector<std::string> child;
  int own_argc = argc;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") != 0) continue;
    own_argc = i;
    for (int j = i + 1; j < argc; ++j) child.emplace_back(argv[j]);
    break;
  }
  ArgParser parser("anyblock launch",
                   "spawn a single-host socket mesh: N OS processes re-run "
                   "this binary with the command after --");
  parser.add("procs", "0", "OS processes to spawn");
  parser.add("ranks", "0",
             "convenience alias: one process per rank (same as --procs)");
  parser.add("rendezvous", "",
             "rendezvous directory (default: a fresh temp dir)");
  if (!parser.parse(own_argc, argv)) return 1;

  std::int64_t processes = parser.get_int("procs");
  if (processes <= 0) processes = parser.get_int("ranks");
  if (processes <= 0) {
    std::fprintf(stderr, "launch: give --procs N (or --ranks N)\n");
    return 1;
  }
  if (child.empty()) {
    std::fprintf(stderr,
                 "launch: missing child command after --\n"
                 "usage: anyblock launch --procs 2 -- run --kernel lu "
                 "--nodes 23\n");
    return 1;
  }
  return net::launch_processes(static_cast<int>(processes), child,
                               parser.get("rendezvous"));
}

int cmd_atlas(int argc, char** argv) {
  ArgParser parser("anyblock atlas",
                   "precompute best patterns for a range of node counts");
  parser.add("min", "2", "smallest P");
  parser.add("max", "40", "largest P");
  parser.add("seeds", "50", "GCR&M search restarts");
  parser.add("out", "pattern_atlas.db", "output path");
  if (!parser.parse(argc, argv)) return 1;

  core::PatternDatabase db;
  core::RecommendOptions options;
  options.search.seeds = parser.get_int("seeds");
  for (std::int64_t P = parser.get_int("min"); P <= parser.get_int("max");
       ++P) {
    db.put(P, core::PatternDatabase::Kind::kNonSymmetric,
           core::recommend_pattern(P, core::Kernel::kLu).pattern);
    db.put(P, core::PatternDatabase::Kind::kSymmetric,
           core::recommend_pattern(P, core::Kernel::kCholesky, options)
               .pattern);
    std::fprintf(stderr, "P=%lld done\n", static_cast<long long>(P));
  }
  if (!db.save_file(parser.get("out"))) {
    std::fprintf(stderr, "cannot write %s\n", parser.get("out").c_str());
    return 1;
  }
  std::printf("%zu patterns -> %s\n", db.size(), parser.get("out").c_str());
  return 0;
}

void print_usage() {
  std::puts(
      "anyblock — data distribution schemes for dense factorizations on any\n"
      "number of nodes\n\n"
      "usage: anyblock <command> [options]\n\n"
      "commands:\n"
      "  recommend   pick the best scheme for P nodes and a kernel\n"
      "              (--batch P1,P2,... and --format json for tooling;\n"
      "              --store/--table serve memoized answers)\n"
      "  precompute  sweep GCR&M winners for a range of P into a shipped\n"
      "              table (data/gcrm_winners.tsv)\n"
      "  cost        list every scheme's communication cost for P nodes\n"
      "  show        build and render one pattern\n"
      "  simulate    run the cluster simulator with the recommended pattern\n"
      "              (--memory-factor c stacks a P/c-node base into a 2.5D\n"
      "              schedule)\n"
      "  run         run a real distributed factorization over vmpi\n"
      "              (--transport socket spans OS processes;\n"
      "              --memory-factor c runs the 2.5D schedule)\n"
      "  launch      spawn N processes on this host wired into a socket mesh\n"
      "  atlas       precompute a pattern database over a range of P\n\n"
      "run 'anyblock <command> --help' for the command's options");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 1;
  }
  const std::string command = argv[1];
  // Shift argv so each subcommand parses its own options.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  try {
    if (command == "recommend") return cmd_recommend(sub_argc, sub_argv);
    if (command == "precompute") return cmd_precompute(sub_argc, sub_argv);
    if (command == "cost") return cmd_cost(sub_argc, sub_argv);
    if (command == "show") return cmd_show(sub_argc, sub_argv);
    if (command == "simulate") return cmd_simulate(sub_argc, sub_argv);
    if (command == "run") return cmd_run(sub_argc, sub_argv);
    if (command == "launch") return cmd_launch(sub_argc, sub_argv);
    if (command == "atlas") return cmd_atlas(sub_argc, sub_argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "anyblock %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
  print_usage();
  return 1;
}
