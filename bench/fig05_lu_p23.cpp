// Fig. 5: LU factorization with at most P = 23 nodes.
//
// Candidates (Table Ia): G-2DBC using all 23 nodes vs 2DBC forced to 23x1,
// the 7x3 grid on 21 nodes, and the square 4x4 grid on 16 nodes.  Expected
// shape: 23x1 far below everything; G-2DBC highest total throughput with
// per-node efficiency comparable to 7x3.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("fig05_lu_p23", "Fig. 5 - LU with a maximum of 23 nodes");
  bench::add_machine_options(parser);
  parser.add("sizes", "50000,100000,150000,200000,250000,300000",
             "matrix sizes N");
  if (!parser.parse(argc, argv)) return 1;

  const std::vector<bench::Candidate> candidates = {
      {"G-2DBC P=23", core::make_g2dbc(23)},
      {"2DBC 23x1", core::make_2dbc(23, 1)},
      {"2DBC 7x3", core::make_2dbc(7, 3)},
      {"2DBC 4x4", core::make_2dbc(4, 4)},
  };

  std::fprintf(stderr, "fig05: LU, P<=23 (paper Fig. 5)\n");
  bench::print_perf_header();
  for (const std::int64_t n : bench::size_sweep(parser)) {
    const std::int64_t t = n / parser.get_int("tile");
    if (t < 2) continue;
    for (const auto& candidate : candidates) {
      const sim::SimReport report =
          bench::run_candidate(candidate, t, parser, /*symmetric=*/false);
      bench::print_perf_row("lu", candidate, n, t, report);
    }
  }
  return 0;
}
