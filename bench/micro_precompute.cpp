// Micro benchmarks for the pruned precompute sweep plus the
// BENCH_precompute.json perf trajectory.
//
// Two personalities behind one custom main:
//
//   micro_precompute                      google-benchmark sweeps: one
//                                         gcrm_build at reference sizes and
//                                         the pruned/unpruned search at
//                                         small P
//   micro_precompute --json=BENCH_precompute.json
//                                         append one trajectory entry: the
//                                         pinned sweep window run pruned
//                                         and unpruned, their wall times,
//                                         the prune speedup, and the
//                                         abandon/skip counters
//   micro_precompute --json=... --check   same, but exit 1 when the pruned
//                                         sweep runs >25% slower than the
//                                         last recorded entry
//
// The trajectory asserts what the golden tests assert — pruning must be
// result-identical — before recording anything: every winner coordinate
// (r, seed) and every cost bit is compared against the unpruned sweep, and
// a fast wrong answer never enters the perf history.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/gcrm.hpp"
#include "core/pattern_search.hpp"
#include "runtime/task_engine.hpp"
#include "serve/parallel_search.hpp"

using namespace anyblock;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void BM_GcrmBuild(benchmark::State& state) {
  const std::int64_t P = state.range(0);
  const std::int64_t r = state.range(1);
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::gcrm_build(P, r, ++seed));
}
BENCHMARK(BM_GcrmBuild)
    ->Args({23, 24})
    ->Args({64, 48})
    ->Unit(benchmark::kMillisecond);

void BM_SearchPruned(benchmark::State& state) {
  core::GcrmSearchOptions options;
  options.seeds = 20;
  options.prune = state.range(1) != 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::gcrm_search(state.range(0), options));
}
BENCHMARK(BM_SearchPruned)
    ->Args({23, 0})
    ->Args({23, 1})
    ->Args({31, 0})
    ->Args({31, 1})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BENCH_precompute.json trajectory
// ---------------------------------------------------------------------------

/// The pinned sweep window: large enough that pruning has balanced
/// incumbents to compare against, small enough for a CI smoke job.  The
/// full-scale numbers (P <= 512 and the P <= 10'000 recipe) live with the
/// shipped table; this window tracks the per-commit trend.
constexpr std::int64_t kWindowMin = 60;
constexpr std::int64_t kWindowMax = 64;

struct Measurement {
  double pruned_seconds = 0.0;
  double unpruned_seconds = 0.0;
  double prune_speedup = 0.0;
  std::int64_t attempts_built = 0;
  std::int64_t attempts_abandoned = 0;
  std::int64_t attempts_skipped = 0;
  std::int64_t sizes_pruned = 0;
  std::int64_t sizes_feasible = 0;
  int workers = 0;
};

/// Returns false (diverged) when any winner differs between the pruned and
/// unpruned sweeps — the trajectory refuses to record such a build.
bool measure(Measurement& m) {
  int workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers <= 0) workers = 1;
  runtime::TaskEngine engine(workers);
  m.workers = workers;

  core::GcrmSearchOptions pruned_options;  // default budget: what the
  pruned_options.prune = true;             // shipped table is swept with
  core::GcrmSearchOptions unpruned_options;
  unpruned_options.prune = false;

  std::vector<core::GcrmSearchResult> pruned;
  core::GcrmSweepProfile profile;
  double start = now_seconds();
  for (std::int64_t P = kWindowMin; P <= kWindowMax; ++P)
    pruned.push_back(
        serve::parallel_gcrm_search(P, pruned_options, engine, false,
                                    &profile));
  m.pruned_seconds = now_seconds() - start;
  m.attempts_built = profile.attempts_built;
  m.attempts_abandoned = profile.attempts_abandoned;
  m.attempts_skipped = profile.attempts_skipped;
  m.sizes_pruned = profile.sizes_pruned;
  m.sizes_feasible = profile.sizes_feasible;

  start = now_seconds();
  for (std::int64_t P = kWindowMin; P <= kWindowMax; ++P) {
    const core::GcrmSearchResult reference =
        serve::parallel_gcrm_search(P, unpruned_options, engine);
    const core::GcrmSearchResult& fast =
        pruned[static_cast<std::size_t>(P - kWindowMin)];
    if (fast.found != reference.found) return false;
    if (!reference.found) continue;
    if (fast.best_r != reference.best_r ||
        fast.best_seed != reference.best_seed ||
        fast.best_cost != reference.best_cost ||
        !(fast.best == reference.best))
      return false;
  }
  m.unpruned_seconds = now_seconds() - start;
  m.prune_speedup =
      m.pruned_seconds > 0.0 ? m.unpruned_seconds / m.pruned_seconds : 0.0;
  return true;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

std::string render_entry(const std::string& label, const Measurement& m) {
  std::ostringstream out;
  out.precision(6);
  out << "  {\n"
      << "    \"date\": \"" << utc_timestamp() << "\",\n"
      << "    \"label\": \"" << label << "\",\n"
      << "    \"config\": {\"min_p\": " << kWindowMin
      << ", \"max_p\": " << kWindowMax
      << ", \"seeds\": " << core::GcrmSearchOptions{}.seeds
      << ", \"workers\": " << m.workers << "},\n"
      << "    \"pruned_sweep_seconds\": " << std::fixed << m.pruned_seconds
      << ",\n"
      << "    \"unpruned_sweep_seconds\": " << m.unpruned_seconds << ",\n"
      << "    \"prune_speedup\": " << m.prune_speedup << ",\n"
      << "    \"attempts_built\": " << m.attempts_built << ",\n"
      << "    \"attempts_abandoned\": " << m.attempts_abandoned << ",\n"
      << "    \"attempts_skipped\": " << m.attempts_skipped << ",\n"
      << "    \"sizes_pruned\": " << m.sizes_pruned << ",\n"
      << "    \"sizes_feasible\": " << m.sizes_feasible << "\n  }";
  return out.str();
}

/// Last "pruned_sweep_seconds" already in the trajectory (the regression
/// baseline), or -1 when the file has no entries.
double last_pruned_seconds(const std::string& text) {
  const std::string key = "\"pruned_sweep_seconds\":";
  double last = -1.0;
  std::size_t at = 0;
  while ((at = text.find(key, at)) != std::string::npos) {
    at += key.size();
    last = std::strtod(text.c_str() + at, nullptr);
  }
  return last;
}

int run_trajectory(const std::string& path, const std::string& label,
                   bool check) {
  Measurement m;
  if (!measure(m)) {
    std::fprintf(stderr,
                 "pruned sweep diverged from the unpruned search — "
                 "refusing to record perf for a wrong answer\n");
    return 1;
  }

  std::string existing;
  if (std::ifstream in(path); in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    existing = buffer.str();
  }
  const double previous = last_pruned_seconds(existing);

  const std::string entry = render_entry(label, m);
  std::string updated;
  const std::size_t closing = existing.rfind(']');
  if (closing == std::string::npos) {
    updated = "[\n" + entry + "\n]\n";
  } else {
    const bool has_entries = existing.find('{') < closing;
    updated = existing.substr(0, closing);
    while (!updated.empty() &&
           (updated.back() == '\n' || updated.back() == ' '))
      updated.pop_back();
    updated += has_entries ? ",\n" : "\n";
    updated += entry + "\n]\n";
  }
  if (std::ofstream out(path); !out || !(out << updated)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }

  std::printf("window:   P in [%lld, %lld], %lld seeds, %d workers\n",
              static_cast<long long>(kWindowMin),
              static_cast<long long>(kWindowMax),
              static_cast<long long>(core::GcrmSearchOptions{}.seeds),
              m.workers);
  std::printf("pruned:   %.2f s (%lld built, %lld abandoned, %lld skipped, "
              "%lld/%lld sizes pruned)\n",
              m.pruned_seconds, static_cast<long long>(m.attempts_built),
              static_cast<long long>(m.attempts_abandoned),
              static_cast<long long>(m.attempts_skipped),
              static_cast<long long>(m.sizes_pruned),
              static_cast<long long>(m.sizes_feasible));
  std::printf("unpruned: %.2f s (%.2fx speedup, bit-identical winners)\n",
              m.unpruned_seconds, m.prune_speedup);
  std::printf("appended to %s\n", path.c_str());

  if (check && previous > 0.0 && m.pruned_seconds > 1.25 * previous) {
    std::fprintf(stderr,
                 "PERF REGRESSION: pruned sweep took %.2f s, more than 25%% "
                 "above the last recorded %.2f s\n",
                 m.pruned_seconds, previous);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string label = "dev";
  bool check = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--label=", 8) == 0) {
      label = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return run_trajectory(json_path, label, check);

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
