// Micro benchmarks for the STF engine: submission/dependency-inference and
// end-to-end task throughput (the per-task overhead budget a Chameleon-like
// layer pays on top of the kernels).
#include <benchmark/benchmark.h>

#include <atomic>

#include "runtime/task_engine.hpp"

using namespace anyblock;

namespace {

void BM_SubmitIndependent(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    runtime::TaskEngine engine(2);
    state.ResumeTiming();
    for (int k = 0; k < 1000; ++k) engine.submit([] {}, {});
    engine.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SubmitIndependent)->Unit(benchmark::kMillisecond);

void BM_SubmitChained(benchmark::State& state) {
  // Worst-case dependency inference: every task RW-chains on one handle.
  for (auto _ : state) {
    state.PauseTiming();
    runtime::TaskEngine engine(2);
    const runtime::HandleId h = engine.register_data();
    state.ResumeTiming();
    for (int k = 0; k < 1000; ++k)
      engine.submit([] {}, {{h, runtime::AccessMode::kReadWrite}});
    engine.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SubmitChained)->Unit(benchmark::kMillisecond);

void BM_FanOutFanIn(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    runtime::TaskEngine engine(4);
    const runtime::HandleId h = engine.register_data();
    state.ResumeTiming();
    engine.submit([] {}, {{h, runtime::AccessMode::kWrite}});
    for (int k = 0; k < width; ++k)
      engine.submit([] {}, {{h, runtime::AccessMode::kRead}});
    engine.submit([] {}, {{h, runtime::AccessMode::kWrite}});
    engine.wait_all();
  }
  state.SetItemsProcessed(state.iterations() * (width + 2));
}
BENCHMARK(BM_FanOutFanIn)->Arg(64)->Arg(512)->Unit(benchmark::kMillisecond);

}  // namespace
