// Fig. 11: Cholesky factorization with at most P = 31 nodes.
//
// Candidates (Table Ib): GCR&M using all 31 nodes vs the best SBC fallback
// (28 nodes, 8x8, T = 7).  Expected shape: GCR&M's total throughput above
// SBC at every size (up to ~11% in the paper); per-node slightly below,
// with the gap narrowing as N grows.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/pattern_search.hpp"
#include "core/sbc.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("fig11_chol_p31",
                   "Fig. 11 - Cholesky with a maximum of 31 nodes");
  bench::add_machine_options(parser);
  parser.add("sizes", "50000,100000,150000,200000,250000,300000",
             "matrix sizes N");
  parser.add("nodes", "31", "total available nodes");
  parser.add("seeds", "100", "GCR&M random restarts per pattern size");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  core::GcrmSearchOptions options;
  options.seeds = parser.get_int("seeds");
  const core::GcrmSearchResult search = core::gcrm_search(P, options);
  if (!search.found) {
    std::fprintf(stderr, "GCR&M search failed for P=%lld\n",
                 static_cast<long long>(P));
    return 1;
  }
  const core::SbcParams sbc = core::best_sbc_at_most(P);
  const std::vector<bench::Candidate> candidates = {
      {"GCR&M P=" + std::to_string(P), search.best},
      {"SBC P=" + std::to_string(sbc.P), core::make_sbc(sbc)},
  };
  std::fprintf(stderr, "fig11: Cholesky, P<=%lld, GCR&M T=%.3f vs SBC T=%.0f\n",
               static_cast<long long>(P), search.best_cost, sbc.cost());
  bench::print_perf_header();
  for (const std::int64_t n : bench::size_sweep(parser)) {
    const std::int64_t t = n / parser.get_int("tile");
    if (t < 2) continue;
    for (const auto& candidate : candidates) {
      const sim::SimReport report =
          bench::run_candidate(candidate, t, parser, /*symmetric=*/true);
      bench::print_perf_row("cholesky", candidate, n, t, report);
    }
  }
  return 0;
}
