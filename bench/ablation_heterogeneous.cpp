// Extension: heterogeneous node speeds (the paper's conclusion lists
// extending the schemes to heterogeneous nodes as an open direction).
//
// The balanced patterns built here assume identical nodes; this bench
// quantifies how quickly that assumption bites by slowing a fraction of
// the nodes and measuring the makespan inflation relative to the
// ideal-speed bound (total work / aggregate speed).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/g2dbc.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("ablation_heterogeneous",
                   "balanced patterns on skewed machines (LU, G-2DBC P=23)");
  bench::add_machine_options(parser);
  parser.add("size", "100000", "matrix size N");
  parser.add("slow-fraction", "0,1,3,6,11", "slow nodes out of 23 to sweep");
  parser.add("slow-speed", "0.5", "relative speed of the slow nodes");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t n = parser.get_int("size");
  const std::int64_t t = n / parser.get_int("tile");
  const double slow_speed = parser.get_double("slow-speed");
  const core::Pattern pattern = core::make_g2dbc(23);
  const core::PatternDistribution dist(pattern, t, false);

  std::fprintf(stderr, "ablation_heterogeneous: LU, N=%lld, slow speed %.2f\n",
               static_cast<long long>(n), slow_speed);
  CsvWriter csv(std::cout);
  csv.header({"slow_nodes", "total_gflops", "makespan_seconds",
              "slowdown_vs_uniform", "aggregate_speed_fraction"});
  double uniform_makespan = 0.0;
  for (const std::int64_t slow : parser.get_int_list("slow-fraction")) {
    sim::MachineConfig machine = bench::machine_from(parser, 23);
    machine.node_speed.assign(23, 1.0);
    for (std::int64_t k = 0; k < slow && k < 23; ++k)
      machine.node_speed[static_cast<std::size_t>(k)] = slow_speed;
    const sim::SimReport report = sim::simulate_lu(t, dist, machine);
    if (slow == 0) uniform_makespan = report.makespan_seconds;
    double aggregate = 0.0;
    for (const double s : machine.node_speed) aggregate += s;
    csv.row(slow, report.total_gflops(), report.makespan_seconds,
            uniform_makespan > 0
                ? report.makespan_seconds / uniform_makespan
                : 1.0,
            aggregate / 23.0);
  }
  return 0;
}
