// Table Ia: dimensions and cost of the 2DBC and G-2DBC patterns used in the
// LU evaluation (P = 16..39).
//
// Note on P = 23 and the degenerate P x 1 grids: see EXPERIMENTS.md — the
// paper's printed T occasionally differs from its own cost definition; this
// bench reports the values computed from the constructed patterns.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("table1a_lu_patterns",
                   "Table Ia - LU pattern dimensions and costs");
  parser.add("nodes", "16,20,21,22,23,30,31,35,36,39",
             "node counts (paper rows)");
  if (!parser.parse(argc, argv)) return 1;

  std::fprintf(stderr, "table1a: LU patterns (grey rows = experimental "
                       "cases 23/31/35/39)\n");
  CsvWriter csv(std::cout);
  csv.header({"P", "best_2dbc_dims", "best_2dbc_T", "g2dbc_dims", "g2dbc_T",
              "g2dbc_T_formula"});
  for (const std::int64_t P : parser.get_int_list("nodes")) {
    const auto [r, c] = core::best_grid(P);
    const core::G2dbcParams params = core::g2dbc_params(P);
    std::string g_dims = "-";
    std::string g_cost = "-";
    std::string g_formula = "-";
    // The paper's table leaves G-2DBC blank where it coincides with 2DBC.
    if (!params.degenerate()) {
      const core::Pattern g2dbc = core::make_g2dbc(P);
      g_dims = bench::dims(g2dbc);
      g_cost = std::to_string(core::lu_cost(g2dbc));
      g_formula = std::to_string(core::g2dbc_cost_formula(P));
    }
    csv.row(P, std::to_string(r) + "x" + std::to_string(c),
            static_cast<double>(r + c), g_dims, g_cost, g_formula);
  }
  return 0;
}
