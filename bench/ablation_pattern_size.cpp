// Ablation: pattern size vs communication efficiency (the paper's §VI open
// question: "how large a pattern needs to be to obtain good communication
// efficiency, or the tradeoff between pattern size and communication
// efficiency").
//
// For each feasible GCR&M pattern size r (best of a few seeds), reports the
// combinatorial cost z-bar *and* the simulated Cholesky throughput, showing
// how much of the cost difference survives contact with load balancing and
// network contention.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/cost.hpp"
#include "core/pattern_search.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("ablation_pattern_size",
                   "GCR&M pattern size vs cost vs simulated throughput");
  bench::add_machine_options(parser);
  parser.add("nodes", "23", "node count P");
  parser.add("size", "100000", "matrix size N");
  parser.add("seeds", "20", "seeds per pattern size");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  const std::int64_t n = parser.get_int("size");
  const std::int64_t t = n / parser.get_int("tile");
  const std::int64_t seeds = parser.get_int("seeds");
  const auto max_r = static_cast<std::int64_t>(
      6.0 * std::sqrt(static_cast<double>(P)));

  std::fprintf(stderr,
               "ablation_pattern_size: P=%lld, Cholesky N=%lld (t=%lld)\n",
               static_cast<long long>(P), static_cast<long long>(n),
               static_cast<long long>(t));
  CsvWriter csv(std::cout);
  csv.header({"r", "cost_T", "total_gflops", "per_node_gflops", "messages"});
  for (const std::int64_t r : core::gcrm_feasible_sizes(P, max_r)) {
    // Best-of-seeds pattern at this exact size.
    core::Pattern best;
    double best_cost = 0.0;
    bool found = false;
    for (std::int64_t s = 0; s < seeds; ++s) {
      const core::GcrmResult attempt =
          core::gcrm_build(P, r, static_cast<std::uint64_t>(s));
      if (!attempt.valid || !attempt.pattern.is_balanced(1)) continue;
      if (!found || attempt.cost < best_cost) {
        best = attempt.pattern;
        best_cost = attempt.cost;
        found = true;
      }
    }
    if (!found) continue;
    const bench::Candidate candidate{"GCR&M r=" + std::to_string(r), best};
    const sim::SimReport report =
        bench::run_candidate(candidate, t, parser, /*symmetric=*/true);
    csv.row(r, best_cost, report.total_gflops(), report.per_node_gflops(),
            report.messages);
  }
  return 0;
}
