// Ablation: critical-path priorities vs FIFO scheduling in the simulated
// runtime.
//
// The paper credits part of the task-based approach's win to dynamic
// scheduling that keeps the panel chain moving (Section II-C).  This bench
// quantifies that on the model: the same workloads with the StarPU-style
// priority order and with plain FIFO.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("ablation_scheduler",
                   "priority vs FIFO scheduling in the simulator");
  bench::add_machine_options(parser);
  parser.add("size", "100000", "matrix size N");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t n = parser.get_int("size");
  const std::int64_t t = n / parser.get_int("tile");
  const std::vector<bench::Candidate> candidates = {
      {"2DBC 4x4", core::make_2dbc(4, 4)},
      {"2DBC 7x3", core::make_2dbc(7, 3)},
      {"G-2DBC P=23", core::make_g2dbc(23)},
  };

  std::fprintf(stderr, "ablation_scheduler: LU, N=%lld (t=%lld)\n",
               static_cast<long long>(n), static_cast<long long>(t));
  CsvWriter csv(std::cout);
  csv.header({"distribution", "P", "priority_gflops", "fifo_gflops",
              "priority_speedup"});
  for (const auto& candidate : candidates) {
    sim::MachineConfig machine =
        bench::machine_from(parser, candidate.pattern.num_nodes());
    const core::PatternDistribution dist(candidate.pattern, t, false);

    machine.priority_scheduling = true;
    const double with_prio =
        sim::simulate_lu(t, dist, machine).total_gflops();
    machine.priority_scheduling = false;
    const double with_fifo =
        sim::simulate_lu(t, dist, machine).total_gflops();
    csv.row(candidate.label, candidate.pattern.num_nodes(), with_prio,
            with_fifo, with_prio / with_fifo);
  }
  return 0;
}
