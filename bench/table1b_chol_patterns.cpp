// Table Ib: dimensions and cost of the SBC and GCR&M patterns used in the
// Cholesky evaluation.
//
// For each P: the best SBC using at most P nodes (the paper's fallback) and
// the GCR&M search result using all P nodes (r <= 6 sqrt(P), 100 seeds).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/pattern_search.hpp"
#include "core/sbc.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("table1b_chol_patterns",
                   "Table Ib - Cholesky pattern dimensions and costs");
  parser.add("nodes", "21,23,28,31,32,35,36,39", "node counts (paper rows)");
  parser.add("seeds", "100", "GCR&M random restarts per pattern size");
  if (!parser.parse(argc, argv)) return 1;

  std::fprintf(stderr,
               "table1b: Cholesky patterns (SBC fallback vs GCR&M, %lld "
               "seeds)\n",
               static_cast<long long>(parser.get_int("seeds")));
  CsvWriter csv(std::cout);
  csv.header({"P", "sbc_P_used", "sbc_dims", "sbc_T", "gcrm_dims", "gcrm_T"});
  for (const std::int64_t P : parser.get_int_list("nodes")) {
    const core::SbcParams sbc = core::best_sbc_at_most(P);
    std::string gcrm_dims = "-";
    std::string gcrm_cost = "-";
    // The paper's table runs GCR&M only where no SBC uses all P nodes.
    if (sbc.P != P) {
      core::GcrmSearchOptions options;
      options.seeds = parser.get_int("seeds");
      const core::GcrmSearchResult search = core::gcrm_search(P, options);
      if (search.found) {
        gcrm_dims = std::to_string(search.best.rows()) + "x" +
                    std::to_string(search.best.cols());
        gcrm_cost = std::to_string(search.best_cost);
      }
    }
    csv.row(P, sbc.P,
            std::to_string(sbc.a) + "x" + std::to_string(sbc.a), sbc.cost(),
            gcrm_dims, gcrm_cost);
  }
  return 0;
}
