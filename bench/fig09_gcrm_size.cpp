// Fig. 9: effect of pattern size and random tie-breaking for P = 23.
//
// Sweeps every feasible pattern size r <= 6 sqrt(P), runs GCR&M with many
// seeds, and reports the per-size min/mean/max cost plus every sample —
// showing (as the paper observes) that a larger pattern is not always
// better and that random choices matter.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/pattern_search.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("fig09_gcrm_size",
                   "Fig. 9 - GCR&M cost vs pattern size and seed, P = 23");
  parser.add("nodes", "23", "node count P");
  parser.add("seeds", "100", "random restarts per size");
  parser.add_flag("samples", "also emit every individual sample row");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  core::GcrmSearchOptions options;
  options.seeds = parser.get_int("seeds");
  const core::GcrmSearchResult search =
      core::gcrm_search(P, options, /*keep_samples=*/true);

  std::fprintf(stderr, "fig09: P=%lld, %lld seeds per size, best T=%.4f\n",
               static_cast<long long>(P),
               static_cast<long long>(options.seeds), search.best_cost);
  CsvWriter csv(std::cout);
  if (parser.get_flag("samples")) {
    csv.header({"r", "seed", "cost", "valid"});
    for (const auto& sample : search.samples)
      csv.row(sample.r, sample.seed, sample.cost, sample.valid ? 1 : 0);
    return 0;
  }

  csv.header({"r", "valid_samples", "min_cost", "mean_cost", "max_cost"});
  const auto max_r = static_cast<std::int64_t>(
      options.max_r_factor * std::sqrt(static_cast<double>(P)));
  for (const std::int64_t r : core::gcrm_feasible_sizes(P, max_r)) {
    double lo = 1e300;
    double hi = 0.0;
    double sum = 0.0;
    std::int64_t count = 0;
    for (const auto& sample : search.samples) {
      if (sample.r != r || !sample.valid) continue;
      lo = std::min(lo, sample.cost);
      hi = std::max(hi, sample.cost);
      sum += sample.cost;
      ++count;
    }
    if (count > 0)
      csv.row(r, count, lo, sum / static_cast<double>(count), hi);
  }
  return 0;
}
