// Shared helpers for the table/figure bench binaries.
//
// Every bench accepts the same machine options and prints CSV on stdout;
// explanatory context goes to stderr so stdout stays machine-readable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/distribution.hpp"
#include "core/pattern.hpp"
#include "sim/engine.hpp"
#include "sim/machine.hpp"
#include "util/args.hpp"
#include "vmpi/transport.hpp"

namespace anyblock::bench {

/// Registers --workers/--gflops/--bandwidth/--latency/--tile.
void add_machine_options(ArgParser& parser);

/// Registers --transport/--rendezvous, so every bench driving real vmpi
/// runs can pick a backend the same way `anyblock run` does.
void add_transport_options(ArgParser& parser);

/// Builds the backend from ANYBLOCK_* environment (set by `anyblock
/// launch`) with the parsed flags layered on top.  Null means the
/// in-process default; install the result with vmpi::ScopedTransport.
std::unique_ptr<vmpi::Transport> transport_from(const ArgParser& parser,
                                                int world_size);

/// Builds the machine model from parsed options; `nodes` is bench-specific.
sim::MachineConfig machine_from(const ArgParser& parser, std::int64_t nodes);

/// A named distribution candidate in a comparison figure.
struct Candidate {
  std::string label;    ///< e.g. "G-2DBC P=23" or "2DBC 7x3 P=21"
  core::Pattern pattern;
};

/// Formats "RxC" for pattern dimensions.
std::string dims(const core::Pattern& pattern);

/// Runs one factorization simulation for `n = t * tile` and returns the
/// report; `symmetric` selects Cholesky vs LU.
sim::SimReport run_candidate(const Candidate& candidate, std::int64_t t,
                             const ArgParser& parser, bool symmetric);

/// Emits one CSV row of a performance figure:
/// kernel,label,P,pattern,N,t,total_gflops,per_node_gflops,messages,seconds
void print_perf_header();
void print_perf_row(const char* kernel, const Candidate& candidate,
                    std::int64_t n, std::int64_t t,
                    const sim::SimReport& report);

/// The N sweep for a figure: --sizes in matrix elements, converted to tile
/// counts with --tile (sizes not divisible by the tile size are rounded).
std::vector<std::int64_t> size_sweep(const ArgParser& parser);

}  // namespace anyblock::bench
