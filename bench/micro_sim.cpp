// Micro benchmarks for the cluster simulator plus the BENCH_sim.json perf
// trajectory.
//
// Two personalities behind one custom main:
//
//   micro_sim                          google-benchmark sweeps (as before)
//   micro_sim --json=BENCH_sim.json    append one trajectory entry: the
//                                      P = 1024 reference configuration
//                                      measured for both engines, with
//                                      events/sec, peak RSS and makespan
//   micro_sim --json=... --check       same, but exit 1 when events/sec
//                                      regresses >25% against the last
//                                      recorded entry (the CI perf smoke)
//
// The trajectory entry records the calendar-queue + implicit-DAG engine
// against the in-process reference: the binary-heap queue over the fully
// materialized DAG — the seed engine's data structures on today's code.
// Both simulate the identical trajectory (enforced by the equivalence
// tests), so events/sec over build+run wall time is a like-for-like
// throughput comparison.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "sim/engine.hpp"
#include "util/sysinfo.hpp"

using namespace anyblock;

namespace {

sim::MachineConfig machine(std::int64_t nodes) {
  sim::MachineConfig config;
  config.nodes = nodes;
  config.workers_per_node = 34;
  config.tile_size = 1000;
  return config;
}

void BM_BuildLuWorkload(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  const auto config = machine(23);
  const core::PatternDistribution dist(core::make_g2dbc(23), t, false);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::build_lu_workload(t, dist, config));
  state.counters["tasks"] = static_cast<double>(
      sim::build_lu_workload(t, dist, config).task_count());
}
BENCHMARK(BM_BuildLuWorkload)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SimulateLu(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  const auto config = machine(23);
  const core::PatternDistribution dist(core::make_g2dbc(23), t, false);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_lu(t, dist, config));
}
BENCHMARK(BM_SimulateLu)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SimulateLuImplicit(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  auto config = machine(23);
  config.workload_mode = sim::WorkloadMode::kImplicit;
  const core::PatternDistribution dist(core::make_g2dbc(23), t, false);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_lu(t, dist, config));
}
BENCHMARK(BM_SimulateLuImplicit)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateCholesky(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  const auto config = machine(25);
  const core::PatternDistribution dist(core::make_2dbc(5, 5), t, true);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_cholesky(t, dist, config));
}
BENCHMARK(BM_SimulateCholesky)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_SimulateCholeskyImplicit(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  auto config = machine(25);
  config.workload_mode = sim::WorkloadMode::kImplicit;
  const core::PatternDistribution dist(core::make_2dbc(5, 5), t, true);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_cholesky(t, dist, config));
}
BENCHMARK(BM_SimulateCholeskyImplicit)
    ->Arg(50)
    ->Arg(100)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BENCH_sim.json trajectory
// ---------------------------------------------------------------------------

/// The trajectory's fixed reference configuration: LU under G-2DBC at
/// P = 1024 — the paper's "any number of nodes" regime, far past what the
/// materialized engine was built for (~700k tasks, ~1.2M events).
constexpr std::int64_t kTrajectoryNodes = 1024;
constexpr std::int64_t kTrajectoryTiles = 128;

struct Measurement {
  std::int64_t events = 0;
  double seconds = 0.0;  ///< build + run wall time
  double events_per_sec = 0.0;
  double makespan = 0.0;
  std::int64_t frontier_peak = 0;
  std::int64_t peak_rss = 0;  ///< process high-water after this phase
};

Measurement measure(sim::WorkloadMode workload, sim::EventQueueMode queue) {
  sim::MachineConfig config = machine(kTrajectoryNodes);
  config.workers_per_node = 2;
  config.workload_mode = workload;
  config.event_queue = queue;
  const core::PatternDistribution dist(core::make_g2dbc(kTrajectoryNodes),
                                       kTrajectoryTiles, false);
  const sim::SimReport report =
      sim::simulate_lu(kTrajectoryTiles, dist, config);
  Measurement m;
  m.events = report.events;
  m.seconds = report.build_seconds + report.run_seconds;
  m.events_per_sec =
      m.seconds > 0.0 ? static_cast<double>(m.events) / m.seconds : 0.0;
  m.makespan = report.makespan_seconds;
  m.frontier_peak = report.frontier_peak;
  m.peak_rss = peak_rss_bytes();
  return m;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

std::string render_entry(const std::string& label, const Measurement& engine,
                         const Measurement& reference) {
  std::ostringstream out;
  out.precision(6);
  out << "  {\n"
      << "    \"date\": \"" << utc_timestamp() << "\",\n"
      << "    \"label\": \"" << label << "\",\n"
      << "    \"config\": {\"kernel\": \"lu\", \"scheme\": \"g2dbc\", \"P\": "
      << kTrajectoryNodes << ", \"t\": " << kTrajectoryTiles << "},\n"
      << "    \"events\": " << engine.events << ",\n"
      << "    \"events_per_sec\": " << std::fixed << engine.events_per_sec
      << ",\n"
      << "    \"seconds\": " << engine.seconds << ",\n"
      << "    \"makespan_seconds\": " << engine.makespan << ",\n"
      << "    \"frontier_peak\": " << engine.frontier_peak << ",\n"
      << "    \"peak_rss_bytes\": " << engine.peak_rss << ",\n"
      << "    \"reference_events_per_sec\": " << reference.events_per_sec
      << ",\n"
      << "    \"reference_seconds\": " << reference.seconds << ",\n"
      << "    \"reference_peak_rss_bytes\": " << reference.peak_rss << ",\n"
      << "    \"speedup_vs_reference\": "
      << (reference.events_per_sec > 0.0
              ? engine.events_per_sec / reference.events_per_sec
              : 0.0)
      << "\n  }";
  return out.str();
}

/// Last "events_per_sec" value already recorded in the trajectory (the
/// regression baseline), or -1 when the file has no entries.  A plain
/// string scan — the file is machine-written with one key per line.
double last_events_per_sec(const std::string& text) {
  const std::string key = "\"events_per_sec\":";
  double last = -1.0;
  std::size_t at = 0;
  while ((at = text.find(key, at)) != std::string::npos) {
    at += key.size();
    last = std::strtod(text.c_str() + at, nullptr);
  }
  return last;
}

int run_trajectory(const std::string& path, const std::string& label,
                   bool check) {
  // Order matters for RSS attribution: peak RSS is a process high-water
  // mark, so the lean engine must run before the materialized reference.
  const Measurement engine =
      measure(sim::WorkloadMode::kImplicit, sim::EventQueueMode::kCalendar);
  const Measurement reference = measure(sim::WorkloadMode::kMaterialized,
                                        sim::EventQueueMode::kBinaryHeap);
  if (engine.events != reference.events) {
    std::fprintf(stderr,
                 "engines diverged: %lld vs %lld events — not comparable\n",
                 static_cast<long long>(engine.events),
                 static_cast<long long>(reference.events));
    return 1;
  }

  std::string existing;
  if (std::ifstream in(path); in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    existing = buffer.str();
  }
  const double previous = last_events_per_sec(existing);

  const std::string entry = render_entry(label, engine, reference);
  std::string updated;
  const std::size_t closing = existing.rfind(']');
  if (closing == std::string::npos) {
    updated = "[\n" + entry + "\n]\n";
  } else {
    const bool has_entries = existing.find('{') < closing;
    updated = existing.substr(0, closing);
    while (!updated.empty() &&
           (updated.back() == '\n' || updated.back() == ' '))
      updated.pop_back();
    updated += has_entries ? ",\n" : "\n";
    updated += entry + "\n]\n";
  }
  if (std::ofstream out(path); !out || !(out << updated)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }

  std::printf("sim engine:  %.0f events/s (%lld events in %.2f s), "
              "peak RSS %.1f MiB, frontier %lld\n",
              engine.events_per_sec, static_cast<long long>(engine.events),
              engine.seconds, engine.peak_rss / 1048576.0,
              static_cast<long long>(engine.frontier_peak));
  std::printf("reference:   %.0f events/s (heap + materialized, %.2f s), "
              "peak RSS %.1f MiB\n",
              reference.events_per_sec, reference.seconds,
              reference.peak_rss / 1048576.0);
  std::printf("speedup:     %.2fx;  appended to %s\n",
              reference.events_per_sec > 0.0
                  ? engine.events_per_sec / reference.events_per_sec
                  : 0.0,
              path.c_str());

  if (check && previous > 0.0 &&
      engine.events_per_sec < 0.75 * previous) {
    std::fprintf(stderr,
                 "PERF REGRESSION: %.0f events/s is more than 25%% below "
                 "the last recorded %.0f events/s\n",
                 engine.events_per_sec, previous);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string label = "dev";
  bool check = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--label=", 8) == 0) {
      label = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return run_trajectory(json_path, label, check);

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
