// Micro benchmarks for the cluster simulator: workload construction and
// event-loop throughput, which bound the matrix sizes the figure benches
// can sweep.
#include <benchmark/benchmark.h>

#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "sim/engine.hpp"

using namespace anyblock;

namespace {

sim::MachineConfig machine(std::int64_t nodes) {
  sim::MachineConfig config;
  config.nodes = nodes;
  config.workers_per_node = 34;
  config.tile_size = 1000;
  return config;
}

void BM_BuildLuWorkload(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  const auto config = machine(23);
  const core::PatternDistribution dist(core::make_g2dbc(23), t, false);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::build_lu_workload(t, dist, config));
  state.counters["tasks"] = static_cast<double>(
      sim::build_lu_workload(t, dist, config).task_count());
}
BENCHMARK(BM_BuildLuWorkload)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SimulateLu(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  const auto config = machine(23);
  const core::PatternDistribution dist(core::make_g2dbc(23), t, false);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_lu(t, dist, config));
}
BENCHMARK(BM_SimulateLu)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_SimulateCholesky(benchmark::State& state) {
  const std::int64_t t = state.range(0);
  const auto config = machine(25);
  const core::PatternDistribution dist(core::make_2dbc(5, 5), t, true);
  for (auto _ : state)
    benchmark::DoNotOptimize(sim::simulate_cholesky(t, dist, config));
}
BENCHMARK(BM_SimulateCholesky)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
