// Fig. 2: the owner-computes communication scheme on a 2x3 2DBC pattern
// (m = 12 tiles, P = 6), for LU (row/column sends) and Cholesky (colrow
// sends) at iteration l = 3.
//
// Reproduced textually: for each sending tile of iteration l, the exact set
// of receiver nodes, computed by the same logic the distributed runs and
// the simulator use.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "util/csv.hpp"

using namespace anyblock;

namespace {

std::string node_list(std::vector<core::NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  std::string out;
  for (const auto n : nodes) {
    if (!out.empty()) out += ' ';
    out += std::to_string(n);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("fig02_comm_scheme",
                   "Fig. 2 - communication scheme of 2DBC, m=12, P=6, l=3");
  parser.add("t", "12", "tile grid side");
  parser.add("l", "3", "iteration shown");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t t = parser.get_int("t");
  const std::int64_t l = parser.get_int("l");
  const core::Pattern pattern = core::make_2dbc(2, 3);
  const auto owner = [&](std::int64_t i, std::int64_t j) {
    return pattern.owner_of_tile(i, j);
  };

  std::fprintf(stderr,
               "fig02: send sets at iteration %lld on the 2x3 2DBC pattern\n",
               static_cast<long long>(l));
  CsvWriter csv(std::cout);
  csv.header({"kernel", "tile", "sender", "receivers"});

  // LU: tile (i, l) goes right along row i; tile (l, j) goes down column j.
  for (std::int64_t i = l; i < t; ++i) {
    std::vector<core::NodeId> receivers;
    for (std::int64_t j = l + 1; j < t; ++j) {
      if (owner(i, j) != owner(i, l)) receivers.push_back(owner(i, j));
    }
    if (i == l) {  // the diagonal tile also feeds the column TRSMs
      for (std::int64_t k = l + 1; k < t; ++k) {
        if (owner(k, l) != owner(l, l)) receivers.push_back(owner(k, l));
      }
    }
    csv.row("lu", "(" + std::to_string(i) + "," + std::to_string(l) + ")",
            owner(i, l), node_list(receivers));
  }
  for (std::int64_t j = l + 1; j < t; ++j) {
    std::vector<core::NodeId> receivers;
    for (std::int64_t i = l + 1; i < t; ++i) {
      if (owner(i, j) != owner(l, j)) receivers.push_back(owner(i, j));
    }
    csv.row("lu", "(" + std::to_string(l) + "," + std::to_string(j) + ")",
            owner(l, j), node_list(receivers));
  }

  // Cholesky: tile (i, l) travels along *colrow i* of the trailing matrix.
  for (std::int64_t i = l; i < t; ++i) {
    std::vector<core::NodeId> receivers;
    if (i == l) {
      for (std::int64_t k = l + 1; k < t; ++k) {
        if (owner(k, l) != owner(l, l)) receivers.push_back(owner(k, l));
      }
    } else {
      for (std::int64_t j = l + 1; j <= i; ++j) {
        if (owner(i, j) != owner(i, l)) receivers.push_back(owner(i, j));
      }
      for (std::int64_t k = i; k < t; ++k) {
        if (owner(k, i) != owner(i, l)) receivers.push_back(owner(k, i));
      }
    }
    csv.row("cholesky",
            "(" + std::to_string(i) + "," + std::to_string(l) + ")",
            owner(i, l), node_list(receivers));
  }
  return 0;
}
