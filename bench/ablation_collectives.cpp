// Ablation: point-to-point eager sends vs a binomial broadcast tree.
//
// The paper notes Chameleon "does not make use of complex collective
// communication schemes: each inter-node communication uses a point-to-
// point MPI communication" (Section II-C), which is why the message count
// is proportional to the communication volume.  This ablation measures
// what forwarding trees would buy each distribution: high-T patterns (many
// receivers per tile) should gain the most.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("ablation_collectives",
                   "serial eager sends vs binomial broadcast trees (LU)");
  bench::add_machine_options(parser);
  parser.add("size", "100000", "matrix size N");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t n = parser.get_int("size");
  const std::int64_t t = n / parser.get_int("tile");
  const std::vector<bench::Candidate> candidates = {
      {"2DBC 23x1", core::make_2dbc(23, 1)},
      {"2DBC 7x3", core::make_2dbc(7, 3)},
      {"G-2DBC P=23", core::make_g2dbc(23)},
  };

  std::fprintf(stderr, "ablation_collectives: LU, N=%lld (t=%lld)\n",
               static_cast<long long>(n), static_cast<long long>(t));
  CsvWriter csv(std::cout);
  csv.header({"distribution", "P", "p2p_gflops", "tree_gflops",
              "tree_speedup"});
  for (const auto& candidate : candidates) {
    sim::MachineConfig machine =
        bench::machine_from(parser, candidate.pattern.num_nodes());
    const core::PatternDistribution dist(candidate.pattern, t, false);
    machine.tree_broadcast = false;
    const double p2p = sim::simulate_lu(t, dist, machine).total_gflops();
    machine.tree_broadcast = true;
    const double tree = sim::simulate_lu(t, dist, machine).total_gflops();
    csv.row(candidate.label, candidate.pattern.num_nodes(), p2p, tree,
            tree / p2p);
  }
  return 0;
}
