// Ablation: the three tile-multicast collectives, simulated AND measured.
//
// The paper notes Chameleon "does not make use of complex collective
// communication schemes: each inter-node communication uses a point-to-
// point MPI communication" (Section II-C), which is why the message count
// is proportional to the communication volume.  This ablation measures
// what forwarding collectives would buy each distribution, and puts the
// three model layers side by side for every algorithm:
//   sim_gflops / speedup   — full-size cluster simulation,
//   predicted_messages     — closed form (core::exact_lu_messages),
//   sim_messages           — simulator total at the small validation size,
//   measured_messages      — vmpi counters of a real distributed_lu run.
// The last three agree exactly per algorithm; high-T patterns (many
// receivers per tile) gain the most from the tree.
#include <cctype>
#include <cstdio>
#include <iostream>
#include <string>

#include "comm/config.hpp"
#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "dist/dist_factorization.hpp"
#include "linalg/generators.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

using namespace anyblock;

namespace {

// "G-2DBC P=23" -> "g-2dbc-p23": safe inside a file name.
std::string slug(const std::string& label) {
  std::string out;
  for (const char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    else if (!out.empty() && out.back() != '-')
      out += '-';
  }
  while (!out.empty() && out.back() == '-') out.pop_back();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("ablation_collectives",
                   "eager p2p vs binomial tree vs pipelined chain (LU)");
  bench::add_machine_options(parser);
  parser.add("size", "100000", "matrix size N (simulated throughput)");
  parser.add("vt", "16", "tile grid side of the measured validation run");
  parser.add("chunks", "4", "chunks per tile for the pipelined chain");
  parser.add("trace", "",
             "prefix: write <prefix>-<distribution>-<collective>.json Chrome "
             "traces of every measured validation run");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t n = parser.get_int("size");
  const std::int64_t t = n / parser.get_int("tile");
  const std::int64_t vt = parser.get_int("vt");
  const std::vector<bench::Candidate> candidates = {
      {"2DBC 23x1", core::make_2dbc(23, 1)},
      {"2DBC 7x3", core::make_2dbc(7, 3)},
      {"G-2DBC P=23", core::make_g2dbc(23)},
  };
  const comm::Algorithm algorithms[] = {comm::Algorithm::kEagerP2P,
                                        comm::Algorithm::kBinomialTree,
                                        comm::Algorithm::kPipelinedChain};

  std::fprintf(stderr,
               "ablation_collectives: LU, N=%lld (t=%lld), validation t=%lld\n",
               static_cast<long long>(n), static_cast<long long>(t),
               static_cast<long long>(vt));
  CsvWriter csv(std::cout);
  csv.header({"distribution", "P", "collective", "sim_gflops", "speedup",
              "predicted_messages", "sim_messages", "measured_messages"});
  for (const auto& candidate : candidates) {
    const std::int64_t P = candidate.pattern.num_nodes();
    const core::PatternDistribution dist(candidate.pattern, t, false);
    const core::PatternDistribution vdist(candidate.pattern, vt, false);

    // One small real matrix per candidate, factored under every algorithm.
    constexpr std::int64_t kNb = 4;
    Rng rng(19);
    const linalg::DenseMatrix a = linalg::diag_dominant_matrix(vt * kNb, rng);
    const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);

    double p2p_gflops = 0.0;
    for (const comm::Algorithm algorithm : algorithms) {
      comm::CollectiveConfig config;
      config.algorithm = algorithm;
      config.chain_chunks = parser.get_int("chunks");

      sim::MachineConfig machine = bench::machine_from(parser, P);
      machine.collective = config;
      const double gflops = sim::simulate_lu(t, dist, machine).total_gflops();
      if (algorithm == comm::Algorithm::kEagerP2P) p2p_gflops = gflops;

      sim::MachineConfig vmachine = bench::machine_from(parser, P);
      vmachine.collective = config;
      const std::int64_t sim_messages =
          sim::simulate_lu(vt, vdist, vmachine).messages;
      const std::int64_t predicted = core::exact_lu_messages(vdist, vt, config);
      const std::string trace_prefix = parser.get("trace");
      obs::Recorder recorder;
      const dist::DistRunResult run = dist::distributed_lu(
          input, vdist, config,
          trace_prefix.empty() ? nullptr : &recorder);
      if (!trace_prefix.empty()) {
        const std::string path = trace_prefix + "-" + slug(candidate.label) +
                                 "-" +
                                 comm::algorithm_name(algorithm) + ".json";
        if (!obs::write_chrome_trace_file(path, recorder.take())) {
          std::fprintf(stderr, "cannot write %s\n", path.c_str());
          return 1;
        }
      }

      csv.row(candidate.label, P, comm::algorithm_name(algorithm), gflops,
              gflops / p2p_gflops, predicted, sim_messages,
              run.ok ? run.tile_messages : -1);
    }
  }
  return 0;
}
