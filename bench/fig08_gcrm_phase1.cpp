// Fig. 8: illustration of GCR&M's first phase — colrow-to-node assignment.
//
// The paper's figure shows one greedy step: node p already holds colrows
// {5, 8, 10}; colrow 2 is preferred over colrow 3 because it covers more
// new cells.  This bench reproduces the decision data for a full run: the
// final colrow assignment A[p] per node, each node's cell count, and the
// resulting pattern, so the phase-1 behaviour is inspectable end to end.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/cost.hpp"
#include "core/gcrm.hpp"
#include "core/pattern_io.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("fig08_gcrm_phase1",
                   "Fig. 8 - GCR&M phase 1 colrow assignment, inspectable");
  parser.add("nodes", "10", "node count P");
  parser.add("size", "13", "pattern size r");
  parser.add("seed", "1", "random seed");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  const std::int64_t r = parser.get_int("size");
  if (!core::gcrm_feasible(P, r)) {
    std::fprintf(stderr, "infeasible (P=%lld, r=%lld) under Eq. 3\n",
                 static_cast<long long>(P), static_cast<long long>(r));
    return 1;
  }
  const core::GcrmResult result = core::gcrm_build(
      P, r, static_cast<std::uint64_t>(parser.get_int("seed")));

  CsvWriter csv(std::cout);
  csv.header({"node", "colrows", "cells_owned"});
  const auto loads = result.pattern.node_loads();
  for (std::int64_t p = 0; p < P; ++p) {
    std::string colrows;
    for (const auto q : result.colrows_per_node[static_cast<std::size_t>(p)]) {
      if (!colrows.empty()) colrows += ' ';
      colrows += std::to_string(q);
    }
    csv.row(p, colrows, loads[static_cast<std::size_t>(p)]);
  }

  std::fprintf(stderr,
               "pattern (z-bar = %.4f, matched r1=%lld r2=%lld fallback=%lld)"
               ":\n%s",
               result.cost,
               static_cast<long long>(result.cells_matched_round1),
               static_cast<long long>(result.cells_matched_round2),
               static_cast<long long>(result.cells_fallback),
               core::render_pattern(result.pattern).c_str());
  return 0;
}
