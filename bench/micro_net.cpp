// Micro benchmarks for the transport backends plus the BENCH_net.json
// throughput trajectory.
//
// Two personalities behind one custom main, mirroring micro_sim:
//
//   micro_net                          google-benchmark sweeps: a 2-rank
//                                      message stream per backend and
//                                      payload size
//   micro_net --json=BENCH_net.json    append one trajectory entry:
//                                      messages/sec (8-double envelopes)
//                                      and MB/sec (64 KiB payloads) for
//                                      the in-process and socket backends
//   micro_net --json=... --check       same, but exit 1 when the socket
//                                      backend's messages/sec regresses
//                                      >25% against the last entry
//
// The socket numbers host both endpoints of a 2-process mesh inside this
// process over loopback TCP — the full wire path (framing, epoll loop,
// write-queue backpressure) without cross-host noise, exactly like the
// conformance suite.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <exception>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_transport.hpp"
#include "vmpi/vmpi.hpp"

using namespace anyblock;

namespace {

using vmpi::Payload;
using vmpi::RankContext;

constexpr int kRanks = 2;
constexpr std::int64_t kSmallDoubles = 8;      ///< envelope-dominated
constexpr std::int64_t kLargeDoubles = 8192;   ///< 64 KiB: bandwidth-bound
constexpr int kSmallMessages = 20000;
constexpr int kLargeMessages = 2000;

struct TempDir {
  std::string path;
  TempDir() {
    std::string pattern = "/tmp/anyblock-micronet-XXXXXX";
    if (mkdtemp(pattern.data()) == nullptr)
      throw std::runtime_error("mkdtemp failed");
    path = pattern;
  }
  ~TempDir() {
    const std::string cleanup = "rm -rf '" + path + "'";
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());
  }
};

/// Both endpoints of a 2-process loopback mesh hosted in this process;
/// run() drives one run_ranks per endpoint on two threads.
class SocketMesh {
 public:
  SocketMesh() {
    net::SocketTransportConfig config;
    config.world_size = kRanks;
    config.process_count = 2;
    config.rendezvous_dir = rendezvous_.path;
    net::SocketTransportConfig other = config;
    other.process_index = 1;
    config.process_index = 0;
    std::exception_ptr setup_error;
    std::thread dialer([&, other] {
      try {
        endpoint1_ = std::make_unique<net::SocketTransport>(other);
      } catch (...) {
        setup_error = std::current_exception();
      }
    });
    try {
      endpoint0_ = std::make_unique<net::SocketTransport>(config);
    } catch (...) {
      setup_error = std::current_exception();
    }
    dialer.join();
    if (setup_error) std::rethrow_exception(setup_error);
  }

  void run(const std::function<void(RankContext&)>& body) {
    std::exception_ptr side_error;
    std::thread side([&] {
      try {
        vmpi::RunOptions options;
        options.transport = endpoint1_.get();
        vmpi::run_ranks(kRanks, body, options);
      } catch (...) {
        side_error = std::current_exception();
      }
    });
    vmpi::RunOptions options;
    options.transport = endpoint0_.get();
    vmpi::run_ranks(kRanks, body, options);
    side.join();
    if (side_error) std::rethrow_exception(side_error);
  }

 private:
  TempDir rendezvous_;
  std::unique_ptr<net::SocketTransport> endpoint0_;
  std::unique_ptr<net::SocketTransport> endpoint1_;
};

/// Rank 0 streams `messages` payloads of `doubles` to rank 1; run_ranks
/// returns once rank 1 has received every one, so timing the run times
/// end-to-end delivery.
std::function<void(RankContext&)> stream_body(int messages,
                                              std::int64_t doubles) {
  return [messages, doubles](RankContext& ctx) {
    if (ctx.rank() == 0) {
      const Payload payload(static_cast<std::size_t>(doubles), 1.5);
      for (int k = 0; k < messages; ++k) ctx.send(1, /*tag=*/1, payload);
    } else {
      for (int k = 0; k < messages; ++k) ctx.recv(0, /*tag=*/1);
    }
  };
}

double time_inproc(int messages, std::int64_t doubles) {
  const auto start = std::chrono::steady_clock::now();
  vmpi::run_ranks(kRanks, stream_body(messages, doubles));
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double time_socket(SocketMesh& mesh, int messages, std::int64_t doubles) {
  const auto start = std::chrono::steady_clock::now();
  mesh.run(stream_body(messages, doubles));
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// ---------------------------------------------------------------------------
// google-benchmark sweeps
// ---------------------------------------------------------------------------

void BM_InprocStream(benchmark::State& state) {
  const auto doubles = static_cast<std::int64_t>(state.range(0));
  constexpr int kBatch = 1000;
  for (auto _ : state) vmpi::run_ranks(kRanks, stream_body(kBatch, doubles));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch,
      benchmark::Counter::kIsRate);
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch *
          static_cast<double>(doubles) * sizeof(double) / 1.0e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InprocStream)
    ->Arg(kSmallDoubles)
    ->Arg(kLargeDoubles)
    ->UseRealTime()  // the driver thread blocks; CPU time would flatter it
    ->Unit(benchmark::kMillisecond);

void BM_SocketStream(benchmark::State& state) {
  const auto doubles = static_cast<std::int64_t>(state.range(0));
  constexpr int kBatch = 1000;
  SocketMesh mesh;  // one mesh per benchmark: handshake is not timed
  for (auto _ : state) mesh.run(stream_body(kBatch, doubles));
  state.counters["msgs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch,
      benchmark::Counter::kIsRate);
  state.counters["MB/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBatch *
          static_cast<double>(doubles) * sizeof(double) / 1.0e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SocketStream)
    ->Arg(kSmallDoubles)
    ->Arg(kLargeDoubles)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BENCH_net.json trajectory
// ---------------------------------------------------------------------------

struct BackendThroughput {
  double messages_per_sec = 0.0;  ///< 8-double payload stream
  double mb_per_sec = 0.0;        ///< 64 KiB payload stream
};

BackendThroughput measure_inproc() {
  time_inproc(kSmallMessages / 10, kSmallDoubles);  // warm-up
  BackendThroughput t;
  t.messages_per_sec =
      kSmallMessages / time_inproc(kSmallMessages, kSmallDoubles);
  t.mb_per_sec = kLargeMessages * kLargeDoubles * sizeof(double) / 1.0e6 /
                 time_inproc(kLargeMessages, kLargeDoubles);
  return t;
}

BackendThroughput measure_socket() {
  SocketMesh mesh;
  time_socket(mesh, kSmallMessages / 10, kSmallDoubles);  // warm-up
  BackendThroughput t;
  t.messages_per_sec =
      kSmallMessages / time_socket(mesh, kSmallMessages, kSmallDoubles);
  t.mb_per_sec = kLargeMessages * kLargeDoubles * sizeof(double) / 1.0e6 /
                 time_socket(mesh, kLargeMessages, kLargeDoubles);
  return t;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

std::string render_entry(const std::string& label,
                         const BackendThroughput& inproc,
                         const BackendThroughput& socket) {
  std::ostringstream out;
  out.precision(6);
  out << "  {\n"
      << "    \"date\": \"" << utc_timestamp() << "\",\n"
      << "    \"label\": \"" << label << "\",\n"
      << "    \"config\": {\"ranks\": " << kRanks
      << ", \"small_doubles\": " << kSmallDoubles
      << ", \"large_doubles\": " << kLargeDoubles
      << ", \"small_messages\": " << kSmallMessages
      << ", \"large_messages\": " << kLargeMessages << "},\n"
      << std::fixed
      << "    \"inproc_messages_per_sec\": " << inproc.messages_per_sec
      << ",\n"
      << "    \"inproc_mb_per_sec\": " << inproc.mb_per_sec << ",\n"
      << "    \"socket_messages_per_sec\": " << socket.messages_per_sec
      << ",\n"
      << "    \"socket_mb_per_sec\": " << socket.mb_per_sec << ",\n"
      << "    \"socket_vs_inproc\": "
      << (inproc.messages_per_sec > 0.0
              ? socket.messages_per_sec / inproc.messages_per_sec
              : 0.0)
      << "\n  }";
  return out.str();
}

/// Last "socket_messages_per_sec" already recorded (regression baseline),
/// or -1 when the file has no entries.
double last_socket_messages_per_sec(const std::string& text) {
  const std::string key = "\"socket_messages_per_sec\":";
  double last = -1.0;
  std::size_t at = 0;
  while ((at = text.find(key, at)) != std::string::npos) {
    at += key.size();
    last = std::strtod(text.c_str() + at, nullptr);
  }
  return last;
}

int run_trajectory(const std::string& path, const std::string& label,
                   bool check) {
  const BackendThroughput inproc = measure_inproc();
  const BackendThroughput socket = measure_socket();

  std::string existing;
  if (std::ifstream in(path); in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    existing = buffer.str();
  }
  const double previous = last_socket_messages_per_sec(existing);

  const std::string entry = render_entry(label, inproc, socket);
  std::string updated;
  const std::size_t closing = existing.rfind(']');
  if (closing == std::string::npos) {
    updated = "[\n" + entry + "\n]\n";
  } else {
    const bool has_entries = existing.find('{') < closing;
    updated = existing.substr(0, closing);
    while (!updated.empty() &&
           (updated.back() == '\n' || updated.back() == ' '))
      updated.pop_back();
    updated += has_entries ? ",\n" : "\n";
    updated += entry + "\n]\n";
  }
  if (std::ofstream out(path); !out || !(out << updated)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }

  std::printf("inproc:  %.0f msgs/s (%lld-double), %.1f MB/s (64 KiB)\n",
              inproc.messages_per_sec,
              static_cast<long long>(kSmallDoubles), inproc.mb_per_sec);
  std::printf("socket:  %.0f msgs/s (%lld-double), %.1f MB/s (64 KiB)\n",
              socket.messages_per_sec,
              static_cast<long long>(kSmallDoubles), socket.mb_per_sec);
  std::printf("socket/inproc: %.3fx;  appended to %s\n",
              inproc.messages_per_sec > 0.0
                  ? socket.messages_per_sec / inproc.messages_per_sec
                  : 0.0,
              path.c_str());

  if (check && previous > 0.0 &&
      socket.messages_per_sec < 0.75 * previous) {
    std::fprintf(stderr,
                 "PERF REGRESSION: %.0f msgs/s is more than 25%% below "
                 "the last recorded %.0f msgs/s\n",
                 socket.messages_per_sec, previous);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string label = "dev";
  bool check = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--label=", 8) == 0) {
      label = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return run_trajectory(json_path, label, check);

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
