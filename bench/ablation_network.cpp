// Ablation: network bandwidth sensitivity.
//
// The gap between distributions is a communication effect, so it must grow
// as the network slows.  Sweeps NIC bandwidth for the P = 23 LU candidates;
// on an infinitely fast network every balanced distribution converges to
// machine peak, and as bandwidth shrinks the high-T patterns fall first.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("ablation_network",
                   "LU throughput vs NIC bandwidth, P <= 23");
  bench::add_machine_options(parser);
  parser.add("size", "100000", "matrix size N");
  parser.add("bandwidths", "2,5,12,25,50,100,400",
             "NIC bandwidths to sweep (GB/s)");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t n = parser.get_int("size");
  const std::int64_t t = n / parser.get_int("tile");
  const std::vector<bench::Candidate> candidates = {
      {"G-2DBC P=23", core::make_g2dbc(23)},
      {"2DBC 23x1", core::make_2dbc(23, 1)},
      {"2DBC 7x3", core::make_2dbc(7, 3)},
  };

  std::fprintf(stderr, "ablation_network: LU, N=%lld (t=%lld)\n",
               static_cast<long long>(n), static_cast<long long>(t));
  CsvWriter csv(std::cout);
  csv.header({"bandwidth_gbps", "distribution", "P", "total_gflops",
              "fraction_of_peak"});
  for (const std::int64_t bw : parser.get_int_list("bandwidths")) {
    for (const auto& candidate : candidates) {
      sim::MachineConfig machine =
          bench::machine_from(parser, candidate.pattern.num_nodes());
      machine.link_bandwidth_gbps = static_cast<double>(bw);
      const core::PatternDistribution dist(candidate.pattern, t, false);
      const sim::SimReport report = sim::simulate_lu(t, dist, machine);
      csv.row(bw, candidate.label, candidate.pattern.num_nodes(),
              report.total_gflops(),
              report.total_gflops() / machine.peak_gflops());
    }
  }
  return 0;
}
