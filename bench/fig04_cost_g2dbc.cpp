// Fig. 4: communication cost T of G-2DBC vs the best 2DBC, for every P.
//
// Series per P: best-2DBC cost (over all factorizations P = r*c), G-2DBC
// cost, and the 2*sqrt(P) reference the square grid achieves.  G-2DBC
// closely tracks 2*sqrt(P) for all P (Lemma 2: T <= 2 sqrt(P) + 2/sqrt(P)).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("fig04_cost_g2dbc",
                   "Fig. 4 - cost T of G-2DBC and best 2DBC vs P");
  parser.add("min", "2", "smallest P");
  parser.add("max", "300", "largest P");
  if (!parser.parse(argc, argv)) return 1;

  std::fprintf(stderr, "fig04: pattern costs for P in [%lld, %lld]\n",
               static_cast<long long>(parser.get_int("min")),
               static_cast<long long>(parser.get_int("max")));
  CsvWriter csv(std::cout);
  csv.header({"P", "best_2dbc_dims", "best_2dbc_T", "g2dbc_dims", "g2dbc_T",
              "two_sqrt_P", "lemma2_bound"});
  for (std::int64_t P = parser.get_int("min"); P <= parser.get_int("max");
       ++P) {
    const auto [r, c] = core::best_grid(P);
    const core::Pattern g2dbc = core::make_g2dbc(P);
    csv.row(P, std::to_string(r) + "x" + std::to_string(c),
            static_cast<double>(r + c), bench::dims(g2dbc),
            core::lu_cost(g2dbc), core::lu_cost_reference(P),
            core::g2dbc_cost_bound(P));
  }
  return 0;
}
