// Micro benchmarks for the recommendation service plus the BENCH_serve.json
// perf trajectory.
//
// Two personalities behind one custom main:
//
//   micro_serve                          google-benchmark sweeps: store
//                                        digest/get, table rebuild, and the
//                                        parallel sweep at small P
//   micro_serve --json=BENCH_serve.json  append one trajectory entry:
//                                        cached lookups/sec over a warmed
//                                        store, the cold sweep at the
//                                        reference P (serial and parallel),
//                                        and the parallel-vs-serial speedup
//   micro_serve --json=... --check       same, but exit 1 when cached
//                                        lookups/sec regresses >25% against
//                                        the last recorded entry
//
// The trajectory asserts what the serve tests assert — the parallel sweep
// must be bit-identical to core::gcrm_search — before recording anything:
// a fast wrong answer must never enter the perf history.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/gcrm.hpp"
#include "core/pattern_search.hpp"
#include "core/recommend.hpp"
#include "runtime/task_engine.hpp"
#include "serve/parallel_search.hpp"
#include "serve/recommend_service.hpp"
#include "store/pattern_store.hpp"

using namespace anyblock;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void BM_StoreDigest(benchmark::State& state) {
  store::StoreKey key;
  key.P = 9973;
  key.metric = "symmetric";
  for (auto _ : state) benchmark::DoNotOptimize(store::store_digest(key));
}
BENCHMARK(BM_StoreDigest);

void BM_StoreWarmGet(benchmark::State& state) {
  store::PatternStore cache;  // in-memory: isolates lookup cost from I/O
  store::StoreKey key;
  key.P = 23;
  key.metric = "symmetric";
  core::RecommendOptions options;
  const core::Recommendation rec =
      core::recommend_pattern(23, core::Kernel::kCholesky, options);
  cache.put(key, {rec.pattern, rec.scheme, rec.cost, rec.rationale});
  for (auto _ : state) benchmark::DoNotOptimize(cache.get(key));
}
BENCHMARK(BM_StoreWarmGet);

void BM_TableRebuild(benchmark::State& state) {
  // One winner-row rebuild: the table-hit serving cost for this P.
  const std::int64_t P = state.range(0);
  core::GcrmSearchOptions options;
  const core::GcrmSearchResult search = core::gcrm_search(P, options);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::gcrm_build(P, search.best_r,
                                              search.best_seed));
}
BENCHMARK(BM_TableRebuild)->Arg(13)->Arg(23)->Unit(benchmark::kMicrosecond);

void BM_ParallelSweep(benchmark::State& state) {
  const std::int64_t P = state.range(0);
  core::GcrmSearchOptions options;
  options.seeds = 20;
  runtime::TaskEngine engine(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(serve::parallel_gcrm_search(P, options, engine));
}
BENCHMARK(BM_ParallelSweep)->Arg(7)->Arg(13)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// BENCH_serve.json trajectory
// ---------------------------------------------------------------------------

/// The trajectory's reference sweep: P = 23 (the paper's flagship prime,
/// no SBC) at the default 100-seed budget — the cold query a user actually
/// pays for before the store takes over.
constexpr std::int64_t kTrajectoryNodes = 23;

/// Node counts warmed into the store for the cached-lookup measurement.
constexpr std::int64_t kWarmSet[] = {7, 11, 13, 17, 23};
constexpr int kLookupRounds = 20000;

struct Measurement {
  double cached_lookups_per_sec = 0.0;
  double warm_p99_us = 0.0;
  double serial_sweep_seconds = 0.0;
  double parallel_sweep_seconds = 0.0;
  double sweep_speedup = 0.0;
  int workers = 0;
};

/// Returns false (diverged) when the parallel sweep is not bit-identical
/// to the sequential one — the trajectory refuses to record such a build.
bool measure(Measurement& m) {
  core::GcrmSearchOptions options;  // default budget: what serving uses

  double start = now_seconds();
  const core::GcrmSearchResult serial =
      core::gcrm_search(kTrajectoryNodes, options);
  m.serial_sweep_seconds = now_seconds() - start;

  int workers = static_cast<int>(std::thread::hardware_concurrency());
  if (workers <= 0) workers = 1;
  runtime::TaskEngine engine(workers);
  m.workers = workers;
  start = now_seconds();
  const core::GcrmSearchResult parallel =
      serve::parallel_gcrm_search(kTrajectoryNodes, options, engine);
  m.parallel_sweep_seconds = now_seconds() - start;
  m.sweep_speedup = m.parallel_sweep_seconds > 0.0
                        ? m.serial_sweep_seconds / m.parallel_sweep_seconds
                        : 0.0;
  if (parallel.best_cost != serial.best_cost ||
      parallel.best_r != serial.best_r ||
      parallel.best_seed != serial.best_seed ||
      !(parallel.best == serial.best))
    return false;

  serve::ServiceOptions service_options;  // in-memory store: pure lookup cost
  serve::RecommendService service(service_options);
  for (const std::int64_t P : kWarmSet)
    (void)service.recommend(P, core::Kernel::kCholesky);

  start = now_seconds();
  for (int round = 0; round < kLookupRounds; ++round)
    benchmark::DoNotOptimize(service.recommend(
        kWarmSet[static_cast<std::size_t>(round) % std::size(kWarmSet)],
        core::Kernel::kCholesky));
  const double elapsed = now_seconds() - start;
  m.cached_lookups_per_sec = elapsed > 0.0 ? kLookupRounds / elapsed : 0.0;
  for (const auto& [name, value] : service.metric_rows())
    if (name == "serve_warm_p99_us") m.warm_p99_us = value;
  return true;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

std::string render_entry(const std::string& label, const Measurement& m) {
  std::ostringstream out;
  out.precision(6);
  out << "  {\n"
      << "    \"date\": \"" << utc_timestamp() << "\",\n"
      << "    \"label\": \"" << label << "\",\n"
      << "    \"config\": {\"P\": " << kTrajectoryNodes
      << ", \"seeds\": " << core::GcrmSearchOptions{}.seeds
      << ", \"workers\": " << m.workers << "},\n"
      << "    \"cached_lookups_per_sec\": " << std::fixed
      << m.cached_lookups_per_sec << ",\n"
      << "    \"warm_p99_us\": " << m.warm_p99_us << ",\n"
      << "    \"serial_sweep_seconds\": " << m.serial_sweep_seconds << ",\n"
      << "    \"parallel_sweep_seconds\": " << m.parallel_sweep_seconds
      << ",\n"
      << "    \"sweep_speedup\": " << m.sweep_speedup << "\n  }";
  return out.str();
}

/// Last "cached_lookups_per_sec" already in the trajectory (the regression
/// baseline), or -1 when the file has no entries.
double last_lookups_per_sec(const std::string& text) {
  const std::string key = "\"cached_lookups_per_sec\":";
  double last = -1.0;
  std::size_t at = 0;
  while ((at = text.find(key, at)) != std::string::npos) {
    at += key.size();
    last = std::strtod(text.c_str() + at, nullptr);
  }
  return last;
}

int run_trajectory(const std::string& path, const std::string& label,
                   bool check) {
  Measurement m;
  if (!measure(m)) {
    std::fprintf(stderr,
                 "parallel sweep diverged from the sequential search — "
                 "refusing to record perf for a wrong answer\n");
    return 1;
  }

  std::string existing;
  if (std::ifstream in(path); in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    existing = buffer.str();
  }
  const double previous = last_lookups_per_sec(existing);

  const std::string entry = render_entry(label, m);
  std::string updated;
  const std::size_t closing = existing.rfind(']');
  if (closing == std::string::npos) {
    updated = "[\n" + entry + "\n]\n";
  } else {
    const bool has_entries = existing.find('{') < closing;
    updated = existing.substr(0, closing);
    while (!updated.empty() &&
           (updated.back() == '\n' || updated.back() == ' '))
      updated.pop_back();
    updated += has_entries ? ",\n" : "\n";
    updated += entry + "\n]\n";
  }
  if (std::ofstream out(path); !out || !(out << updated)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }

  std::printf("cached:      %.0f lookups/s (p99 %.1f us over %d rounds)\n",
              m.cached_lookups_per_sec, m.warm_p99_us, kLookupRounds);
  std::printf("cold sweep:  %.2f s serial, %.2f s parallel (%d workers, "
              "%.2fx, bit-identical)\n",
              m.serial_sweep_seconds, m.parallel_sweep_seconds, m.workers,
              m.sweep_speedup);
  std::printf("appended to  %s\n", path.c_str());

  if (check && previous > 0.0 &&
      m.cached_lookups_per_sec < 0.75 * previous) {
    std::fprintf(stderr,
                 "PERF REGRESSION: %.0f cached lookups/s is more than 25%% "
                 "below the last recorded %.0f\n",
                 m.cached_lookups_per_sec, previous);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string label = "dev";
  bool check = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--label=", 8) == 0) {
      label = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return run_trajectory(json_path, label, check);

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
