// Fig. 6: LU factorization with at most P = 39 nodes.
//
// Candidates (Table Ia): G-2DBC on all 39 nodes vs the 13x3 grid (39 nodes,
// badly rectangular) and the square 6x6 grid on 36 nodes.  Expected shape:
// G-2DBC highest throughput at every size; 13x3 below the 6x6 grid despite
// using more nodes.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("fig06_lu_p39", "Fig. 6 - LU with a maximum of 39 nodes");
  bench::add_machine_options(parser);
  parser.add("sizes", "50000,100000,150000,200000,250000,300000",
             "matrix sizes N");
  if (!parser.parse(argc, argv)) return 1;

  const std::vector<bench::Candidate> candidates = {
      {"G-2DBC P=39", core::make_g2dbc(39)},
      {"2DBC 13x3", core::make_2dbc(13, 3)},
      {"2DBC 6x6", core::make_2dbc(6, 6)},
  };

  std::fprintf(stderr, "fig06: LU, P<=39 (paper Fig. 6)\n");
  bench::print_perf_header();
  for (const std::int64_t n : bench::size_sweep(parser)) {
    const std::int64_t t = n / parser.get_int("tile");
    if (t < 2) continue;
    for (const auto& candidate : candidates) {
      const sim::SimReport report =
          bench::run_candidate(candidate, t, parser, /*symmetric=*/false);
      bench::print_perf_row("lu", candidate, n, t, report);
    }
  }
  return 0;
}
