// SYRK comparison: the symmetric update C := C - A*A^T under SBC, GCR&M and
// square 2DBC distributions.
//
// SBC was introduced for SYRK as much as for Cholesky (paper, Sections I
// and II-A); this bench reports exact message counts (three independent
// implementations agree — see tests) and simulated throughput for the
// paper's communication-cost ranking on the second symmetric kernel.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/pattern_search.hpp"
#include "core/sbc.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("syrk_comparison",
                   "SYRK message counts and throughput per distribution");
  bench::add_machine_options(parser);
  parser.add("t", "60", "C tile-grid side");
  parser.add("k", "20", "A tile columns");
  parser.add("seeds", "30", "GCR&M random restarts");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t t = parser.get_int("t");
  const std::int64_t k = parser.get_int("k");

  std::vector<bench::Candidate> candidates = {
      {"2DBC 5x5 P=25", core::make_2dbc(5, 5)},
      {"SBC P=21", core::make_sbc(21)},
  };
  core::GcrmSearchOptions options;
  options.seeds = parser.get_int("seeds");
  if (const auto search = core::gcrm_search(23, options); search.found)
    candidates.push_back({"GCR&M P=23", search.best});

  std::fprintf(stderr, "syrk: C %lldx%lld tiles, A %lldx%lld tiles\n",
               static_cast<long long>(t), static_cast<long long>(t),
               static_cast<long long>(t), static_cast<long long>(k));
  CsvWriter csv(std::cout);
  csv.header({"distribution", "P", "cost_T", "messages", "messages_per_node",
              "total_gflops", "per_node_gflops"});
  for (const auto& candidate : candidates) {
    const std::int64_t P = candidate.pattern.num_nodes();
    const sim::MachineConfig machine = bench::machine_from(parser, P);
    const core::PatternDistribution dist_c(candidate.pattern, t, true);
    const core::PatternDistribution dist_a(candidate.pattern, t, false);
    const sim::SimReport report =
        sim::simulate_syrk(t, k, dist_c, dist_a, machine);
    csv.row(candidate.label, P, core::cholesky_cost(candidate.pattern),
            report.messages,
            static_cast<double>(report.messages) / static_cast<double>(P),
            report.total_gflops(), report.per_node_gflops());
  }
  return 0;
}
