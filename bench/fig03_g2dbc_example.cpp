// Fig. 3: the G-2DBC construction for P = 10 — the incomplete pattern IP
// (3x4, two free cells) and the full 6x10 pattern assembled from the
// sub-patterns P_1, P_2 and LP.
#include <cstdio>

#include "common.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/pattern_io.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("fig03_g2dbc_example",
                   "Fig. 3 - G-2DBC construction example (default P=10)");
  parser.add("nodes", "10", "node count P");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t P = parser.get_int("nodes");
  const core::G2dbcParams params = core::g2dbc_params(P);
  std::printf("P=%lld  a=%lld  b=%lld  c=%lld\n",
              static_cast<long long>(P), static_cast<long long>(params.a),
              static_cast<long long>(params.b),
              static_cast<long long>(params.c));

  if (params.degenerate()) {
    std::printf("c = 0: G-2DBC degenerates to the plain %lldx%lld 2DBC\n",
                static_cast<long long>(params.b),
                static_cast<long long>(params.a));
  } else {
    std::printf("\nincomplete pattern IP (%lldx%lld, '.' = undefined):\n%s",
                static_cast<long long>(params.b),
                static_cast<long long>(params.a),
                core::render_pattern(core::g2dbc_incomplete_pattern(params))
                    .c_str());
    for (std::int64_t i = 1; i <= params.b - 1; ++i) {
      std::printf("\nsub-pattern P_%lld:\n%s", static_cast<long long>(i),
                  core::render_pattern(core::g2dbc_sub_pattern(params, i))
                      .c_str());
    }
  }

  const core::Pattern full = core::make_g2dbc(P);
  std::printf("\nfull G-2DBC pattern (%lldx%lld), T = %.4f:\n%s",
              static_cast<long long>(full.rows()),
              static_cast<long long>(full.cols()), core::lu_cost(full),
              core::render_pattern(full).c_str());
  return 0;
}
