// Micro benchmarks for pattern construction and evaluation: these are the
// offline costs a user pays once per node count (the paper notes a GCR&M
// search takes seconds on a laptop — measured here).
#include <benchmark/benchmark.h>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/gcrm.hpp"
#include "core/pattern_search.hpp"
#include "core/sbc.hpp"

using namespace anyblock;

namespace {

void BM_Make2dbc(benchmark::State& state) {
  const std::int64_t P = state.range(0);
  for (auto _ : state) benchmark::DoNotOptimize(core::best_2dbc(P));
}
BENCHMARK(BM_Make2dbc)->Arg(23)->Arg(100)->Arg(1000);

void BM_MakeG2dbc(benchmark::State& state) {
  const std::int64_t P = state.range(0);
  for (auto _ : state) benchmark::DoNotOptimize(core::make_g2dbc(P));
}
BENCHMARK(BM_MakeG2dbc)->Arg(23)->Arg(100)->Arg(1000);

void BM_MakeSbc(benchmark::State& state) {
  const std::int64_t P = state.range(0);
  for (auto _ : state) benchmark::DoNotOptimize(core::make_sbc(P));
}
BENCHMARK(BM_MakeSbc)->Arg(21)->Arg(105)->Arg(1035);

void BM_GcrmBuild(benchmark::State& state) {
  const std::int64_t P = state.range(0);
  const std::int64_t r = state.range(1);
  std::uint64_t seed = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::gcrm_build(P, r, seed++));
}
BENCHMARK(BM_GcrmBuild)->Args({23, 14})->Args({23, 24})->Args({64, 48});

void BM_GcrmFullSearch(benchmark::State& state) {
  const std::int64_t P = state.range(0);
  core::GcrmSearchOptions options;
  options.seeds = 100;
  options.prune = state.range(1) != 0;  // both are bit-identical winners
  for (auto _ : state)
    benchmark::DoNotOptimize(core::gcrm_search(P, options));
}
BENCHMARK(BM_GcrmFullSearch)
    ->Args({23, 0})
    ->Args({23, 1})
    ->Unit(benchmark::kMillisecond);

void BM_LuCost(benchmark::State& state) {
  const core::Pattern pattern = core::make_g2dbc(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(core::lu_cost(pattern));
}
BENCHMARK(BM_LuCost)->Arg(23)->Arg(100);

void BM_ExactLuVolume(benchmark::State& state) {
  const core::Pattern pattern = core::make_g2dbc(23);
  const std::int64_t t = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::exact_lu_volume(pattern, t));
}
BENCHMARK(BM_ExactLuVolume)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_ExactCholeskyVolume(benchmark::State& state) {
  const core::Pattern pattern = core::make_sbc(21);
  const std::int64_t t = state.range(0);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::exact_cholesky_volume(pattern, t));
}
BENCHMARK(BM_ExactCholeskyVolume)
    ->Arg(50)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace
