// Ablation: tile size.
//
// The paper fixes 500x500 tiles ("the smallest size for which individual
// cores perform kernels with enough efficiency").  In the model, tile size
// trades per-message overhead and scheduling granularity (small tiles)
// against load-balance granularity and pipeline depth (large tiles).  This
// bench sweeps the tile size at a fixed matrix size.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/g2dbc.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("ablation_tile_size",
                   "LU throughput vs tile size at fixed N (G-2DBC, P = 23)");
  bench::add_machine_options(parser);
  parser.add("size", "120000", "matrix size N");
  parser.add("tiles", "500,750,1000,1500,2000,3000,4000",
             "tile sizes to sweep");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t n = parser.get_int("size");
  const core::Pattern pattern = core::make_g2dbc(23);

  std::fprintf(stderr, "ablation_tile_size: LU, N=%lld, G-2DBC P=23\n",
               static_cast<long long>(n));
  CsvWriter csv(std::cout);
  csv.header({"tile", "t", "total_gflops", "per_node_gflops", "messages",
              "efficiency"});
  for (const std::int64_t tile : parser.get_int_list("tiles")) {
    const std::int64_t t = n / tile;
    if (t < 2) continue;
    sim::MachineConfig machine = bench::machine_from(parser, 23);
    machine.tile_size = tile;
    const core::PatternDistribution dist(pattern, t, false);
    const sim::SimReport report = sim::simulate_lu(t, dist, machine);
    csv.row(tile, t, report.total_gflops(), report.per_node_gflops(),
            report.messages, report.efficiency(machine));
  }
  return 0;
}
