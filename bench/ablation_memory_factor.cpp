// Memory-factor ablation: what does replicating the working set buy?
//
// Sweeps the 2.5D replication factor c in {1, 2, 4, 8} at the paper-scale
// machine P = 256, t = 64 for both kernels.  Each c stacks the recommended
// P/c-node base pattern (G-2DBC for LU, GCR&M/SBC for Cholesky) on c
// layers; c = 1 is the flat recommended baseline the communication-
// avoiding contender has to beat.  Every row records the exact
// closed-form communication volume (verified against the measured counts
// by the equivalence tests), the memory-dependent parallel-I/O lower
// bound at that replication, and the simulated makespan of the implicit
// 2.5D schedule.
//
// Two personalities behind one custom main:
//
//   ablation_memory_factor             CSV sweep on stdout (like the other
//                                      ablation benches)
//   ablation_memory_factor --json=BENCH_25d.json
//                                      append one trajectory entry with the
//                                      per-c volume / bound / makespan rows
//   ... --json=... --check             same, but exit 1 unless the 2.5D
//                                      claims hold: at every c >= 2 the
//                                      volume is *strictly* below the flat
//                                      baseline, and no volume ever
//                                      undercuts the I/O lower bound
#include <cstdio>
#include <cstring>
#include <ctime>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/recommend.hpp"
#include "core/replicated.hpp"
#include "sim/engine.hpp"

using namespace anyblock;

namespace {

constexpr std::int64_t kNodes = 256;
constexpr std::int64_t kTiles = 64;
constexpr std::int64_t kLayers[] = {1, 2, 4, 8};

struct Row {
  std::int64_t c = 1;
  std::int64_t base_nodes = 0;
  std::string scheme;
  std::int64_t volume_tiles = 0;
  double io_bound_tiles = 0.0;
  double makespan_seconds = 0.0;
};

Row measure(bool symmetric, std::int64_t c) {
  const std::int64_t base_nodes = kNodes / c;
  core::RecommendOptions options;
  options.search.seeds = 10;
  const core::Recommendation rec = core::recommend_pattern(
      base_nodes, symmetric ? core::Kernel::kCholesky : core::Kernel::kLu,
      options);
  const auto base = std::make_shared<core::PatternDistribution>(
      rec.pattern, kTiles, symmetric, rec.scheme);
  const core::ReplicatedDistribution dist(base, c);

  sim::MachineConfig machine;
  machine.nodes = kNodes;
  machine.workers_per_node = 2;
  machine.workload_mode = sim::WorkloadMode::kImplicit;
  const sim::SimReport report =
      symmetric ? sim::simulate_cholesky_25d(kTiles, dist, machine)
                : sim::simulate_lu_25d(kTiles, dist, machine);

  Row row;
  row.c = c;
  row.base_nodes = base_nodes;
  row.scheme = rec.scheme;
  row.volume_tiles = symmetric
                         ? core::exact_cholesky_volume_25d(dist, kTiles)
                         : core::exact_lu_volume_25d(dist, kTiles);
  row.io_bound_tiles =
      symmetric ? core::cholesky_io_lower_bound_tiles(kTiles, kNodes, c)
                : core::lu_io_lower_bound_tiles(kTiles, kNodes, c);
  row.makespan_seconds = report.makespan_seconds;
  return row;
}

std::vector<Row> sweep(bool symmetric) {
  std::vector<Row> rows;
  for (const std::int64_t c : kLayers) rows.push_back(measure(symmetric, c));
  return rows;
}

/// The acceptance gate: replication must strictly beat the flat baseline
/// at every c >= 2, and the exact schedule may never claim less traffic
/// than the information-theoretic bound allows.
bool claims_hold(const char* kernel, const std::vector<Row>& rows) {
  bool ok = true;
  const std::int64_t flat = rows.front().volume_tiles;
  for (const Row& row : rows) {
    if (static_cast<double>(row.volume_tiles) < row.io_bound_tiles) {
      std::fprintf(stderr,
                   "%s c=%lld: volume %lld undercuts the I/O bound %.0f\n",
                   kernel, static_cast<long long>(row.c),
                   static_cast<long long>(row.volume_tiles),
                   row.io_bound_tiles);
      ok = false;
    }
    if (row.c > 1 && row.volume_tiles >= flat) {
      std::fprintf(stderr,
                   "%s c=%lld: volume %lld is not below the flat %lld\n",
                   kernel, static_cast<long long>(row.c),
                   static_cast<long long>(row.volume_tiles),
                   static_cast<long long>(flat));
      ok = false;
    }
  }
  return ok;
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buffer[32];
  std::strftime(buffer, sizeof(buffer), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buffer;
}

std::string render_rows(const std::vector<Row>& rows) {
  std::ostringstream out;
  out.precision(6);
  out << "[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << (i == 0 ? "" : ", ") << "{\"c\": " << row.c
        << ", \"base_nodes\": " << row.base_nodes << ", \"scheme\": \""
        << row.scheme << "\", \"volume_tiles\": " << row.volume_tiles
        << ", \"io_bound_tiles\": " << std::fixed << row.io_bound_tiles
        << ", \"makespan_seconds\": " << row.makespan_seconds << "}";
  }
  out << "]";
  return out.str();
}

std::string render_entry(const std::string& label,
                         const std::vector<Row>& lu,
                         const std::vector<Row>& cholesky) {
  std::ostringstream out;
  out << "  {\n"
      << "    \"date\": \"" << utc_timestamp() << "\",\n"
      << "    \"label\": \"" << label << "\",\n"
      << "    \"config\": {\"P\": " << kNodes << ", \"t\": " << kTiles
      << "},\n"
      << "    \"lu\": " << render_rows(lu) << ",\n"
      << "    \"cholesky\": " << render_rows(cholesky) << "\n  }";
  return out.str();
}

int run_trajectory(const std::string& path, const std::string& label,
                   bool check) {
  const std::vector<Row> lu = sweep(/*symmetric=*/false);
  const std::vector<Row> cholesky = sweep(/*symmetric=*/true);

  std::string existing;
  if (std::ifstream in(path); in) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    existing = buffer.str();
  }
  const std::string entry = render_entry(label, lu, cholesky);
  std::string updated;
  const std::size_t closing = existing.rfind(']');
  if (closing == std::string::npos) {
    updated = "[\n" + entry + "\n]\n";
  } else {
    const bool has_entries = existing.find('{') < closing;
    updated = existing.substr(0, closing);
    while (!updated.empty() &&
           (updated.back() == '\n' || updated.back() == ' '))
      updated.pop_back();
    updated += has_entries ? ",\n" : "\n";
    updated += entry + "\n]\n";
  }
  if (std::ofstream out(path); !out || !(out << updated)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }

  for (const auto* sweep_rows : {&lu, &cholesky}) {
    const bool symmetric = sweep_rows == &cholesky;
    std::printf("%s P=%lld t=%lld:\n", symmetric ? "cholesky" : "lu",
                static_cast<long long>(kNodes),
                static_cast<long long>(kTiles));
    for (const Row& row : *sweep_rows)
      std::printf("  c=%lld %-7s %7lld tiles (bound %7.0f), makespan "
                  "%.3f s%s\n",
                  static_cast<long long>(row.c), row.scheme.c_str(),
                  static_cast<long long>(row.volume_tiles),
                  row.io_bound_tiles, row.makespan_seconds,
                  row.c == 1 ? "  <- flat baseline" : "");
  }
  std::printf("appended to %s\n", path.c_str());

  if (check && (!claims_hold("lu", lu) || !claims_hold("cholesky", cholesky)))
    return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string label = "dev";
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--label=", 8) == 0) {
      label = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 1;
    }
  }
  if (!json_path.empty()) return run_trajectory(json_path, label, check);

  std::printf("kernel,c,base_nodes,scheme,volume_tiles,io_bound_tiles,"
              "makespan_seconds\n");
  for (const bool symmetric : {false, true})
    for (const Row& row : sweep(symmetric))
      std::printf("%s,%lld,%lld,%s,%lld,%.1f,%.6f\n",
                  symmetric ? "cholesky" : "lu",
                  static_cast<long long>(row.c),
                  static_cast<long long>(row.base_nodes), row.scheme.c_str(),
                  static_cast<long long>(row.volume_tiles),
                  row.io_bound_tiles, row.makespan_seconds);
  return 0;
}
