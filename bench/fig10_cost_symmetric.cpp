// Fig. 10: communication cost of the symmetric patterns for every P.
//
// Series: SBC at its feasible node counts (basic sqrt(2P) and extended
// sqrt(2P) - 0.5 families), GCR&M's best pattern at every P, the symmetric
// cost of the best 2DBC and of G-2DBC (T_LU - 1), and the reference curves
// sqrt(2P) and the empirical GCR&M limit sqrt(3P/2).
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/bounds.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/pattern_search.hpp"
#include "core/sbc.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("fig10_cost_symmetric",
                   "Fig. 10 - symmetric pattern costs vs P");
  parser.add("min", "2", "smallest P");
  parser.add("max", "64", "largest P");
  parser.add("seeds", "32", "GCR&M random restarts per pattern size");
  if (!parser.parse(argc, argv)) return 1;

  core::GcrmSearchOptions options;
  options.seeds = parser.get_int("seeds");
  std::fprintf(stderr, "fig10: symmetric costs for P in [%lld, %lld] "
                       "(%lld seeds)\n",
               static_cast<long long>(parser.get_int("min")),
               static_cast<long long>(parser.get_int("max")),
               static_cast<long long>(options.seeds));
  CsvWriter csv(std::cout);
  csv.header({"P", "gcrm_T", "sbc_T", "best_2dbc_sym_T", "g2dbc_sym_T",
              "sqrt_2P", "sqrt_1.5P"});
  for (std::int64_t P = parser.get_int("min"); P <= parser.get_int("max");
       ++P) {
    const core::GcrmSearchResult search = core::gcrm_search(P, options);
    const std::string gcrm =
        search.found ? std::to_string(search.best_cost) : "-";
    std::string sbc = "-";
    if (const auto params = core::sbc_params(P))
      sbc = std::to_string(params->cost());
    const auto [r, c] = core::best_grid(P);
    csv.row(P, gcrm, sbc, static_cast<double>(r + c) - 1.0,
            core::g2dbc_cost_formula(P) - 1.0, core::sbc_cost_reference(P),
            core::gcrm_cost_limit(P));
  }
  return 0;
}
