// Per-iteration communication profile (the structure behind Eq. 1/Eq. 2).
//
// For each distribution, prints the tiles sent at every factorization
// iteration — the steady-state volume decreases linearly with the trailing
// matrix (the (m - l) factor of Section III) and collapses over the last
// r/c iterations (the edge effects the equations neglect) — alongside the
// per-iteration *message* counts of each collective algorithm (p2p and
// tree equal the tile count; the chain multiplies it by the chunk count).
// Sender totals and their imbalance go to stderr.
#include <cstdio>
#include <iostream>
#include <optional>

#include "fault/fault.hpp"

#include "comm/config.hpp"
#include "common.hpp"
#include "core/analysis.hpp"
#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/sbc.hpp"
#include "dist/dist_factorization.hpp"
#include "linalg/generators.hpp"
#include "linalg/tiled_matrix.hpp"
#include "util/rng.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"

using namespace anyblock;

namespace {

// With --trace/--metrics the closed-form table is backed by a real run: a
// distributed LU over vmpi on G-2DBC P=23, every rank's sends and recvs
// recorded.  The emitted metrics compare the measured factorization-proper
// message count (tags < t*t; the gather to rank 0 uses the band above)
// against the exact closed form of core/cost.
int run_traced_lu(const std::string& trace_path,
                  const std::string& metrics_path, std::int64_t t,
                  std::int64_t nb, const std::string& fault_spec) {
  const core::Pattern pattern = core::make_g2dbc(23);
  const core::PatternDistribution dist(pattern, t, /*symmetric=*/false,
                                       "G-2DBC P=23");
  Rng rng(7);
  const linalg::TiledMatrix input = linalg::tiled_diag_dominant(t, nb, rng);
  obs::Recorder recorder;
  // With --faults the real vmpi transport runs under the seeded fault plan:
  // the factored bits and the measured app-level counts below must come out
  // identical to the fault-free run, with the recovery visible as fault_*
  // metrics rows.
  std::optional<fault::FaultInjector> injector;
  if (!fault_spec.empty()) injector.emplace(fault::parse_fault_spec(fault_spec));
  const dist::DistRunResult result = dist::distributed_lu(
      input, dist, {}, &recorder, injector ? &*injector : nullptr);
  if (!result.ok) {
    std::fprintf(stderr, "traced LU run failed to factorize\n");
    return 1;
  }
  if (injector) {
    const fault::FaultStats stats = injector->stats();
    std::fprintf(stderr,
                 "faults: %lld drops, %lld dups, %lld delays -> %lld "
                 "retries, %lld dedups\n",
                 static_cast<long long>(stats.drops),
                 static_cast<long long>(stats.duplicates),
                 static_cast<long long>(stats.delays),
                 static_cast<long long>(stats.retries),
                 static_cast<long long>(stats.dedup_discards));
  }
  const obs::Trace trace = recorder.take();
  if (!trace_path.empty() &&
      !obs::write_chrome_trace_file(trace_path, trace)) {
    std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
    return 1;
  }
  if (!metrics_path.empty()) {
    obs::MetricsOptions options;
    options.predicted_messages = core::exact_lu_messages(dist, t, {});
    options.message_tag_bound = t * t;
    if (!obs::write_metrics_csv_file(metrics_path, trace, options)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "traced LU t=%lld nb=%lld on G-2DBC P=23: %lld tile messages "
               "(predicted %lld)\n",
               static_cast<long long>(t), static_cast<long long>(nb),
               static_cast<long long>(result.tile_messages),
               static_cast<long long>(core::exact_lu_messages(dist, t, {})));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("comm_profile",
                   "per-iteration communication volume per distribution");
  parser.add("t", "48", "tile grid side");
  parser.add("chunks", "4", "chunks per tile for the pipelined chain");
  parser.add("nb", "4", "tile side for the traced run (--trace/--metrics)");
  parser.add("trace", "",
             "run a real distributed LU (G-2DBC P=23) and write a Chrome "
             "trace_event JSON timeline here");
  parser.add("metrics", "",
             "write the traced run's CSV metrics summary here");
  parser.add("faults", "",
             "perturb the traced run, e.g. drop=0.05,seed=42");
  bench::add_transport_options(parser);
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t t = parser.get_int("t");
  const std::string trace_path = parser.get("trace");
  const std::string metrics_path = parser.get("metrics");
  if (!trace_path.empty() || !metrics_path.empty()) {
    // The traced run spans 23 ranks; --transport=socket spreads them over
    // the OS processes named by ANYBLOCK_PROC/ANYBLOCK_PROCS.
    const std::unique_ptr<vmpi::Transport> transport =
        bench::transport_from(parser, 23);
    const vmpi::ScopedTransport ambient(transport.get());
    const int status = run_traced_lu(trace_path, metrics_path, t,
                                     parser.get_int("nb"), parser.get("faults"));
    if (status != 0) return status;
  }
  struct Row {
    const char* kernel;
    const char* label;
    core::Pattern pattern;
    core::CommProfile profile;
  };
  const auto lu_row = [&](const char* label, core::Pattern pattern) {
    auto profile = core::lu_comm_profile(pattern, t);
    return Row{"lu", label, std::move(pattern), std::move(profile)};
  };
  const auto chol_row = [&](const char* label, core::Pattern pattern) {
    auto profile = core::cholesky_comm_profile(pattern, t);
    return Row{"cholesky", label, std::move(pattern), std::move(profile)};
  };
  const std::vector<Row> rows = {
      lu_row("2DBC 4x4", core::make_2dbc(4, 4)),
      lu_row("2DBC 23x1", core::make_2dbc(23, 1)),
      lu_row("G-2DBC P=23", core::make_g2dbc(23)),
      chol_row("2DBC 5x5", core::make_2dbc(5, 5)),
      chol_row("SBC P=21", core::make_sbc(21)),
  };

  comm::CollectiveConfig p2p;
  comm::CollectiveConfig tree;
  tree.algorithm = comm::Algorithm::kBinomialTree;
  comm::CollectiveConfig chain;
  chain.algorithm = comm::Algorithm::kPipelinedChain;
  chain.chain_chunks = parser.get_int("chunks");

  CsvWriter csv(std::cout);
  csv.header({"kernel", "distribution", "iteration", "tiles_sent",
              "p2p_messages", "tree_messages", "chain_messages"});
  for (const auto& row : rows) {
    const bool symmetric = std::string(row.kernel) == "cholesky";
    const core::PatternDistribution dist(row.pattern, t, symmetric);
    const auto profile_for = [&](const comm::CollectiveConfig& config) {
      return symmetric ? core::cholesky_message_profile(dist, t, config)
                       : core::lu_message_profile(dist, t, config);
    };
    const auto p2p_messages = profile_for(p2p);
    const auto tree_messages = profile_for(tree);
    const auto chain_messages = profile_for(chain);
    for (std::size_t l = 0; l < row.profile.per_iteration.size(); ++l) {
      csv.row(row.kernel, row.label, l, row.profile.per_iteration[l],
              p2p_messages[l], tree_messages[l], chain_messages[l]);
    }
  }
  for (const auto& row : rows) {
    std::fprintf(stderr, "%-9s %-12s total=%lld sender-imbalance=%.3f\n",
                 row.kernel, row.label,
                 static_cast<long long>(row.profile.total()),
                 row.profile.sender_imbalance());
  }
  return 0;
}
