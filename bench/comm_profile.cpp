// Per-iteration communication profile (the structure behind Eq. 1/Eq. 2).
//
// For each distribution, prints the tiles sent at every factorization
// iteration: the steady-state volume decreases linearly with the trailing
// matrix (the (m - l) factor of Section III) and collapses over the last
// r/c iterations (the edge effects the equations neglect), plus the
// per-node sender totals and their imbalance.
#include <cstdio>
#include <iostream>

#include "common.hpp"
#include "core/analysis.hpp"
#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "core/sbc.hpp"
#include "util/csv.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("comm_profile",
                   "per-iteration communication volume per distribution");
  parser.add("t", "48", "tile grid side");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t t = parser.get_int("t");
  struct Row {
    const char* kernel;
    const char* label;
    core::CommProfile profile;
  };
  const std::vector<Row> rows = {
      {"lu", "2DBC 4x4", core::lu_comm_profile(core::make_2dbc(4, 4), t)},
      {"lu", "2DBC 23x1", core::lu_comm_profile(core::make_2dbc(23, 1), t)},
      {"lu", "G-2DBC P=23", core::lu_comm_profile(core::make_g2dbc(23), t)},
      {"cholesky", "2DBC 5x5",
       core::cholesky_comm_profile(core::make_2dbc(5, 5), t)},
      {"cholesky", "SBC P=21",
       core::cholesky_comm_profile(core::make_sbc(21), t)},
  };

  CsvWriter csv(std::cout);
  csv.header({"kernel", "distribution", "iteration", "tiles_sent"});
  for (const auto& row : rows) {
    for (std::size_t l = 0; l < row.profile.per_iteration.size(); ++l)
      csv.row(row.kernel, row.label, l, row.profile.per_iteration[l]);
  }
  for (const auto& row : rows) {
    std::fprintf(stderr, "%-9s %-12s total=%lld sender-imbalance=%.3f\n",
                 row.kernel, row.label,
                 static_cast<long long>(row.profile.total()),
                 row.profile.sender_imbalance());
  }
  return 0;
}
