// Fig. 7a: LU strong scaling at fixed N = 200,000.
//
// For each of the paper's node counts, the best available 2DBC grid
// (Table Ia) versus G-2DBC on all P nodes.  Expected shape: 2DBC collapses
// at P = 23 and 31 (and sags at 39); G-2DBC rises steadily with P.
#include <cstdio>

#include "common.hpp"
#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("fig07a_scaling_lu",
                   "Fig. 7a - LU strong scaling, N = 200000");
  bench::add_machine_options(parser);
  parser.add("size", "200000", "matrix size N");
  parser.add("nodes", "16,20,21,22,23,30,31,35,36,39", "node counts P");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t n = parser.get_int("size");
  const std::int64_t t = n / parser.get_int("tile");
  std::fprintf(stderr, "fig07a: LU strong scaling at N=%lld (t=%lld)\n",
               static_cast<long long>(n), static_cast<long long>(t));
  bench::print_perf_header();
  for (const std::int64_t P : parser.get_int_list("nodes")) {
    const auto [r, c] = core::best_grid(P);
    const bench::Candidate bc{
        "2DBC " + std::to_string(r) + "x" + std::to_string(c),
        core::make_2dbc(r, c)};
    bench::print_perf_row("lu", bc, n, t,
                          bench::run_candidate(bc, t, parser, false));
    const bench::Candidate gc{"G-2DBC P=" + std::to_string(P),
                              core::make_g2dbc(P)};
    bench::print_perf_row("lu", gc, n, t,
                          bench::run_candidate(gc, t, parser, false));
  }
  return 0;
}
