// Micro benchmarks for the tile kernels, reporting achieved GFlop/s — the
// `--gflops` calibration input of the cluster simulator can be cross-checked
// against these numbers for any host.
#include <benchmark/benchmark.h>

#include <vector>

#include "linalg/kernels.hpp"
#include "util/rng.hpp"

using namespace anyblock;

namespace {

std::vector<double> tile(std::int64_t nb, std::uint64_t seed,
                         bool dominant = false) {
  Rng rng(seed);
  std::vector<double> data(static_cast<std::size_t>(nb * nb));
  for (double& v : data) v = 2.0 * rng.uniform() - 1.0;
  if (dominant) {
    for (std::int64_t i = 0; i < nb; ++i)
      data[static_cast<std::size_t>(i * nb + i)] += static_cast<double>(nb);
  }
  return data;
}

std::vector<double> spd_tile(std::int64_t nb, std::uint64_t seed) {
  auto data = tile(nb, seed, true);
  for (std::int64_t i = 0; i < nb; ++i)
    for (std::int64_t j = 0; j < i; ++j)
      data[static_cast<std::size_t>(j * nb + i)] =
          data[static_cast<std::size_t>(i * nb + j)];
  return data;
}

void BM_GemmUpdate(benchmark::State& state) {
  const std::int64_t nb = state.range(0);
  const auto a = tile(nb, 1);
  const auto b = tile(nb, 2);
  auto c = tile(nb, 3);
  for (auto _ : state) {
    linalg::gemm_update(a, b, c, nb);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      linalg::gemm_flops(nb) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmUpdate)->Arg(64)->Arg(128)->Arg(256);

void BM_SyrkUpdate(benchmark::State& state) {
  const std::int64_t nb = state.range(0);
  const auto a = tile(nb, 4);
  auto c = tile(nb, 5);
  for (auto _ : state) {
    linalg::syrk_update_lower(a, c, nb);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      linalg::syrk_flops(nb) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SyrkUpdate)->Arg(64)->Arg(128)->Arg(256);

void BM_GetrfNopiv(benchmark::State& state) {
  const std::int64_t nb = state.range(0);
  const auto original = tile(nb, 6, /*dominant=*/true);
  auto work = original;
  for (auto _ : state) {
    work = original;
    benchmark::DoNotOptimize(linalg::getrf_nopiv(work, nb));
  }
}
BENCHMARK(BM_GetrfNopiv)->Arg(64)->Arg(128)->Arg(256);

void BM_PotrfLower(benchmark::State& state) {
  const std::int64_t nb = state.range(0);
  const auto original = spd_tile(nb, 7);
  auto work = original;
  for (auto _ : state) {
    work = original;
    benchmark::DoNotOptimize(linalg::potrf_lower(work, nb));
  }
}
BENCHMARK(BM_PotrfLower)->Arg(64)->Arg(128)->Arg(256);

void BM_TrsmRightUpper(benchmark::State& state) {
  const std::int64_t nb = state.range(0);
  auto lu = tile(nb, 8, /*dominant=*/true);
  linalg::getrf_nopiv(lu, nb);
  auto b = tile(nb, 9);
  for (auto _ : state) {
    linalg::trsm_right_upper(lu, b, nb);
    benchmark::DoNotOptimize(b.data());
  }
  state.counters["GFlops"] = benchmark::Counter(
      linalg::trsm_flops(nb) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TrsmRightUpper)->Arg(64)->Arg(128)->Arg(256);

}  // namespace
