#include "common.hpp"

#include <iostream>
#include <sstream>

#include "core/cost.hpp"
#include "net/bootstrap.hpp"
#include "util/csv.hpp"

namespace anyblock::bench {

void add_machine_options(ArgParser& parser) {
  parser.add("workers", "34", "compute workers per node");
  parser.add("gflops", "55", "per-core GFlop/s");
  parser.add("bandwidth", "12.5", "NIC bandwidth GB/s (100 Gb/s = 12.5)");
  parser.add("latency", "1.5", "one-way latency in microseconds");
  parser.add("tile", "1000", "tile side in matrix elements");
  parser.add("workload-mode", "auto",
             "sim task DAG: auto | materialized | implicit");
}

void add_transport_options(ArgParser& parser) {
  parser.add("transport", "",
             "vmpi backend: inproc | socket (default: $ANYBLOCK_TRANSPORT)");
  parser.add("rendezvous", "",
             "socket rendezvous directory (default: $ANYBLOCK_RENDEZVOUS)");
}

std::unique_ptr<vmpi::Transport> transport_from(const ArgParser& parser,
                                                int world_size) {
  net::TransportSpec spec = net::spec_from_env();
  if (!parser.get("transport").empty())
    spec.backend = parser.get("transport");
  if (!parser.get("rendezvous").empty())
    spec.rendezvous_dir = parser.get("rendezvous");
  return net::make_transport(spec, world_size);
}

sim::MachineConfig machine_from(const ArgParser& parser, std::int64_t nodes) {
  sim::MachineConfig machine;
  machine.nodes = nodes;
  machine.workers_per_node = static_cast<int>(parser.get_int("workers"));
  machine.core_gflops = parser.get_double("gflops");
  machine.link_bandwidth_gbps = parser.get_double("bandwidth");
  machine.link_latency_us = parser.get_double("latency");
  machine.tile_size = parser.get_int("tile");
  return machine;
}

std::string dims(const core::Pattern& pattern) {
  std::ostringstream oss;
  oss << pattern.rows() << 'x' << pattern.cols();
  return oss.str();
}

sim::SimReport run_candidate(const Candidate& candidate, std::int64_t t,
                             const ArgParser& parser, bool symmetric) {
  sim::MachineConfig machine =
      machine_from(parser, candidate.pattern.num_nodes());
  machine.workload_mode = sim::choose_workload_mode(
      parser.get("workload-mode"), sim::estimated_task_count(symmetric, t));
  const core::PatternDistribution distribution(candidate.pattern, t,
                                               symmetric, candidate.label);
  return symmetric ? sim::simulate_cholesky(t, distribution, machine)
                   : sim::simulate_lu(t, distribution, machine);
}

void print_perf_header() {
  CsvWriter csv(std::cout);
  csv.header({"kernel", "distribution", "P", "pattern", "N", "tiles",
              "total_gflops", "per_node_gflops", "messages",
              "makespan_seconds"});
}

void print_perf_row(const char* kernel, const Candidate& candidate,
                    std::int64_t n, std::int64_t t,
                    const sim::SimReport& report) {
  CsvWriter csv(std::cout);
  csv.row(kernel, candidate.label, candidate.pattern.num_nodes(),
          dims(candidate.pattern), n, t, report.total_gflops(),
          report.per_node_gflops(), report.messages,
          report.makespan_seconds);
}

std::vector<std::int64_t> size_sweep(const ArgParser& parser) {
  return parser.get_int_list("sizes");
}

}  // namespace anyblock::bench
