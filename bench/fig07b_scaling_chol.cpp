// Fig. 7b: Cholesky strong scaling at fixed N = 200,000.
//
// For each node count: the best SBC using at most P nodes (the paper's
// fallback) versus GCR&M using all P nodes.  Expected shape: both curves
// climb together — GCR&M fills the gaps between feasible SBC node counts
// at the throughput SBC would reach if it existed there.
#include <cstdio>

#include "common.hpp"
#include "core/pattern_search.hpp"
#include "core/sbc.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("fig07b_scaling_chol",
                   "Fig. 7b - Cholesky strong scaling, N = 200000");
  bench::add_machine_options(parser);
  parser.add("size", "200000", "matrix size N");
  parser.add("nodes", "16,20,21,22,23,30,31,35,36,39", "node counts P");
  parser.add("seeds", "100", "GCR&M random restarts per pattern size");
  if (!parser.parse(argc, argv)) return 1;

  const std::int64_t n = parser.get_int("size");
  const std::int64_t t = n / parser.get_int("tile");
  std::fprintf(stderr, "fig07b: Cholesky strong scaling at N=%lld (t=%lld)\n",
               static_cast<long long>(n), static_cast<long long>(t));
  bench::print_perf_header();
  for (const std::int64_t P : parser.get_int_list("nodes")) {
    const core::SbcParams sbc_params = core::best_sbc_at_most(P);
    const bench::Candidate sbc{"SBC P=" + std::to_string(sbc_params.P),
                               core::make_sbc(sbc_params)};
    bench::print_perf_row("cholesky", sbc, n, t,
                          bench::run_candidate(sbc, t, parser, true));

    core::GcrmSearchOptions options;
    options.seeds = parser.get_int("seeds");
    const core::GcrmSearchResult search = core::gcrm_search(P, options);
    if (!search.found) continue;
    const bench::Candidate gcrm{"GCR&M P=" + std::to_string(P), search.best};
    bench::print_perf_row("cholesky", gcrm, n, t,
                          bench::run_candidate(gcrm, t, parser, true));
  }
  return 0;
}
