// Fig. 1: LU factorization with 2DBC under different pattern shapes.
//
// The paper's motivating experiment: with P = 23 nodes available, the
// forced 23x1 grid wastes the machine; dropping to 22 (11x2), 21 (7x3) or
// 20 (5x4) nodes trades node count against pattern squareness — per-node
// performance improves as the grid squares up, while total performance
// stays disappointingly flat.  Series: per-node and total GFlop/s vs N.
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/block_cyclic.hpp"

using namespace anyblock;

int main(int argc, char** argv) {
  ArgParser parser("fig01_2dbc_shapes",
                   "Fig. 1 - LU with 2DBC pattern shapes 23x1/11x2/7x3/5x4");
  bench::add_machine_options(parser);
  parser.add("sizes", "50000,100000,150000,200000",
             "matrix sizes N (comma-separated)");
  if (!parser.parse(argc, argv)) return 1;

  const std::vector<bench::Candidate> candidates = {
      {"2DBC 23x1", core::make_2dbc(23, 1)},
      {"2DBC 11x2", core::make_2dbc(11, 2)},
      {"2DBC 7x3", core::make_2dbc(7, 3)},
      {"2DBC 5x4", core::make_2dbc(5, 4)},
  };

  std::fprintf(stderr,
               "fig01: LU, 2DBC shapes for ~23 nodes (paper Fig. 1)\n");
  bench::print_perf_header();
  for (const std::int64_t n : bench::size_sweep(parser)) {
    const std::int64_t t = n / parser.get_int("tile");
    if (t < 2) continue;
    for (const auto& candidate : candidates) {
      const sim::SimReport report =
          bench::run_candidate(candidate, t, parser, /*symmetric=*/false);
      bench::print_perf_row("lu", candidate, n, t, report);
    }
  }
  return 0;
}
