#include "dist/dist_solve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/block_cyclic.hpp"
#include "core/g2dbc.hpp"
#include "core/gcrm.hpp"
#include "core/sbc.hpp"
#include "core/cost.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/generators.hpp"
#include "linalg/solve.hpp"
#include "util/rng.hpp"

namespace anyblock::dist {
namespace {

using core::Pattern;
using core::PatternDistribution;

constexpr std::int64_t kNb = 4;

std::vector<double> random_vector(std::int64_t n, Rng& rng) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = 2.0 * rng.uniform() - 1.0;
  return v;
}

struct SolveCase {
  const char* name;
  Pattern pattern;
  std::int64_t t;
};

class DistributedLuSolveTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(DistributedLuSolveTest, SolvesTheSystem) {
  const auto& param = GetParam();
  Rng rng(19);
  const linalg::DenseMatrix a =
      linalg::diag_dominant_matrix(param.t * kNb, rng);
  const std::vector<double> b = random_vector(param.t * kNb, rng);
  const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);
  const PatternDistribution dist(param.pattern, param.t, false);

  const DistSolveResult result = distributed_lu_solve(input, b, dist);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(linalg::solve_residual(a, result.x, b), 1e-11);
  EXPECT_GE(result.factor_messages, 0);
  EXPECT_GE(result.solve_messages, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, DistributedLuSolveTest,
    ::testing::Values(SolveCase{"single", core::make_2dbc(1, 1), 5},
                      SolveCase{"grid2x3", core::make_2dbc(2, 3), 8},
                      SolveCase{"tall5x1", core::make_2dbc(5, 1), 7},
                      SolveCase{"g2dbc7", core::make_g2dbc(7), 9}),
    [](const ::testing::TestParamInfo<SolveCase>& info) {
      return info.param.name;
    });

class DistributedCholSolveTest : public ::testing::TestWithParam<SolveCase> {};

TEST_P(DistributedCholSolveTest, SolvesSpdSystem) {
  const auto& param = GetParam();
  Rng rng(23);
  const linalg::DenseMatrix a = linalg::spd_matrix(param.t * kNb, rng);
  const std::vector<double> b = random_vector(param.t * kNb, rng);
  const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);
  const PatternDistribution dist(param.pattern, param.t, true);

  const DistSolveResult result = distributed_cholesky_solve(input, b, dist);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(linalg::solve_residual(a, result.x, b), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, DistributedCholSolveTest,
    ::testing::Values(SolveCase{"single", core::make_2dbc(1, 1), 5},
                      SolveCase{"grid2x2", core::make_2dbc(2, 2), 8},
                      SolveCase{"sbc3", core::make_sbc(3), 7},
                      SolveCase{"sbc6", core::make_sbc(6), 10}),
    [](const ::testing::TestParamInfo<SolveCase>& info) {
      return info.param.name;
    });

TEST(DistributedSolve, MatchesSequentialSolveBitwise) {
  Rng rng(29);
  const std::int64_t t = 6;
  const linalg::DenseMatrix a = linalg::diag_dominant_matrix(t * kNb, rng);
  const std::vector<double> b = random_vector(t * kNb, rng);
  const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);
  const PatternDistribution dist(core::make_2dbc(2, 2), t, false);

  const DistSolveResult distributed = distributed_lu_solve(input, b, dist);
  ASSERT_TRUE(distributed.ok);

  linalg::TiledMatrix factored = linalg::TiledMatrix::from_dense(a, kNb);
  ASSERT_TRUE(linalg::tiled_lu_nopiv(factored));
  const std::vector<double> expected = linalg::lu_solve(factored, b);
  ASSERT_EQ(distributed.x.size(), expected.size());
  // The distributed reduction groups terms per tile (gemv partial sums)
  // where the sequential solve subtracts element by element, so results
  // agree to rounding, not bitwise.
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_NEAR(distributed.x[i], expected[i],
                1e-12 * (1.0 + std::abs(expected[i])))
        << i;
}

TEST(DistributedSolve, GcrmDistributionWorks) {
  const core::GcrmResult built = core::gcrm_build(6, 4, 2);
  ASSERT_TRUE(built.valid);
  Rng rng(31);
  const std::int64_t t = 10;
  const linalg::DenseMatrix a = linalg::spd_matrix(t * kNb, rng);
  const std::vector<double> b = random_vector(t * kNb, rng);
  const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);
  const PatternDistribution dist(built.pattern, t, true);
  const DistSolveResult result = distributed_cholesky_solve(input, b, dist);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(linalg::solve_residual(a, result.x, b), 1e-11);
}

TEST(DistributedSolve, FactorMessagesMatchPlainFactorization) {
  // The factorization phase of a solve sends exactly what the standalone
  // factorization sends.
  Rng rng(37);
  const std::int64_t t = 8;
  const Pattern pattern = core::make_2dbc(2, 3);
  const linalg::DenseMatrix a = linalg::diag_dominant_matrix(t * kNb, rng);
  const linalg::TiledMatrix input = linalg::TiledMatrix::from_dense(a, kNb);
  const std::vector<double> b = random_vector(t * kNb, rng);
  const PatternDistribution dist(pattern, t, false);
  const DistSolveResult solve = distributed_lu_solve(input, b, dist);
  EXPECT_EQ(solve.factor_messages, core::exact_lu_volume(pattern, t));
  EXPECT_GT(solve.solve_messages, 0);
}

TEST(DistributedSolve, RejectsWrongRhsLength) {
  const linalg::TiledMatrix input(4, kNb);
  const PatternDistribution dist(core::make_2dbc(2, 2), 4, false);
  EXPECT_THROW(distributed_lu_solve(input, std::vector<double>(3), dist),
               std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::dist
