// Golden + property tests for the 2.5D replicated distributed path
// (dist_factorization_25d.cpp).
//
//  * c = 1 is bit-identical to the plain 2D run: same factored tiles, same
//    per-run message counts, under every collective.
//  * c > 1: numerically correct (residual), deterministic across repeat
//    runs (fixed ascending-layer reduce order), and the measured traffic
//    equals the 2.5D closed forms exactly.
//  * Fault-injected runs recover bit-identically to clean runs, with the
//    post-dedup consumed count unchanged.
#include "dist/dist_factorization.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "fault/fault.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/generators.hpp"
#include "linalg/verify.hpp"
#include "util/rng.hpp"

namespace anyblock::dist {
namespace {

using core::PatternDistribution;
using core::ReplicatedDistribution;
using linalg::TiledMatrix;

constexpr std::int64_t kNb = 4;

ReplicatedDistribution replicated(std::int64_t base_nodes, std::int64_t t,
                                  bool symmetric, std::int64_t layers) {
  return ReplicatedDistribution(
      std::make_shared<PatternDistribution>(core::make_g2dbc(base_nodes), t,
                                            symmetric),
      layers);
}

void expect_same_tiles(const TiledMatrix& a, const TiledMatrix& b,
                       bool lower_only) {
  ASSERT_EQ(a.tiles(), b.tiles());
  for (std::int64_t i = 0; i < a.tiles(); ++i) {
    const std::int64_t j_end = lower_only ? i + 1 : a.tiles();
    for (std::int64_t j = 0; j < j_end; ++j) {
      const auto ta = a.tile(i, j);
      const auto tb = b.tile(i, j);
      for (std::size_t e = 0; e < ta.size(); ++e)
        ASSERT_EQ(ta[e], tb[e]) << i << "," << j << "[" << e << "]";
    }
  }
}

comm::CollectiveConfig config_for(comm::Algorithm algorithm) {
  comm::CollectiveConfig config;
  config.algorithm = algorithm;
  config.chain_chunks = 3;
  return config;
}

TEST(Dist25dGolden, OneLayerBitIdenticalTo2d) {
  const std::int64_t t = 10;
  Rng rng(7);
  const linalg::DenseMatrix original = linalg::diag_dominant_matrix(t * kNb,
                                                                    rng);
  const TiledMatrix input = TiledMatrix::from_dense(original, kNb);
  Rng rng_spd(9);
  const linalg::DenseMatrix spd = linalg::spd_matrix(t * kNb, rng_spd);
  const TiledMatrix spd_input = TiledMatrix::from_dense(spd, kNb);

  for (const comm::Algorithm algorithm :
       {comm::Algorithm::kEagerP2P, comm::Algorithm::kBinomialTree,
        comm::Algorithm::kPipelinedChain}) {
    SCOPED_TRACE(comm::algorithm_name(algorithm));
    const auto config = config_for(algorithm);
    {
      const PatternDistribution base(core::make_g2dbc(7), t, false);
      const ReplicatedDistribution stacked = replicated(7, t, false, 1);
      const DistRunResult flat = distributed_lu(input, base, config);
      const DistRunResult layered =
          distributed_lu_25d(input, stacked, config);
      ASSERT_TRUE(flat.ok);
      ASSERT_TRUE(layered.ok);
      expect_same_tiles(flat.factored, layered.factored,
                        /*lower_only=*/false);
      EXPECT_EQ(flat.tile_messages, layered.tile_messages);
      EXPECT_EQ(flat.tile_messages_received, layered.tile_messages_received);
    }
    {
      const PatternDistribution base(core::make_g2dbc(7), t, true);
      const ReplicatedDistribution stacked = replicated(7, t, true, 1);
      const DistRunResult flat = distributed_cholesky(spd_input, base, config);
      const DistRunResult layered =
          distributed_cholesky_25d(spd_input, stacked, config);
      ASSERT_TRUE(flat.ok);
      ASSERT_TRUE(layered.ok);
      expect_same_tiles(flat.factored, layered.factored, /*lower_only=*/true);
      EXPECT_EQ(flat.tile_messages, layered.tile_messages);
      EXPECT_EQ(flat.tile_messages_received, layered.tile_messages_received);
    }
  }
}

struct Case25d {
  const char* name;
  std::int64_t base_nodes;
  std::int64_t layers;
  std::int64_t t;
};

class Dist25dTest : public ::testing::TestWithParam<Case25d> {};

TEST_P(Dist25dTest, LuResidualCountsAndDeterminism) {
  const auto& param = GetParam();
  Rng rng(7);
  const linalg::DenseMatrix original =
      linalg::diag_dominant_matrix(param.t * kNb, rng);
  const TiledMatrix input = TiledMatrix::from_dense(original, kNb);
  const ReplicatedDistribution dist =
      replicated(param.base_nodes, param.t, false, param.layers);

  for (const comm::Algorithm algorithm :
       {comm::Algorithm::kEagerP2P, comm::Algorithm::kBinomialTree,
        comm::Algorithm::kPipelinedChain}) {
    SCOPED_TRACE(comm::algorithm_name(algorithm));
    const auto config = config_for(algorithm);
    const DistRunResult result = distributed_lu_25d(input, dist, config);
    ASSERT_TRUE(result.ok);
    EXPECT_LT(linalg::lu_residual(original, result.factored), 1e-12);
    EXPECT_EQ(result.tile_messages,
              core::exact_lu_messages_25d(dist, param.t, config));
    EXPECT_EQ(result.tile_messages_received, result.tile_messages);
    if (algorithm == comm::Algorithm::kEagerP2P)
      EXPECT_EQ(result.tile_messages,
                core::exact_lu_volume_25d(dist, param.t));
    // Ascending-layer reduces make the summation order fixed: a repeat run
    // must reproduce the factor bit for bit.
    const DistRunResult again = distributed_lu_25d(input, dist, config);
    expect_same_tiles(result.factored, again.factored, /*lower_only=*/false);
  }
}

TEST_P(Dist25dTest, CholeskyResidualCountsAndDeterminism) {
  const auto& param = GetParam();
  Rng rng(9);
  const linalg::DenseMatrix original = linalg::spd_matrix(param.t * kNb, rng);
  const TiledMatrix input = TiledMatrix::from_dense(original, kNb);
  const ReplicatedDistribution dist =
      replicated(param.base_nodes, param.t, true, param.layers);

  for (const comm::Algorithm algorithm :
       {comm::Algorithm::kEagerP2P, comm::Algorithm::kBinomialTree,
        comm::Algorithm::kPipelinedChain}) {
    SCOPED_TRACE(comm::algorithm_name(algorithm));
    const auto config = config_for(algorithm);
    const DistRunResult result =
        distributed_cholesky_25d(input, dist, config);
    ASSERT_TRUE(result.ok);
    EXPECT_LT(linalg::cholesky_residual(original, result.factored), 1e-12);
    EXPECT_EQ(result.tile_messages,
              core::exact_cholesky_messages_25d(dist, param.t, config));
    EXPECT_EQ(result.tile_messages_received, result.tile_messages);
    if (algorithm == comm::Algorithm::kEagerP2P)
      EXPECT_EQ(result.tile_messages,
                core::exact_cholesky_volume_25d(dist, param.t));
    const DistRunResult again = distributed_cholesky_25d(input, dist, config);
    expect_same_tiles(result.factored, again.factored, /*lower_only=*/true);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Dist25dTest,
    ::testing::Values(Case25d{"c2_p3", 3, 2, 8}, Case25d{"c2_p4", 4, 2, 10},
                      Case25d{"c3_p3", 3, 3, 9}, Case25d{"c4_p2", 2, 4, 12}),
    [](const ::testing::TestParamInfo<Case25d>& info) {
      return info.param.name;
    });

TEST(Dist25dFaults, RecoversBitIdenticallyWithCleanCounts) {
  // Drops/duplicates/delays on the wire; at-least-once delivery plus
  // sequence dedup must leave the factored tiles and the *consumed*
  // message count identical to a fault-free run.
  const std::int64_t t = 8;
  Rng rng(7);
  const linalg::DenseMatrix original =
      linalg::diag_dominant_matrix(t * kNb, rng);
  const TiledMatrix input = TiledMatrix::from_dense(original, kNb);
  const ReplicatedDistribution dist = replicated(3, t, false, 2);
  const auto config = config_for(comm::Algorithm::kEagerP2P);

  const DistRunResult clean = distributed_lu_25d(input, dist, config);
  ASSERT_TRUE(clean.ok);

  fault::FaultPlan plan;
  plan.drop = 0.05;
  plan.duplicate = 0.02;
  plan.delay = 0.02;
  plan.delay_ms = 1;
  plan.recv_timeout_ms = 25;
  plan.max_retries = 12;
  plan.seed = 42;
  fault::FaultInjector injector(plan);
  const DistRunResult faulted =
      distributed_lu_25d(input, dist, config, nullptr, &injector);
  ASSERT_TRUE(faulted.ok);
  expect_same_tiles(clean.factored, faulted.factored, /*lower_only=*/false);
  EXPECT_EQ(faulted.tile_messages_received, clean.tile_messages_received);
}

}  // namespace
}  // namespace anyblock::dist
