#include "dist/dist_factorization.hpp"

#include <gtest/gtest.h>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "core/gcrm.hpp"
#include "core/sbc.hpp"
#include "linalg/factorizations.hpp"
#include "linalg/generators.hpp"
#include "linalg/verify.hpp"
#include "util/rng.hpp"

namespace anyblock::dist {
namespace {

using core::Pattern;
using core::PatternDistribution;

constexpr std::int64_t kNb = 4;  // tiny tiles keep the thread runs quick

struct LuCase {
  const char* name;
  Pattern pattern;
  std::int64_t t;
};

class DistributedLuTest : public ::testing::TestWithParam<LuCase> {};

TEST_P(DistributedLuTest, ResidualAndMessageCount) {
  const auto& param = GetParam();
  Rng rng(7);
  const linalg::DenseMatrix original =
      linalg::diag_dominant_matrix(param.t * kNb, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, kNb);
  const PatternDistribution distribution(param.pattern, param.t,
                                         /*symmetric=*/false);

  const DistRunResult result = distributed_lu(input, distribution);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(linalg::lu_residual(original, result.factored), 1e-12);

  // The run's tile messages must equal the exact owner-computes volume —
  // the quantity Eq. 1 approximates and T(G) ranks.
  EXPECT_EQ(result.tile_messages,
            core::exact_lu_volume(param.pattern, param.t));
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, DistributedLuTest,
    ::testing::Values(
        LuCase{"single", core::make_2dbc(1, 1), 4},
        LuCase{"row2", core::make_2dbc(1, 2), 6},
        LuCase{"grid2x3", core::make_2dbc(2, 3), 8},
        LuCase{"grid3x3", core::make_2dbc(3, 3), 9},
        LuCase{"tall5x1", core::make_2dbc(5, 1), 8},
        LuCase{"g2dbc10", core::make_g2dbc(10), 12},
        LuCase{"g2dbc7", core::make_g2dbc(7), 10}),
    [](const ::testing::TestParamInfo<LuCase>& info) {
      return info.param.name;
    });

struct CholCase {
  const char* name;
  Pattern pattern;
  std::int64_t t;
};

class DistributedCholeskyTest : public ::testing::TestWithParam<CholCase> {};

TEST_P(DistributedCholeskyTest, ResidualAndMessageCount) {
  const auto& param = GetParam();
  Rng rng(9);
  const linalg::DenseMatrix original = linalg::spd_matrix(param.t * kNb, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, kNb);
  const PatternDistribution distribution(param.pattern, param.t,
                                         /*symmetric=*/true);

  const DistRunResult result = distributed_cholesky(input, distribution);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(linalg::cholesky_residual(original, result.factored), 1e-12);
  EXPECT_EQ(result.tile_messages,
            core::exact_cholesky_volume(param.pattern, param.t));
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, DistributedCholeskyTest,
    ::testing::Values(
        CholCase{"single", core::make_2dbc(1, 1), 4},
        CholCase{"grid2x2", core::make_2dbc(2, 2), 8},
        CholCase{"grid3x3", core::make_2dbc(3, 3), 9},
        CholCase{"sbc3", core::make_sbc(3), 8},
        CholCase{"sbc6", core::make_sbc(6), 10},
        CholCase{"sbc8", core::make_sbc(8), 10}),
    [](const ::testing::TestParamInfo<CholCase>& info) {
      return info.param.name;
    });

TEST(DistributedCholesky, GcrmPatternEndToEnd) {
  // The full pipeline the paper proposes: GCR&M pattern -> lazy diagonal
  // binding -> distributed Cholesky, verified numerically and in message
  // counts.
  const core::GcrmResult built = core::gcrm_build(6, 4, 2);
  ASSERT_TRUE(built.valid);
  const std::int64_t t = 10;
  Rng rng(11);
  const linalg::DenseMatrix original = linalg::spd_matrix(t * kNb, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, kNb);
  const PatternDistribution distribution(built.pattern, t, true);

  const DistRunResult result = distributed_cholesky(input, distribution);
  ASSERT_TRUE(result.ok);
  EXPECT_LT(linalg::cholesky_residual(original, result.factored), 1e-12);
  EXPECT_EQ(result.tile_messages,
            core::exact_cholesky_volume(built.pattern, t));
}

TEST(DistributedLu, Eq1PredictionIsClose) {
  // Eq. 1 neglects edge effects; at t = 24 with a 2x3 pattern the measured
  // volume should sit within ~15% of the prediction.
  const Pattern pattern = core::make_2dbc(2, 3);
  const std::int64_t t = 24;
  Rng rng(13);
  const linalg::TiledMatrix input = linalg::tiled_diag_dominant(t, kNb, rng);
  const PatternDistribution distribution(pattern, t, false);
  const DistRunResult result = distributed_lu(input, distribution);
  ASSERT_TRUE(result.ok);
  const double predicted = core::predicted_lu_volume(pattern, t);
  EXPECT_NEAR(static_cast<double>(result.tile_messages) / predicted, 1.0,
              0.15);
}

TEST(DistributedLu, MatchesSequentialBitwise) {
  const Pattern pattern = core::make_2dbc(2, 2);
  const std::int64_t t = 6;
  Rng rng(17);
  const linalg::DenseMatrix original =
      linalg::diag_dominant_matrix(t * kNb, rng);
  const linalg::TiledMatrix input =
      linalg::TiledMatrix::from_dense(original, kNb);
  const PatternDistribution distribution(pattern, t, false);
  const DistRunResult result = distributed_lu(input, distribution);
  ASSERT_TRUE(result.ok);

  linalg::TiledMatrix sequential =
      linalg::TiledMatrix::from_dense(original, kNb);
  ASSERT_TRUE(linalg::tiled_lu_nopiv(sequential));
  for (std::int64_t i = 0; i < sequential.dim(); ++i)
    for (std::int64_t j = 0; j < sequential.dim(); ++j)
      EXPECT_DOUBLE_EQ(result.factored.at(i, j), sequential.at(i, j));
}

}  // namespace
}  // namespace anyblock::dist
