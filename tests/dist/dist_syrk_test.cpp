#include <gtest/gtest.h>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/gcrm.hpp"
#include "core/sbc.hpp"
#include "dist/dist_factorization.hpp"
#include "linalg/factorizations.hpp"
#include "util/rng.hpp"

namespace anyblock::dist {
namespace {

using core::Pattern;
using core::PatternDistribution;

constexpr std::int64_t kNb = 4;

linalg::DenseMatrix random_dense(std::int64_t rows, std::int64_t cols,
                                 Rng& rng) {
  linalg::DenseMatrix m(rows, cols);
  for (std::int64_t i = 0; i < rows; ++i)
    for (std::int64_t j = 0; j < cols; ++j)
      m(i, j) = 2.0 * rng.uniform() - 1.0;
  return m;
}

struct SyrkCase {
  const char* name;
  Pattern pattern;
  std::int64_t t;
  std::int64_t k;
};

class DistributedSyrkTest : public ::testing::TestWithParam<SyrkCase> {};

TEST_P(DistributedSyrkTest, MatchesSequentialAndMessageCount) {
  const auto& param = GetParam();
  Rng rng(3);
  const linalg::DenseMatrix a_dense =
      random_dense(param.t * kNb, param.k * kNb, rng);
  linalg::DenseMatrix c_dense = random_dense(param.t * kNb, param.t * kNb, rng);
  for (std::int64_t i = 0; i < c_dense.rows(); ++i)
    for (std::int64_t j = 0; j < i; ++j) c_dense(j, i) = c_dense(i, j);

  const linalg::TiledPanel a = linalg::TiledPanel::from_dense(a_dense, kNb);
  const linalg::TiledMatrix c = linalg::TiledMatrix::from_dense(c_dense, kNb);
  const PatternDistribution dist_c(param.pattern, param.t, true);
  const PatternDistribution dist_a(param.pattern, param.t, false);

  const DistRunResult result = distributed_syrk(c, a, dist_c, dist_a);
  ASSERT_TRUE(result.ok);

  // Sequential reference.
  linalg::TiledMatrix expected = linalg::TiledMatrix::from_dense(c_dense, kNb);
  linalg::tiled_syrk(a, expected);
  for (std::int64_t i = 0; i < expected.dim(); ++i)
    for (std::int64_t j = 0; j <= i; ++j)
      EXPECT_DOUBLE_EQ(result.factored.at(i, j), expected.at(i, j));

  EXPECT_EQ(result.tile_messages,
            core::exact_syrk_volume(param.pattern, param.t, param.k));
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, DistributedSyrkTest,
    ::testing::Values(SyrkCase{"single", core::make_2dbc(1, 1), 4, 3},
                      SyrkCase{"grid2x2", core::make_2dbc(2, 2), 6, 4},
                      SyrkCase{"grid3x3", core::make_2dbc(3, 3), 9, 2},
                      SyrkCase{"sbc6", core::make_sbc(6), 8, 5},
                      SyrkCase{"sbc8", core::make_sbc(8), 8, 8}),
    [](const ::testing::TestParamInfo<SyrkCase>& info) {
      return info.param.name;
    });

TEST(DistributedSyrk, GcrmPattern) {
  const core::GcrmResult built = core::gcrm_build(6, 4, 1);
  ASSERT_TRUE(built.valid);
  const std::int64_t t = 8;
  const std::int64_t k = 6;
  Rng rng(5);
  const linalg::DenseMatrix a_dense = random_dense(t * kNb, k * kNb, rng);
  const linalg::DenseMatrix c_dense = random_dense(t * kNb, t * kNb, rng);
  const linalg::TiledPanel a = linalg::TiledPanel::from_dense(a_dense, kNb);
  const linalg::TiledMatrix c = linalg::TiledMatrix::from_dense(c_dense, kNb);
  const PatternDistribution dist_c(built.pattern, t, true);
  const PatternDistribution dist_a(built.pattern, t, false);
  const DistRunResult result = distributed_syrk(c, a, dist_c, dist_a);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.tile_messages,
            core::exact_syrk_volume(built.pattern, t, k));
}

TEST(DistributedSyrk, PredictionMatchesWhenPatternDividesGrid) {
  // Q = k * t * (z-bar - 1) exactly when r | t (no partial replicas).
  const Pattern pattern = core::make_sbc(6);  // 4x4
  const std::int64_t t = 16;
  const std::int64_t k = 3;
  const std::int64_t exact = core::exact_syrk_volume(pattern, t, k);
  EXPECT_DOUBLE_EQ(static_cast<double>(exact),
                   core::predicted_syrk_volume(pattern, t, k));
}

TEST(DistributedSyrk, RejectsMismatchedPanel) {
  const linalg::TiledMatrix c(4, kNb);
  const linalg::TiledPanel a(3, 2, kNb);
  const PatternDistribution dist(core::make_2dbc(2, 2), 4, true);
  const PatternDistribution dist_a(core::make_2dbc(2, 2), 4, false);
  EXPECT_THROW(distributed_syrk(c, a, dist, dist_a), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::dist
