#include <gtest/gtest.h>

#include <cmath>

#include "core/block_cyclic.hpp"
#include "core/cost.hpp"
#include "core/g2dbc.hpp"
#include "dist/dist_factorization.hpp"
#include "linalg/factorizations.hpp"
#include "util/rng.hpp"

namespace anyblock::dist {
namespace {

using core::Pattern;
using core::PatternDistribution;

constexpr std::int64_t kNb = 4;

linalg::DenseMatrix random_dense(std::int64_t rows, std::int64_t cols,
                                 Rng& rng) {
  linalg::DenseMatrix m(rows, cols);
  for (std::int64_t i = 0; i < rows; ++i)
    for (std::int64_t j = 0; j < cols; ++j)
      m(i, j) = 2.0 * rng.uniform() - 1.0;
  return m;
}

struct GemmCase {
  const char* name;
  Pattern pattern;
  std::int64_t t;
  std::int64_t k;
};

class DistributedGemmTest : public ::testing::TestWithParam<GemmCase> {};

TEST_P(DistributedGemmTest, MatchesSequentialAndMessageCount) {
  const auto& param = GetParam();
  Rng rng(7);
  const linalg::DenseMatrix a_dense =
      random_dense(param.t * kNb, param.k * kNb, rng);
  const linalg::DenseMatrix b_dense =
      random_dense(param.k * kNb, param.t * kNb, rng);
  const linalg::DenseMatrix c_dense =
      random_dense(param.t * kNb, param.t * kNb, rng);

  const linalg::TiledPanel a = linalg::TiledPanel::from_dense(a_dense, kNb);
  const linalg::TiledPanel b = linalg::TiledPanel::from_dense(b_dense, kNb);
  const linalg::TiledMatrix c = linalg::TiledMatrix::from_dense(c_dense, kNb);
  const PatternDistribution dist(param.pattern, param.t, false);

  const DistRunResult result = distributed_gemm(c, a, b, dist);
  ASSERT_TRUE(result.ok);

  linalg::TiledMatrix expected = linalg::TiledMatrix::from_dense(c_dense, kNb);
  linalg::tiled_gemm(a, b, expected);
  for (std::int64_t i = 0; i < expected.dim(); ++i)
    for (std::int64_t j = 0; j < expected.dim(); ++j)
      EXPECT_DOUBLE_EQ(result.factored.at(i, j), expected.at(i, j));

  EXPECT_EQ(result.tile_messages,
            core::exact_gemm_volume(param.pattern, param.t, param.k));
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, DistributedGemmTest,
    ::testing::Values(GemmCase{"single", core::make_2dbc(1, 1), 4, 3},
                      GemmCase{"grid2x2", core::make_2dbc(2, 2), 6, 4},
                      GemmCase{"grid2x3", core::make_2dbc(2, 3), 6, 3},
                      GemmCase{"tall4x1", core::make_2dbc(4, 1), 8, 2},
                      GemmCase{"g2dbc7", core::make_g2dbc(7), 10, 3}),
    [](const ::testing::TestParamInfo<GemmCase>& info) {
      return info.param.name;
    });

TEST(DistributedGemm, IronyToledoTiskinBoundForSquareGrids) {
  // Section II-A: on a square 2DBC grid, GEMM's per-node volume is
  // 2 t^2 / sqrt(P) tiles per panel column... over k columns:
  // total = k * t * (2 sqrt(P) - 2), i.e. per node 2 k t (sqrt(P)-1)/P.
  for (const std::int64_t p : {2, 3, 5}) {
    const std::int64_t P = p * p;
    const Pattern pattern = core::make_2dbc(p, p);
    const std::int64_t t = 4 * p;
    const std::int64_t k = 6;
    const std::int64_t exact = core::exact_gemm_volume(pattern, t, k);
    EXPECT_DOUBLE_EQ(static_cast<double>(exact),
                     core::predicted_gemm_volume(pattern, t, k))
        << "P=" << P;
    const double per_node =
        static_cast<double>(exact) / static_cast<double>(P);
    const double bound = 2.0 * static_cast<double>(k) *
                         static_cast<double>(t) /
                         std::sqrt(static_cast<double>(P));
    // Per-node volume is exactly (p-1)/p of the 2kt/sqrt(P) asymptote
    // (each tile reaches p-1 remote nodes out of the p in its row/column),
    // approaching the bound from below as P grows.
    EXPECT_LT(per_node, bound);
    EXPECT_DOUBLE_EQ(per_node,
                     bound * static_cast<double>(p - 1) /
                         static_cast<double>(p));
  }
}

TEST(DistributedGemm, RejectsShapeMismatch) {
  const linalg::TiledMatrix c(4, kNb);
  const linalg::TiledPanel a(4, 2, kNb);
  const linalg::TiledPanel b(3, 4, kNb);  // inner dimension mismatch
  const PatternDistribution dist(core::make_2dbc(2, 2), 4, false);
  EXPECT_THROW(distributed_gemm(c, a, b, dist), std::invalid_argument);
}

}  // namespace
}  // namespace anyblock::dist
